file(REMOVE_RECURSE
  "../bench/bench_fig3_grammar"
  "../bench/bench_fig3_grammar.pdb"
  "CMakeFiles/bench_fig3_grammar.dir/bench_fig3_grammar.cc.o"
  "CMakeFiles/bench_fig3_grammar.dir/bench_fig3_grammar.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
