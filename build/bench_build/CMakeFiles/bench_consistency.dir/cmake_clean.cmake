file(REMOVE_RECURSE
  "../bench/bench_consistency"
  "../bench/bench_consistency.pdb"
  "CMakeFiles/bench_consistency.dir/bench_consistency.cc.o"
  "CMakeFiles/bench_consistency.dir/bench_consistency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
