# Empty dependencies file for bench_grokking.
# This may be replaced when dependencies are built.
