file(REMOVE_RECURSE
  "../bench/bench_grokking"
  "../bench/bench_grokking.pdb"
  "CMakeFiles/bench_grokking.dir/bench_grokking.cc.o"
  "CMakeFiles/bench_grokking.dir/bench_grokking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grokking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
