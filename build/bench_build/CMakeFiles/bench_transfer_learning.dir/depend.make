# Empty dependencies file for bench_transfer_learning.
# This may be replaced when dependencies are built.
