file(REMOVE_RECURSE
  "../bench/bench_fewshot_icl"
  "../bench/bench_fewshot_icl.pdb"
  "CMakeFiles/bench_fewshot_icl.dir/bench_fewshot_icl.cc.o"
  "CMakeFiles/bench_fewshot_icl.dir/bench_fewshot_icl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fewshot_icl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
