# Empty dependencies file for bench_fewshot_icl.
# This may be replaced when dependencies are built.
