file(REMOVE_RECURSE
  "../bench/bench_icl_regression"
  "../bench/bench_icl_regression.pdb"
  "CMakeFiles/bench_icl_regression.dir/bench_icl_regression.cc.o"
  "CMakeFiles/bench_icl_regression.dir/bench_icl_regression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_icl_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
