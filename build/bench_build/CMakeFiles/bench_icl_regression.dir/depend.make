# Empty dependencies file for bench_icl_regression.
# This may be replaced when dependencies are built.
