# Empty dependencies file for bench_othello_probe.
# This may be replaced when dependencies are built.
