file(REMOVE_RECURSE
  "../bench/bench_othello_probe"
  "../bench/bench_othello_probe.pdb"
  "CMakeFiles/bench_othello_probe.dir/bench_othello_probe.cc.o"
  "CMakeFiles/bench_othello_probe.dir/bench_othello_probe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_othello_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
