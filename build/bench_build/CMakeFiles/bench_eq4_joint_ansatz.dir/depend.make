# Empty dependencies file for bench_eq4_joint_ansatz.
# This may be replaced when dependencies are built.
