file(REMOVE_RECURSE
  "../bench/bench_eq4_joint_ansatz"
  "../bench/bench_eq4_joint_ansatz.pdb"
  "CMakeFiles/bench_eq4_joint_ansatz.dir/bench_eq4_joint_ansatz.cc.o"
  "CMakeFiles/bench_eq4_joint_ansatz.dir/bench_eq4_joint_ansatz.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq4_joint_ansatz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
