file(REMOVE_RECURSE
  "../bench/bench_double_descent"
  "../bench/bench_double_descent.pdb"
  "CMakeFiles/bench_double_descent.dir/bench_double_descent.cc.o"
  "CMakeFiles/bench_double_descent.dir/bench_double_descent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_double_descent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
