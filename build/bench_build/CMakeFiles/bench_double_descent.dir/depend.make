# Empty dependencies file for bench_double_descent.
# This may be replaced when dependencies are built.
