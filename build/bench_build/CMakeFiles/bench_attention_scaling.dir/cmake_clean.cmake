file(REMOVE_RECURSE
  "../bench/bench_attention_scaling"
  "../bench/bench_attention_scaling.pdb"
  "CMakeFiles/bench_attention_scaling.dir/bench_attention_scaling.cc.o"
  "CMakeFiles/bench_attention_scaling.dir/bench_attention_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attention_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
