# Empty dependencies file for bench_attention_scaling.
# This may be replaced when dependencies are built.
