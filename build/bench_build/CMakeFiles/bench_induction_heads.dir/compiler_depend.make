# Empty compiler generated dependencies file for bench_induction_heads.
# This may be replaced when dependencies are built.
