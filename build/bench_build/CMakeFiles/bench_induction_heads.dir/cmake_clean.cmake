file(REMOVE_RECURSE
  "../bench/bench_induction_heads"
  "../bench/bench_induction_heads.pdb"
  "CMakeFiles/bench_induction_heads.dir/bench_induction_heads.cc.o"
  "CMakeFiles/bench_induction_heads.dir/bench_induction_heads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_induction_heads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
