file(REMOVE_RECURSE
  "../bench/bench_novelty"
  "../bench/bench_novelty.pdb"
  "CMakeFiles/bench_novelty.dir/bench_novelty.cc.o"
  "CMakeFiles/bench_novelty.dir/bench_novelty.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_novelty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
