# Empty compiler generated dependencies file for bench_novelty.
# This may be replaced when dependencies are built.
