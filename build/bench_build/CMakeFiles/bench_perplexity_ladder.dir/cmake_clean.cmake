file(REMOVE_RECURSE
  "../bench/bench_perplexity_ladder"
  "../bench/bench_perplexity_ladder.pdb"
  "CMakeFiles/bench_perplexity_ladder.dir/bench_perplexity_ladder.cc.o"
  "CMakeFiles/bench_perplexity_ladder.dir/bench_perplexity_ladder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perplexity_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
