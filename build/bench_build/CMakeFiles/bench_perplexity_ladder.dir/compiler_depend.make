# Empty compiler generated dependencies file for bench_perplexity_ladder.
# This may be replaced when dependencies are built.
