file(REMOVE_RECURSE
  "../bench/bench_fig1_word_problems"
  "../bench/bench_fig1_word_problems.pdb"
  "CMakeFiles/bench_fig1_word_problems.dir/bench_fig1_word_problems.cc.o"
  "CMakeFiles/bench_fig1_word_problems.dir/bench_fig1_word_problems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_word_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
