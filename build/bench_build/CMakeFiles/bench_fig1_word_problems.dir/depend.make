# Empty dependencies file for bench_fig1_word_problems.
# This may be replaced when dependencies are built.
