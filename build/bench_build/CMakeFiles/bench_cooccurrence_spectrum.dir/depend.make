# Empty dependencies file for bench_cooccurrence_spectrum.
# This may be replaced when dependencies are built.
