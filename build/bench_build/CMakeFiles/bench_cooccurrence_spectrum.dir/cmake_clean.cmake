file(REMOVE_RECURSE
  "../bench/bench_cooccurrence_spectrum"
  "../bench/bench_cooccurrence_spectrum.pdb"
  "CMakeFiles/bench_cooccurrence_spectrum.dir/bench_cooccurrence_spectrum.cc.o"
  "CMakeFiles/bench_cooccurrence_spectrum.dir/bench_cooccurrence_spectrum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cooccurrence_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
