file(REMOVE_RECURSE
  "../bench/bench_multitask"
  "../bench/bench_multitask.pdb"
  "CMakeFiles/bench_multitask.dir/bench_multitask.cc.o"
  "CMakeFiles/bench_multitask.dir/bench_multitask.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
