file(REMOVE_RECURSE
  "../bench/bench_search_decoding"
  "../bench/bench_search_decoding.pdb"
  "CMakeFiles/bench_search_decoding.dir/bench_search_decoding.cc.o"
  "CMakeFiles/bench_search_decoding.dir/bench_search_decoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
