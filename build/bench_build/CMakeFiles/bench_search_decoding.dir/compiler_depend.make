# Empty compiler generated dependencies file for bench_search_decoding.
# This may be replaced when dependencies are built.
