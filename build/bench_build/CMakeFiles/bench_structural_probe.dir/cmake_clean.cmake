file(REMOVE_RECURSE
  "../bench/bench_structural_probe"
  "../bench/bench_structural_probe.pdb"
  "CMakeFiles/bench_structural_probe.dir/bench_structural_probe.cc.o"
  "CMakeFiles/bench_structural_probe.dir/bench_structural_probe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structural_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
