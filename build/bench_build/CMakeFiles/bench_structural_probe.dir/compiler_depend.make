# Empty compiler generated dependencies file for bench_structural_probe.
# This may be replaced when dependencies are built.
