file(REMOVE_RECURSE
  "../bench/bench_analogy_embeddings"
  "../bench/bench_analogy_embeddings.pdb"
  "CMakeFiles/bench_analogy_embeddings.dir/bench_analogy_embeddings.cc.o"
  "CMakeFiles/bench_analogy_embeddings.dir/bench_analogy_embeddings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analogy_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
