# Empty compiler generated dependencies file for bench_analogy_embeddings.
# This may be replaced when dependencies are built.
