file(REMOVE_RECURSE
  "../bench/bench_table1_model_sizes"
  "../bench/bench_table1_model_sizes.pdb"
  "CMakeFiles/bench_table1_model_sizes.dir/bench_table1_model_sizes.cc.o"
  "CMakeFiles/bench_table1_model_sizes.dir/bench_table1_model_sizes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_model_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
