file(REMOVE_RECURSE
  "../bench/bench_fig2_scaling_laws"
  "../bench/bench_fig2_scaling_laws.pdb"
  "CMakeFiles/bench_fig2_scaling_laws.dir/bench_fig2_scaling_laws.cc.o"
  "CMakeFiles/bench_fig2_scaling_laws.dir/bench_fig2_scaling_laws.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scaling_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
