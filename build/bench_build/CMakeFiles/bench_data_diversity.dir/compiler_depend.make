# Empty compiler generated dependencies file for bench_data_diversity.
# This may be replaced when dependencies are built.
