file(REMOVE_RECURSE
  "../bench/bench_data_diversity"
  "../bench/bench_data_diversity.pdb"
  "CMakeFiles/bench_data_diversity.dir/bench_data_diversity.cc.o"
  "CMakeFiles/bench_data_diversity.dir/bench_data_diversity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_data_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
