file(REMOVE_RECURSE
  "../bench/bench_inference_cache"
  "../bench/bench_inference_cache.pdb"
  "CMakeFiles/bench_inference_cache.dir/bench_inference_cache.cc.o"
  "CMakeFiles/bench_inference_cache.dir/bench_inference_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
