# Empty dependencies file for bench_inference_cache.
# This may be replaced when dependencies are built.
