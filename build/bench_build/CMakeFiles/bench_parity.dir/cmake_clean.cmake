file(REMOVE_RECURSE
  "../bench/bench_parity"
  "../bench/bench_parity.pdb"
  "CMakeFiles/bench_parity.dir/bench_parity.cc.o"
  "CMakeFiles/bench_parity.dir/bench_parity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
