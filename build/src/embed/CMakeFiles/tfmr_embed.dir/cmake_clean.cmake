file(REMOVE_RECURSE
  "CMakeFiles/tfmr_embed.dir/cooccurrence.cc.o"
  "CMakeFiles/tfmr_embed.dir/cooccurrence.cc.o.d"
  "libtfmr_embed.a"
  "libtfmr_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
