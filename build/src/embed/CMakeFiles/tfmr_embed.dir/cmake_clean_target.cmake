file(REMOVE_RECURSE
  "libtfmr_embed.a"
)
