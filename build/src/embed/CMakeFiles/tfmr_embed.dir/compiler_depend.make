# Empty compiler generated dependencies file for tfmr_embed.
# This may be replaced when dependencies are built.
