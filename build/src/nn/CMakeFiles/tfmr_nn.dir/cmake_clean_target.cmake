file(REMOVE_RECURSE
  "libtfmr_nn.a"
)
