# Empty compiler generated dependencies file for tfmr_nn.
# This may be replaced when dependencies are built.
