
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/tfmr_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/ffn_lm.cc" "src/nn/CMakeFiles/tfmr_nn.dir/ffn_lm.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/ffn_lm.cc.o.d"
  "/root/repo/src/nn/gpt_inference.cc" "src/nn/CMakeFiles/tfmr_nn.dir/gpt_inference.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/gpt_inference.cc.o.d"
  "/root/repo/src/nn/icl_regressor.cc" "src/nn/CMakeFiles/tfmr_nn.dir/icl_regressor.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/icl_regressor.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/tfmr_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/tfmr_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/param_count.cc" "src/nn/CMakeFiles/tfmr_nn.dir/param_count.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/param_count.cc.o.d"
  "/root/repo/src/nn/positional.cc" "src/nn/CMakeFiles/tfmr_nn.dir/positional.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/positional.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/nn/CMakeFiles/tfmr_nn.dir/rnn.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/rnn.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/tfmr_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/tfmr_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tfmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
