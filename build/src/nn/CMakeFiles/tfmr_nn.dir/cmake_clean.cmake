file(REMOVE_RECURSE
  "CMakeFiles/tfmr_nn.dir/attention.cc.o"
  "CMakeFiles/tfmr_nn.dir/attention.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/ffn_lm.cc.o"
  "CMakeFiles/tfmr_nn.dir/ffn_lm.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/gpt_inference.cc.o"
  "CMakeFiles/tfmr_nn.dir/gpt_inference.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/icl_regressor.cc.o"
  "CMakeFiles/tfmr_nn.dir/icl_regressor.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/layers.cc.o"
  "CMakeFiles/tfmr_nn.dir/layers.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/module.cc.o"
  "CMakeFiles/tfmr_nn.dir/module.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/param_count.cc.o"
  "CMakeFiles/tfmr_nn.dir/param_count.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/positional.cc.o"
  "CMakeFiles/tfmr_nn.dir/positional.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/rnn.cc.o"
  "CMakeFiles/tfmr_nn.dir/rnn.cc.o.d"
  "CMakeFiles/tfmr_nn.dir/transformer.cc.o"
  "CMakeFiles/tfmr_nn.dir/transformer.cc.o.d"
  "libtfmr_nn.a"
  "libtfmr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
