file(REMOVE_RECURSE
  "CMakeFiles/tfmr_util.dir/ascii_chart.cc.o"
  "CMakeFiles/tfmr_util.dir/ascii_chart.cc.o.d"
  "CMakeFiles/tfmr_util.dir/linalg.cc.o"
  "CMakeFiles/tfmr_util.dir/linalg.cc.o.d"
  "CMakeFiles/tfmr_util.dir/rng.cc.o"
  "CMakeFiles/tfmr_util.dir/rng.cc.o.d"
  "CMakeFiles/tfmr_util.dir/status.cc.o"
  "CMakeFiles/tfmr_util.dir/status.cc.o.d"
  "CMakeFiles/tfmr_util.dir/table.cc.o"
  "CMakeFiles/tfmr_util.dir/table.cc.o.d"
  "libtfmr_util.a"
  "libtfmr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
