file(REMOVE_RECURSE
  "libtfmr_util.a"
)
