# Empty compiler generated dependencies file for tfmr_util.
# This may be replaced when dependencies are built.
