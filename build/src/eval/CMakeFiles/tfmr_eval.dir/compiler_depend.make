# Empty compiler generated dependencies file for tfmr_eval.
# This may be replaced when dependencies are built.
