
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/lm_eval.cc" "src/eval/CMakeFiles/tfmr_eval.dir/lm_eval.cc.o" "gcc" "src/eval/CMakeFiles/tfmr_eval.dir/lm_eval.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/tfmr_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/tfmr_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/power_law.cc" "src/eval/CMakeFiles/tfmr_eval.dir/power_law.cc.o" "gcc" "src/eval/CMakeFiles/tfmr_eval.dir/power_law.cc.o.d"
  "/root/repo/src/eval/rouge.cc" "src/eval/CMakeFiles/tfmr_eval.dir/rouge.cc.o" "gcc" "src/eval/CMakeFiles/tfmr_eval.dir/rouge.cc.o.d"
  "/root/repo/src/eval/temperature_scaling.cc" "src/eval/CMakeFiles/tfmr_eval.dir/temperature_scaling.cc.o" "gcc" "src/eval/CMakeFiles/tfmr_eval.dir/temperature_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tfmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tfmr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
