file(REMOVE_RECURSE
  "libtfmr_eval.a"
)
