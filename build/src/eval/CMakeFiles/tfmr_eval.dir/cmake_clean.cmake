file(REMOVE_RECURSE
  "CMakeFiles/tfmr_eval.dir/lm_eval.cc.o"
  "CMakeFiles/tfmr_eval.dir/lm_eval.cc.o.d"
  "CMakeFiles/tfmr_eval.dir/metrics.cc.o"
  "CMakeFiles/tfmr_eval.dir/metrics.cc.o.d"
  "CMakeFiles/tfmr_eval.dir/power_law.cc.o"
  "CMakeFiles/tfmr_eval.dir/power_law.cc.o.d"
  "CMakeFiles/tfmr_eval.dir/rouge.cc.o"
  "CMakeFiles/tfmr_eval.dir/rouge.cc.o.d"
  "CMakeFiles/tfmr_eval.dir/temperature_scaling.cc.o"
  "CMakeFiles/tfmr_eval.dir/temperature_scaling.cc.o.d"
  "libtfmr_eval.a"
  "libtfmr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
