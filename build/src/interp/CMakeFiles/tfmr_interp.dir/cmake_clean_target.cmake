file(REMOVE_RECURSE
  "libtfmr_interp.a"
)
