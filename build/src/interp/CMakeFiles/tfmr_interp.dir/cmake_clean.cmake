file(REMOVE_RECURSE
  "CMakeFiles/tfmr_interp.dir/probe.cc.o"
  "CMakeFiles/tfmr_interp.dir/probe.cc.o.d"
  "CMakeFiles/tfmr_interp.dir/structural_probe.cc.o"
  "CMakeFiles/tfmr_interp.dir/structural_probe.cc.o.d"
  "libtfmr_interp.a"
  "libtfmr_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
