# Empty dependencies file for tfmr_interp.
# This may be replaced when dependencies are built.
