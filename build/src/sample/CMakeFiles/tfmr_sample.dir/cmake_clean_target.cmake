file(REMOVE_RECURSE
  "libtfmr_sample.a"
)
