
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sample/sampler.cc" "src/sample/CMakeFiles/tfmr_sample.dir/sampler.cc.o" "gcc" "src/sample/CMakeFiles/tfmr_sample.dir/sampler.cc.o.d"
  "/root/repo/src/sample/search.cc" "src/sample/CMakeFiles/tfmr_sample.dir/search.cc.o" "gcc" "src/sample/CMakeFiles/tfmr_sample.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tfmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
