# Empty dependencies file for tfmr_sample.
# This may be replaced when dependencies are built.
