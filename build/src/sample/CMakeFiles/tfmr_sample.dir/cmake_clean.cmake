file(REMOVE_RECURSE
  "CMakeFiles/tfmr_sample.dir/sampler.cc.o"
  "CMakeFiles/tfmr_sample.dir/sampler.cc.o.d"
  "CMakeFiles/tfmr_sample.dir/search.cc.o"
  "CMakeFiles/tfmr_sample.dir/search.cc.o.d"
  "libtfmr_sample.a"
  "libtfmr_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
