file(REMOVE_RECURSE
  "CMakeFiles/tfmr_text.dir/bpe.cc.o"
  "CMakeFiles/tfmr_text.dir/bpe.cc.o.d"
  "CMakeFiles/tfmr_text.dir/dataset.cc.o"
  "CMakeFiles/tfmr_text.dir/dataset.cc.o.d"
  "CMakeFiles/tfmr_text.dir/persistence.cc.o"
  "CMakeFiles/tfmr_text.dir/persistence.cc.o.d"
  "CMakeFiles/tfmr_text.dir/tokenizer.cc.o"
  "CMakeFiles/tfmr_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/tfmr_text.dir/vocab.cc.o"
  "CMakeFiles/tfmr_text.dir/vocab.cc.o.d"
  "libtfmr_text.a"
  "libtfmr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
