file(REMOVE_RECURSE
  "libtfmr_text.a"
)
