# Empty dependencies file for tfmr_text.
# This may be replaced when dependencies are built.
