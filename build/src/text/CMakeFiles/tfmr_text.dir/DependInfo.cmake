
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/bpe.cc" "src/text/CMakeFiles/tfmr_text.dir/bpe.cc.o" "gcc" "src/text/CMakeFiles/tfmr_text.dir/bpe.cc.o.d"
  "/root/repo/src/text/dataset.cc" "src/text/CMakeFiles/tfmr_text.dir/dataset.cc.o" "gcc" "src/text/CMakeFiles/tfmr_text.dir/dataset.cc.o.d"
  "/root/repo/src/text/persistence.cc" "src/text/CMakeFiles/tfmr_text.dir/persistence.cc.o" "gcc" "src/text/CMakeFiles/tfmr_text.dir/persistence.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/tfmr_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/tfmr_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/tfmr_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/tfmr_text.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
