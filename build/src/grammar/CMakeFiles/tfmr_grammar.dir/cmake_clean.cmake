file(REMOVE_RECURSE
  "CMakeFiles/tfmr_grammar.dir/attributes.cc.o"
  "CMakeFiles/tfmr_grammar.dir/attributes.cc.o.d"
  "CMakeFiles/tfmr_grammar.dir/cfg.cc.o"
  "CMakeFiles/tfmr_grammar.dir/cfg.cc.o.d"
  "CMakeFiles/tfmr_grammar.dir/cnf.cc.o"
  "CMakeFiles/tfmr_grammar.dir/cnf.cc.o.d"
  "CMakeFiles/tfmr_grammar.dir/earley.cc.o"
  "CMakeFiles/tfmr_grammar.dir/earley.cc.o.d"
  "libtfmr_grammar.a"
  "libtfmr_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
