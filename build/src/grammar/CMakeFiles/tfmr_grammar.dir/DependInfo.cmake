
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/attributes.cc" "src/grammar/CMakeFiles/tfmr_grammar.dir/attributes.cc.o" "gcc" "src/grammar/CMakeFiles/tfmr_grammar.dir/attributes.cc.o.d"
  "/root/repo/src/grammar/cfg.cc" "src/grammar/CMakeFiles/tfmr_grammar.dir/cfg.cc.o" "gcc" "src/grammar/CMakeFiles/tfmr_grammar.dir/cfg.cc.o.d"
  "/root/repo/src/grammar/cnf.cc" "src/grammar/CMakeFiles/tfmr_grammar.dir/cnf.cc.o" "gcc" "src/grammar/CMakeFiles/tfmr_grammar.dir/cnf.cc.o.d"
  "/root/repo/src/grammar/earley.cc" "src/grammar/CMakeFiles/tfmr_grammar.dir/earley.cc.o" "gcc" "src/grammar/CMakeFiles/tfmr_grammar.dir/earley.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tfmr_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
