# Empty compiler generated dependencies file for tfmr_grammar.
# This may be replaced when dependencies are built.
