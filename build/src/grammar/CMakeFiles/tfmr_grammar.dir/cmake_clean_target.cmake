file(REMOVE_RECURSE
  "libtfmr_grammar.a"
)
