file(REMOVE_RECURSE
  "CMakeFiles/tfmr_ngram.dir/ngram.cc.o"
  "CMakeFiles/tfmr_ngram.dir/ngram.cc.o.d"
  "libtfmr_ngram.a"
  "libtfmr_ngram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_ngram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
