# Empty dependencies file for tfmr_ngram.
# This may be replaced when dependencies are built.
