file(REMOVE_RECURSE
  "libtfmr_ngram.a"
)
