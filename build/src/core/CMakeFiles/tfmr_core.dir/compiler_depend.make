# Empty compiler generated dependencies file for tfmr_core.
# This may be replaced when dependencies are built.
