file(REMOVE_RECURSE
  "libtfmr_core.a"
)
