file(REMOVE_RECURSE
  "CMakeFiles/tfmr_core.dir/graph.cc.o"
  "CMakeFiles/tfmr_core.dir/graph.cc.o.d"
  "CMakeFiles/tfmr_core.dir/ops.cc.o"
  "CMakeFiles/tfmr_core.dir/ops.cc.o.d"
  "CMakeFiles/tfmr_core.dir/tensor.cc.o"
  "CMakeFiles/tfmr_core.dir/tensor.cc.o.d"
  "libtfmr_core.a"
  "libtfmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
