
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/tfmr_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/tfmr_core.dir/graph.cc.o.d"
  "/root/repo/src/core/ops.cc" "src/core/CMakeFiles/tfmr_core.dir/ops.cc.o" "gcc" "src/core/CMakeFiles/tfmr_core.dir/ops.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/core/CMakeFiles/tfmr_core.dir/tensor.cc.o" "gcc" "src/core/CMakeFiles/tfmr_core.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
