# Empty dependencies file for tfmr_othello.
# This may be replaced when dependencies are built.
