file(REMOVE_RECURSE
  "CMakeFiles/tfmr_othello.dir/othello.cc.o"
  "CMakeFiles/tfmr_othello.dir/othello.cc.o.d"
  "libtfmr_othello.a"
  "libtfmr_othello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_othello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
