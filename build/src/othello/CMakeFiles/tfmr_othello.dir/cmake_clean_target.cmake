file(REMOVE_RECURSE
  "libtfmr_othello.a"
)
