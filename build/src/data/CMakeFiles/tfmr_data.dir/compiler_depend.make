# Empty compiler generated dependencies file for tfmr_data.
# This may be replaced when dependencies are built.
