file(REMOVE_RECURSE
  "CMakeFiles/tfmr_data.dir/analogy.cc.o"
  "CMakeFiles/tfmr_data.dir/analogy.cc.o.d"
  "CMakeFiles/tfmr_data.dir/fewshot.cc.o"
  "CMakeFiles/tfmr_data.dir/fewshot.cc.o.d"
  "CMakeFiles/tfmr_data.dir/icl_regression.cc.o"
  "CMakeFiles/tfmr_data.dir/icl_regression.cc.o.d"
  "CMakeFiles/tfmr_data.dir/induction.cc.o"
  "CMakeFiles/tfmr_data.dir/induction.cc.o.d"
  "CMakeFiles/tfmr_data.dir/modular.cc.o"
  "CMakeFiles/tfmr_data.dir/modular.cc.o.d"
  "CMakeFiles/tfmr_data.dir/parity.cc.o"
  "CMakeFiles/tfmr_data.dir/parity.cc.o.d"
  "CMakeFiles/tfmr_data.dir/pcfg_corpus.cc.o"
  "CMakeFiles/tfmr_data.dir/pcfg_corpus.cc.o.d"
  "CMakeFiles/tfmr_data.dir/word_problems.cc.o"
  "CMakeFiles/tfmr_data.dir/word_problems.cc.o.d"
  "libtfmr_data.a"
  "libtfmr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
