file(REMOVE_RECURSE
  "libtfmr_data.a"
)
