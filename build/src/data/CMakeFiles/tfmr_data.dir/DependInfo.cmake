
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/analogy.cc" "src/data/CMakeFiles/tfmr_data.dir/analogy.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/analogy.cc.o.d"
  "/root/repo/src/data/fewshot.cc" "src/data/CMakeFiles/tfmr_data.dir/fewshot.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/fewshot.cc.o.d"
  "/root/repo/src/data/icl_regression.cc" "src/data/CMakeFiles/tfmr_data.dir/icl_regression.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/icl_regression.cc.o.d"
  "/root/repo/src/data/induction.cc" "src/data/CMakeFiles/tfmr_data.dir/induction.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/induction.cc.o.d"
  "/root/repo/src/data/modular.cc" "src/data/CMakeFiles/tfmr_data.dir/modular.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/modular.cc.o.d"
  "/root/repo/src/data/parity.cc" "src/data/CMakeFiles/tfmr_data.dir/parity.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/parity.cc.o.d"
  "/root/repo/src/data/pcfg_corpus.cc" "src/data/CMakeFiles/tfmr_data.dir/pcfg_corpus.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/pcfg_corpus.cc.o.d"
  "/root/repo/src/data/word_problems.cc" "src/data/CMakeFiles/tfmr_data.dir/word_problems.cc.o" "gcc" "src/data/CMakeFiles/tfmr_data.dir/word_problems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tfmr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/tfmr_grammar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
