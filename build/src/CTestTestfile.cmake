# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("core")
subdirs("nn")
subdirs("train")
subdirs("text")
subdirs("ngram")
subdirs("embed")
subdirs("grammar")
subdirs("data")
subdirs("othello")
subdirs("sample")
subdirs("eval")
subdirs("interp")
