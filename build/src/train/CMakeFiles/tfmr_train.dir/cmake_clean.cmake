file(REMOVE_RECURSE
  "CMakeFiles/tfmr_train.dir/checkpoint.cc.o"
  "CMakeFiles/tfmr_train.dir/checkpoint.cc.o.d"
  "CMakeFiles/tfmr_train.dir/optimizer.cc.o"
  "CMakeFiles/tfmr_train.dir/optimizer.cc.o.d"
  "CMakeFiles/tfmr_train.dir/schedule.cc.o"
  "CMakeFiles/tfmr_train.dir/schedule.cc.o.d"
  "CMakeFiles/tfmr_train.dir/trainer.cc.o"
  "CMakeFiles/tfmr_train.dir/trainer.cc.o.d"
  "libtfmr_train.a"
  "libtfmr_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfmr_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
