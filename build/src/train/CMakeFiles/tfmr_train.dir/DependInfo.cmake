
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/checkpoint.cc" "src/train/CMakeFiles/tfmr_train.dir/checkpoint.cc.o" "gcc" "src/train/CMakeFiles/tfmr_train.dir/checkpoint.cc.o.d"
  "/root/repo/src/train/optimizer.cc" "src/train/CMakeFiles/tfmr_train.dir/optimizer.cc.o" "gcc" "src/train/CMakeFiles/tfmr_train.dir/optimizer.cc.o.d"
  "/root/repo/src/train/schedule.cc" "src/train/CMakeFiles/tfmr_train.dir/schedule.cc.o" "gcc" "src/train/CMakeFiles/tfmr_train.dir/schedule.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/tfmr_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/tfmr_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tfmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
