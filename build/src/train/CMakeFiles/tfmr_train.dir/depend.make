# Empty dependencies file for tfmr_train.
# This may be replaced when dependencies are built.
