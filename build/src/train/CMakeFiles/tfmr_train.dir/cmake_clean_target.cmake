file(REMOVE_RECURSE
  "libtfmr_train.a"
)
