# Empty compiler generated dependencies file for attributes_test.
# This may be replaced when dependencies are built.
