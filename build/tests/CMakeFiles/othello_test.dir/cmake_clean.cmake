file(REMOVE_RECURSE
  "CMakeFiles/othello_test.dir/othello_test.cc.o"
  "CMakeFiles/othello_test.dir/othello_test.cc.o.d"
  "othello_test"
  "othello_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/othello_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
