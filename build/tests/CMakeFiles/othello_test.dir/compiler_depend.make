# Empty compiler generated dependencies file for othello_test.
# This may be replaced when dependencies are built.
