# Empty compiler generated dependencies file for core_ops_test.
# This may be replaced when dependencies are built.
