file(REMOVE_RECURSE
  "CMakeFiles/rouge_test.dir/rouge_test.cc.o"
  "CMakeFiles/rouge_test.dir/rouge_test.cc.o.d"
  "rouge_test"
  "rouge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rouge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
