# Empty dependencies file for rouge_test.
# This may be replaced when dependencies are built.
