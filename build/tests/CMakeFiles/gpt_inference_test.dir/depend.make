# Empty dependencies file for gpt_inference_test.
# This may be replaced when dependencies are built.
