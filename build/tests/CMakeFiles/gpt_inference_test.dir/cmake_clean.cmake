file(REMOVE_RECURSE
  "CMakeFiles/gpt_inference_test.dir/gpt_inference_test.cc.o"
  "CMakeFiles/gpt_inference_test.dir/gpt_inference_test.cc.o.d"
  "gpt_inference_test"
  "gpt_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
