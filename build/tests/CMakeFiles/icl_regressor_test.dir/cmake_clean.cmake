file(REMOVE_RECURSE
  "CMakeFiles/icl_regressor_test.dir/icl_regressor_test.cc.o"
  "CMakeFiles/icl_regressor_test.dir/icl_regressor_test.cc.o.d"
  "icl_regressor_test"
  "icl_regressor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icl_regressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
