# Empty dependencies file for icl_regressor_test.
# This may be replaced when dependencies are built.
