# Empty dependencies file for temperature_scaling_test.
# This may be replaced when dependencies are built.
