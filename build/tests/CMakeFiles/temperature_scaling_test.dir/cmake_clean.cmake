file(REMOVE_RECURSE
  "CMakeFiles/temperature_scaling_test.dir/temperature_scaling_test.cc.o"
  "CMakeFiles/temperature_scaling_test.dir/temperature_scaling_test.cc.o.d"
  "temperature_scaling_test"
  "temperature_scaling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
