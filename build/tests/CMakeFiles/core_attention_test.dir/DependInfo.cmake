
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_attention_test.cc" "tests/CMakeFiles/core_attention_test.dir/core_attention_test.cc.o" "gcc" "tests/CMakeFiles/core_attention_test.dir/core_attention_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tfmr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tfmr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/tfmr_train.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tfmr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ngram/CMakeFiles/tfmr_ngram.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/tfmr_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/tfmr_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/tfmr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/othello/CMakeFiles/tfmr_othello.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/tfmr_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/tfmr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/tfmr_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
