file(REMOVE_RECURSE
  "CMakeFiles/icl_regression.dir/icl_regression.cc.o"
  "CMakeFiles/icl_regression.dir/icl_regression.cc.o.d"
  "icl_regression"
  "icl_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icl_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
