# Empty compiler generated dependencies file for icl_regression.
# This may be replaced when dependencies are built.
