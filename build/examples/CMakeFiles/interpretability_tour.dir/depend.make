# Empty dependencies file for interpretability_tour.
# This may be replaced when dependencies are built.
