file(REMOVE_RECURSE
  "CMakeFiles/interpretability_tour.dir/interpretability_tour.cc.o"
  "CMakeFiles/interpretability_tour.dir/interpretability_tour.cc.o.d"
  "interpretability_tour"
  "interpretability_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpretability_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
