# Empty dependencies file for othello_gpt.
# This may be replaced when dependencies are built.
