file(REMOVE_RECURSE
  "CMakeFiles/othello_gpt.dir/othello_gpt.cc.o"
  "CMakeFiles/othello_gpt.dir/othello_gpt.cc.o.d"
  "othello_gpt"
  "othello_gpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/othello_gpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
