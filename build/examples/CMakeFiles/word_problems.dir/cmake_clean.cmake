file(REMOVE_RECURSE
  "CMakeFiles/word_problems.dir/word_problems.cc.o"
  "CMakeFiles/word_problems.dir/word_problems.cc.o.d"
  "word_problems"
  "word_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
