# Empty compiler generated dependencies file for word_problems.
# This may be replaced when dependencies are built.
