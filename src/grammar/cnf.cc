#include "grammar/cnf.h"

#include <cmath>
#include <functional>
#include <limits>
#include <map>

namespace llm::grammar {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Intermediate rule form during conversion: rhs of RhsSymbols, any length.
struct WorkRule {
  int lhs;
  std::vector<RhsSymbol> rhs;
  double prob;
};

/// Solves (I - U) X = I by Gauss-Jordan; returns false if singular.
bool InvertIMinusU(std::vector<std::vector<double>> u,
                   std::vector<std::vector<double>>* inverse) {
  const size_t n = u.size();
  std::vector<std::vector<double>> a(n, std::vector<double>(2 * n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a[i][j] = (i == j ? 1.0 : 0.0) - u[i][j];
    }
    a[i][n + i] = 1.0;
  }
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    const double inv = 1.0 / a[col][col];
    for (size_t j = 0; j < 2 * n; ++j) a[col][j] *= inv;
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (size_t j = 0; j < 2 * n; ++j) a[r][j] -= f * a[col][j];
    }
  }
  inverse->assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) (*inverse)[i][j] = a[i][n + j];
  }
  return true;
}

}  // namespace

util::Status CnfGrammar::Validate(double tol) const {
  std::vector<double> mass(static_cast<size_t>(num_nonterminals()), 0.0);
  std::vector<bool> has_rule(static_cast<size_t>(num_nonterminals()), false);
  for (const auto& r : binary) {
    mass[static_cast<size_t>(r.lhs)] += r.prob;
    has_rule[static_cast<size_t>(r.lhs)] = true;
  }
  for (const auto& r : lexical) {
    mass[static_cast<size_t>(r.lhs)] += r.prob;
    has_rule[static_cast<size_t>(r.lhs)] = true;
  }
  for (int a = 0; a < num_nonterminals(); ++a) {
    if (!has_rule[static_cast<size_t>(a)]) continue;
    if (std::fabs(mass[static_cast<size_t>(a)] - 1.0) > tol) {
      return util::Status::Internal(
          "probability mass for " +
          nonterminal_names[static_cast<size_t>(a)] + " is " +
          std::to_string(mass[static_cast<size_t>(a)]));
    }
  }
  return util::Status::OK();
}

util::StatusOr<CnfGrammar> ToCnf(const Grammar& grammar) {
  if (!grammar.finalized()) {
    return util::Status::FailedPrecondition("grammar not finalized");
  }

  CnfGrammar out;
  // Copy nonterminal/terminal names; fresh nonterminals appended.
  for (int i = 0; i < grammar.num_nonterminals(); ++i) {
    out.nonterminal_names.push_back(grammar.NonterminalName(i));
  }
  for (int i = 0; i < grammar.num_terminals(); ++i) {
    out.terminal_names.push_back(grammar.TerminalName(i));
  }
  auto fresh_nt = [&](const std::string& name) {
    out.nonterminal_names.push_back(name);
    return static_cast<int>(out.nonterminal_names.size()) - 1;
  };

  // START: wrap so the start symbol never appears on an rhs.
  const int start0 = fresh_nt("_START");
  out.start = start0;
  std::vector<WorkRule> work;
  work.push_back({start0, {{false, grammar.start()}}, 1.0});
  for (const auto& r : grammar.rules()) {
    work.push_back({r.lhs, r.rhs, r.prob});
  }

  // TERM: lift terminals out of rules with rhs length >= 2.
  std::map<int, int> lifted;  // terminal id -> preterminal nt
  for (auto& r : work) {
    if (r.rhs.size() < 2) continue;
    for (auto& sym : r.rhs) {
      if (!sym.is_terminal) continue;
      auto it = lifted.find(sym.id);
      int nt;
      if (it == lifted.end()) {
        nt = fresh_nt("_T_" + grammar.TerminalName(sym.id));
        lifted.emplace(sym.id, nt);
      } else {
        nt = it->second;
      }
      sym = {false, nt};
    }
  }
  std::vector<WorkRule> lifted_rules;
  for (const auto& [term, nt] : lifted) {
    lifted_rules.push_back({nt, {{true, term}}, 1.0});
  }
  work.insert(work.end(), lifted_rules.begin(), lifted_rules.end());

  // BIN: binarize rhs length >= 3.
  std::vector<WorkRule> binarized;
  int aux_counter = 0;
  for (const auto& r : work) {
    if (r.rhs.size() <= 2) {
      binarized.push_back(r);
      continue;
    }
    int current_lhs = r.lhs;
    double current_prob = r.prob;
    for (size_t i = 0; i + 2 < r.rhs.size(); ++i) {
      const int aux = fresh_nt("_BIN" + std::to_string(aux_counter++));
      binarized.push_back(
          {current_lhs, {r.rhs[i], {false, aux}}, current_prob});
      current_lhs = aux;
      current_prob = 1.0;
    }
    binarized.push_back({current_lhs,
                         {r.rhs[r.rhs.size() - 2], r.rhs.back()},
                         current_prob});
  }

  // UNIT: eliminate A -> B (single-nonterminal) rules via closure.
  const size_t n_nt = out.nonterminal_names.size();
  std::vector<std::vector<double>> unit(n_nt, std::vector<double>(n_nt, 0.0));
  std::vector<WorkRule> non_unit;
  for (const auto& r : binarized) {
    if (r.rhs.size() == 1 && !r.rhs[0].is_terminal) {
      unit[static_cast<size_t>(r.lhs)][static_cast<size_t>(r.rhs[0].id)] +=
          r.prob;
    } else {
      non_unit.push_back(r);
    }
  }
  std::vector<std::vector<double>> closure;
  if (!InvertIMinusU(unit, &closure)) {
    return util::Status::InvalidArgument(
        "unit-rule probability mass is not sub-stochastic (I - U singular)");
  }

  // Final rules: for each A, each non-unit rule B -> gamma, prob
  // closure[A][B] * P(B -> gamma).
  std::map<std::pair<int, std::pair<int, int>>, double> bin_acc;
  std::map<std::pair<int, int>, double> lex_acc;
  for (size_t a = 0; a < n_nt; ++a) {
    for (const auto& r : non_unit) {
      const double c = closure[a][static_cast<size_t>(r.lhs)];
      if (c < 1e-15) continue;
      const double p = c * r.prob;
      if (r.rhs.size() == 2) {
        bin_acc[{static_cast<int>(a), {r.rhs[0].id, r.rhs[1].id}}] += p;
      } else {
        LLM_CHECK(r.rhs[0].is_terminal);
        lex_acc[{static_cast<int>(a), r.rhs[0].id}] += p;
      }
    }
  }
  for (const auto& [key, p] : bin_acc) {
    out.binary.push_back({key.first, key.second.first, key.second.second, p});
  }
  for (const auto& [key, p] : lex_acc) {
    out.lexical.push_back({key.first, key.second, p});
  }
  LLM_RETURN_IF_ERROR(out.Validate(1e-6));
  return out;
}

namespace {

/// Inside table: beta[(i * n + j) * A]; spans are [i, j] inclusive.
struct InsideTable {
  int n = 0;
  int num_nt = 0;
  std::vector<double> beta;

  double& at(int i, int j, int a) {
    return beta[static_cast<size_t>(((i * n) + j) * num_nt + a)];
  }
  double get(int i, int j, int a) const {
    return beta[static_cast<size_t>(((i * n) + j) * num_nt + a)];
  }
};

InsideTable ComputeInside(const CnfGrammar& g,
                          const std::vector<int>& terminals) {
  InsideTable t;
  t.n = static_cast<int>(terminals.size());
  t.num_nt = g.num_nonterminals();
  t.beta.assign(static_cast<size_t>(t.n * t.n * t.num_nt), 0.0);
  for (int i = 0; i < t.n; ++i) {
    for (const auto& r : g.lexical) {
      if (r.terminal == terminals[static_cast<size_t>(i)]) {
        t.at(i, i, r.lhs) += r.prob;
      }
    }
  }
  for (int span = 2; span <= t.n; ++span) {
    for (int i = 0; i + span <= t.n; ++i) {
      const int j = i + span - 1;
      for (const auto& r : g.binary) {
        double total = 0.0;
        for (int k = i; k < j; ++k) {
          total += t.get(i, k, r.left) * t.get(k + 1, j, r.right);
        }
        if (total > 0.0) t.at(i, j, r.lhs) += r.prob * total;
      }
    }
  }
  return t;
}

}  // namespace

double InsideLogProb(const CnfGrammar& g, const std::vector<int>& terminals) {
  LLM_CHECK(!terminals.empty());
  InsideTable t = ComputeInside(g, terminals);
  const double p = t.get(0, t.n - 1, g.start);
  return p > 0.0 ? std::log(p) : kNegInf;
}

util::StatusOr<double> CorpusCrossEntropy(
    const CnfGrammar& g, const std::vector<std::vector<int>>& corpus) {
  double total_logp = 0.0;
  int64_t total_tokens = 0;
  for (const auto& sentence : corpus) {
    const double lp = InsideLogProb(g, sentence);
    if (lp == kNegInf) {
      return util::Status::InvalidArgument("underivable sentence in corpus");
    }
    total_logp += lp;
    total_tokens += static_cast<int64_t>(sentence.size());
  }
  return -total_logp / static_cast<double>(total_tokens);
}

util::StatusOr<std::string> ViterbiParse(const CnfGrammar& g,
                                         const std::vector<int>& terminals) {
  const int n = static_cast<int>(terminals.size());
  const int num_nt = g.num_nonterminals();
  if (n == 0) return util::Status::InvalidArgument("empty sentence");

  struct Back {
    int rule = -1;   // index into binary; -1 for lexical
    int split = -1;  // k
  };
  std::vector<double> best(static_cast<size_t>(n * n * num_nt), 0.0);
  std::vector<Back> back(static_cast<size_t>(n * n * num_nt));
  auto idx = [&](int i, int j, int a) {
    return static_cast<size_t>(((i * n) + j) * num_nt + a);
  };

  for (int i = 0; i < n; ++i) {
    for (const auto& r : g.lexical) {
      if (r.terminal == terminals[static_cast<size_t>(i)] &&
          r.prob > best[idx(i, i, r.lhs)]) {
        best[idx(i, i, r.lhs)] = r.prob;
        back[idx(i, i, r.lhs)] = {-1, -1};
      }
    }
  }
  for (int span = 2; span <= n; ++span) {
    for (int i = 0; i + span <= n; ++i) {
      const int j = i + span - 1;
      for (size_t ri = 0; ri < g.binary.size(); ++ri) {
        const auto& r = g.binary[ri];
        for (int k = i; k < j; ++k) {
          const double p = r.prob * best[idx(i, k, r.left)] *
                           best[idx(k + 1, j, r.right)];
          if (p > best[idx(i, j, r.lhs)]) {
            best[idx(i, j, r.lhs)] = p;
            back[idx(i, j, r.lhs)] = {static_cast<int>(ri), k};
          }
        }
      }
    }
  }
  if (best[idx(0, n - 1, g.start)] <= 0.0) {
    return util::Status::NotFound("sentence not derivable");
  }

  std::function<std::string(int, int, int)> render = [&](int a, int i,
                                                         int j) {
    const Back& b = back[idx(i, j, a)];
    std::string s = "(" + g.nonterminal_names[static_cast<size_t>(a)] + " ";
    if (b.rule < 0) {
      s += g.terminal_names[static_cast<size_t>(
          terminals[static_cast<size_t>(i)])];
    } else {
      const auto& r = g.binary[static_cast<size_t>(b.rule)];
      s += render(r.left, i, b.split);
      s += ' ';
      s += render(r.right, b.split + 1, j);
    }
    s += ')';
    return s;
  };
  return render(g.start, 0, n - 1);
}

util::StatusOr<EmStats> FitInsideOutside(
    CnfGrammar* g, const std::vector<std::vector<int>>& corpus,
    const EmOptions& options) {
  LLM_CHECK(g != nullptr);
  LLM_CHECK(!corpus.empty());
  EmStats stats;
  const int num_nt = g->num_nonterminals();

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<double> bin_counts(g->binary.size(), 0.0);
    std::vector<double> lex_counts(g->lexical.size(), 0.0);
    double total_ll = 0.0;

    for (const auto& sentence : corpus) {
      const int n = static_cast<int>(sentence.size());
      InsideTable in = ComputeInside(*g, sentence);
      const double sent_p = in.get(0, n - 1, g->start);
      if (sent_p <= 0.0) {
        return util::Status::InvalidArgument(
            "underivable sentence during EM");
      }
      total_ll += std::log(sent_p);

      // Outside pass.
      std::vector<double> alpha(
          static_cast<size_t>(n * n * num_nt), 0.0);
      auto aidx = [&](int i, int j, int a) {
        return static_cast<size_t>(((i * n) + j) * num_nt + a);
      };
      alpha[aidx(0, n - 1, g->start)] = 1.0;
      for (int span = n; span >= 2; --span) {
        for (int i = 0; i + span <= n; ++i) {
          const int j = i + span - 1;
          for (size_t ri = 0; ri < g->binary.size(); ++ri) {
            const auto& r = g->binary[ri];
            const double a_out = alpha[aidx(i, j, r.lhs)];
            if (a_out == 0.0) continue;
            for (int k = i; k < j; ++k) {
              const double bl = in.get(i, k, r.left);
              const double br = in.get(k + 1, j, r.right);
              if (bl == 0.0 || br == 0.0) continue;
              alpha[aidx(i, k, r.left)] += r.prob * a_out * br;
              alpha[aidx(k + 1, j, r.right)] += r.prob * a_out * bl;
              bin_counts[ri] += r.prob * a_out * bl * br / sent_p;
            }
          }
        }
      }
      for (int i = 0; i < n; ++i) {
        for (size_t ri = 0; ri < g->lexical.size(); ++ri) {
          const auto& r = g->lexical[ri];
          if (r.terminal != sentence[static_cast<size_t>(i)]) continue;
          lex_counts[ri] += alpha[aidx(i, i, r.lhs)] * r.prob / sent_p;
        }
      }
    }
    stats.log_likelihood.push_back(total_ll);

    // M-step: normalize per lhs.
    std::vector<double> lhs_mass(static_cast<size_t>(num_nt), 0.0);
    for (size_t ri = 0; ri < g->binary.size(); ++ri) {
      lhs_mass[static_cast<size_t>(g->binary[ri].lhs)] += bin_counts[ri];
    }
    for (size_t ri = 0; ri < g->lexical.size(); ++ri) {
      lhs_mass[static_cast<size_t>(g->lexical[ri].lhs)] += lex_counts[ri];
    }
    for (size_t ri = 0; ri < g->binary.size(); ++ri) {
      const double m = lhs_mass[static_cast<size_t>(g->binary[ri].lhs)];
      if (m > 0.0) g->binary[ri].prob = bin_counts[ri] / m;
    }
    for (size_t ri = 0; ri < g->lexical.size(); ++ri) {
      const double m = lhs_mass[static_cast<size_t>(g->lexical[ri].lhs)];
      if (m > 0.0) g->lexical[ri].prob = lex_counts[ri] / m;
    }
  }
  return stats;
}

}  // namespace llm::grammar
