#include "grammar/attributes.h"

#include <cctype>

namespace llm::grammar {

namespace {

bool IsNumberLiteral(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

util::StatusOr<double> EvalNode(
    const Grammar& grammar, const Grammar::TreeNode& node,
    const std::map<std::string, double>& bindings) {
  if (node.is_terminal) {
    const std::string& name = grammar.TerminalName(node.id);
    if (IsNumberLiteral(name)) return std::stod(name);
    auto it = bindings.find(name);
    if (it == bindings.end()) {
      return util::Status::InvalidArgument("unbound variable: " + name);
    }
    return it->second;
  }

  const auto& children = node.children;
  if (children.size() == 1) {
    // Unit rule: EXPR -> TERM, TERM -> VALUE, VALUE -> literal.
    return EvalNode(grammar, *children[0], bindings);
  }
  if (children.size() == 3) {
    // Either "( EXPR )" or "lhs op rhs".
    const Grammar::TreeNode& mid = *children[1];
    if (children[0]->is_terminal &&
        grammar.TerminalName(children[0]->id) == "(") {
      return EvalNode(grammar, mid, bindings);
    }
    if (mid.is_terminal) {
      const std::string& op = grammar.TerminalName(mid.id);
      LLM_ASSIGN_OR_RETURN(double lhs,
                           EvalNode(grammar, *children[0], bindings));
      LLM_ASSIGN_OR_RETURN(double rhs,
                           EvalNode(grammar, *children[2], bindings));
      if (op == "+") return lhs + rhs;
      if (op == "*") return lhs * rhs;
      if (op == "-") return lhs - rhs;
      return util::Status::InvalidArgument("unknown operator: " + op);
    }
  }
  return util::Status::InvalidArgument(
      "tree shape does not match arithmetic rules");
}

}  // namespace

util::StatusOr<double> EvaluateArithmetic(
    const Grammar& grammar, const Grammar::TreeNode& tree,
    const std::map<std::string, double>& bindings) {
  return EvalNode(grammar, tree, bindings);
}

}  // namespace llm::grammar
