// Earley parser: recognition and parse-tree recovery for arbitrary CFGs
// (no normal-form conversion), used for the paper's Appendix A exercise
// ("work out the parse tree for y + 1 * x and check that multiplication
// takes precedence over addition").
#ifndef TFMR_GRAMMAR_EARLEY_H_
#define TFMR_GRAMMAR_EARLEY_H_

#include <memory>
#include <vector>

#include "grammar/cfg.h"

namespace llm::grammar {

class EarleyParser {
 public:
  /// `grammar` must be finalized and outlive the parser.
  explicit EarleyParser(const Grammar* grammar);

  /// Whether the terminal-id sequence is derivable from the start symbol.
  bool Recognize(const std::vector<int>& terminals) const;

  /// A parse tree for the sentence (an arbitrary one if ambiguous), or
  /// NotFound if the sentence is not in the language.
  util::StatusOr<std::unique_ptr<Grammar::TreeNode>> Parse(
      const std::vector<int>& terminals) const;

  /// Convenience: tokenize a space-separated sentence into terminal ids.
  /// InvalidArgument if a token is not a terminal of the grammar.
  util::StatusOr<std::vector<int>> TerminalIds(
      const std::string& sentence) const;

 private:
  /// completed[a][i*(n+1)+j] == true iff nonterminal a derives span [i, j).
  using CompletedSpans = std::vector<std::vector<char>>;

  /// Runs the Earley chart computation; fills `completed` if non-null.
  bool Run(const std::vector<int>& terminals,
           CompletedSpans* completed) const;

  bool BuildChildren(const std::vector<int>& terminals,
                     const CompletedSpans& completed, const Rule& rule,
                     size_t pos, int k, int j,
                     std::vector<std::unique_ptr<Grammar::TreeNode>>*
                         children) const;

  std::unique_ptr<Grammar::TreeNode> BuildTree(
      const std::vector<int>& terminals, const CompletedSpans& completed,
      int nonterminal, int i, int j) const;

  const Grammar* grammar_;
};

}  // namespace llm::grammar

#endif  // TFMR_GRAMMAR_EARLEY_H_
