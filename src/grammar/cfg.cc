#include "grammar/cfg.h"

#include <cmath>
#include <functional>
#include <set>

namespace llm::grammar {

util::Status Grammar::AddRule(const std::string& lhs,
                              const std::vector<std::string>& rhs,
                              double weight) {
  if (finalized_) {
    return util::Status::FailedPrecondition("grammar already finalized");
  }
  if (lhs.empty()) return util::Status::InvalidArgument("empty lhs");
  if (rhs.empty()) {
    return util::Status::InvalidArgument("empty rhs (epsilon rules "
                                         "unsupported): " + lhs);
  }
  if (weight <= 0.0) {
    return util::Status::InvalidArgument("rule weight must be positive");
  }
  pending_.push_back({lhs, rhs, weight});
  return util::Status::OK();
}

util::Status Grammar::Finalize(const std::string& start_symbol) {
  if (finalized_) {
    return util::Status::FailedPrecondition("grammar already finalized");
  }
  if (pending_.empty()) {
    return util::Status::FailedPrecondition("no rules");
  }
  // Every lhs is a nonterminal.
  std::set<std::string> lhs_names;
  for (const auto& r : pending_) lhs_names.insert(r.lhs);
  if (!lhs_names.count(start_symbol)) {
    return util::Status::InvalidArgument("start symbol has no rules: " +
                                         start_symbol);
  }
  for (const auto& name : lhs_names) {
    nonterminal_ids_.emplace(name, num_nonterminals());
    nonterminal_names_.push_back(name);
  }
  // Everything else on a rhs is a terminal.
  for (const auto& r : pending_) {
    for (const auto& s : r.rhs) {
      if (!lhs_names.count(s) && !terminal_ids_.count(s)) {
        terminal_ids_.emplace(s, num_terminals());
        terminal_names_.push_back(s);
      }
    }
  }
  // Compile rules with per-lhs normalized probabilities.
  std::vector<double> lhs_weight(nonterminal_names_.size(), 0.0);
  for (const auto& r : pending_) {
    lhs_weight[static_cast<size_t>(nonterminal_ids_.at(r.lhs))] += r.weight;
  }
  rules_by_lhs_.assign(nonterminal_names_.size(), {});
  for (const auto& r : pending_) {
    Rule rule;
    rule.lhs = nonterminal_ids_.at(r.lhs);
    for (const auto& s : r.rhs) {
      auto it = nonterminal_ids_.find(s);
      if (it != nonterminal_ids_.end()) {
        rule.rhs.push_back({false, it->second});
      } else {
        rule.rhs.push_back({true, terminal_ids_.at(s)});
      }
    }
    rule.prob = r.weight / lhs_weight[static_cast<size_t>(rule.lhs)];
    rules_by_lhs_[static_cast<size_t>(rule.lhs)].push_back(
        static_cast<int>(rules_.size()));
    rules_.push_back(std::move(rule));
  }
  start_ = nonterminal_ids_.at(start_symbol);
  pending_.clear();
  finalized_ = true;
  return util::Status::OK();
}

const std::vector<int>& Grammar::RulesFor(int lhs) const {
  LLM_CHECK(finalized_);
  LLM_CHECK_GE(lhs, 0);
  LLM_CHECK_LT(lhs, num_nonterminals());
  return rules_by_lhs_[static_cast<size_t>(lhs)];
}

const std::string& Grammar::NonterminalName(int id) const {
  LLM_CHECK_GE(id, 0);
  LLM_CHECK_LT(id, num_nonterminals());
  return nonterminal_names_[static_cast<size_t>(id)];
}

const std::string& Grammar::TerminalName(int id) const {
  LLM_CHECK_GE(id, 0);
  LLM_CHECK_LT(id, num_terminals());
  return terminal_names_[static_cast<size_t>(id)];
}

int Grammar::TerminalId(const std::string& name) const {
  auto it = terminal_ids_.find(name);
  return it == terminal_ids_.end() ? -1 : it->second;
}

int Grammar::NonterminalId(const std::string& name) const {
  auto it = nonterminal_ids_.find(name);
  return it == nonterminal_ids_.end() ? -1 : it->second;
}

util::Status Grammar::ExpandNode(TreeNode* node, util::Rng* rng, int depth,
                                 int max_depth) const {
  if (depth > max_depth) {
    return util::Status::FailedPrecondition("sampling exceeded max depth");
  }
  const auto& candidates = RulesFor(node->id);
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (int ri : candidates) {
    weights.push_back(rules_[static_cast<size_t>(ri)].prob);
  }
  const int rule_index =
      candidates[rng->Categorical(weights)];
  node->rule_index = rule_index;
  const Rule& rule = rules_[static_cast<size_t>(rule_index)];
  for (const auto& sym : rule.rhs) {
    auto child = std::make_unique<TreeNode>();
    child->is_terminal = sym.is_terminal;
    child->id = sym.id;
    if (!sym.is_terminal) {
      LLM_RETURN_IF_ERROR(ExpandNode(child.get(), rng, depth + 1, max_depth));
    }
    node->children.push_back(std::move(child));
  }
  return util::Status::OK();
}

util::StatusOr<std::unique_ptr<Grammar::TreeNode>> Grammar::SampleTree(
    util::Rng* rng, int max_depth) const {
  LLM_CHECK(finalized_);
  LLM_CHECK(rng != nullptr);
  auto root = std::make_unique<TreeNode>();
  root->is_terminal = false;
  root->id = start_;
  util::Status s = ExpandNode(root.get(), rng, 0, max_depth);
  if (!s.ok()) return s;
  return root;
}

std::vector<int> Grammar::TreeLeaves(const TreeNode& root) {
  std::vector<int> out;
  std::function<void(const TreeNode&)> visit = [&](const TreeNode& n) {
    if (n.is_terminal) {
      out.push_back(n.id);
      return;
    }
    for (const auto& c : n.children) visit(*c);
  };
  visit(root);
  return out;
}

std::string Grammar::TreeYield(const TreeNode& root) const {
  std::string out;
  for (int t : TreeLeaves(root)) {
    if (!out.empty()) out += ' ';
    out += TerminalName(t);
  }
  return out;
}

double Grammar::TreeLogProb(const TreeNode& root) const {
  double logp = 0.0;
  std::function<void(const TreeNode&)> visit = [&](const TreeNode& n) {
    if (n.is_terminal) return;
    LLM_CHECK_GE(n.rule_index, 0);
    logp += std::log(rules_[static_cast<size_t>(n.rule_index)].prob);
    for (const auto& c : n.children) visit(*c);
  };
  visit(root);
  return logp;
}

std::string Grammar::TreeToString(const TreeNode& root) const {
  if (root.is_terminal) return TerminalName(root.id);
  std::string out = "(" + NonterminalName(root.id);
  for (const auto& c : root.children) {
    out += ' ';
    out += TreeToString(*c);
  }
  out += ')';
  return out;
}

std::vector<std::vector<int>> Grammar::LeafPairDistances(
    const TreeNode& root) {
  // Collect, for each leaf, the path of node pointers from root to leaf;
  // distance(i, j) = depth_i + depth_j - 2 * depth(LCA).
  std::vector<std::vector<const TreeNode*>> paths;
  std::vector<const TreeNode*> current;
  std::function<void(const TreeNode&)> visit = [&](const TreeNode& n) {
    current.push_back(&n);
    if (n.is_terminal) {
      paths.push_back(current);
    } else {
      for (const auto& c : n.children) visit(*c);
    }
    current.pop_back();
  };
  visit(root);

  const size_t L = paths.size();
  std::vector<std::vector<int>> dist(L, std::vector<int>(L, 0));
  for (size_t i = 0; i < L; ++i) {
    for (size_t j = i + 1; j < L; ++j) {
      size_t common = 0;
      const size_t limit = std::min(paths[i].size(), paths[j].size());
      while (common < limit && paths[i][common] == paths[j][common]) {
        ++common;
      }
      const int d = static_cast<int>((paths[i].size() - common) +
                                     (paths[j].size() - common));
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }
  return dist;
}

Grammar ArithmeticGrammar() {
  // Figure 3 of the paper, with weights chosen so expected expression
  // length is finite (recursion probability < 1).
  Grammar g;
  auto add = [&](const std::string& lhs,
                 const std::vector<std::string>& rhs, double w) {
    LLM_CHECK(g.AddRule(lhs, rhs, w).ok());
  };
  add("EXPR", {"TERM", "+", "EXPR"}, 0.25);
  add("EXPR", {"(", "EXPR", ")"}, 0.10);
  add("EXPR", {"TERM"}, 0.65);
  add("TERM", {"VALUE", "*", "TERM"}, 0.25);
  add("TERM", {"(", "EXPR", ")"}, 0.10);
  add("TERM", {"VALUE"}, 0.65);
  add("VALUE", {"x"}, 1.0);
  add("VALUE", {"y"}, 1.0);
  add("VALUE", {"0"}, 1.0);
  add("VALUE", {"1"}, 1.0);
  LLM_CHECK(g.Finalize("EXPR").ok());
  return g;
}

}  // namespace llm::grammar
