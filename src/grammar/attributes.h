// Attribute evaluation over arithmetic parse trees — the Appendix A
// point that "to use the grammar to do arithmetic, we would be much
// better off with a framework in which the token VALUE carries an
// associated numerical or symbolic value. This can be done with the
// framework of attribute grammars." Each node synthesizes a numeric
// attribute from its children: VALUE leaves read literals or variable
// bindings, TERM/EXPR nodes combine children through + and *.
#ifndef TFMR_GRAMMAR_ATTRIBUTES_H_
#define TFMR_GRAMMAR_ATTRIBUTES_H_

#include <map>
#include <string>

#include "grammar/cfg.h"

namespace llm::grammar {

/// Evaluates a parse/derivation tree of the arithmetic grammar (Fig. 3).
/// `bindings` supplies values for variable terminals ("x", "y"); digit
/// terminals evaluate to themselves. Fails with InvalidArgument on an
/// unbound variable or a tree whose shape does not match the arithmetic
/// rule forms (binary op, parenthesized, unit, literal).
util::StatusOr<double> EvaluateArithmetic(
    const Grammar& grammar, const Grammar::TreeNode& tree,
    const std::map<std::string, double>& bindings = {});

}  // namespace llm::grammar

#endif  // TFMR_GRAMMAR_ATTRIBUTES_H_
