// Context-free and probabilistic context-free grammars (paper Appendix A,
// Fig. 3). Grammars are authored with string symbols, finalized into integer
// ids, sampled ancestrally (PCFG generation: the synthetic corpora of §4),
// and expose gold parse trees with leaf-to-leaf tree distances (the target
// of the §7 structural probe).
#ifndef TFMR_GRAMMAR_CFG_H_
#define TFMR_GRAMMAR_CFG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace llm::grammar {

/// One right-hand-side symbol: terminal or nonterminal id.
struct RhsSymbol {
  bool is_terminal = false;
  int id = -1;

  bool operator==(const RhsSymbol& o) const {
    return is_terminal == o.is_terminal && id == o.id;
  }
};

/// A production rule with probability (normalized per lhs at Finalize).
struct Rule {
  int lhs = -1;
  std::vector<RhsSymbol> rhs;
  double prob = 0.0;
};

class Grammar {
 public:
  /// A node of a derivation tree. Terminal nodes have no children;
  /// nonterminal nodes record the rule used.
  struct TreeNode {
    bool is_terminal = false;
    int id = -1;
    int rule_index = -1;  // -1 for terminals
    std::vector<std::unique_ptr<TreeNode>> children;
  };

  Grammar() = default;

  /// Adds a rule by symbol names; weight is an unnormalized probability.
  /// Symbols that ever appear as an lhs are nonterminals; the rest are
  /// terminals (classified at Finalize). Empty rhs is rejected.
  util::Status AddRule(const std::string& lhs,
                       const std::vector<std::string>& rhs,
                       double weight = 1.0);

  /// Classifies symbols, normalizes probabilities per lhs, and sets the
  /// start symbol. No rules may be added afterwards.
  util::Status Finalize(const std::string& start_symbol);

  bool finalized() const { return finalized_; }
  int start() const { return start_; }
  int num_nonterminals() const {
    return static_cast<int>(nonterminal_names_.size());
  }
  int num_terminals() const {
    return static_cast<int>(terminal_names_.size());
  }
  const std::vector<Rule>& rules() const { return rules_; }
  /// Indices into rules() with the given lhs.
  const std::vector<int>& RulesFor(int lhs) const;

  const std::string& NonterminalName(int id) const;
  const std::string& TerminalName(int id) const;
  /// -1 if the name is not a terminal/nonterminal.
  int TerminalId(const std::string& name) const;
  int NonterminalId(const std::string& name) const;

  /// Ancestrally samples a derivation tree from the start symbol.
  /// Fails with FailedPrecondition if depth exceeds max_depth (runaway
  /// recursion in an expansive grammar).
  util::StatusOr<std::unique_ptr<TreeNode>> SampleTree(util::Rng* rng,
                                                       int max_depth = 64)
      const;

  /// Terminal ids at the leaves, left to right.
  static std::vector<int> TreeLeaves(const TreeNode& root);

  /// Leaf terminal names joined with spaces.
  std::string TreeYield(const TreeNode& root) const;

  /// log P(tree) = sum of log rule probabilities used.
  double TreeLogProb(const TreeNode& root) const;

  /// Bracketed s-expression of a tree, e.g. "(EXPR (TERM y) + (EXPR ...))".
  std::string TreeToString(const TreeNode& root) const;

  /// Pairwise path lengths (#edges) between leaves in the tree — the gold
  /// distance matrix for the Hewitt-Manning structural probe (§7).
  static std::vector<std::vector<int>> LeafPairDistances(
      const TreeNode& root);

 private:
  struct PendingRule {
    std::string lhs;
    std::vector<std::string> rhs;
    double weight;
  };

  util::Status ExpandNode(TreeNode* node, util::Rng* rng, int depth,
                          int max_depth) const;

  bool finalized_ = false;
  int start_ = -1;
  std::vector<PendingRule> pending_;
  std::vector<Rule> rules_;
  std::vector<std::vector<int>> rules_by_lhs_;
  std::vector<std::string> nonterminal_names_;
  std::vector<std::string> terminal_names_;
  std::unordered_map<std::string, int> nonterminal_ids_;
  std::unordered_map<std::string, int> terminal_ids_;
};

/// The paper's Figure 3 grammar for arithmetic expressions, as a PCFG with
/// mild probabilities favouring termination.
Grammar ArithmeticGrammar();

}  // namespace llm::grammar

#endif  // TFMR_GRAMMAR_CFG_H_
