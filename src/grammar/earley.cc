#include "grammar/earley.h"

#include <set>
#include <tuple>

#include "text/tokenizer.h"

namespace llm::grammar {

namespace {
/// One Earley item: position `dot` inside rule `rule`, started at `origin`.
struct Item {
  int rule;
  int dot;
  int origin;

  bool operator<(const Item& o) const {
    return std::tie(rule, dot, origin) < std::tie(o.rule, o.dot, o.origin);
  }
};
}  // namespace

EarleyParser::EarleyParser(const Grammar* grammar) : grammar_(grammar) {
  LLM_CHECK(grammar != nullptr);
  LLM_CHECK(grammar->finalized());
}

bool EarleyParser::Run(const std::vector<int>& terminals,
                       CompletedSpans* completed) const {
  const int n = static_cast<int>(terminals.size());
  const auto& rules = grammar_->rules();
  std::vector<std::set<Item>> chart(static_cast<size_t>(n + 1));

  auto add = [&](int k, Item item) -> bool {
    return chart[static_cast<size_t>(k)].insert(item).second;
  };

  for (int ri : grammar_->RulesFor(grammar_->start())) {
    add(0, {ri, 0, 0});
  }

  if (completed) {
    completed->assign(
        static_cast<size_t>(grammar_->num_nonterminals()),
        std::vector<char>(static_cast<size_t>((n + 1) * (n + 1)), 0));
  }

  for (int k = 0; k <= n; ++k) {
    // Process items in insertion waves until the set stabilizes.
    std::vector<Item> queue(chart[static_cast<size_t>(k)].begin(),
                            chart[static_cast<size_t>(k)].end());
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      const Item item = queue[qi];
      const Rule& rule = rules[static_cast<size_t>(item.rule)];
      if (item.dot < static_cast<int>(rule.rhs.size())) {
        const RhsSymbol& next = rule.rhs[static_cast<size_t>(item.dot)];
        if (next.is_terminal) {
          // Scan.
          if (k < n && terminals[static_cast<size_t>(k)] == next.id) {
            add(k + 1, {item.rule, item.dot + 1, item.origin});
          }
        } else {
          // Predict.
          for (int ri : grammar_->RulesFor(next.id)) {
            if (add(k, {ri, 0, k})) queue.push_back({ri, 0, k});
          }
          // (No epsilon rules, so no completion shortcut needed.)
        }
      } else {
        // Complete.
        if (completed) {
          (*completed)[static_cast<size_t>(rule.lhs)]
                      [static_cast<size_t>(item.origin * (n + 1) + k)] = 1;
        }
        for (const Item& waiting :
             chart[static_cast<size_t>(item.origin)]) {
          const Rule& wrule = rules[static_cast<size_t>(waiting.rule)];
          if (waiting.dot < static_cast<int>(wrule.rhs.size())) {
            const RhsSymbol& sym =
                wrule.rhs[static_cast<size_t>(waiting.dot)];
            if (!sym.is_terminal && sym.id == rule.lhs) {
              Item advanced{waiting.rule, waiting.dot + 1, waiting.origin};
              if (add(k, advanced)) queue.push_back(advanced);
            }
          }
        }
      }
    }
  }

  for (const Item& item : chart[static_cast<size_t>(n)]) {
    const Rule& rule = rules[static_cast<size_t>(item.rule)];
    if (rule.lhs == grammar_->start() && item.origin == 0 &&
        item.dot == static_cast<int>(rule.rhs.size())) {
      return true;
    }
  }
  return false;
}

bool EarleyParser::Recognize(const std::vector<int>& terminals) const {
  return Run(terminals, nullptr);
}

bool EarleyParser::BuildChildren(
    const std::vector<int>& terminals, const CompletedSpans& completed,
    const Rule& rule, size_t pos, int k, int j,
    std::vector<std::unique_ptr<Grammar::TreeNode>>* children) const {
  const int n = static_cast<int>(terminals.size());
  if (pos == rule.rhs.size()) return k == j;
  const RhsSymbol& sym = rule.rhs[pos];
  if (sym.is_terminal) {
    if (k < j && terminals[static_cast<size_t>(k)] == sym.id) {
      auto leaf = std::make_unique<Grammar::TreeNode>();
      leaf->is_terminal = true;
      leaf->id = sym.id;
      children->push_back(std::move(leaf));
      if (BuildChildren(terminals, completed, rule, pos + 1, k + 1, j,
                        children)) {
        return true;
      }
      children->pop_back();
    }
    return false;
  }
  for (int m = k + 1; m <= j; ++m) {
    if (!completed[static_cast<size_t>(sym.id)]
                  [static_cast<size_t>(k * (n + 1) + m)]) {
      continue;
    }
    auto subtree = BuildTree(terminals, completed, sym.id, k, m);
    if (!subtree) continue;
    children->push_back(std::move(subtree));
    if (BuildChildren(terminals, completed, rule, pos + 1, m, j, children)) {
      return true;
    }
    children->pop_back();
  }
  return false;
}

std::unique_ptr<Grammar::TreeNode> EarleyParser::BuildTree(
    const std::vector<int>& terminals, const CompletedSpans& completed,
    int nonterminal, int i, int j) const {
  const auto& rules = grammar_->rules();
  for (int ri : grammar_->RulesFor(nonterminal)) {
    const Rule& rule = rules[static_cast<size_t>(ri)];
    std::vector<std::unique_ptr<Grammar::TreeNode>> children;
    if (BuildChildren(terminals, completed, rule, 0, i, j, &children)) {
      auto node = std::make_unique<Grammar::TreeNode>();
      node->is_terminal = false;
      node->id = nonterminal;
      node->rule_index = ri;
      node->children = std::move(children);
      return node;
    }
  }
  return nullptr;
}

util::StatusOr<std::unique_ptr<Grammar::TreeNode>> EarleyParser::Parse(
    const std::vector<int>& terminals) const {
  CompletedSpans completed;
  if (!Run(terminals, &completed)) {
    return util::Status::NotFound("sentence not in the language");
  }
  auto tree = BuildTree(terminals, completed, grammar_->start(), 0,
                        static_cast<int>(terminals.size()));
  if (!tree) {
    return util::Status::Internal("chart accepted but reconstruction failed");
  }
  return tree;
}

util::StatusOr<std::vector<int>> EarleyParser::TerminalIds(
    const std::string& sentence) const {
  std::vector<int> ids;
  for (const auto& tok : text::WhitespaceTokenize(sentence)) {
    const int id = grammar_->TerminalId(tok);
    if (id < 0) {
      return util::Status::InvalidArgument("not a terminal: " + tok);
    }
    ids.push_back(id);
  }
  return ids;
}

}  // namespace llm::grammar
