// Chomsky-normal-form PCFGs and the Inside-Outside machinery (paper §7 and
// Appendix A): probability-preserving CNF conversion, the inside algorithm
// (sentence log-probability), Viterbi CYK parsing, and Inside-Outside EM
// for learning rule probabilities from a corpus — the "algorithm for
// learning a grammar from a corpus" the appendix calls for.
#ifndef TFMR_GRAMMAR_CNF_H_
#define TFMR_GRAMMAR_CNF_H_

#include <string>
#include <vector>

#include "grammar/cfg.h"

namespace llm::grammar {

/// A PCFG in Chomsky normal form: only A -> B C and A -> t rules.
struct CnfGrammar {
  struct BinaryRule {
    int lhs, left, right;
    double prob;
  };
  struct LexicalRule {
    int lhs, terminal;
    double prob;
  };

  int start = -1;
  std::vector<std::string> nonterminal_names;
  std::vector<std::string> terminal_names;  // ids match the source Grammar
  std::vector<BinaryRule> binary;
  std::vector<LexicalRule> lexical;

  int num_nonterminals() const {
    return static_cast<int>(nonterminal_names.size());
  }
  int num_terminals() const {
    return static_cast<int>(terminal_names.size());
  }

  /// Checks per-lhs probabilities sum to ~1 (for every lhs with any rule).
  util::Status Validate(double tol = 1e-6) const;
};

/// Converts a finalized grammar to CNF preserving the string distribution:
/// START wrapping, terminal lifting, binarization, and unit-rule
/// elimination via the (I - U)^(-1) closure. Epsilon rules are already
/// rejected by Grammar. Fails if the unit-rule matrix is not invertible
/// (unit-production probability mass >= 1 somewhere).
util::StatusOr<CnfGrammar> ToCnf(const Grammar& grammar);

/// log P(sentence) under the PCFG (inside algorithm); -infinity if the
/// sentence is not derivable.
double InsideLogProb(const CnfGrammar& g, const std::vector<int>& terminals);

/// Mean per-token cross-entropy (nats) over a corpus of sentences — the
/// ground-truth entropy reference for the scaling-law benches. Fails if
/// any sentence is underivable.
util::StatusOr<double> CorpusCrossEntropy(
    const CnfGrammar& g, const std::vector<std::vector<int>>& corpus);

/// Most probable parse, rendered as a bracketed string over CNF symbols.
util::StatusOr<std::string> ViterbiParse(const CnfGrammar& g,
                                         const std::vector<int>& terminals);

struct EmOptions {
  int iterations = 10;
};

struct EmStats {
  /// Total corpus log-likelihood after each iteration (non-decreasing).
  std::vector<double> log_likelihood;
};

/// Inside-Outside EM: re-estimates the rule probabilities of `g` in place
/// to (locally) maximize corpus likelihood. Rule structure is fixed; only
/// probabilities move. Fails if a sentence is underivable under the
/// initial grammar.
util::StatusOr<EmStats> FitInsideOutside(
    CnfGrammar* g, const std::vector<std::vector<int>>& corpus,
    const EmOptions& options);

}  // namespace llm::grammar

#endif  // TFMR_GRAMMAR_CNF_H_
