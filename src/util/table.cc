#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace llm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LLM_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  LLM_CHECK_EQ(cells.size(), header_.size());
  for (const auto& c : cells) {
    LLM_CHECK(c.find(',') == std::string::npos &&
              c.find('\n') == std::string::npos)
        << "table cell contains CSV separator:" << c;
  }
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << ToCsv();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string FormatFloat(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string FormatCount(double n) {
  const char* suffix = "";
  if (n >= 1e12) {
    n /= 1e12;
    suffix = "T";
  } else if (n >= 1e9) {
    n /= 1e9;
    suffix = "B";
  } else if (n >= 1e6) {
    n /= 1e6;
    suffix = "M";
  } else if (n >= 1e3) {
    n /= 1e3;
    suffix = "k";
  }
  std::ostringstream os;
  if (*suffix == '\0') {
    os << static_cast<long long>(n);
  } else {
    os << std::fixed << std::setprecision(n >= 100 ? 0 : 1) << n << suffix;
  }
  return os.str();
}

}  // namespace llm::util
