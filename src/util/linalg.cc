#include "util/linalg.h"

#include <cmath>

#include "util/check.h"

namespace llm::util {

bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* x) {
  LLM_CHECK(x != nullptr);
  const size_t n = a.size();
  LLM_CHECK_EQ(b.size(), n);
  for (const auto& row : a) LLM_CHECK_EQ(row.size(), n);

  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (size_t j = col; j < n; ++j) a[col][j] *= inv;
    b[col] *= inv;
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (size_t j = col; j < n; ++j) a[r][j] -= f * a[col][j];
      b[r] -= f * b[col];
    }
  }
  *x = std::move(b);
  return true;
}

}  // namespace llm::util
