// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the integrity
// checksum used by the v2 checkpoint format to detect torn writes and
// bit-rot per tensor. Table-driven, no dependencies.
#ifndef TFMR_UTIL_CRC32_H_
#define TFMR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace llm::util {

/// CRC-32 of `len` bytes. Pass a previous result as `seed` to checksum a
/// buffer incrementally (Crc32(b, n2, Crc32(a, n1)) == Crc32(a+b)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace llm::util

#endif  // TFMR_UTIL_CRC32_H_
