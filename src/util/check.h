// LLM_CHECK: invariant assertions that abort with a message on failure.
//
// Used for programmer errors (shape mismatches, index bugs) where unwinding
// to the caller with a Status would only obscure the bug. Active in all build
// types: a silently-corrupted training run is worse than a crash.
#ifndef TFMR_UTIL_CHECK_H_
#define TFMR_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace llm::util::internal {

/// Accumulates the failure message and aborts when destroyed (end of the
/// full expression containing the failed check).
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< adapter so the ternary in LLM_CHECK has type
/// void on both arms while still allowing `LLM_CHECK(x) << "context"`.
struct Voidifier {
  void operator&(CheckFailStream&) const {}
  void operator&(CheckFailStream&&) const {}
};

}  // namespace llm::util::internal

#define LLM_CHECK(cond)                                              \
  (cond) ? (void)0                                                   \
         : ::llm::util::internal::Voidifier() &                      \
               ::llm::util::internal::CheckFailStream(__FILE__,      \
                                                      __LINE__, #cond)

// Binary comparison checks that print both operands on failure.
#define LLM_CHECK_OP_(op, a, b)                                      \
  ((a)op(b)) ? (void)0                                               \
             : ::llm::util::internal::Voidifier() &                  \
                   (::llm::util::internal::CheckFailStream(          \
                        __FILE__, __LINE__, #a " " #op " " #b)       \
                    << "(" << (a) << " vs " << (b) << ")")

#define LLM_CHECK_EQ(a, b) LLM_CHECK_OP_(==, a, b)
#define LLM_CHECK_NE(a, b) LLM_CHECK_OP_(!=, a, b)
#define LLM_CHECK_LT(a, b) LLM_CHECK_OP_(<, a, b)
#define LLM_CHECK_LE(a, b) LLM_CHECK_OP_(<=, a, b)
#define LLM_CHECK_GT(a, b) LLM_CHECK_OP_(>, a, b)
#define LLM_CHECK_GE(a, b) LLM_CHECK_OP_(>=, a, b)

#endif  // TFMR_UTIL_CHECK_H_
