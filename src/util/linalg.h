// Small dense linear-algebra helpers (double precision): Gaussian
// elimination with partial pivoting. Used by the in-context-learning
// baselines (least squares / ridge) and the structural-probe evaluation.
#ifndef TFMR_UTIL_LINALG_H_
#define TFMR_UTIL_LINALG_H_

#include <vector>

namespace llm::util {

/// Solves A x = b in place; A is n x n row-major. Returns false if A is
/// (numerically) singular.
bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* x);

}  // namespace llm::util

#endif  // TFMR_UTIL_LINALG_H_
