#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace llm::util {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  LLM_CHECK_GE(width, 8);
  LLM_CHECK_GE(height, 3);
}

void AsciiChart::AddSeries(char glyph, std::vector<double> ys,
                           std::string label) {
  LLM_CHECK(!ys.empty());
  series_.push_back({glyph, std::move(ys), std::move(label)});
}

void AsciiChart::SetYRange(double lo, double hi) {
  LLM_CHECK_LT(lo, hi);
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiChart::Render() const {
  LLM_CHECK(!series_.empty());
  double lo = y_lo_, hi = y_hi_;
  if (!fixed_range_) {
    lo = series_[0].ys[0];
    hi = lo;
    for (const auto& s : series_) {
      for (double y : s.ys) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
      }
    }
    if (hi == lo) hi = lo + 1.0;
  }

  std::vector<std::string> grid(
      static_cast<size_t>(height_), std::string(static_cast<size_t>(width_), ' '));
  auto row_of = [&](double y) {
    double frac = (y - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    return height_ - 1 -
           static_cast<int>(std::lround(frac * (height_ - 1)));
  };
  for (const auto& s : series_) {
    const auto n = static_cast<int>(s.ys.size());
    for (int col = 0; col < width_; ++col) {
      // Nearest sample for this column.
      const int idx =
          n == 1 ? 0
                 : static_cast<int>(std::lround(
                       static_cast<double>(col) * (n - 1) / (width_ - 1)));
      const int row = row_of(s.ys[static_cast<size_t>(idx)]);
      grid[static_cast<size_t>(row)][static_cast<size_t>(col)] = s.glyph;
    }
  }

  char buf[32];
  std::string out;
  for (int r = 0; r < height_; ++r) {
    // Label the top, middle, and bottom rows.
    if (r == 0 || r == height_ - 1 || r == height_ / 2) {
      const double frac =
          1.0 - static_cast<double>(r) / (height_ - 1);
      std::snprintf(buf, sizeof(buf), "%8.3g |", lo + frac * (hi - lo));
      out += buf;
    } else {
      out += "         |";
    }
    out += grid[static_cast<size_t>(r)];
    out += '\n';
  }
  out += "         +";
  out += std::string(static_cast<size_t>(width_), '-');
  out += '\n';
  bool any_label = false;
  for (const auto& s : series_) {
    if (!s.label.empty()) {
      out += any_label ? "   " : "           ";
      out += s.glyph;
      out += " = " + s.label;
      any_label = true;
    }
  }
  if (any_label) out += '\n';
  return out;
}

}  // namespace llm::util
