// ASCII line charts for the benchmark harnesses: the repo reproduces
// *figures*, and a terminal rendering of the curve (loss vs steps, the
// grokking two-phase plot) communicates the shape directly in
// bench_output.txt.
#ifndef TFMR_UTIL_ASCII_CHART_H_
#define TFMR_UTIL_ASCII_CHART_H_

#include <string>
#include <vector>

namespace llm::util {

/// Plots one or more series (each an ordered vector of y values sampled
/// uniformly in x) on a character grid. Later series overdraw earlier
/// ones where they collide.
class AsciiChart {
 public:
  /// width/height are the plot area in characters (axes add margin).
  AsciiChart(int width, int height);

  /// Adds a series drawn with `glyph`. Series may have different lengths;
  /// each is stretched to the full width.
  void AddSeries(char glyph, std::vector<double> ys,
                 std::string label = "");

  /// Fix the y range (default: min/max over all series).
  void SetYRange(double lo, double hi);

  /// Multi-line rendering with y-axis labels and a legend line.
  std::string Render() const;

 private:
  struct Series {
    char glyph;
    std::vector<double> ys;
    std::string label;
  };

  int width_;
  int height_;
  bool fixed_range_ = false;
  double y_lo_ = 0.0, y_hi_ = 1.0;
  std::vector<Series> series_;
};

}  // namespace llm::util

#endif  // TFMR_UTIL_ASCII_CHART_H_
