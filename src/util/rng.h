// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (init, sampling, data generation)
// take an explicit Rng so that every experiment is reproducible from a seed.
// The generator is xoshiro256** (public domain, Blackman & Vigna): fast,
// high quality, and — unlike std::mt19937 distributions — bit-identical
// across standard library implementations.
#ifndef TFMR_UTIL_RNG_H_
#define TFMR_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace llm::util {

/// Complete serializable Rng state: the 256-bit xoshiro state plus the
/// Box-Muller cache. Restoring it resumes the exact random stream, which
/// checkpoint/resume relies on for bit-exact training replays.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_normal = false;
  double cached_normal = 0.0;
};

/// Seedable xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed via splitmix64.
  void Seed(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (caches the second variate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);
  size_t Categorical(const std::vector<float>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    LLM_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  /// Snapshot / restore the full generator state (for checkpointing).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace llm::util

#endif  // TFMR_UTIL_RNG_H_
