// Status / StatusOr: lightweight error propagation in the RocksDB/Arrow style.
//
// Public APIs that can fail for reasons other than programmer error return a
// Status (or StatusOr<T> when they also produce a value). Programmer errors
// (shape mismatches on internal tensors, out-of-range indices that indicate a
// bug) use LLM_CHECK from check.h instead and abort.
#ifndef TFMR_UTIL_STATUS_H_
#define TFMR_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace llm::util {

/// Error categories, deliberately coarse (RocksDB-style).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIOError = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK (no message
/// allocation); carries a message string otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or a non-OK Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. Passing an OK status is a bug.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    LLM_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Value accessors; calling these on a failed StatusOr aborts.
  const T& value() const& {
    LLM_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    LLM_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    LLM_CHECK(ok()) << "StatusOr::value on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace llm::util

/// Propagate a non-OK Status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define LLM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::llm::util::Status _llm_status = (expr);      \
    if (!_llm_status.ok()) return _llm_status;     \
  } while (0)

/// Assign from a StatusOr or propagate its error.
///
/// Expands to multiple statements (it must declare a temporary whose scope
/// outlives the macro when `lhs` is a declaration), so use it inside a
/// braced block. The internal `if` carries braces and an empty `else` so a
/// surrounding `else` can never be captured (no dangling-else), and the
/// temporary's name uses __COUNTER__ so two expansions — even on the same
/// source line, e.g. via another macro — never collide.
#define LLM_ASSIGN_OR_RETURN(lhs, expr) \
  LLM_ASSIGN_OR_RETURN_IMPL_(LLM_CONCAT_(_llm_sor_, __COUNTER__), lhs, expr)

#define LLM_ASSIGN_OR_RETURN_IMPL_(sor, lhs, expr) \
  auto sor = (expr);                               \
  if (!sor.ok()) {                                 \
    return sor.status();                           \
  } else { /* block any dangling else */           \
  }                                                \
  lhs = std::move(sor).value()

#define LLM_CONCAT_INNER_(a, b) a##b
#define LLM_CONCAT_(a, b) LLM_CONCAT_INNER_(a, b)

#endif  // TFMR_UTIL_STATUS_H_
