// Fixed-width ASCII table printer used by the benchmark harnesses to emit
// the rows/series corresponding to the paper's tables and figures, plus a
// tiny CSV writer for downstream plotting.
#ifndef TFMR_UTIL_TABLE_H_
#define TFMR_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace llm::util {

/// Collects rows of string cells and renders them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule, e.g.
  ///   model      params    loss
  ///   ---------  --------  ------
  ///   tiny       10.2k     3.412
  void Print(std::ostream& os) const;

  /// Serializes as CSV (no quoting of separators; cells must not contain
  /// commas or newlines — enforced by LLM_CHECK in AddRow).
  std::string ToCsv() const;

  /// Writes ToCsv() to a file.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string FormatFloat(double v, int precision = 4);

/// Formats a count with k/M/B suffix (e.g. 1.5M), matching the paper's
/// Table 1 convention.
std::string FormatCount(double n);

}  // namespace llm::util

#endif  // TFMR_UTIL_TABLE_H_
