#include "util/fault.h"

#include <algorithm>

namespace llm::util {

namespace internal {
std::atomic<bool> g_fault_armed{false};
}  // namespace internal

namespace {
std::atomic<FaultInjector::FireListener> g_fire_listener{nullptr};
}  // namespace

void FaultInjector::SetFireListener(FireListener listener) {
  g_fire_listener.store(listener, std::memory_order_release);
}

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kCheckpointWrite:
      return "checkpoint-write";
    case FaultSite::kCheckpointRead:
      return "checkpoint-read";
    case FaultSite::kLossNaN:
      return "loss-nan";
    case FaultSite::kGradExplode:
      return "grad-explode";
    case FaultSite::kDecodeNaN:
      return "decode-nan";
    case FaultSite::kWorkerStall:
      return "worker-stall";
    case FaultSite::kSlotLeak:
      return "slot-leak";
    case FaultSite::kOnTokenThrow:
      return "on-token-throw";
    case FaultSite::kReplicaDispatch:
      return "replica-dispatch";
    case FaultSite::kReplicaCanary:
      return "replica-canary";
    case FaultSite::kCommDrop:
      return "comm-drop";
    case FaultSite::kCommCorrupt:
      return "comm-corrupt";
    case FaultSite::kWorkerKill:
      return "worker-kill";
    case FaultSite::kWorkerStraggle:
      return "worker-straggle";
    case FaultSite::kCheckpointPrune:
      return "checkpoint-prune";
    case FaultSite::kSockDrop:
      return "sock-drop";
    case FaultSite::kSockCorruptFrame:
      return "sock-corrupt-frame";
    case FaultSite::kSockStallWrite:
      return "sock-stall-write";
    case FaultSite::kSockDisconnect:
      return "sock-disconnect";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::ResetCountersLocked() {
  for (Plan& p : plans_) {
    p.seen = 0;
    p.fired = 0;
  }
}

void FaultInjector::ArmAt(FaultSite site, std::vector<int64_t> occurrences) {
  std::lock_guard<std::mutex> lock(mu_);
  ResetCountersLocked();
  Plan& p = plans_[static_cast<int>(site)];
  std::sort(occurrences.begin(), occurrences.end());
  p.occurrences = std::move(occurrences);
  p.probabilistic = false;
  p.armed = true;
  internal::g_fault_armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmRandom(FaultSite site, double p_fail, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  ResetCountersLocked();
  Plan& p = plans_[static_cast<int>(site)];
  p.occurrences.clear();
  p.probability = p_fail;
  p.probabilistic = true;
  p.rng.Seed(seed);
  p.armed = true;
  internal::g_fault_armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Plan& p : plans_) {
    p.armed = false;
    p.occurrences.clear();
    p.probabilistic = false;
  }
  ResetCountersLocked();
  internal::g_fault_armed.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(FaultSite site) {
  int64_t occurrence;
  bool fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Plan& p = plans_[static_cast<int>(site)];
    occurrence = p.seen++;
    if (!p.armed) return false;
    if (p.probabilistic) {
      fire = p.rng.Bernoulli(p.probability);
    } else {
      fire = std::binary_search(p.occurrences.begin(), p.occurrences.end(),
                                occurrence);
    }
    if (fire) ++p.fired;
  }
  if (fire) {
    // Outside the lock: a listener (e.g. the obs flight recorder) must be
    // free to read injector state without deadlocking.
    if (FireListener listener =
            g_fire_listener.load(std::memory_order_acquire)) {
      listener(site, occurrence);
    }
  }
  return fire;
}

int64_t FaultInjector::Occurrences(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_[static_cast<int>(site)].seen;
}

int64_t FaultInjector::Fired(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_[static_cast<int>(site)].fired;
}

std::vector<FaultSiteCounts> FaultInjector::AllCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSiteCounts> counts(kNumFaultSites);
  for (int i = 0; i < kNumFaultSites; ++i) {
    counts[static_cast<size_t>(i)].site = static_cast<FaultSite>(i);
    counts[static_cast<size_t>(i)].seen = plans_[i].seen;
    counts[static_cast<size_t>(i)].fired = plans_[i].fired;
  }
  return counts;
}

}  // namespace llm::util
