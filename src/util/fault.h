// Deterministic fault injection for testing recovery paths.
//
// Production code marks recoverable failure sites with MaybeInjectFault():
//
//   if (util::MaybeInjectFault(util::FaultSite::kCheckpointWrite)) {
//     return util::Status::IOError("injected checkpoint write fault");
//   }
//
// Tests arm a plan before exercising the code under test:
//
//   util::FaultInjector::Global().ArmAt(util::FaultSite::kLossNaN, {3});
//   ... run ...
//   util::FaultInjector::Global().Disarm();
//
// Occurrences of each site are counted from zero every time Disarm() (or
// ArmAt/ArmRandom, which reset counters) is called, so "fire at occurrence
// 3" is reproducible run to run. ArmRandom() draws from a seeded Rng, so
// probabilistic plans are also deterministic.
//
// Cost when nothing is armed: MaybeInjectFault is a single relaxed atomic
// load that branches away — hot paths pay nothing. The injector is
// thread-safe: sites may fire concurrently from any thread (the serving
// runtime fires them from the scheduler and worker threads), with armed
// plan state and occurrence counters serialized by an internal mutex.
// When several threads race a site, which occurrence index each thread
// draws is unspecified, but the total count and the set of firings stay
// exact — single-threaded arm/fire sequences remain fully deterministic.
#ifndef TFMR_UTIL_FAULT_H_
#define TFMR_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.h"

namespace llm::util {

/// Named injection sites. Keep in sync with FaultSiteName().
enum class FaultSite : int {
  kCheckpointWrite = 0,  // SaveCheckpoint: torn write before the rename
  kCheckpointRead = 1,   // LoadCheckpoint: unreadable file
  kLossNaN = 2,          // Trainer: loss comes back NaN
  kGradExplode = 3,      // Trainer: gradients blow up after backward
  kDecodeNaN = 4,        // serving: poisoned logits in one batch lane
  kWorkerStall = 5,      // serving: a worker sleeps past the tick budget
  kSlotLeak = 6,         // serving: KV slot fails to return to the free list
  kOnTokenThrow = 7,     // serving: user streaming callback throws
  kReplicaDispatch = 8,  // fleet: dispatch to a replica fails with Internal
  kReplicaCanary = 9,    // fleet: post-swap canary generation fails
  kCommDrop = 10,        // dist: a rank's collective contribution is lost
  kCommCorrupt = 11,     // dist: a rank's collective payload is bit-flipped
  kWorkerKill = 12,      // dist: a training worker dies at the step boundary
  kWorkerStraggle = 13,  // dist: a worker sleeps before joining collectives
  kCheckpointPrune = 14, // checkpoint rotation: crash mid-prune
  kSockDrop = 15,         // dist wire: a frame is silently never sent
  kSockCorruptFrame = 16, // dist wire: payload bit flips after the CRC
  kSockStallWrite = 17,   // dist wire: sender stalls before writing
  kSockDisconnect = 18,   // dist wire: connection closes before the send
};
inline constexpr int kNumFaultSites = 19;

const char* FaultSiteName(FaultSite site);

/// Per-site activity since the last arm/disarm: how many times the site
/// was reached and how many of those occurrences actually fired. Chaos
/// tests assert on these directly (and the obs metrics registry surfaces
/// them as `fault.<site>.seen` / `.fired` gauges) instead of inferring
/// fault activity from downstream symptoms.
struct FaultSiteCounts {
  FaultSite site = FaultSite::kCheckpointWrite;
  int64_t seen = 0;
  int64_t fired = 0;
};

namespace internal {
extern std::atomic<bool> g_fault_armed;
}  // namespace internal

/// True iff any fault plan is armed. Single relaxed load — safe to call on
/// hot paths.
inline bool FaultInjectionArmed() {
  return internal::g_fault_armed.load(std::memory_order_relaxed);
}

/// Process-wide registry of armed fault plans and occurrence counters.
/// All methods are safe to call from any thread.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Fires at exactly the given zero-based occurrence indices of `site`.
  /// Resets all occurrence/fired counters.
  void ArmAt(FaultSite site, std::vector<int64_t> occurrences);

  /// Fires each occurrence independently with probability `p`, drawn from
  /// an Rng seeded with `seed`. Resets all counters.
  void ArmRandom(FaultSite site, double p, uint64_t seed);

  /// Clears every plan and counter; MaybeInjectFault returns to no-op.
  void Disarm();

  /// Counts one occurrence of `site`; returns true if the armed plan says
  /// this occurrence fails. Prefer MaybeInjectFault() at call sites.
  bool ShouldFire(FaultSite site);

  /// How many times `site` was reached / actually fired since last arm.
  int64_t Occurrences(FaultSite site) const;
  int64_t Fired(FaultSite site) const;

  /// Every site's seen/fired counters in one consistent snapshot (all
  /// read under one lock), indexed by site in enum order.
  std::vector<FaultSiteCounts> AllCounts() const;

  /// Observer invoked (outside the injector's lock) each time a site
  /// fires, with the zero-based occurrence index that fired. One global
  /// listener; pass nullptr to remove. The obs layer installs the flight
  /// recorder here so injected faults show up in event dumps.
  using FireListener = void (*)(FaultSite site, int64_t occurrence);
  static void SetFireListener(FireListener listener);

 private:
  FaultInjector() = default;

  struct Plan {
    bool armed = false;
    std::vector<int64_t> occurrences;  // sorted; empty when probabilistic
    double probability = 0.0;
    bool probabilistic = false;
    Rng rng;
    int64_t seen = 0;
    int64_t fired = 0;
  };
  void ResetCountersLocked();

  mutable std::mutex mu_;
  Plan plans_[kNumFaultSites];  // guarded by mu_
};

/// The one call production code makes at an injection site.
inline bool MaybeInjectFault(FaultSite site) {
  return FaultInjectionArmed() && FaultInjector::Global().ShouldFire(site);
}

}  // namespace llm::util

#endif  // TFMR_UTIL_FAULT_H_
