#include "util/rng.h"

namespace llm::util {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  LLM_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  LLM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

namespace {
template <typename T>
size_t CategoricalImpl(Rng* rng, const std::vector<T>& weights) {
  double total = 0.0;
  for (T w : weights) {
    LLM_CHECK_GE(w, T(0));
    total += static_cast<double>(w);
  }
  LLM_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double u = rng->Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += static_cast<double>(weights[i]);
    if (u < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > T(0)) return i - 1;
  }
  return weights.size() - 1;
}
}  // namespace

size_t Rng::Categorical(const std::vector<double>& weights) {
  return CategoricalImpl(this, weights);
}
size_t Rng::Categorical(const std::vector<float>& weights) {
  return CategoricalImpl(this, weights);
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::SaveState() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
  st.have_cached_normal = have_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace llm::util
