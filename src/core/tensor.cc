#include "core/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace llm::core {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    LLM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  t.data_[0] = value;
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> data) {
  LLM_CHECK_EQ(static_cast<int64_t>(data.size()), NumElements(shape));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, util::Rng* rng, float mean,
                            float stddev) {
  LLM_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, util::Rng* rng, float lo, float hi) {
  LLM_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::dim(int i) const {
  LLM_CHECK_GE(i, 0);
  LLM_CHECK_LT(i, ndim());
  return shape_[static_cast<size_t>(i)];
}

namespace {
int64_t FlatIndex(const Shape& shape, std::initializer_list<int64_t> idx) {
  LLM_CHECK_EQ(idx.size(), shape.size());
  int64_t flat = 0;
  size_t i = 0;
  for (int64_t v : idx) {
    LLM_CHECK_GE(v, 0);
    LLM_CHECK_LT(v, shape[i]);
    flat = flat * shape[i] + v;
    ++i;
  }
  return flat;
}
}  // namespace

float& Tensor::At(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(FlatIndex(shape_, idx))];
}

float Tensor::At(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(FlatIndex(shape_, idx))];
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  LLM_CHECK_EQ(NumElements(new_shape), numel())
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Add(const Tensor& other) {
  LLM_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < numel(); ++i) dst[i] += src[i];
}

void Tensor::AddScaled(const Tensor& other, float scale) {
  LLM_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < numel(); ++i) dst[i] += scale * src[i];
}

void Tensor::Scale(float scale) {
  for (auto& v : data_) v *= scale;
}

float Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  LLM_CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::SquaredNorm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(s);
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  LLM_CHECK(a.SameShape(b));
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  int64_t n = std::min(max_elements, numel());
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (n < numel()) os << ", ...";
  os << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  return os << t.DebugString();
}

}  // namespace llm::core
