// Reverse-mode automatic differentiation over Tensor.
//
// A Variable wraps a shared graph Node holding a value, a lazily-allocated
// gradient, parent edges, and a backward closure. Ops (ops.h) build the
// graph eagerly during the forward pass; Backward() runs the tape in
// reverse topological order, accumulating into each node's grad.
//
// Model parameters are long-lived Variables with requires_grad=true; the
// per-step graph hangs off them and is freed when the step's Variables go
// out of scope (the DAG has no reference cycles).
#ifndef TFMR_CORE_GRAPH_H_
#define TFMR_CORE_GRAPH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/tensor.h"

namespace llm::core {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the autodiff DAG.
struct Node {
  Tensor value;
  /// Gradient of the final scalar loss w.r.t. value; allocated on demand.
  Tensor grad;
  bool requires_grad = false;
  std::vector<NodePtr> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(Node*)> backward;
  /// Op name for debugging ("matmul", "layernorm", ...). Leaves: "leaf".
  const char* op = "leaf";
  /// Context saved by the forward pass for use in backward.
  std::vector<Tensor> saved;
  std::vector<int64_t> saved_ints;

  /// Returns grad, allocating a zero tensor of value's shape on first use.
  Tensor& EnsureGrad();
};

/// Value-semantics handle to a Node. Copying a Variable aliases the node.
class Variable {
 public:
  Variable() = default;
  /// Wraps a tensor as a leaf node.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  Tensor& mutable_value();
  /// Zero tensor if no gradient has been accumulated yet.
  const Tensor& grad() const;
  /// Mutable access for optimizers (clipping, manual edits).
  Tensor& mutable_grad();
  bool has_grad() const;

  bool requires_grad() const;

  /// Drops any accumulated gradient (used between optimizer steps).
  void ZeroGrad();

  const Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  NodePtr node() const { return node_; }
  static Variable FromNode(NodePtr node);

 private:
  NodePtr node_;
};

/// Runs reverse-mode autodiff from `loss` (must be scalar, numel()==1),
/// accumulating gradients into every reachable node with requires_grad.
void Backward(const Variable& loss);

/// Numerically estimates d(f)/d(x) at x's current value by central
/// differences with step `eps`, where f rebuilds and returns a scalar
/// Variable on each call. Used by gradient-checking tests.
Tensor NumericalGradient(const std::function<Variable()>& f, Variable x,
                         float eps = 1e-3f);

}  // namespace llm::core

#endif  // TFMR_CORE_GRAPH_H_
