#include "core/ops.h"

#include <cmath>

namespace llm::core {

namespace {

/// Builds a node whose requires_grad is the OR of its parents'.
NodePtr MakeNode(const char* op, Tensor value,
                 std::vector<NodePtr> parents) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->value = std::move(value);
  n->parents = std::move(parents);
  for (const auto& p : n->parents) {
    if (p->requires_grad) {
      n->requires_grad = true;
      break;
    }
  }
  return n;
}

void AccumulateIfNeeded(Node* parent, const Tensor& delta) {
  if (parent->requires_grad) parent->EnsureGrad().Add(delta);
}

// Raw GEMM kernels (row-major). K is the contraction length.
//   C[m,n] += A[m,k] * B[k,n]
void GemmAccum(const float* a, const float* b, float* c, int64_t M, int64_t K,
               int64_t N) {
  for (int64_t m = 0; m < M; ++m) {
    const float* arow = a + m * K;
    float* crow = c + m * N;
    for (int64_t k = 0; k < K; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      const float* brow = b + k * N;
      for (int64_t n = 0; n < N; ++n) crow[n] += av * brow[n];
    }
  }
}

//   dA[m,k] += G[m,n] * B[k,n]  (i.e. G x B^T)
void GemmAccumBt(const float* g, const float* b, float* da, int64_t M,
                 int64_t N, int64_t K) {
  for (int64_t m = 0; m < M; ++m) {
    const float* grow = g + m * N;
    float* darow = da + m * K;
    for (int64_t k = 0; k < K; ++k) {
      const float* brow = b + k * N;
      float acc = 0.0f;
      for (int64_t n = 0; n < N; ++n) acc += grow[n] * brow[n];
      darow[k] += acc;
    }
  }
}

//   dB[k,n] += A[m,k] * G[m,n]  (i.e. A^T x G)
void GemmAccumAt(const float* a, const float* g, float* db, int64_t M,
                 int64_t K, int64_t N) {
  for (int64_t m = 0; m < M; ++m) {
    const float* arow = a + m * K;
    const float* grow = g + m * N;
    for (int64_t k = 0; k < K; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      float* dbrow = db + k * N;
      for (int64_t n = 0; n < N; ++n) dbrow[n] += av * grow[n];
    }
  }
}

/// Unary op helper: out = fwd(x) elementwise, dx += g * dfn(x, y).
Variable UnaryElementwise(const char* op, const Variable& x,
                          float (*fwd)(float),
                          float (*dfn)(float /*x*/, float /*y*/)) {
  const Tensor& xv = x.value();
  Tensor out(xv.shape());
  for (int64_t i = 0; i < xv.numel(); ++i) out[i] = fwd(xv[i]);
  auto node = MakeNode(op, std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [dfn](Node* n) {
      Node* p = n->parents[0].get();
      if (!p->requires_grad) return;
      Tensor& dx = p->EnsureGrad();
      const Tensor& xv = p->value;
      const Tensor& yv = n->value;
      const Tensor& g = n->grad;
      for (int64_t i = 0; i < xv.numel(); ++i) {
        dx[i] += g[i] * dfn(xv[i], yv[i]);
      }
    };
  }
  return Variable::FromNode(node);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  LLM_CHECK(a.value().SameShape(b.value()))
      << ShapeToString(a.shape()) << " vs " << ShapeToString(b.shape());
  Tensor out = a.value();
  out.Add(b.value());
  auto node = MakeNode("add", std::move(out), {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      AccumulateIfNeeded(n->parents[0].get(), n->grad);
      AccumulateIfNeeded(n->parents[1].get(), n->grad);
    };
  }
  return Variable::FromNode(node);
}

Variable Sub(const Variable& a, const Variable& b) {
  LLM_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  out.AddScaled(b.value(), -1.0f);
  auto node = MakeNode("sub", std::move(out), {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      AccumulateIfNeeded(n->parents[0].get(), n->grad);
      Node* b = n->parents[1].get();
      if (b->requires_grad) b->EnsureGrad().AddScaled(n->grad, -1.0f);
    };
  }
  return Variable::FromNode(node);
}

Variable Mul(const Variable& a, const Variable& b) {
  LLM_CHECK(a.value().SameShape(b.value()));
  Tensor out(a.shape());
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = a.value()[i] * b.value()[i];
  }
  auto node = MakeNode("mul", std::move(out), {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      Node* a = n->parents[0].get();
      Node* b = n->parents[1].get();
      if (a->requires_grad) {
        Tensor& da = a->EnsureGrad();
        for (int64_t i = 0; i < da.numel(); ++i) {
          da[i] += n->grad[i] * b->value[i];
        }
      }
      if (b->requires_grad) {
        Tensor& db = b->EnsureGrad();
        for (int64_t i = 0; i < db.numel(); ++i) {
          db[i] += n->grad[i] * a->value[i];
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable ScalarMul(const Variable& a, float s) {
  Tensor out = a.value();
  out.Scale(s);
  auto node = MakeNode("scalar_mul", std::move(out), {a.node()});
  if (node->requires_grad) {
    node->backward = [s](Node* n) {
      Node* a = n->parents[0].get();
      if (a->requires_grad) a->EnsureGrad().AddScaled(n->grad, s);
    };
  }
  return Variable::FromNode(node);
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = a.value();
  for (int64_t i = 0; i < out.numel(); ++i) out[i] += s;
  auto node = MakeNode("add_scalar", std::move(out), {a.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      AccumulateIfNeeded(n->parents[0].get(), n->grad);
    };
  }
  return Variable::FromNode(node);
}

Variable Neg(const Variable& a) { return ScalarMul(a, -1.0f); }

Variable MatMul(const Variable& a, const Variable& b) {
  LLM_CHECK_EQ(a.value().ndim(), 2);
  LLM_CHECK_EQ(b.value().ndim(), 2);
  const int64_t M = a.value().dim(0), K = a.value().dim(1);
  LLM_CHECK_EQ(b.value().dim(0), K)
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  const int64_t N = b.value().dim(1);
  Tensor out({M, N});
  GemmAccum(a.value().data(), b.value().data(), out.data(), M, K, N);
  auto node = MakeNode("matmul", std::move(out), {a.node(), b.node()});
  if (node->requires_grad) {
    node->backward = [M, K, N](Node* n) {
      Node* a = n->parents[0].get();
      Node* b = n->parents[1].get();
      if (a->requires_grad) {
        GemmAccumBt(n->grad.data(), b->value.data(),
                    a->EnsureGrad().data(), M, N, K);
      }
      if (b->requires_grad) {
        GemmAccumAt(a->value.data(), n->grad.data(),
                    b->EnsureGrad().data(), M, K, N);
      }
    };
  }
  return Variable::FromNode(node);
}

Variable Transpose2D(const Variable& a) {
  LLM_CHECK_EQ(a.value().ndim(), 2);
  const int64_t M = a.value().dim(0), N = a.value().dim(1);
  Tensor out({N, M});
  const float* src = a.value().data();
  float* dst = out.data();
  for (int64_t m = 0; m < M; ++m) {
    for (int64_t n = 0; n < N; ++n) dst[n * M + m] = src[m * N + n];
  }
  auto node = MakeNode("transpose", std::move(out), {a.node()});
  if (node->requires_grad) {
    node->backward = [M, N](Node* n) {
      Node* a = n->parents[0].get();
      if (!a->requires_grad) return;
      Tensor& da = a->EnsureGrad();
      const float* g = n->grad.data();
      for (int64_t m = 0; m < M; ++m) {
        for (int64_t nn = 0; nn < N; ++nn) da[m * N + nn] += g[nn * M + m];
      }
    };
  }
  return Variable::FromNode(node);
}

Variable AddRowBroadcast(const Variable& x, const Variable& bias) {
  LLM_CHECK_EQ(bias.value().ndim(), 1);
  const int64_t C = bias.value().dim(0);
  LLM_CHECK_GE(x.value().ndim(), 1);
  LLM_CHECK_EQ(x.shape().back(), C);
  const int64_t R = x.numel() / C;
  Tensor out = x.value();
  {
    float* o = out.data();
    const float* b = bias.value().data();
    for (int64_t r = 0; r < R; ++r) {
      for (int64_t c = 0; c < C; ++c) o[r * C + c] += b[c];
    }
  }
  auto node =
      MakeNode("add_row_broadcast", std::move(out), {x.node(), bias.node()});
  if (node->requires_grad) {
    node->backward = [R, C](Node* n) {
      AccumulateIfNeeded(n->parents[0].get(), n->grad);
      Node* bias = n->parents[1].get();
      if (bias->requires_grad) {
        Tensor& db = bias->EnsureGrad();
        const float* g = n->grad.data();
        for (int64_t r = 0; r < R; ++r) {
          for (int64_t c = 0; c < C; ++c) db[c] += g[r * C + c];
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable Relu(const Variable& x) {
  return UnaryElementwise(
      "relu", x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

namespace {
constexpr float kGeluScale = 0.7978845608028654f;  // sqrt(2/pi)
float GeluFwd(float v) {
  const float cube = 0.044715f * v * v * v;
  return 0.5f * v * (1.0f + std::tanh(kGeluScale * (v + cube)));
}
float GeluBwd(float v, float) {
  const float cube = 0.044715f * v * v * v;
  const float t = std::tanh(kGeluScale * (v + cube));
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * v * sech2 * kGeluScale * (1.0f + 3.0f * 0.044715f * v * v);
}
}  // namespace

Variable Gelu(const Variable& x) {
  return UnaryElementwise("gelu", x, GeluFwd, GeluBwd);
}

Variable TanhOp(const Variable& x) {
  return UnaryElementwise(
      "tanh", x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Variable SigmoidOp(const Variable& x) {
  return UnaryElementwise(
      "sigmoid", x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Variable Reshape(const Variable& x, Shape new_shape) {
  Tensor out = x.value().Reshaped(std::move(new_shape));
  auto node = MakeNode("reshape", std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const Tensor& g = n->grad;
      for (int64_t i = 0; i < dx.numel(); ++i) dx[i] += g[i];
    };
  }
  return Variable::FromNode(node);
}

Variable SliceLastDim(const Variable& x, int64_t start, int64_t len) {
  const int64_t C = x.shape().back();
  LLM_CHECK_GE(start, 0);
  LLM_CHECK_GT(len, 0);
  LLM_CHECK_LE(start + len, C);
  const int64_t R = x.numel() / C;
  Shape out_shape = x.shape();
  out_shape.back() = len;
  Tensor out(out_shape);
  const float* src = x.value().data();
  float* dst = out.data();
  for (int64_t r = 0; r < R; ++r) {
    for (int64_t c = 0; c < len; ++c) dst[r * len + c] = src[r * C + start + c];
  }
  auto node = MakeNode("slice_last", std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [R, C, start, len](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const float* g = n->grad.data();
      for (int64_t r = 0; r < R; ++r) {
        for (int64_t c = 0; c < len; ++c) {
          dx[r * C + start + c] += g[r * len + c];
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable ConcatLastDim(const std::vector<Variable>& xs) {
  LLM_CHECK(!xs.empty());
  const int64_t C0 = xs[0].shape().back();
  const int64_t R = xs[0].numel() / C0;
  int64_t total_c = 0;
  std::vector<int64_t> widths;
  widths.reserve(xs.size());
  for (const auto& x : xs) {
    const int64_t c = x.shape().back();
    LLM_CHECK_EQ(x.numel() / c, R) << "leading dims differ in ConcatLastDim";
    widths.push_back(c);
    total_c += c;
  }
  Shape out_shape = xs[0].shape();
  out_shape.back() = total_c;
  Tensor out(out_shape);
  float* dst = out.data();
  int64_t offset = 0;
  std::vector<NodePtr> parents;
  parents.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const float* src = xs[i].value().data();
    const int64_t c = widths[i];
    for (int64_t r = 0; r < R; ++r) {
      for (int64_t j = 0; j < c; ++j) {
        dst[r * total_c + offset + j] = src[r * c + j];
      }
    }
    offset += c;
    parents.push_back(xs[i].node());
  }
  auto node = MakeNode("concat_last", std::move(out), std::move(parents));
  if (node->requires_grad) {
    node->backward = [R, total_c, widths](Node* n) {
      const float* g = n->grad.data();
      int64_t offset = 0;
      for (size_t i = 0; i < n->parents.size(); ++i) {
        Node* p = n->parents[i].get();
        const int64_t c = widths[i];
        if (p->requires_grad) {
          Tensor& dp = p->EnsureGrad();
          for (int64_t r = 0; r < R; ++r) {
            for (int64_t j = 0; j < c; ++j) {
              dp[r * c + j] += g[r * total_c + offset + j];
            }
          }
        }
        offset += c;
      }
    };
  }
  return Variable::FromNode(node);
}

Variable StackTime(const std::vector<Variable>& steps) {
  LLM_CHECK(!steps.empty());
  LLM_CHECK_EQ(steps[0].value().ndim(), 2);
  const int64_t B = steps[0].value().dim(0);
  const int64_t C = steps[0].value().dim(1);
  const int64_t T = static_cast<int64_t>(steps.size());
  Tensor out({B, T, C});
  std::vector<NodePtr> parents;
  parents.reserve(steps.size());
  for (int64_t t = 0; t < T; ++t) {
    LLM_CHECK(steps[static_cast<size_t>(t)].value().SameShape(
        steps[0].value()));
    const float* src = steps[static_cast<size_t>(t)].value().data();
    float* dst = out.data();
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t c = 0; c < C; ++c) {
        dst[(b * T + t) * C + c] = src[b * C + c];
      }
    }
    parents.push_back(steps[static_cast<size_t>(t)].node());
  }
  auto node = MakeNode("stack_time", std::move(out), std::move(parents));
  if (node->requires_grad) {
    node->backward = [B, T, C](Node* n) {
      const float* g = n->grad.data();
      for (int64_t t = 0; t < T; ++t) {
        Node* p = n->parents[static_cast<size_t>(t)].get();
        if (!p->requires_grad) continue;
        Tensor& dp = p->EnsureGrad();
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t c = 0; c < C; ++c) {
            dp[b * C + c] += g[(b * T + t) * C + c];
          }
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable GatherRows(const Variable& x, const std::vector<int64_t>& rows) {
  LLM_CHECK_EQ(x.value().ndim(), 2);
  const int64_t N = x.value().dim(0), C = x.value().dim(1);
  const int64_t M = static_cast<int64_t>(rows.size());
  Tensor out({M, C});
  const float* src = x.value().data();
  float* dst = out.data();
  for (int64_t i = 0; i < M; ++i) {
    const int64_t r = rows[static_cast<size_t>(i)];
    LLM_CHECK_GE(r, 0);
    LLM_CHECK_LT(r, N);
    for (int64_t c = 0; c < C; ++c) dst[i * C + c] = src[r * C + c];
  }
  auto node = MakeNode("gather_rows", std::move(out), {x.node()});
  node->saved_ints = rows;
  if (node->requires_grad) {
    node->backward = [C](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const float* g = n->grad.data();
      for (size_t i = 0; i < n->saved_ints.size(); ++i) {
        const int64_t r = n->saved_ints[i];
        for (int64_t c = 0; c < C; ++c) {
          dx[r * C + c] += g[static_cast<int64_t>(i) * C + c];
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable Softmax(const Variable& x) {
  const int64_t C = x.shape().back();
  const int64_t R = x.numel() / C;
  Tensor out(x.shape());
  const float* src = x.value().data();
  float* dst = out.data();
  for (int64_t r = 0; r < R; ++r) {
    const float* in = src + r * C;
    float* o = dst + r * C;
    float maxv = in[0];
    for (int64_t c = 1; c < C; ++c) maxv = std::max(maxv, in[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < C; ++c) {
      o[c] = std::exp(in[c] - maxv);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (int64_t c = 0; c < C; ++c) o[c] *= inv;
  }
  auto node = MakeNode("softmax", std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [R, C](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const float* y = n->value.data();
      const float* g = n->grad.data();
      for (int64_t r = 0; r < R; ++r) {
        const float* yr = y + r * C;
        const float* gr = g + r * C;
        float dot = 0.0f;
        for (int64_t c = 0; c < C; ++c) dot += yr[c] * gr[c];
        for (int64_t c = 0; c < C; ++c) {
          dx[r * C + c] += yr[c] * (gr[c] - dot);
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable CrossEntropyLogits(const Variable& logits,
                            const std::vector<int64_t>& targets,
                            int64_t ignore_index) {
  LLM_CHECK_EQ(logits.value().ndim(), 2);
  const int64_t N = logits.value().dim(0), V = logits.value().dim(1);
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), N);

  Tensor probs({N, V});
  const float* in = logits.value().data();
  float* p = probs.data();
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < N; ++r) {
    const float* row = in + r * V;
    float* prow = p + r * V;
    float maxv = row[0];
    for (int64_t c = 1; c < V; ++c) maxv = std::max(maxv, row[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < V; ++c) {
      prow[c] = std::exp(row[c] - maxv);
      sum += prow[c];
    }
    const float inv = 1.0f / sum;
    for (int64_t c = 0; c < V; ++c) prow[c] *= inv;
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == ignore_index) continue;
    LLM_CHECK_GE(t, 0);
    LLM_CHECK_LT(t, V);
    total += -std::log(std::max(prow[t], 1e-30f));
    ++counted;
  }
  LLM_CHECK_GT(counted, 0) << "all targets ignored in CrossEntropyLogits";
  Tensor loss = Tensor::Scalar(static_cast<float>(total / counted));

  auto node = MakeNode("cross_entropy", std::move(loss), {logits.node()});
  node->saved.push_back(std::move(probs));
  node->saved_ints = targets;
  node->saved_ints.push_back(ignore_index);
  node->saved_ints.push_back(counted);
  if (node->requires_grad) {
    node->backward = [N, V](Node* n) {
      Node* logits = n->parents[0].get();
      if (!logits->requires_grad) return;
      Tensor& dx = logits->EnsureGrad();
      const Tensor& probs = n->saved[0];
      const int64_t ignore = n->saved_ints[static_cast<size_t>(N)];
      const int64_t counted = n->saved_ints[static_cast<size_t>(N) + 1];
      const float scale = n->grad[0] / static_cast<float>(counted);
      for (int64_t r = 0; r < N; ++r) {
        const int64_t t = n->saved_ints[static_cast<size_t>(r)];
        if (t == ignore) continue;
        for (int64_t c = 0; c < V; ++c) {
          float d = probs[r * V + c];
          if (c == t) d -= 1.0f;
          dx[r * V + c] += scale * d;
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable MseLoss(const Variable& pred, const Tensor& target) {
  LLM_CHECK(pred.value().SameShape(target));
  const int64_t n_elems = pred.numel();
  double total = 0.0;
  for (int64_t i = 0; i < n_elems; ++i) {
    const double d = pred.value()[i] - target[i];
    total += d * d;
  }
  Tensor loss = Tensor::Scalar(static_cast<float>(total / n_elems));
  auto node = MakeNode("mse", std::move(loss), {pred.node()});
  node->saved.push_back(target);
  if (node->requires_grad) {
    node->backward = [n_elems](Node* n) {
      Node* pred = n->parents[0].get();
      if (!pred->requires_grad) return;
      Tensor& dx = pred->EnsureGrad();
      const Tensor& target = n->saved[0];
      const float scale = 2.0f * n->grad[0] / static_cast<float>(n_elems);
      for (int64_t i = 0; i < n_elems; ++i) {
        dx[i] += scale * (pred->value[i] - target[i]);
      }
    };
  }
  return Variable::FromNode(node);
}

Variable SumAll(const Variable& x) {
  Tensor out = Tensor::Scalar(x.value().Sum());
  auto node = MakeNode("sum", std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const float g = n->grad[0];
      for (int64_t i = 0; i < dx.numel(); ++i) dx[i] += g;
    };
  }
  return Variable::FromNode(node);
}

Variable MeanAll(const Variable& x) {
  const float inv = 1.0f / static_cast<float>(x.numel());
  Tensor out = Tensor::Scalar(x.value().Sum() * inv);
  auto node = MakeNode("mean", std::move(out), {x.node()});
  if (node->requires_grad) {
    node->backward = [inv](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const float g = n->grad[0] * inv;
      for (int64_t i = 0; i < dx.numel(); ++i) dx[i] += g;
    };
  }
  return Variable::FromNode(node);
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids) {
  LLM_CHECK_EQ(weight.value().ndim(), 2);
  const int64_t V = weight.value().dim(0), C = weight.value().dim(1);
  const int64_t M = static_cast<int64_t>(ids.size());
  Tensor out({M, C});
  const float* w = weight.value().data();
  float* dst = out.data();
  for (int64_t i = 0; i < M; ++i) {
    const int64_t id = ids[static_cast<size_t>(i)];
    LLM_CHECK_GE(id, 0);
    LLM_CHECK_LT(id, V);
    for (int64_t c = 0; c < C; ++c) dst[i * C + c] = w[id * C + c];
  }
  auto node = MakeNode("embedding", std::move(out), {weight.node()});
  node->saved_ints = ids;
  if (node->requires_grad) {
    node->backward = [C](Node* n) {
      Node* w = n->parents[0].get();
      if (!w->requires_grad) return;
      Tensor& dw = w->EnsureGrad();
      const float* g = n->grad.data();
      for (size_t i = 0; i < n->saved_ints.size(); ++i) {
        const int64_t id = n->saved_ints[i];
        for (int64_t c = 0; c < C; ++c) {
          dw[id * C + c] += g[static_cast<int64_t>(i) * C + c];
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  const int64_t C = x.shape().back();
  LLM_CHECK_EQ(gamma.numel(), C);
  LLM_CHECK_EQ(beta.numel(), C);
  const int64_t R = x.numel() / C;
  Tensor out(x.shape());
  Tensor mean({R});
  Tensor rstd({R});
  const float* in = x.value().data();
  const float* gw = gamma.value().data();
  const float* bw = beta.value().data();
  float* o = out.data();
  for (int64_t r = 0; r < R; ++r) {
    const float* row = in + r * C;
    double m = 0.0;
    for (int64_t c = 0; c < C; ++c) m += row[c];
    m /= C;
    double var = 0.0;
    for (int64_t c = 0; c < C; ++c) {
      const double d = row[c] - m;
      var += d * d;
    }
    var /= C;
    const float rs = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    mean[r] = static_cast<float>(m);
    rstd[r] = rs;
    for (int64_t c = 0; c < C; ++c) {
      const float xhat = (row[c] - static_cast<float>(m)) * rs;
      o[r * C + c] = gw[c] * xhat + bw[c];
    }
  }
  auto node = MakeNode("layernorm", std::move(out),
                       {x.node(), gamma.node(), beta.node()});
  node->saved.push_back(std::move(mean));
  node->saved.push_back(std::move(rstd));
  if (node->requires_grad) {
    node->backward = [R, C](Node* n) {
      Node* x = n->parents[0].get();
      Node* gamma = n->parents[1].get();
      Node* beta = n->parents[2].get();
      const Tensor& mean = n->saved[0];
      const Tensor& rstd = n->saved[1];
      const float* in = x->value.data();
      const float* gw = gamma->value.data();
      const float* g = n->grad.data();
      Tensor* dgamma = gamma->requires_grad ? &gamma->EnsureGrad() : nullptr;
      Tensor* dbeta = beta->requires_grad ? &beta->EnsureGrad() : nullptr;
      Tensor* dx = x->requires_grad ? &x->EnsureGrad() : nullptr;
      for (int64_t r = 0; r < R; ++r) {
        const float* row = in + r * C;
        const float* grow = g + r * C;
        const float m = mean[r];
        const float rs = rstd[r];
        // Two reductions shared by all of dx's terms.
        float sum_gg = 0.0f;        // sum of g*gamma
        float sum_gg_xhat = 0.0f;   // sum of g*gamma*xhat
        for (int64_t c = 0; c < C; ++c) {
          const float xhat = (row[c] - m) * rs;
          const float gg = grow[c] * gw[c];
          sum_gg += gg;
          sum_gg_xhat += gg * xhat;
          if (dgamma) (*dgamma)[c] += grow[c] * xhat;
          if (dbeta) (*dbeta)[c] += grow[c];
        }
        if (dx) {
          const float inv_c = 1.0f / static_cast<float>(C);
          for (int64_t c = 0; c < C; ++c) {
            const float xhat = (row[c] - m) * rs;
            const float gg = grow[c] * gw[c];
            (*dx)[r * C + c] +=
                rs * (gg - inv_c * sum_gg - xhat * inv_c * sum_gg_xhat);
          }
        }
      }
    };
  }
  return Variable::FromNode(node);
}

Variable Dropout(const Variable& x, float p, util::Rng* rng, bool training) {
  if (!training || p <= 0.0f) return x;
  LLM_CHECK(rng != nullptr);
  LLM_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(x.shape());
  Tensor out(x.shape());
  for (int64_t i = 0; i < out.numel(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.0f : scale;
    mask[i] = m;
    out[i] = x.value()[i] * m;
  }
  auto node = MakeNode("dropout", std::move(out), {x.node()});
  node->saved.push_back(std::move(mask));
  if (node->requires_grad) {
    node->backward = [](Node* n) {
      Node* x = n->parents[0].get();
      if (!x->requires_grad) return;
      Tensor& dx = x->EnsureGrad();
      const Tensor& mask = n->saved[0];
      for (int64_t i = 0; i < dx.numel(); ++i) {
        dx[i] += n->grad[i] * mask[i];
      }
    };
  }
  return Variable::FromNode(node);
}

Variable MultiHeadCausalAttention(const Variable& qkv,
                                  const AttentionOptions& opts) {
  LLM_CHECK_EQ(qkv.value().ndim(), 3);
  const int64_t B = qkv.value().dim(0);
  const int64_t T = qkv.value().dim(1);
  const int64_t C3 = qkv.value().dim(2);
  LLM_CHECK_EQ(C3 % 3, 0);
  const int64_t C = C3 / 3;
  const int64_t H = opts.num_heads;
  LLM_CHECK_GT(H, 0);
  LLM_CHECK_EQ(C % H, 0) << "channels" << C << "not divisible by heads" << H;
  const int64_t hd = C / H;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  const int64_t window = opts.window;

  Tensor out({B, T, C});
  Tensor att({B, H, T, T});  // probabilities; zero outside the causal window
  const float* in = qkv.value().data();
  float* o = out.data();
  float* a = att.data();

  auto q_ptr = [&](int64_t b, int64_t t, int64_t h) {
    return in + (b * T + t) * C3 + h * hd;
  };
  auto k_ptr = [&](int64_t b, int64_t t, int64_t h) {
    return in + (b * T + t) * C3 + C + h * hd;
  };
  auto v_ptr = [&](int64_t b, int64_t t, int64_t h) {
    return in + (b * T + t) * C3 + 2 * C + h * hd;
  };
  auto lo_for = [&](int64_t i) {
    return window > 0 ? std::max<int64_t>(0, i - window + 1) : int64_t{0};
  };

  for (int64_t b = 0; b < B; ++b) {
    for (int64_t h = 0; h < H; ++h) {
      for (int64_t i = 0; i < T; ++i) {
        const float* q = q_ptr(b, i, h);
        float* arow = a + ((b * H + h) * T + i) * T;
        const int64_t lo = lo_for(i);
        float maxv = -1e30f;
        for (int64_t j = lo; j <= i; ++j) {
          const float* k = k_ptr(b, j, h);
          float s = 0.0f;
          for (int64_t c = 0; c < hd; ++c) s += q[c] * k[c];
          s *= inv_sqrt;
          arow[j] = s;
          maxv = std::max(maxv, s);
        }
        float sum = 0.0f;
        for (int64_t j = lo; j <= i; ++j) {
          arow[j] = std::exp(arow[j] - maxv);
          sum += arow[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = lo; j <= i; ++j) arow[j] *= inv;
        float* orow = o + (b * T + i) * C + h * hd;
        for (int64_t c = 0; c < hd; ++c) orow[c] = 0.0f;
        for (int64_t j = lo; j <= i; ++j) {
          const float* v = v_ptr(b, j, h);
          const float p = arow[j];
          for (int64_t c = 0; c < hd; ++c) orow[c] += p * v[c];
        }
      }
    }
  }

  if (opts.save_probs != nullptr) *opts.save_probs = att;

  auto node = MakeNode("mh_causal_attention", std::move(out), {qkv.node()});
  node->saved.push_back(std::move(att));
  node->saved_ints = {B, T, C, H, window};
  if (node->requires_grad) {
    node->backward = [inv_sqrt](Node* n) {
      Node* qkv = n->parents[0].get();
      if (!qkv->requires_grad) return;
      const int64_t B = n->saved_ints[0], T = n->saved_ints[1],
                    C = n->saved_ints[2], H = n->saved_ints[3],
                    window = n->saved_ints[4];
      const int64_t hd = C / H;
      const int64_t C3 = 3 * C;
      const Tensor& att = n->saved[0];
      const float* a = att.data();
      const float* g = n->grad.data();
      const float* in = qkv->value.data();
      Tensor& dqkv = qkv->EnsureGrad();
      float* din = dqkv.data();

      std::vector<float> datt(static_cast<size_t>(T));
      for (int64_t b = 0; b < B; ++b) {
        for (int64_t h = 0; h < H; ++h) {
          for (int64_t i = 0; i < T; ++i) {
            const int64_t lo =
                window > 0 ? std::max<int64_t>(0, i - window + 1) : int64_t{0};
            const float* arow = a + ((b * H + h) * T + i) * T;
            const float* grow = g + (b * T + i) * C + h * hd;
            // d(att) and dV.
            for (int64_t j = lo; j <= i; ++j) {
              const float* v = in + (b * T + j) * C3 + 2 * C + h * hd;
              float* dv = din + (b * T + j) * C3 + 2 * C + h * hd;
              float acc = 0.0f;
              const float p = arow[j];
              for (int64_t c = 0; c < hd; ++c) {
                acc += grow[c] * v[c];
                dv[c] += p * grow[c];
              }
              datt[static_cast<size_t>(j)] = acc;
            }
            // Softmax backward -> scores gradient (reuse datt in place).
            float dot = 0.0f;
            for (int64_t j = lo; j <= i; ++j) {
              dot += arow[j] * datt[static_cast<size_t>(j)];
            }
            // dQ, dK.
            const float* q = in + (b * T + i) * C3 + h * hd;
            float* dq = din + (b * T + i) * C3 + h * hd;
            for (int64_t j = lo; j <= i; ++j) {
              const float ds =
                  arow[j] * (datt[static_cast<size_t>(j)] - dot) * inv_sqrt;
              const float* k = in + (b * T + j) * C3 + C + h * hd;
              float* dk = din + (b * T + j) * C3 + C + h * hd;
              for (int64_t c = 0; c < hd; ++c) {
                dq[c] += ds * k[c];
                dk[c] += ds * q[c];
              }
            }
          }
        }
      }
    };
  }
  return Variable::FromNode(node);
}

}  // namespace llm::core
