#include "core/graph.h"

#include <unordered_set>

namespace llm::core {

Tensor& Node::EnsureGrad() {
  if (!grad.valid() || !grad.SameShape(value)) {
    grad = Tensor(value.shape());
  }
  return grad;
}

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  LLM_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  LLM_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  LLM_CHECK(defined());
  return node_->EnsureGrad();
}

Tensor& Variable::mutable_grad() {
  LLM_CHECK(defined());
  return node_->EnsureGrad();
}

bool Variable::has_grad() const {
  LLM_CHECK(defined());
  return node_->grad.valid();
}

bool Variable::requires_grad() const {
  LLM_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  LLM_CHECK(defined());
  if (node_->grad.valid()) node_->grad.SetZero();
}

Variable Variable::FromNode(NodePtr node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

void Backward(const Variable& loss) {
  LLM_CHECK(loss.defined());
  LLM_CHECK_EQ(loss.numel(), 1) << "Backward requires a scalar loss";

  // Iterative post-order DFS to get a reverse topological order.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  Node* root = loss.node().get();
  if (!root->requires_grad) return;  // nothing to differentiate
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && !visited.count(p)) {
        visited.insert(p);
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed d(loss)/d(loss) = 1 and run the tape backwards.
  root->EnsureGrad().Fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward && n->grad.valid()) n->backward(n);
  }
}

Tensor NumericalGradient(const std::function<Variable()>& f, Variable x,
                         float eps) {
  LLM_CHECK(x.defined());
  Tensor grad(x.shape());
  Tensor& value = x.mutable_value();
  for (int64_t i = 0; i < value.numel(); ++i) {
    const float original = value[i];
    value[i] = original + eps;
    const float up = f().value()[0];
    value[i] = original - eps;
    const float down = f().value()[0];
    value[i] = original;
    grad[i] = (up - down) / (2.0f * eps);
  }
  return grad;
}

}  // namespace llm::core
