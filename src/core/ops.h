// Differentiable operations over Variables.
//
// Every op builds one graph node eagerly; backward closures are hand-written
// and verified against NumericalGradient in tests/core_ops_test.cc. The op
// set is deliberately small and fused where it matters (layernorm, softmax
// cross-entropy, multi-head causal attention) — the style of llm.c rather
// than a general broadcasting engine — which keeps every kernel auditable.
#ifndef TFMR_CORE_OPS_H_
#define TFMR_CORE_OPS_H_

#include <vector>

#include "core/graph.h"
#include "util/rng.h"

namespace llm::core {

// ---------------------------------------------------------------------------
// Elementwise arithmetic (operands must have identical shapes).
// ---------------------------------------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
/// s * a.
Variable ScalarMul(const Variable& a, float s);
/// a + s (elementwise).
Variable AddScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------
/// [m,k] x [k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);
/// [m,n] -> [n,m].
Variable Transpose2D(const Variable& a);
/// x: [..., n], bias: [n]; adds bias to every row. The broadcast used for
/// both Linear bias and positional-embedding addition ([B,T*C] + [T*C]).
Variable AddRowBroadcast(const Variable& x, const Variable& bias);

// ---------------------------------------------------------------------------
// Activations.
// ---------------------------------------------------------------------------
Variable Relu(const Variable& x);
/// tanh-approximation GELU (the GPT-2 form).
Variable Gelu(const Variable& x);
Variable TanhOp(const Variable& x);
Variable SigmoidOp(const Variable& x);

// ---------------------------------------------------------------------------
// Shape manipulation (all copying; tensors are contiguous).
// ---------------------------------------------------------------------------
Variable Reshape(const Variable& x, Shape new_shape);
/// x viewed as [R, n]; returns [R, len] columns [start, start+len).
Variable SliceLastDim(const Variable& x, int64_t start, int64_t len);
/// Concatenates along the last dimension; leading dims must agree.
Variable ConcatLastDim(const std::vector<Variable>& xs);
/// T tensors of shape [B, C] -> [B, T, C] (time-major stacking for RNNs).
Variable StackTime(const std::vector<Variable>& steps);
/// x: [N, C]; returns rows indexed by `rows` as [M, C].
Variable GatherRows(const Variable& x, const std::vector<int64_t>& rows);

// ---------------------------------------------------------------------------
// Softmax and losses.
// ---------------------------------------------------------------------------
/// Softmax over the last dimension.
Variable Softmax(const Variable& x);
/// Mean negative log-likelihood of integer targets under softmax(logits).
/// logits: [N, V]; targets.size() == N. Rows with target == ignore_index
/// contribute nothing (padding). This is Eq. 3 of the paper evaluated on a
/// batch. Fused for numerical stability.
Variable CrossEntropyLogits(const Variable& logits,
                            const std::vector<int64_t>& targets,
                            int64_t ignore_index = -1);
/// Mean squared error against a constant target tensor.
Variable MseLoss(const Variable& pred, const Tensor& target);
Variable SumAll(const Variable& x);
Variable MeanAll(const Variable& x);

// ---------------------------------------------------------------------------
// Embedding.
// ---------------------------------------------------------------------------
/// weight: [V, C]; returns [ids.size(), C] with rows weight[ids[i]].
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& ids);

// ---------------------------------------------------------------------------
// Normalization & regularization.
// ---------------------------------------------------------------------------
/// Layer normalization over the last dimension with affine parameters.
/// x: [..., C], gamma/beta: [C].
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);
/// Inverted dropout: identity when !training or p == 0.
Variable Dropout(const Variable& x, float p, util::Rng* rng, bool training);

// ---------------------------------------------------------------------------
// Attention (Eq. 13-14 of the paper, multi-head, causal).
// ---------------------------------------------------------------------------
struct AttentionOptions {
  int num_heads = 1;
  /// If > 0, each position attends only to the last `window` positions
  /// (the "sparse attention" of §6); otherwise full causal attention.
  int window = 0;
  /// If non-null, receives the attention probabilities [B, H, T, T] at
  /// forward time (for interpretability: induction-head scores etc.).
  Tensor* save_probs = nullptr;
};

/// qkv: [B, T, 3C] (query rows, then key rows, then value rows along the
/// last dim); returns [B, T, C]. C must be divisible by num_heads. Scores
/// are scaled by 1/sqrt(head_dim) and masked causally.
Variable MultiHeadCausalAttention(const Variable& qkv,
                                  const AttentionOptions& opts);

}  // namespace llm::core

#endif  // TFMR_CORE_OPS_H_
