// Dense float32 tensor: the numeric substrate for every model in the repo.
//
// Deliberately simple — contiguous row-major storage, deep-copy semantics,
// no views — so that the autograd layer above it (graph.h) and the fused
// kernels (ops.cc) are easy to verify. All shape errors are programmer
// errors and abort via LLM_CHECK.
#ifndef TFMR_CORE_TENSOR_H_
#define TFMR_CORE_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace llm::core {

using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
int64_t NumElements(const Shape& shape);

/// "[2, 3, 4]" formatting for error messages.
std::string ShapeToString(const Shape& shape);

/// Contiguous row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0 placeholder, 1 element? No: zero elements,
  /// empty shape means scalar). Default is an *invalid* tensor with no
  /// storage; check valid() before use.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  /// Scalar (rank-0) tensor.
  static Tensor Scalar(float value);
  /// Takes ownership of `data`; data.size() must equal NumElements(shape).
  static Tensor FromVector(Shape shape, std::vector<float> data);
  /// I.i.d. normal entries with the given stddev.
  static Tensor RandomNormal(Shape shape, util::Rng* rng, float mean = 0.0f,
                             float stddev = 1.0f);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor RandomUniform(Shape shape, util::Rng* rng, float lo,
                              float hi);

  bool valid() const { return !data_.empty() || NumElements(shape_) == 0; }

  const Shape& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    LLM_CHECK_GE(i, 0);
    LLM_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    LLM_CHECK_GE(i, 0);
    LLM_CHECK_LT(i, numel());
    return data_[static_cast<size_t>(i)];
  }

  /// Multi-index access (rank must match argument count).
  float& At(std::initializer_list<int64_t> idx);
  float At(std::initializer_list<int64_t> idx) const;

  /// Returns a copy with a new shape; element count must match.
  Tensor Reshaped(Shape new_shape) const;

  /// In-place fills.
  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// this += other (same shape).
  void Add(const Tensor& other);
  /// this += scale * other (same shape).
  void AddScaled(const Tensor& other, float scale);
  /// this *= scale.
  void Scale(float scale);

  /// Reductions.
  float Sum() const;
  float Mean() const;
  float MaxAbs() const;
  /// Squared L2 norm.
  float SquaredNorm() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Max |a-b| over elements; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace llm::core

#endif  // TFMR_CORE_TENSOR_H_
