// Per-request tracing: a span tree answering "where did request N spend
// its time".
//
// A Trace is minted at Submit (serve::InferenceServer, or the fleet
// router, which then propagates the same Trace into every attempt it
// dispatches) and travels with the request; each hop opens a span under
// its parent — queue wait, admission, decode, stream callbacks, and the
// fleet hops (dispatch, failover re-dispatch, hedge launch/win/loss).
// Wait returns the finished tree in RequestResult::trace; FormatTrace
// pretty-prints it.
//
// Concurrency: spans are recorded from whichever thread the hop runs on
// (client, scheduler, worker, router pump), serialized by one mutex per
// trace. That is deliberately simple — a request records a handful to a
// few hundred spans over its lifetime, so the lock is uncontended and
// far off the per-token hot path (untraced requests never touch it).
// The tree is capped at kMaxSpans; past it, spans are counted as dropped
// instead of recorded.
#ifndef TFMR_OBS_TRACE_H_
#define TFMR_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace llm::obs {

struct TraceSpan {
  int32_t id = 0;
  int32_t parent = -1;   // -1: the root span itself
  std::string name;
  int64_t start_ns = 0;  // steady clock
  int64_t end_ns = 0;    // 0 while open
  /// Small numeric attribute; meaning depends on the span name (replica
  /// index for dispatch spans, KV slot for admission, token for steps).
  int64_t detail = 0;
  /// Free-form annotation, usually set at EndSpan ("won", "lost: fault").
  std::string note;

  double duration_ms() const {
    return end_ns > start_ns
               ? static_cast<double>(end_ns - start_ns) / 1e6
               : 0.0;
  }
};

class Trace {
 public:
  static constexpr int32_t kRootSpan = 0;
  static constexpr size_t kMaxSpans = 512;

  /// Creates the root span (id 0, name "request") open at construction.
  explicit Trace(uint64_t trace_id);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  /// Opens a span under `parent` and returns its id (-1 if the trace is
  /// full; every other call accepts -1 as a silent no-op id).
  int32_t BeginSpan(const std::string& name, int32_t parent = kRootSpan,
                    int64_t detail = 0);
  /// Closes a span. Idempotent — a second End (e.g. the watchdog and the
  /// scheduler both retiring a request) keeps the first end time; a
  /// non-empty note overwrites an empty one.
  void EndSpan(int32_t id, const std::string& note = std::string());
  /// Records an instant (zero-duration, already-closed) span.
  int32_t Event(const std::string& name, int32_t parent = kRootSpan,
                int64_t detail = 0, const std::string& note = std::string());

  /// Snapshot of all spans recorded so far (ids are indices).
  std::vector<TraceSpan> Spans() const;
  size_t dropped() const;

 private:
  int32_t AddSpanLocked(const std::string& name, int32_t parent,
                        int64_t detail);

  const uint64_t trace_id_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  size_t dropped_ = 0;
};

/// Pretty-prints the span tree, children indented under parents in
/// start order, with durations and notes. `spans` as returned by
/// Trace::Spans().
std::string FormatSpans(const std::vector<TraceSpan>& spans,
                        uint64_t trace_id);
std::string FormatTrace(const Trace& trace);

}  // namespace llm::obs

#endif  // TFMR_OBS_TRACE_H_
