// Lock-free flight recorder: a bounded ring of recent runtime events,
// dumpable on demand or on failure.
//
// The serving and training runtimes append low-frequency lifecycle events
// (admissions, retirements, injected faults, breaker transitions, reload
// phases, divergence rollbacks, watchdog stalls) as they happen; when
// something goes wrong, Dump() reconstructs "what was the system doing in
// the seconds before" without rerunning under logging.
//
// Concurrency: Record is wait-free for writers — one relaxed fetch_add
// claims a ticket, the slot's payload fields are relaxed atomics, and a
// per-slot sequence number (seqlock discipline: odd while writing, even
// when published, ticket-encoded) lets Dump detect and skip slots that
// are mid-write or were lapped while being read. Racing producers and a
// concurrent dumper are TSan-clean because every shared field is atomic.
// Events whose slot was overwritten before the dump are simply gone —
// the recorder keeps the newest `capacity` events, nothing more.
#ifndef TFMR_OBS_FLIGHT_RECORDER_H_
#define TFMR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace llm::obs {

/// Keep in sync with FlightEventTypeName().
enum class FlightEventType : int32_t {
  kAdmission = 0,      // a=KV slot, b=request id
  kRetirement,         // a=FinishReason, b=request id, c=tokens generated
  kFaultInjected,      // a=util::FaultSite, b=occurrence index
  kBreakerTransition,  // a=replica, b=from BreakerState, c=to BreakerState
  kReloadPhase,        // a=replica, b=ReloadPhase, c=1 ok / 0 failed
  kStallDetected,      // a=victim count, b=elapsed ms
  kLeakRepaired,       // a=slots repaired
  kDispatch,           // a=replica, b=fleet request id, c=1 if hedge
  kFailover,           // a=replica (new), b=fleet request id, c=attempt #
  kHedgeLaunch,        // a=replica, b=fleet request id
  kTrainDivergence,    // a=kind (0 nan-loss, 1 grad-explosion), b=step
  kTrainRollback,      // a=1 rollback / 0 skip-step, b=resume step
  kCheckpointSaved,    // b=step
  kDrainBegin,         // (server or fleet)
  kWorkerJoin,         // dist: a=rank, b=epoch, c=start step
  kWorkerDeath,        // dist: a=rank, b=step, c=reason (0 kill, 1 stall,
                       //       2 collective failure)
  kDistRecovery,       // dist: a=new epoch, b=resume step, c=recovery #
  kCollectiveAbort,    // dist: a=rank, b=sequence, c=reason (0 timeout,
                       //       1 corrupt payload, 2 epoch abort)
  kQuotaExhausted,     // a=TenantClass, b=request id, c=tokens requested
  kShed,               // a=TenantClass (victim), b=request id,
                       //   c=incoming TenantClass
  kPreempt,            // a=incoming TenantClass, b=victim request id,
                       //   c=victim tokens generated
  kTransportConnect,   // dist: a=rank, b=epoch, c=0 first / 1 reconnect
  kTransportDisconnect,// dist: a=rank, b=epoch, c=0 clean / 1 dirty
  kTransportFence,     // dist: a=rank, b=stale epoch, c=current epoch
  kProcSpawn,          // dist: a=rank, b=pid, c=epoch
  kTelemetryShip,      // dist: a=rank, b=step, c=reason (0 periodic,
                       //       1 final, 2 postmortem)
  kPostmortemDump,     // dist: a=rank, b=step, c=signal (0 = not a signal)
  kIncidentReport,     // dist: a=victim rank, b=epoch, c=recovery #
};

const char* FlightEventTypeName(FlightEventType type);

/// One recorded event. `ticket` is the global record index (monotonic),
/// which orders events exactly within one recorder.
///
/// Clock contract: `ts_ns` MUST come from std::chrono::steady_clock — a
/// monotonic source that never steps backwards under NTP slews or
/// wall-clock adjustments — so a merged multi-rank timeline can never
/// reorder across a system-clock step. On Linux steady_clock is
/// CLOCK_MONOTONIC, whose epoch (boot) is shared by every process on the
/// machine, which is what makes timestamps from different worker
/// processes on one box directly comparable when the telemetry plane
/// (obs/telemetry.h) merges their events into a gang timeline.
struct FlightEvent {
  uint64_t ticket = 0;
  int64_t ts_ns = 0;
  FlightEventType type = FlightEventType::kAdmission;
  int32_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit FlightRecorder(size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every runtime component appends to.
  static FlightRecorder& Global();

  /// Appends one event. Wait-free; a no-op while disabled.
  void Record(FlightEventType type, int32_t a = 0, int64_t b = 0,
              int64_t c = 0);

  /// Recording on/off (default on). One relaxed load on the record path.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Events ever recorded (including ones the ring has since dropped).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the newest events, oldest first, at most `max_events`.
  /// Safe concurrently with writers: slots being written (or lapped
  /// mid-read) are skipped rather than returned torn.
  std::vector<FlightEvent> Dump(size_t max_events = SIZE_MAX) const;

  /// Dump restricted to events with ticket >= `min_ticket`: the
  /// incremental-delta primitive the telemetry shipper uses ("everything
  /// since my last ship"). Same concurrency contract as Dump; events
  /// older than min_ticket that still sit in the ring are filtered out,
  /// and events that were lapped are simply gone.
  std::vector<FlightEvent> DumpSince(uint64_t min_ticket,
                                     size_t max_events = SIZE_MAX) const;

  /// Human-readable dump, newest `max_events` events, one per line with
  /// timestamps relative to the newest event.
  std::string Format(size_t max_events = 32) const;

  /// Zeroes the ring and the ticket counter. Callers must ensure no
  /// concurrent Record (test/bench boundaries only).
  void Clear();

  size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 empty; odd writing; even => ticket
    std::atomic<int64_t> ts_ns{0};
    std::atomic<int64_t> type_a{0};  // type in high 32 bits, a in low 32
    std::atomic<int64_t> b{0};
    std::atomic<int64_t> c{0};
  };

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace llm::obs

#endif  // TFMR_OBS_FLIGHT_RECORDER_H_
