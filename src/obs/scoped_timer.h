// Scoped profiling timers for hot paths.
//
//   void BatchedDecodeStep(...) {
//     static obs::Histogram* hist =
//         obs::MetricsRegistry::Global().GetHistogram("nn.decode_step_ms");
//     obs::ScopedTimer timer(hist);
//     ...
//   }
//
// While profiling is disabled (the default) the timer is one relaxed
// atomic load and a null pointer — no clock reads, nothing recorded —
// so instrumented hot paths pay effectively nothing. EnableProfiling(true)
// turns every timer on; durations land in the given histogram in
// milliseconds.
#ifndef TFMR_OBS_SCOPED_TIMER_H_
#define TFMR_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace llm::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(ProfilingEnabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start_)
                             .count());
    }
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace llm::obs

#endif  // TFMR_OBS_SCOPED_TIMER_H_
