#include "obs/telemetry.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace llm::obs {
namespace {

// "TFMT": same family as the wire's "TFMW", distinct so a telemetry blob
// mistaken for a frame (or vice versa) fails fast on magic.
constexpr uint32_t kTelemetryMagic = 0x54464D54u;
constexpr uint16_t kTelemetryVersion = 1;

// Sanity bounds for the decoder: anything larger is a corrupt stream,
// not a plausible snapshot.
constexpr uint32_t kMaxEntries = 1u << 20;
constexpr uint32_t kMaxNameLen = 1u << 12;
constexpr uint32_t kMaxBuckets = 1u << 10;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over the decode buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U16(uint16_t* v) {
    if (pos_ + 2 > len_) return failed_ = true, false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > len_) return failed_ = true, false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > len_) return failed_ = true, false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool String(std::string* s) {
    uint32_t n;
    if (!U32(&n) || n > kMaxNameLen || pos_ + n > len_) {
      return failed_ = true, false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }
  bool failed() const { return failed_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool failed_ = false;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Display order of the merged timeline: machine-wide steady timestamp,
/// then (epoch, rank, ticket) so identical-timestamp events (coarse
/// clocks, same-instant records on different ranks) order
/// deterministically.
bool GangEventBefore(const GangEvent& x, const GangEvent& y) {
  if (x.event.ts_ns != y.event.ts_ns) return x.event.ts_ns < y.event.ts_ns;
  if (x.epoch != y.epoch) return x.epoch < y.epoch;
  if (x.rank != y.rank) return x.rank < y.rank;
  return x.event.ticket < y.event.ticket;
}

}  // namespace

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeRankTelemetry(const RankTelemetry& telemetry) {
  std::vector<uint8_t> out;
  PutU32(&out, kTelemetryMagic);
  PutU16(&out, kTelemetryVersion);
  PutU16(&out, 0);  // reserved
  PutU32(&out, static_cast<uint32_t>(telemetry.rank));
  PutI64(&out, telemetry.epoch);
  PutI64(&out, telemetry.step);
  PutU32(&out, static_cast<uint32_t>(telemetry.reason));

  PutU32(&out, static_cast<uint32_t>(telemetry.metrics.counters.size()));
  for (const auto& [name, value] : telemetry.metrics.counters) {
    PutString(&out, name);
    PutU64(&out, value);
  }
  PutU32(&out, static_cast<uint32_t>(telemetry.metrics.gauges.size()));
  for (const auto& [name, value] : telemetry.metrics.gauges) {
    PutString(&out, name);
    PutF64(&out, value);
  }
  PutU32(&out, static_cast<uint32_t>(telemetry.metrics.histograms.size()));
  for (const auto& [name, snapshot] : telemetry.metrics.histograms) {
    PutString(&out, name);
    PutU64(&out, snapshot.count);
    PutF64(&out, snapshot.sum);
    PutF64(&out, snapshot.max);
    PutU32(&out, static_cast<uint32_t>(snapshot.buckets.size()));
    for (const uint64_t b : snapshot.buckets) PutU64(&out, b);
  }
  PutU32(&out, static_cast<uint32_t>(telemetry.events.size()));
  for (const FlightEvent& event : telemetry.events) {
    PutU64(&out, event.ticket);
    PutI64(&out, event.ts_ns);
    PutU32(&out, static_cast<uint32_t>(event.type));
    PutU32(&out, static_cast<uint32_t>(event.a));
    PutI64(&out, event.b);
    PutI64(&out, event.c);
  }
  PutU32(&out, util::Crc32(out.data(), out.size()));
  return out;
}

util::StatusOr<RankTelemetry> DecodeRankTelemetry(const uint8_t* data,
                                                  size_t len) {
  if (len < 4 + 4) {
    return util::Status::Internal("telemetry blob truncated (" +
                                  std::to_string(len) + " bytes)");
  }
  // CRC first: everything after this can trust the bytes.
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(data[len - 4 + static_cast<size_t>(i)])
                  << (8 * i);
  }
  if (util::Crc32(data, len - 4) != stored_crc) {
    return util::Status::Internal("telemetry blob failed its CRC");
  }

  Reader r(data, len - 4);
  uint32_t magic = 0;
  uint16_t version = 0, reserved = 0;
  RankTelemetry t;
  uint32_t rank = 0, reason = 0;
  if (!r.U32(&magic) || magic != kTelemetryMagic) {
    return util::Status::Internal("telemetry blob has bad magic");
  }
  if (!r.U16(&version) || version != kTelemetryVersion || !r.U16(&reserved)) {
    return util::Status::Internal("telemetry blob has unsupported version");
  }
  if (!r.U32(&rank) || !r.I64(&t.epoch) || !r.I64(&t.step) ||
      !r.U32(&reason)) {
    return util::Status::Internal("telemetry blob truncated in header");
  }
  t.rank = static_cast<int32_t>(rank);
  t.reason = static_cast<int32_t>(reason);

  uint32_t n = 0;
  if (!r.U32(&n) || n > kMaxEntries) {
    return util::Status::Internal("telemetry blob has a bad counter count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!r.String(&name) || !r.U64(&value)) {
      return util::Status::Internal("telemetry blob truncated in counters");
    }
    t.metrics.counters[name] = value;
  }
  if (!r.U32(&n) || n > kMaxEntries) {
    return util::Status::Internal("telemetry blob has a bad gauge count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0.0;
    if (!r.String(&name) || !r.F64(&value)) {
      return util::Status::Internal("telemetry blob truncated in gauges");
    }
    t.metrics.gauges[name] = value;
  }
  if (!r.U32(&n) || n > kMaxEntries) {
    return util::Status::Internal("telemetry blob has a bad histogram count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    HistogramSnapshot snapshot;
    uint32_t n_buckets = 0;
    if (!r.String(&name) || !r.U64(&snapshot.count) || !r.F64(&snapshot.sum) ||
        !r.F64(&snapshot.max) || !r.U32(&n_buckets) ||
        n_buckets > kMaxBuckets) {
      return util::Status::Internal("telemetry blob truncated in histograms");
    }
    snapshot.buckets.resize(n_buckets);
    for (uint32_t b = 0; b < n_buckets; ++b) {
      if (!r.U64(&snapshot.buckets[b])) {
        return util::Status::Internal(
            "telemetry blob truncated in histogram buckets");
      }
    }
    t.metrics.histograms[name] = std::move(snapshot);
  }
  if (!r.U32(&n) || n > kMaxEntries) {
    return util::Status::Internal("telemetry blob has a bad event count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    FlightEvent event;
    uint32_t type = 0, a = 0;
    if (!r.U64(&event.ticket) || !r.I64(&event.ts_ns) || !r.U32(&type) ||
        !r.U32(&a) || !r.I64(&event.b) || !r.I64(&event.c)) {
      return util::Status::Internal("telemetry blob truncated in events");
    }
    event.type = static_cast<FlightEventType>(type);
    event.a = static_cast<int32_t>(a);
    t.events.push_back(event);
  }
  if (r.pos() != len - 4) {
    return util::Status::Internal("telemetry blob has trailing bytes");
  }
  return t;
}

util::StatusOr<RankTelemetry> DecodeRankTelemetry(
    const std::vector<uint8_t>& bytes) {
  return DecodeRankTelemetry(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Capture.
// ---------------------------------------------------------------------------

RankTelemetry CaptureRankTelemetry(int32_t rank, int64_t epoch, int64_t step,
                                   int32_t reason,
                                   const TelemetryCaptureOptions& options) {
  RankTelemetry t;
  t.rank = rank;
  t.epoch = epoch;
  t.step = step;
  t.reason = reason;
  t.metrics = MetricsRegistry::Global().Snapshot(options.metric_prefix);
  if (options.include_events) {
    t.events = FlightRecorder::Global().DumpSince(options.events_from_ticket);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Gang timeline + aggregation.
// ---------------------------------------------------------------------------

std::string FormatGangTimeline(const std::vector<GangEvent>& events) {
  if (events.empty()) return "  (gang timeline empty)\n";
  const int64_t newest = events.back().event.ts_ns;
  std::string out;
  char line[224];
  for (const GangEvent& ge : events) {
    char who[16];
    if (ge.rank == kCoordinatorRank) {
      std::snprintf(who, sizeof(who), "coord");
    } else {
      std::snprintf(who, sizeof(who), "rank %d", ge.rank);
    }
    std::snprintf(line, sizeof(line),
                  "  [%9.2fms] %-7s e%lld #%-6llu %-20s a=%d b=%lld c=%lld\n",
                  static_cast<double>(ge.event.ts_ns - newest) / 1e6, who,
                  static_cast<long long>(ge.epoch),
                  static_cast<unsigned long long>(ge.event.ticket),
                  FlightEventTypeName(ge.event.type), ge.event.a,
                  static_cast<long long>(ge.event.b),
                  static_cast<long long>(ge.event.c));
    out += line;
  }
  return out;
}

void TelemetryAggregator::Ingest(const RankTelemetry& telemetry,
                                 size_t wire_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_[telemetry.rank] += wire_bytes;
  ++ingests_[telemetry.rank];
  for (const FlightEvent& event : telemetry.events) {
    if (seen_
            .insert({telemetry.epoch, telemetry.rank, event.ticket})
            .second) {
      timeline_.push_back({telemetry.rank, telemetry.epoch, event});
    }
  }
  latest_[telemetry.rank] = telemetry;
}

void TelemetryAggregator::IngestCoordinatorEvents(
    int64_t epoch, const std::vector<FlightEvent>& events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FlightEvent& event : events) {
    if (seen_.insert({epoch, kCoordinatorRank, event.ticket}).second) {
      timeline_.push_back({kCoordinatorRank, epoch, event});
    }
  }
}

uint64_t TelemetryAggregator::MergedCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (const auto& [rank, t] : latest_) {
    const auto it = t.metrics.counters.find(name);
    if (it != t.metrics.counters.end()) sum += it->second;
  }
  return sum;
}

HistogramSnapshot TelemetryAggregator::MergedHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot merged;
  for (const auto& [rank, t] : latest_) {
    const auto it = t.metrics.histograms.find(name);
    if (it != t.metrics.histograms.end()) merged.Merge(it->second);
  }
  return merged;
}

uint64_t TelemetryAggregator::RankCounter(int32_t rank,
                                          const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto rit = latest_.find(rank);
  if (rit == latest_.end()) return 0;
  const auto it = rit->second.metrics.counters.find(name);
  return it == rit->second.metrics.counters.end() ? 0 : it->second;
}

double TelemetryAggregator::RankGauge(int32_t rank,
                                      const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto rit = latest_.find(rank);
  if (rit == latest_.end()) return 0.0;
  const auto it = rit->second.metrics.gauges.find(name);
  return it == rit->second.metrics.gauges.end() ? 0.0 : it->second;
}

bool TelemetryAggregator::HasRank(int32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_.count(rank) != 0;
}

int64_t TelemetryAggregator::RankStep(int32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = latest_.find(rank);
  return it == latest_.end() ? -1 : it->second.step;
}

uint64_t TelemetryAggregator::IngestedBytes(int32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = bytes_.find(rank);
  return it == bytes_.end() ? 0 : it->second;
}

int64_t TelemetryAggregator::IngestCount(int32_t rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = ingests_.find(rank);
  return it == ingests_.end() ? 0 : it->second;
}

std::vector<GangEvent> TelemetryAggregator::Timeline(
    size_t max_events) const {
  std::vector<GangEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = timeline_;
  }
  std::sort(out.begin(), out.end(), GangEventBefore);
  if (out.size() > max_events) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

void TelemetryAggregator::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latest_.clear();
  bytes_.clear();
  ingests_.clear();
  timeline_.clear();
  seen_.clear();
}

// ---------------------------------------------------------------------------
// Crash postmortems.
// ---------------------------------------------------------------------------

std::string PostmortemPath(const std::string& dir, int32_t rank) {
  return dir + "/postmortem_rank" + std::to_string(rank) + ".tfmr";
}

util::Status WritePostmortem(const std::string& path,
                             const RankTelemetry& telemetry) {
  const std::vector<uint8_t> bytes = EncodeRankTelemetry(telemetry);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::IOError("cannot open postmortem tmp " + tmp + ": " +
                                 std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return util::Status::IOError("postmortem write failed: " +
                                   std::string(std::strerror(err)));
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return util::Status::IOError("postmortem rename failed: " +
                                 std::string(std::strerror(err)));
  }
  return util::Status::OK();
}

util::StatusOr<RankTelemetry> ReadPostmortem(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return util::Status::NotFound("no postmortem at " + path);
    }
    return util::Status::IOError("cannot open postmortem " + path + ": " +
                                 std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return util::Status::IOError("postmortem read failed: " +
                                   std::string(std::strerror(err)));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  auto decoded = DecodeRankTelemetry(bytes);
  if (!decoded.ok()) {
    return util::Status::Internal("postmortem " + path + " is corrupt: " +
                                  decoded.status().ToString());
  }
  return decoded;
}

// ---------------------------------------------------------------------------
// Incident reports.
// ---------------------------------------------------------------------------

std::string IncidentReport::ToJson() const {
  std::string out = "{";
  out += "\"epoch\":" + std::to_string(epoch);
  out += ",\"rank\":" + std::to_string(rank);
  out += ",\"kind\":\"" + JsonEscape(kind) + "\"";
  out += ",\"detail\":\"" + JsonEscape(detail) + "\"";
  out += ",\"action\":\"" + JsonEscape(action) + "\"";
  out += ",\"step\":" + std::to_string(step);
  out += ",\"exit_code\":" + std::to_string(exit_code);
  out += ",\"term_signal\":" + std::to_string(term_signal);
  out += ",\"postmortem\":";
  out += postmortem_harvested ? "true" : "false";
  out += ",\"recovery\":" + std::to_string(recovery);
  out += ",\"timeline\":[";
  const int64_t newest =
      timeline.empty() ? 0 : timeline.back().event.ts_ns;
  bool first = true;
  for (const GangEvent& ge : timeline) {
    if (!first) out += ",";
    first = false;
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "{\"rank\":%d,\"epoch\":%lld,\"ticket\":%llu,\"t_ms\":%.3f,"
        "\"event\":\"%s\",\"a\":%d,\"b\":%lld,\"c\":%lld}",
        ge.rank, static_cast<long long>(ge.epoch),
        static_cast<unsigned long long>(ge.event.ticket),
        static_cast<double>(ge.event.ts_ns - newest) / 1e6,
        FlightEventTypeName(ge.event.type), ge.event.a,
        static_cast<long long>(ge.event.b),
        static_cast<long long>(ge.event.c));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string IncidentReport::Format() const {
  std::string out;
  out += "incident: epoch " + std::to_string(epoch) + " rank " +
         std::to_string(rank) + " [" + kind + "]\n";
  out += "  detail: " + detail + "\n";
  out += "  action: " + action + "\n";
  out += "  victim last telemetry step: " + std::to_string(step) + "\n";
  if (term_signal >= 0) {
    out += "  terminated by signal " + std::to_string(term_signal) + "\n";
  } else if (exit_code >= 0) {
    out += "  exit code " + std::to_string(exit_code) + "\n";
  }
  out += std::string("  postmortem: ") +
         (postmortem_harvested ? "harvested" : "none") + "\n";
  out += "  gang timeline (newest last):\n";
  out += FormatGangTimeline(timeline);
  return out;
}

}  // namespace llm::obs
