// Gang-wide telemetry plane: rank-tagged metric snapshots and flight
// deltas, merged on the coordinator into one timeline, plus the crash
// postmortem file format and the structured incident report.
//
// PR 9 moved distributed training onto real worker processes, which
// trapped each rank's MetricsRegistry and FlightRecorder inside its own
// address space — and they vanish on SIGKILL, exactly when they matter
// most. This header is the cure, in three parts:
//
//   RankTelemetry         one rank's shipped unit: a RegistrySnapshot of
//                         its metrics plus the FlightRecorder delta since
//                         its last ship, stamped (rank, epoch, step).
//                         EncodeRankTelemetry/DecodeRankTelemetry turn it
//                         into CRC-guarded bytes; the dist wire carries
//                         them as an opaque payload (obs stays below
//                         train in the layer order, so the codec lives
//                         here and the frame type lives in dist/wire.h).
//
//   TelemetryAggregator   coordinator-side sink. Keeps each rank's
//                         newest snapshot (counters are cumulative, so
//                         "latest" is "total"), sums counters and merges
//                         histograms across ranks (HistogramSnapshot::
//                         Merge), and splices every rank's flight events
//                         into one gang timeline. Events are deduped by
//                         (epoch, rank, ticket) — the per-rank ticket is
//                         monotonic within a spawn generation — and
//                         ordered for display by steady-clock timestamp,
//                         which is machine-wide comparable across the
//                         gang's processes (see flight_recorder.h's
//                         clock contract), with (rank, ticket) breaking
//                         ties. Coordinator-side events ride in the same
//                         timeline under rank kCoordinatorRank (-1).
//
//   Postmortem + IncidentReport   the crash pipeline. A dying worker
//                         atomically dumps its RankTelemetry to a
//                         per-rank file (WritePostmortem: tmp + rename,
//                         CRC-checked on read so a torn last gasp is
//                         detected, not trusted); the coordinator
//                         harvests those files on every incident and
//                         emits an IncidentReport — what died, why the
//                         monitor noticed, every rank's last events
//                         around the incident, and the recovery action —
//                         renderable as text (Format) or as one
//                         machine-parsable DIST_INCIDENT JSON line
//                         (ToJson).
#ifndef TFMR_OBS_TELEMETRY_H_
#define TFMR_OBS_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace llm::obs {

/// Why a telemetry unit was shipped (RankTelemetry::reason).
inline constexpr int32_t kTelemetryShipPeriodic = 0;
inline constexpr int32_t kTelemetryShipFinal = 1;
inline constexpr int32_t kTelemetryShipPostmortem = 2;

/// The rank id coordinator-originated timeline events carry.
inline constexpr int32_t kCoordinatorRank = -1;

/// One rank's shipped telemetry unit.
struct RankTelemetry {
  int32_t rank = -1;
  int64_t epoch = 0;
  /// The rank's step at capture time.
  int64_t step = 0;
  int32_t reason = kTelemetryShipPeriodic;
  RegistrySnapshot metrics;
  /// FlightRecorder delta since the previous ship (full ring for a
  /// postmortem). Empty when the shipper shares the coordinator's
  /// process and recorder (thread transport).
  std::vector<FlightEvent> events;
};

// ---------------------------------------------------------------------------
// Codec. Little-endian, magic + version framed, trailing CRC32 over the
// whole body so a torn postmortem or corrupt frame payload is detected,
// never half-trusted.
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeRankTelemetry(const RankTelemetry& telemetry);
util::StatusOr<RankTelemetry> DecodeRankTelemetry(const uint8_t* data,
                                                  size_t len);
util::StatusOr<RankTelemetry> DecodeRankTelemetry(
    const std::vector<uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Capture.
// ---------------------------------------------------------------------------

struct TelemetryCaptureOptions {
  /// Only metrics whose name starts with this ship ("" = every metric).
  /// A worker that shares the coordinator's process must restrict itself
  /// to its own per-rank namespace ("dist.worker.<r>.") or the
  /// aggregator's cross-rank sums would multiply-count shared globals.
  std::string metric_prefix;
  /// Whether to ship a FlightRecorder delta. Off for shared-process
  /// workers (the coordinator already owns the ring; re-shipping it
  /// rank-tagged would misattribute events).
  bool include_events = true;
  /// Delta start: ship events with ticket >= this.
  uint64_t events_from_ticket = 0;
};

/// Snapshots the global MetricsRegistry and (optionally) the global
/// FlightRecorder into a shippable unit.
RankTelemetry CaptureRankTelemetry(int32_t rank, int64_t epoch, int64_t step,
                                   int32_t reason,
                                   const TelemetryCaptureOptions& options);

// ---------------------------------------------------------------------------
// Gang timeline + aggregation.
// ---------------------------------------------------------------------------

/// One event in the merged gang timeline: a FlightEvent tagged with the
/// rank (kCoordinatorRank for the coordinator) and spawn epoch it came
/// from.
struct GangEvent {
  int32_t rank = kCoordinatorRank;
  int64_t epoch = 0;
  FlightEvent event;
};

/// Human-readable gang timeline, one event per line, timestamps relative
/// to the newest event, rank column first ("coord" for the coordinator).
std::string FormatGangTimeline(const std::vector<GangEvent>& events);

/// Coordinator-side aggregator. Thread-safe: the transport's reader
/// threads Ingest while the monitor reads merged views.
class TelemetryAggregator {
 public:
  TelemetryAggregator() = default;
  TelemetryAggregator(const TelemetryAggregator&) = delete;
  TelemetryAggregator& operator=(const TelemetryAggregator&) = delete;

  /// Folds one shipped unit in: replaces the rank's latest snapshot and
  /// splices its events into the timeline (deduped by (epoch, rank,
  /// ticket), so a postmortem that re-ships already-shipped events is
  /// harmless). `wire_bytes` is the encoded size for the ingest-side
  /// byte accounting (0 if unknown).
  void Ingest(const RankTelemetry& telemetry, size_t wire_bytes = 0);

  /// Splices coordinator-local flight events (detection, recovery,
  /// respawn) into the timeline under kCoordinatorRank.
  void IngestCoordinatorEvents(int64_t epoch,
                               const std::vector<FlightEvent>& events);

  /// Sum of the newest per-rank values of counter `name`. Counters are
  /// cumulative per rank, so latest == per-rank total and the sum is the
  /// gang total.
  uint64_t MergedCounter(const std::string& name) const;
  /// Bucket-merged histogram `name` across every rank's newest snapshot.
  HistogramSnapshot MergedHistogram(const std::string& name) const;

  /// Newest shipped value of a single rank's counter/gauge; 0 when that
  /// rank never shipped the metric.
  uint64_t RankCounter(int32_t rank, const std::string& name) const;
  double RankGauge(int32_t rank, const std::string& name) const;

  /// True once `rank` has shipped at least one unit.
  bool HasRank(int32_t rank) const;
  /// The step stamped on `rank`'s newest unit (-1 if never shipped).
  int64_t RankStep(int32_t rank) const;
  /// Encoded bytes ingested from `rank` (coordinator-side accounting).
  uint64_t IngestedBytes(int32_t rank) const;
  /// Units ingested from `rank`.
  int64_t IngestCount(int32_t rank) const;

  /// The merged timeline, ordered by steady timestamp with (rank,
  /// ticket) tie-break, trimmed to the newest `max_events`.
  std::vector<GangEvent> Timeline(size_t max_events = SIZE_MAX) const;

  /// Drops everything (tests and bench stage boundaries).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<int32_t, RankTelemetry> latest_;     // newest unit per rank
  std::map<int32_t, uint64_t> bytes_;           // guarded by mu_
  std::map<int32_t, int64_t> ingests_;          // guarded by mu_
  std::vector<GangEvent> timeline_;             // guarded by mu_
  /// Dedup keys: (epoch, rank, ticket). Tickets restart at 0 when a rank
  /// respawns, but respawn bumps the epoch, so the triple stays unique.
  std::set<std::tuple<int64_t, int32_t, uint64_t>> seen_;
};

// ---------------------------------------------------------------------------
// Crash postmortems.
// ---------------------------------------------------------------------------

/// Canonical per-rank postmortem path: "<dir>/postmortem_rank<r>.tfmr".
std::string PostmortemPath(const std::string& dir, int32_t rank);

/// Atomically dumps `telemetry` to `path`: encoded bytes are written to
/// "<path>.tmp" and renamed into place, so a reader never sees a torn
/// file under the final name (and the trailing CRC catches a torn tmp
/// that somehow got renamed). Uses only open/write/rename; safe from a
/// last-gasp fatal-signal handler in the pragmatic crash-reporter sense
/// (the encoder allocates, which strict async-signal-safety forbids, but
/// the process is already dead either way — same trade every production
/// crash dumper makes).
util::Status WritePostmortem(const std::string& path,
                             const RankTelemetry& telemetry);

/// Reads + validates a postmortem. NotFound when absent; Internal on a
/// torn or corrupt file.
util::StatusOr<RankTelemetry> ReadPostmortem(const std::string& path);

// ---------------------------------------------------------------------------
// Incident reports.
// ---------------------------------------------------------------------------

/// Everything the coordinator knows about one gang incident, assembled
/// from the monitor's verdict, the harvested postmortems, and the merged
/// timeline around the moment of death.
struct IncidentReport {
  int64_t epoch = 0;
  int32_t rank = -1;        // the victim
  std::string kind;         // "worker-death", "worker-stall",
                            // "transport-disconnect", "worker-exit", ...
  std::string detail;       // why the monitor noticed
  std::string action;       // what recovery did
  int64_t step = -1;        // victim's last telemetry-reported step
  int32_t exit_code = -1;   // wait-status exit code (-1 unknown/signal)
  int32_t term_signal = -1; // terminating signal (-1 if exited)
  bool postmortem_harvested = false;
  int32_t recovery = 0;     // recovery index this incident triggered
  /// The merged gang timeline around the incident: the victim's final
  /// shipped/postmortem events interleaved with the coordinator's
  /// detection and recovery events.
  std::vector<GangEvent> timeline;

  /// One JSON object (no trailing newline), stable key order.
  std::string ToJson() const;
  /// Multi-line human rendering, timeline included.
  std::string Format() const;
};

}  // namespace llm::obs

#endif  // TFMR_OBS_TELEMETRY_H_
