// Lock-cheap metrics for the serving and training runtimes.
//
// Three primitives, all safe to update from any thread:
//
//   Counter    monotonically increasing uint64; one relaxed fetch_add.
//   Gauge      last-write-wins double; one relaxed store.
//   Histogram  fixed geometric buckets (quarter-octave resolution) with
//              atomic per-bucket counters. Percentiles are estimated from
//              merged bucket counts — no sample retention, no sorting on
//              the hot path, and two histograms can be merged by adding
//              buckets. The estimate is exact to within one bucket width
//              (~19% relative), which is what replaces the sliding-window
//              percentile math that used to live in ServerStats.
//
// A MetricsRegistry names metrics and owns their storage; pointers
// returned by GetCounter/GetGauge/GetHistogram are stable for the
// registry's lifetime, so call sites resolve a metric once and update it
// lock-free forever after. MetricsRegistry::Global() is the process-wide
// default; benches and the demo snapshot it as a JSON line
// (JsonSnapshot) next to their existing output.
//
// Profiling timers (scoped_timer.h) are gated on EnableProfiling():
// while disabled they cost one relaxed load and no clock reads.
#ifndef TFMR_OBS_METRICS_H_
#define TFMR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace llm::obs {

namespace internal {
extern std::atomic<bool> g_profiling_enabled;
}  // namespace internal

/// Whether scoped profiling timers read the clock and record. Off by
/// default; a single relaxed load, safe on any hot path.
inline bool ProfilingEnabled() {
  return internal::g_profiling_enabled.load(std::memory_order_relaxed);
}
void EnableProfiling(bool on);

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Point-in-time view of a histogram, detached from its atomics.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<uint64_t> buckets;  // Histogram::kNumBuckets entries

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Percentile estimate from merged buckets; same convention as
  /// Histogram::Percentile. `q` in [0, 1].
  double Percentile(double q) const;

  /// Adds `other` into this snapshot: bucket-wise counts add, sum adds,
  /// max takes the larger side. Because buckets are fixed and geometric,
  /// merging N per-rank snapshots is exact for count/sum/mean and keeps
  /// percentile estimates within the same one-bucket (~19%) error bound
  /// as a single histogram that had seen every sample. Either side may be
  /// empty (default-constructed, no buckets).
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket latency/size histogram. Bucket i covers
/// (kMinValue*G^(i-1), kMinValue*G^i] with G = 2^(1/4); bucket 0 also
/// absorbs everything below kMinValue, the last bucket everything above
/// the top bound (~280 s when values are milliseconds). Record is two
/// relaxed atomic RMWs plus one log().
class Histogram {
 public:
  static constexpr int kNumBuckets = 112;  // 28 octaves at 4 buckets each
  static constexpr double kMinValue = 1e-3;
  /// Geometric bucket growth factor, 2^(1/4): one bucket width in the
  /// relative sense. Percentile estimates are exact within this factor.
  static constexpr double kGrowth = 1.189207115002721;

  void Record(double value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Estimated q-quantile (q in [0,1]) over everything recorded: the
  /// geometric midpoint of the bucket holding rank q*(count-1). With a
  /// single sample every q returns the same value. 0 when empty.
  double Percentile(double q) const { return Snapshot().Percentile(q); }
  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Upper bound of bucket i (for tests and formatters).
  static double BucketUpperBound(int i);
  /// Index of the bucket a value lands in.
  static int BucketIndex(double value);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // CAS-add; Record is low-frequency enough
  std::atomic<double> max_{0.0};
};

/// Structured point-in-time view of a registry: every counter and gauge
/// by value, every histogram as a detached snapshot. This is the unit
/// the distributed telemetry plane ships across process boundaries
/// (obs/telemetry.h encodes it) and what the aggregator merges.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named metrics with stable storage. Registration takes a mutex;
/// updates through the returned pointers are lock-free.
class MetricsRegistry {
 public:
  /// The process-wide default registry.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Structured snapshot of every metric whose name starts with
  /// `name_prefix` ("" = everything). Values are read relaxed, so a
  /// snapshot taken while writers run is per-metric consistent, not
  /// cross-metric atomic — same contract as JsonSnapshot.
  RegistrySnapshot Snapshot(const std::string& name_prefix = "") const;

  /// One JSON object (no trailing newline): counters and gauges by name,
  /// histograms as {count, mean, p50, p95, p99, max}. Keys are sorted, so
  /// output is deterministic given deterministic metric values.
  std::string JsonSnapshot() const;

  /// Zeroes every counter and histogram (gauges keep their last value).
  /// For benches that reuse the global registry across stages.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Publishes the fault injector's per-site occurrence/fired counters
/// (util/fault.h) as gauges `fault.<site>.seen` / `fault.<site>.fired`,
/// so chaos runs can read injected-fault activity out of the same
/// snapshot as everything else.
void PublishFaultMetrics(MetricsRegistry* registry);

/// Installs the flight-recorder hook on util::FaultInjector so every
/// injected fault firing is also recorded as a kFaultInjected event.
/// Idempotent; called by the server/trainer constructors.
void WireFaultEventsToFlightRecorder();

}  // namespace llm::obs

#endif  // TFMR_OBS_METRICS_H_
