#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace llm::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kAdmission: return "admission";
    case FlightEventType::kRetirement: return "retirement";
    case FlightEventType::kFaultInjected: return "fault-injected";
    case FlightEventType::kBreakerTransition: return "breaker-transition";
    case FlightEventType::kReloadPhase: return "reload-phase";
    case FlightEventType::kStallDetected: return "stall-detected";
    case FlightEventType::kLeakRepaired: return "leak-repaired";
    case FlightEventType::kDispatch: return "dispatch";
    case FlightEventType::kFailover: return "failover";
    case FlightEventType::kHedgeLaunch: return "hedge-launch";
    case FlightEventType::kTrainDivergence: return "train-divergence";
    case FlightEventType::kTrainRollback: return "train-rollback";
    case FlightEventType::kCheckpointSaved: return "checkpoint-saved";
    case FlightEventType::kDrainBegin: return "drain-begin";
    case FlightEventType::kWorkerJoin: return "worker-join";
    case FlightEventType::kWorkerDeath: return "worker-death";
    case FlightEventType::kDistRecovery: return "dist-recovery";
    case FlightEventType::kCollectiveAbort: return "collective-abort";
    case FlightEventType::kQuotaExhausted: return "quota-exhausted";
    case FlightEventType::kShed: return "shed";
    case FlightEventType::kPreempt: return "preempt";
    case FlightEventType::kTransportConnect: return "transport-connect";
    case FlightEventType::kTransportDisconnect:
      return "transport-disconnect";
    case FlightEventType::kTransportFence: return "transport-fence";
    case FlightEventType::kProcSpawn: return "proc-spawn";
    case FlightEventType::kTelemetryShip: return "telemetry-ship";
    case FlightEventType::kPostmortemDump: return "postmortem-dump";
    case FlightEventType::kIncidentReport: return "incident-report";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : mask_(RoundUpPow2(std::max<size_t>(capacity, 2)) - 1),
      slots_(new Slot[mask_ + 1]) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(FlightEventType type, int32_t a, int64_t b,
                            int64_t c) {
  if (!enabled()) return;
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock: odd marks the slot mid-write; the even publish value encodes
  // the ticket, so a reader can both validate the payload and order it.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.ts_ns.store(NowNs(), std::memory_order_relaxed);
  slot.type_a.store((static_cast<int64_t>(type) << 32) |
                        (static_cast<int64_t>(a) & 0xffffffffll),
                    std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Dump(size_t max_events) const {
  return DumpSince(0, max_events);
}

std::vector<FlightEvent> FlightRecorder::DumpSince(uint64_t min_ticket,
                                                   size_t max_events) const {
  std::vector<FlightEvent> events;
  events.reserve(mask_ + 1);
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1) != 0) continue;  // empty or mid-write
    if (seq1 / 2 - 1 < min_ticket) continue;     // older than the delta
    FlightEvent event;
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const int64_t type_a = slot.type_a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    event.c = slot.c.load(std::memory_order_relaxed);
    const uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
    if (seq1 != seq2) continue;  // lapped mid-read
    event.ticket = seq1 / 2 - 1;
    event.type = static_cast<FlightEventType>(type_a >> 32);
    event.a = static_cast<int32_t>(type_a & 0xffffffffll);
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.ticket < y.ticket;
            });
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

std::string FlightRecorder::Format(size_t max_events) const {
  const std::vector<FlightEvent> events = Dump(max_events);
  if (events.empty()) return "  (flight recorder empty)\n";
  const int64_t newest = events.back().ts_ns;
  std::string out;
  char line[192];
  for (const FlightEvent& event : events) {
    std::snprintf(line, sizeof(line),
                  "  [%7.2fms] #%-6llu %-18s a=%d b=%lld c=%lld\n",
                  static_cast<double>(event.ts_ns - newest) / 1e6,
                  static_cast<unsigned long long>(event.ticket),
                  FlightEventTypeName(event.type), event.a,
                  static_cast<long long>(event.b),
                  static_cast<long long>(event.c));
    out += line;
  }
  return out;
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i <= mask_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

}  // namespace llm::obs
