#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "util/fault.h"

namespace llm::obs {

namespace internal {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace internal

void EnableProfiling(bool on) {
  internal::g_profiling_enabled.store(on, std::memory_order_relaxed);
}

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

// log2(kGrowth) == 1/4 exactly by construction.
constexpr double kBucketsPerOctave = 4.0;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  const int idx = static_cast<int>(
      std::ceil(std::log2(value / kMinValue) * kBucketsPerOctave));
  return std::min(std::max(idx, 0), kNumBuckets - 1);
}

double Histogram::BucketUpperBound(int i) {
  return kMinValue * std::pow(kGrowth, static_cast<double>(i));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMaxDouble(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snapshot.buckets[static_cast<size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.buckets[static_cast<size_t>(i)];
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.buckets.empty()) {
    // Nothing bucketed on that side; still fold the scalar summary so a
    // merge of summaries-only snapshots stays arithmetically honest.
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
    return;
  }
  if (buckets.empty()) buckets.resize(other.buckets.size(), 0);
  const size_t n = std::min(buckets.size(), other.buckets.size());
  for (size_t i = 0; i < n; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Same rank convention as classic sorted-sample interpolation
  // (rank = q*(n-1)), truncated to the containing bucket: with one sample
  // every quantile reads the same bucket.
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count - 1));
  uint64_t cumulative = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    if (cumulative > rank) {
      // Geometric midpoint of the bucket: the representative is within
      // sqrt(kGrowth) of any sample that landed here.
      return Histogram::BucketUpperBound(i) / std::sqrt(Histogram::kGrowth);
    }
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot MetricsRegistry::Snapshot(
    const std::string& name_prefix) const {
  const auto matches = [&](const std::string& name) {
    return name_prefix.empty() || name.rfind(name_prefix, 0) == 0;
  };
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    if (matches(name)) out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    if (matches(name)) out.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    if (matches(name)) out.histograms[name] = hist->Snapshot();
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + FormatDouble(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    const HistogramSnapshot s = hist->Snapshot();
    out += "\"" + name + "\":{\"count\":" + std::to_string(s.count) +
           ",\"mean\":" + FormatDouble(s.mean()) +
           ",\"p50\":" + FormatDouble(s.Percentile(0.50)) +
           ",\"p95\":" + FormatDouble(s.Percentile(0.95)) +
           ",\"p99\":" + FormatDouble(s.Percentile(0.99)) +
           ",\"max\":" + FormatDouble(s.max) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

void PublishFaultMetrics(MetricsRegistry* registry) {
  for (const util::FaultSiteCounts& site :
       util::FaultInjector::Global().AllCounts()) {
    const std::string base =
        std::string("fault.") + util::FaultSiteName(site.site);
    registry->GetGauge(base + ".seen")->Set(static_cast<double>(site.seen));
    registry->GetGauge(base + ".fired")->Set(static_cast<double>(site.fired));
  }
}

void WireFaultEventsToFlightRecorder() {
  util::FaultInjector::SetFireListener(+[](util::FaultSite site,
                                           int64_t occurrence) {
    FlightRecorder::Global().Record(FlightEventType::kFaultInjected,
                                    static_cast<int32_t>(site), occurrence, 0);
  });
}

}  // namespace llm::obs
