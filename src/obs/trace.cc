#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace llm::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Trace::Trace(uint64_t trace_id) : trace_id_(trace_id) {
  spans_.reserve(16);
  TraceSpan root;
  root.id = kRootSpan;
  root.parent = -1;
  root.name = "request";
  root.start_ns = NowNs();
  root.detail = static_cast<int64_t>(trace_id);
  spans_.push_back(std::move(root));
}

int32_t Trace::AddSpanLocked(const std::string& name, int32_t parent,
                             int64_t detail) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return -1;
  }
  TraceSpan span;
  span.id = static_cast<int32_t>(spans_.size());
  span.parent = parent;
  span.name = name;
  span.start_ns = NowNs();
  span.detail = detail;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

int32_t Trace::BeginSpan(const std::string& name, int32_t parent,
                         int64_t detail) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddSpanLocked(name, parent, detail);
}

void Trace::EndSpan(int32_t id, const std::string& note) {
  if (id < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(id) >= spans_.size()) return;
  TraceSpan& span = spans_[static_cast<size_t>(id)];
  if (span.end_ns == 0) span.end_ns = NowNs();
  if (span.note.empty() && !note.empty()) span.note = note;
}

int32_t Trace::Event(const std::string& name, int32_t parent, int64_t detail,
                     const std::string& note) {
  std::lock_guard<std::mutex> lock(mu_);
  const int32_t id = AddSpanLocked(name, parent, detail);
  if (id >= 0) {
    spans_[static_cast<size_t>(id)].end_ns =
        spans_[static_cast<size_t>(id)].start_ns;
    spans_[static_cast<size_t>(id)].note = note;
  }
  return id;
}

std::vector<TraceSpan> Trace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Trace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

namespace {

void FormatSubtree(const std::vector<TraceSpan>& spans,
                   const std::vector<std::vector<int32_t>>& children,
                   int32_t id, int depth, int64_t base_ns, std::string* out) {
  const TraceSpan& span = spans[static_cast<size_t>(id)];
  char line[224];
  const double at_ms = static_cast<double>(span.start_ns - base_ns) / 1e6;
  if (span.end_ns == span.start_ns) {
    std::snprintf(line, sizeof(line), "  %*s- %-14s @%8.2fms", depth * 2, "",
                  span.name.c_str(), at_ms);
  } else if (span.end_ns == 0) {
    std::snprintf(line, sizeof(line), "  %*s- %-14s @%8.2fms (open)",
                  depth * 2, "", span.name.c_str(), at_ms);
  } else {
    std::snprintf(line, sizeof(line), "  %*s- %-14s @%8.2fms %8.2fms",
                  depth * 2, "", span.name.c_str(), at_ms,
                  span.duration_ms());
  }
  *out += line;
  if (span.detail != 0 || span.name == "dispatch" || span.name == "attempt") {
    std::snprintf(line, sizeof(line), "  [%lld]",
                  static_cast<long long>(span.detail));
    *out += line;
  }
  if (!span.note.empty()) *out += "  " + span.note;
  *out += "\n";
  for (int32_t child : children[static_cast<size_t>(id)]) {
    FormatSubtree(spans, children, child, depth + 1, base_ns, out);
  }
}

}  // namespace

std::string FormatSpans(const std::vector<TraceSpan>& spans,
                        uint64_t trace_id) {
  if (spans.empty()) return "  (empty trace)\n";
  std::vector<std::vector<int32_t>> children(spans.size());
  for (const TraceSpan& span : spans) {
    if (span.parent >= 0 &&
        static_cast<size_t>(span.parent) < spans.size() &&
        span.id != span.parent) {
      children[static_cast<size_t>(span.parent)].push_back(span.id);
    }
  }
  // Children are already in creation (= start) order because ids ascend.
  std::string out = "  trace " + std::to_string(trace_id) + ":\n";
  FormatSubtree(spans, children, 0, 0, spans[0].start_ns, &out);
  return out;
}

std::string FormatTrace(const Trace& trace) {
  return FormatSpans(trace.Spans(), trace.trace_id());
}

}  // namespace llm::obs
