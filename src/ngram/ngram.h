// Count-based N-gram language models (paper §3 Eq. 1 and §5 Eq. 5-6),
// with add-k smoothing and Jelinek-Mercer interpolation across orders —
// the classical baselines against which the neural models are measured in
// bench_perplexity_ladder.
#ifndef TFMR_NGRAM_NGRAM_H_
#define TFMR_NGRAM_NGRAM_H_

#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace llm::ngram {

/// Hash for token-id context vectors.
struct ContextHash {
  size_t operator()(const std::vector<int64_t>& v) const {
    size_t h = 1469598103934665603ULL;
    for (int64_t x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// An order-N model: P(w_N | w_1..w_{N-1}) estimated by counts (Eq. 6)
/// with add-k smoothing. order == 1 is the unigram frequency model (Eq. 1).
class NgramModel {
 public:
  /// add_k > 0 smooths: P = (c(ctx,w) + k) / (c(ctx) + k*V).
  NgramModel(int order, int64_t vocab_size, double add_k = 0.01);

  /// Accumulates counts from a token stream (callable repeatedly).
  void Fit(const std::vector<int64_t>& tokens);

  /// Conditional probability of `next` given the last (order-1) tokens of
  /// `context` (Eq. 5). Shorter contexts are an error for order > 1.
  double CondProb(const std::vector<int64_t>& context, int64_t next) const;

  /// Mean negative log-likelihood (nats/token, Eq. 3) over `tokens`,
  /// scored from position (order-1) onward.
  double CrossEntropy(const std::vector<int64_t>& tokens) const;

  /// exp(CrossEntropy) — the paper's perplexity.
  double Perplexity(const std::vector<int64_t>& tokens) const;

  /// Samples a next token from the smoothed conditional.
  int64_t SampleNext(const std::vector<int64_t>& context,
                     util::Rng* rng) const;

  /// Extends `prefix` (must have >= order-1 tokens for order > 1) by
  /// `length` sampled tokens.
  std::vector<int64_t> Generate(const std::vector<int64_t>& prefix,
                                int64_t length, util::Rng* rng) const;

  int order() const { return order_; }
  int64_t vocab_size() const { return vocab_size_; }
  /// Number of distinct contexts observed.
  int64_t num_contexts() const {
    return static_cast<int64_t>(counts_.size());
  }

 private:
  std::vector<int64_t> TrimContext(const std::vector<int64_t>& context) const;

  int order_;
  int64_t vocab_size_;
  double add_k_;
  /// context (order-1 tokens) -> (next token -> count).
  std::unordered_map<std::vector<int64_t>,
                     std::unordered_map<int64_t, int64_t>, ContextHash>
      counts_;
  /// context -> total count.
  std::unordered_map<std::vector<int64_t>, int64_t, ContextHash> totals_;
};

/// Jelinek-Mercer interpolation: P = sum_i lambda_i P_i over orders
/// 1..max_order (the "simple statistical tricks" of §5).
class InterpolatedNgram {
 public:
  /// Uniform weights when `lambdas` is empty; otherwise lambdas.size()
  /// must equal max_order and sum to ~1.
  InterpolatedNgram(int max_order, int64_t vocab_size, double add_k = 0.01,
                    std::vector<double> lambdas = {});

  void Fit(const std::vector<int64_t>& tokens);
  double CondProb(const std::vector<int64_t>& context, int64_t next) const;
  double CrossEntropy(const std::vector<int64_t>& tokens) const;
  double Perplexity(const std::vector<int64_t>& tokens) const;

  int max_order() const { return static_cast<int>(models_.size()); }

 private:
  std::vector<NgramModel> models_;
  std::vector<double> lambdas_;
};

}  // namespace llm::ngram

#endif  // TFMR_NGRAM_NGRAM_H_
