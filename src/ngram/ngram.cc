#include "ngram/ngram.h"

#include <cmath>

#include "util/check.h"

namespace llm::ngram {

NgramModel::NgramModel(int order, int64_t vocab_size, double add_k)
    : order_(order), vocab_size_(vocab_size), add_k_(add_k) {
  LLM_CHECK_GE(order, 1);
  LLM_CHECK_GT(vocab_size, 0);
  LLM_CHECK_GT(add_k, 0.0) << "unsmoothed models assign zero probabilities";
}

void NgramModel::Fit(const std::vector<int64_t>& tokens) {
  const int64_t ctx_len = order_ - 1;
  const auto n = static_cast<int64_t>(tokens.size());
  for (int64_t i = ctx_len; i < n; ++i) {
    std::vector<int64_t> ctx(tokens.begin() + (i - ctx_len),
                             tokens.begin() + i);
    ++counts_[ctx][tokens[static_cast<size_t>(i)]];
    ++totals_[ctx];
  }
}

std::vector<int64_t> NgramModel::TrimContext(
    const std::vector<int64_t>& context) const {
  const size_t ctx_len = static_cast<size_t>(order_ - 1);
  LLM_CHECK_GE(context.size(), ctx_len)
      << "context shorter than order-1 =" << order_ - 1;
  return std::vector<int64_t>(context.end() - static_cast<ptrdiff_t>(ctx_len),
                              context.end());
}

double NgramModel::CondProb(const std::vector<int64_t>& context,
                            int64_t next) const {
  const std::vector<int64_t> ctx = TrimContext(context);
  int64_t pair_count = 0;
  int64_t total = 0;
  auto it = counts_.find(ctx);
  if (it != counts_.end()) {
    auto jt = it->second.find(next);
    if (jt != it->second.end()) pair_count = jt->second;
    total = totals_.at(ctx);
  }
  return (static_cast<double>(pair_count) + add_k_) /
         (static_cast<double>(total) +
          add_k_ * static_cast<double>(vocab_size_));
}

double NgramModel::CrossEntropy(const std::vector<int64_t>& tokens) const {
  const int64_t ctx_len = order_ - 1;
  const auto n = static_cast<int64_t>(tokens.size());
  LLM_CHECK_GT(n, ctx_len);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t i = ctx_len; i < n; ++i) {
    std::vector<int64_t> ctx(tokens.begin() + (i - ctx_len),
                             tokens.begin() + i);
    total += -std::log(CondProb(ctx, tokens[static_cast<size_t>(i)]));
    ++counted;
  }
  return total / static_cast<double>(counted);
}

double NgramModel::Perplexity(const std::vector<int64_t>& tokens) const {
  return std::exp(CrossEntropy(tokens));
}

int64_t NgramModel::SampleNext(const std::vector<int64_t>& context,
                               util::Rng* rng) const {
  LLM_CHECK(rng != nullptr);
  std::vector<double> weights(static_cast<size_t>(vocab_size_));
  for (int64_t w = 0; w < vocab_size_; ++w) {
    weights[static_cast<size_t>(w)] = CondProb(context, w);
  }
  return static_cast<int64_t>(rng->Categorical(weights));
}

std::vector<int64_t> NgramModel::Generate(const std::vector<int64_t>& prefix,
                                          int64_t length,
                                          util::Rng* rng) const {
  std::vector<int64_t> out = prefix;
  for (int64_t i = 0; i < length; ++i) {
    out.push_back(SampleNext(out, rng));
  }
  return out;
}

InterpolatedNgram::InterpolatedNgram(int max_order, int64_t vocab_size,
                                     double add_k,
                                     std::vector<double> lambdas)
    : lambdas_(std::move(lambdas)) {
  LLM_CHECK_GE(max_order, 1);
  models_.reserve(static_cast<size_t>(max_order));
  for (int k = 1; k <= max_order; ++k) {
    models_.emplace_back(k, vocab_size, add_k);
  }
  if (lambdas_.empty()) {
    lambdas_.assign(static_cast<size_t>(max_order),
                    1.0 / static_cast<double>(max_order));
  }
  LLM_CHECK_EQ(lambdas_.size(), models_.size());
  double sum = 0.0;
  for (double l : lambdas_) {
    LLM_CHECK_GE(l, 0.0);
    sum += l;
  }
  LLM_CHECK(std::fabs(sum - 1.0) < 1e-6) << "lambdas must sum to 1";
}

void InterpolatedNgram::Fit(const std::vector<int64_t>& tokens) {
  for (auto& m : models_) m.Fit(tokens);
}

double InterpolatedNgram::CondProb(const std::vector<int64_t>& context,
                                   int64_t next) const {
  double p = 0.0;
  for (size_t i = 0; i < models_.size(); ++i) {
    // Lower orders need shorter contexts; all are suffixes of `context`.
    if (context.size() + 1 < static_cast<size_t>(models_[i].order())) {
      continue;  // not enough context for this order; weight is lost but
                 // CrossEntropy below always supplies enough.
    }
    p += lambdas_[i] * models_[i].CondProb(context, next);
  }
  return p;
}

double InterpolatedNgram::CrossEntropy(
    const std::vector<int64_t>& tokens) const {
  const int64_t ctx_len = static_cast<int64_t>(models_.size()) - 1;
  const auto n = static_cast<int64_t>(tokens.size());
  LLM_CHECK_GT(n, ctx_len);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t i = ctx_len; i < n; ++i) {
    std::vector<int64_t> ctx(tokens.begin() + (i - ctx_len),
                             tokens.begin() + i);
    total += -std::log(CondProb(ctx, tokens[static_cast<size_t>(i)]));
    ++counted;
  }
  return total / static_cast<double>(counted);
}

double InterpolatedNgram::Perplexity(
    const std::vector<int64_t>& tokens) const {
  return std::exp(CrossEntropy(tokens));
}

}  // namespace llm::ngram
