#include "embed/cooccurrence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace llm::embed {

CooccurrenceMatrix::CooccurrenceMatrix(int64_t vocab_size, int window)
    : vocab_size_(vocab_size),
      window_(window),
      counts_({vocab_size, vocab_size}),
      word_totals_(static_cast<size_t>(vocab_size), 0.0) {
  LLM_CHECK_GT(vocab_size, 0);
  LLM_CHECK_GT(window, 0);
}

void CooccurrenceMatrix::Fit(const std::vector<int64_t>& tokens) {
  const auto n = static_cast<int64_t>(tokens.size());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t w = tokens[static_cast<size_t>(i)];
    LLM_CHECK_GE(w, 0);
    LLM_CHECK_LT(w, vocab_size_);
    word_totals_[static_cast<size_t>(w)] += 1.0;
    total_words_ += 1.0;
    for (int64_t j = i + 1; j <= std::min(n - 1, i + window_); ++j) {
      const int64_t u = tokens[static_cast<size_t>(j)];
      counts_[w * vocab_size_ + u] += 1.0f;
      counts_[u * vocab_size_ + w] += 1.0f;
    }
  }
}

core::Tensor CooccurrenceMatrix::Ppmi(double shift) const {
  core::Tensor out({vocab_size_, vocab_size_});
  double total_pairs = 0.0;
  for (int64_t i = 0; i < counts_.numel(); ++i) {
    total_pairs += counts_[i];
  }
  if (total_pairs <= 0.0) return out;
  // Marginals over the pair distribution.
  std::vector<double> row_sum(static_cast<size_t>(vocab_size_), 0.0);
  for (int64_t w = 0; w < vocab_size_; ++w) {
    double s = 0.0;
    for (int64_t u = 0; u < vocab_size_; ++u) {
      s += counts_[w * vocab_size_ + u];
    }
    row_sum[static_cast<size_t>(w)] = s;
  }
  for (int64_t w = 0; w < vocab_size_; ++w) {
    for (int64_t u = 0; u < vocab_size_; ++u) {
      const double joint = counts_[w * vocab_size_ + u] / total_pairs;
      if (joint <= 0.0) continue;
      const double pw = row_sum[static_cast<size_t>(w)] / total_pairs;
      const double pu = row_sum[static_cast<size_t>(u)] / total_pairs;
      const double pmi = std::log(joint / (pw * pu)) - shift;
      if (pmi > 0.0) {
        out[w * vocab_size_ + u] = static_cast<float>(pmi);
      }
    }
  }
  return out;
}

EigenResult JacobiEigen(const core::Tensor& symmetric, int max_sweeps) {
  LLM_CHECK_EQ(symmetric.ndim(), 2);
  const int64_t n = symmetric.dim(0);
  LLM_CHECK_EQ(symmetric.dim(1), n);

  // Work in double for accuracy.
  std::vector<double> a(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) a[static_cast<size_t>(i)] = symmetric[i];
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i * n + i)] = 1.0;

  auto A = [&](int64_t i, int64_t j) -> double& {
    return a[static_cast<size_t>(i * n + j)];
  };
  auto V = [&](int64_t i, int64_t j) -> double& {
    return v[static_cast<size_t>(i * n + j)];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += A(p, q) * A(p, q);
    }
    if (off < 1e-20) break;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (A(q, q) - A(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double akp = A(k, p), akq = A(k, q);
          A(k, p) = c * akp - s * akq;
          A(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = A(p, k), aqk = A(q, k);
          A(p, k) = c * apk - s * aqk;
          A(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = V(k, p), vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by decreasing eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return A(x, x) > A(y, y);
  });

  EigenResult result;
  result.eigenvalues = core::Tensor({n});
  result.eigenvectors = core::Tensor({n, n});
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    result.eigenvalues[j] = static_cast<float>(A(src, src));
    for (int64_t i = 0; i < n; ++i) {
      result.eigenvectors[i * n + j] = static_cast<float>(V(i, src));
    }
  }
  return result;
}

core::Tensor SpectralEmbedding(const core::Tensor& symmetric, int rank) {
  const int64_t n = symmetric.dim(0);
  LLM_CHECK_GT(rank, 0);
  LLM_CHECK_LE(rank, n);
  EigenResult eig = JacobiEigen(symmetric);

  // Top-`rank` eigenpairs by |eigenvalue|.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return std::fabs(eig.eigenvalues[x]) > std::fabs(eig.eigenvalues[y]);
  });

  core::Tensor embedding({n, rank});
  for (int64_t j = 0; j < rank; ++j) {
    const int64_t col = order[static_cast<size_t>(j)];
    const float scale =
        std::sqrt(std::fabs(eig.eigenvalues[col]));
    for (int64_t i = 0; i < n; ++i) {
      embedding[i * rank + j] = eig.eigenvectors[i * n + col] * scale;
    }
  }
  return embedding;
}

WordEmbeddings::WordEmbeddings(core::Tensor vectors, bool normalize)
    : vectors_(std::move(vectors)) {
  LLM_CHECK_EQ(vectors_.ndim(), 2);
  if (normalize) {
    const int64_t V = vectors_.dim(0), d = vectors_.dim(1);
    for (int64_t i = 0; i < V; ++i) {
      double sq = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        const double x = vectors_[i * d + j];
        sq += x * x;
      }
      const float inv =
          sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(sq)) : 0.0f;
      for (int64_t j = 0; j < d; ++j) vectors_[i * d + j] *= inv;
    }
  }
}

double WordEmbeddings::Cosine(int64_t a, int64_t b) const {
  const int64_t d = dim();
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    const double x = vectors_[a * d + j], y = vectors_[b * d + j];
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

int64_t WordEmbeddings::Nearest(const std::vector<float>& query,
                                const std::vector<int64_t>& exclude) const {
  const int64_t V = vocab_size(), d = dim();
  LLM_CHECK_EQ(static_cast<int64_t>(query.size()), d);
  double qn = 0.0;
  for (float x : query) qn += static_cast<double>(x) * x;
  qn = std::sqrt(qn);
  int64_t best = -1;
  double best_score = -2.0;
  for (int64_t w = 0; w < V; ++w) {
    if (std::find(exclude.begin(), exclude.end(), w) != exclude.end()) {
      continue;
    }
    double dot = 0.0, wn = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double x = vectors_[w * d + j];
      dot += x * query[static_cast<size_t>(j)];
      wn += x * x;
    }
    if (wn == 0.0 || qn == 0.0) continue;
    const double score = dot / (std::sqrt(wn) * qn);
    if (score > best_score) {
      best_score = score;
      best = w;
    }
  }
  return best;
}

int64_t WordEmbeddings::Analogy(int64_t a, int64_t b, int64_t c) const {
  const int64_t d = dim();
  std::vector<float> query(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    query[static_cast<size_t>(j)] =
        vectors_[b * d + j] - vectors_[a * d + j] + vectors_[c * d + j];
  }
  return Nearest(query, {a, b, c});
}

}  // namespace llm::embed
