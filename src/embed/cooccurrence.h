// Co-occurrence statistics and classical word embeddings (paper §5):
// the N-gram co-occurrence matrix M_N, its PPMI transform (the pairwise
// mutual information of Eq. 10's footnote), and spectral dimensionality
// reduction (the "PCA" step) producing word vectors that support the
// king - man + woman ~ queen analogy arithmetic (Eq. 9).
#ifndef TFMR_EMBED_COOCCURRENCE_H_
#define TFMR_EMBED_COOCCURRENCE_H_

#include <vector>

#include "core/tensor.h"
#include "util/rng.h"

namespace llm::embed {

/// Symmetric co-occurrence counts within a sliding window.
class CooccurrenceMatrix {
 public:
  /// `window` is the maximum distance |i-j| counted (window = N-1 for the
  /// paper's N-gram co-occurrence).
  CooccurrenceMatrix(int64_t vocab_size, int window);

  /// Accumulates counts from a token stream (callable repeatedly).
  void Fit(const std::vector<int64_t>& tokens);

  /// Raw symmetric count matrix [V, V].
  const core::Tensor& counts() const { return counts_; }

  /// Per-word totals #(w) (occurrences, not co-occurrences).
  const std::vector<double>& word_totals() const { return word_totals_; }

  /// Positive pointwise mutual information:
  ///   PPMI(w,u) = max(0, log(P(w,u) / (P(w) P(u))) - shift).
  core::Tensor Ppmi(double shift = 0.0) const;

  int64_t vocab_size() const { return vocab_size_; }

 private:
  int64_t vocab_size_;
  int window_;
  core::Tensor counts_;                // [V, V]
  std::vector<double> word_totals_;    // [V]
  double total_words_ = 0.0;
};

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method (exact at the vocabulary sizes used here). Eigenvalues are
/// returned sorted by decreasing value with matching eigenvector columns.
struct EigenResult {
  core::Tensor eigenvalues;   // [V]
  core::Tensor eigenvectors;  // [V, V], column j pairs with eigenvalue j
};
EigenResult JacobiEigen(const core::Tensor& symmetric, int max_sweeps = 64);

/// Rank-r spectral embedding of a symmetric matrix: rows of U_r sqrt(S_r)
/// using the top-r eigenpairs by |eigenvalue| (the §5 "PCA" that replaces
/// co-occurrence columns by low-dimensional vectors).
core::Tensor SpectralEmbedding(const core::Tensor& symmetric, int rank);

/// Word vectors with cosine geometry.
class WordEmbeddings {
 public:
  /// vectors: [V, d]; rows are L2-normalized internally when `normalize`.
  explicit WordEmbeddings(core::Tensor vectors, bool normalize = true);

  int64_t vocab_size() const { return vectors_.dim(0); }
  int64_t dim() const { return vectors_.dim(1); }
  const core::Tensor& vectors() const { return vectors_; }

  double Cosine(int64_t a, int64_t b) const;

  /// Most similar word to an arbitrary query vector, excluding ids in
  /// `exclude`.
  int64_t Nearest(const std::vector<float>& query,
                  const std::vector<int64_t>& exclude = {}) const;

  /// Solves a : b :: c : ? by the Eq. 9 offset method
  /// (argmax_w cos(v_b - v_a + v_c, v_w), excluding a, b, c).
  int64_t Analogy(int64_t a, int64_t b, int64_t c) const;

 private:
  core::Tensor vectors_;  // [V, d], row-normalized if requested
};

}  // namespace llm::embed

#endif  // TFMR_EMBED_COOCCURRENCE_H_
