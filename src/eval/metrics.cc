#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace llm::eval {

namespace {
/// Softmax probability of `index` within one logits row, plus the argmax.
struct RowStats {
  int64_t argmax = 0;
  double argmax_prob = 0.0;
  double target_logprob = 0.0;
};

RowStats AnalyzeRow(const float* row, int64_t V, int64_t target) {
  RowStats s;
  for (int64_t i = 1; i < V; ++i) {
    if (row[i] > row[s.argmax]) s.argmax = i;
  }
  const float maxv = row[s.argmax];
  double sum = 0.0;
  for (int64_t i = 0; i < V; ++i) sum += std::exp(row[i] - maxv);
  const double log_z = std::log(sum) + maxv;
  s.argmax_prob = std::exp(row[s.argmax] - log_z);
  if (target >= 0 && target < V) {
    s.target_logprob = row[target] - log_z;
  }
  return s;
}
}  // namespace

double MaskedAccuracy(const core::Tensor& logits,
                      const std::vector<int64_t>& targets,
                      int64_t ignore_index) {
  LLM_CHECK_EQ(logits.ndim(), 2);
  const int64_t N = logits.dim(0), V = logits.dim(1);
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), N);
  int64_t correct = 0, counted = 0;
  for (int64_t r = 0; r < N; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == ignore_index) continue;
    const RowStats s = AnalyzeRow(logits.data() + r * V, V, t);
    if (s.argmax == t) ++correct;
    ++counted;
  }
  LLM_CHECK_GT(counted, 0);
  return static_cast<double>(correct) / static_cast<double>(counted);
}

double MaskedCrossEntropy(const core::Tensor& logits,
                          const std::vector<int64_t>& targets,
                          int64_t ignore_index) {
  LLM_CHECK_EQ(logits.ndim(), 2);
  const int64_t N = logits.dim(0), V = logits.dim(1);
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), N);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < N; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == ignore_index) continue;
    LLM_CHECK_GE(t, 0);
    LLM_CHECK_LT(t, V);
    const RowStats s = AnalyzeRow(logits.data() + r * V, V, t);
    total += -s.target_logprob;
    ++counted;
  }
  LLM_CHECK_GT(counted, 0);
  return total / static_cast<double>(counted);
}

std::vector<CalibrationPoint> CalibrationPoints(
    const core::Tensor& logits, const std::vector<int64_t>& targets,
    int64_t ignore_index) {
  LLM_CHECK_EQ(logits.ndim(), 2);
  const int64_t N = logits.dim(0), V = logits.dim(1);
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), N);
  std::vector<CalibrationPoint> points;
  for (int64_t r = 0; r < N; ++r) {
    const int64_t t = targets[static_cast<size_t>(r)];
    if (t == ignore_index) continue;
    const RowStats s = AnalyzeRow(logits.data() + r * V, V, t);
    points.push_back({s.argmax_prob, s.argmax == t});
  }
  return points;
}

std::vector<ReliabilityBin> ReliabilityDiagram(
    const std::vector<CalibrationPoint>& points, int num_bins) {
  LLM_CHECK_GT(num_bins, 0);
  std::vector<ReliabilityBin> bins(static_cast<size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    bins[static_cast<size_t>(b)].bin_lo =
        static_cast<double>(b) / num_bins;
    bins[static_cast<size_t>(b)].bin_hi =
        static_cast<double>(b + 1) / num_bins;
  }
  for (const auto& p : points) {
    int b = static_cast<int>(p.confidence * num_bins);
    b = std::clamp(b, 0, num_bins - 1);
    auto& bin = bins[static_cast<size_t>(b)];
    ++bin.count;
    bin.mean_confidence += p.confidence;
    bin.accuracy += p.correct ? 1.0 : 0.0;
  }
  for (auto& bin : bins) {
    if (bin.count > 0) {
      bin.mean_confidence /= static_cast<double>(bin.count);
      bin.accuracy /= static_cast<double>(bin.count);
    }
  }
  return bins;
}

double ExpectedCalibrationError(const std::vector<CalibrationPoint>& points,
                                int num_bins) {
  LLM_CHECK(!points.empty());
  const auto bins = ReliabilityDiagram(points, num_bins);
  double ece = 0.0;
  for (const auto& bin : bins) {
    if (bin.count == 0) continue;
    ece += std::fabs(bin.accuracy - bin.mean_confidence) *
           static_cast<double>(bin.count) /
           static_cast<double>(points.size());
  }
  return ece;
}

namespace {
std::vector<double> AverageRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                           2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

util::StatusOr<double> SpearmanCorrelation(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return util::Status::InvalidArgument("length mismatch");
  }
  if (a.size() < 3) {
    return util::Status::InvalidArgument("need >= 3 points");
  }
  const std::vector<double> ra = AverageRanks(a);
  const std::vector<double> rb = AverageRanks(b);
  const double n = static_cast<double>(a.size());
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    sa += ra[i];
    sb += rb[i];
    saa += ra[i] * ra[i];
    sbb += rb[i] * rb[i];
    sab += ra[i] * rb[i];
  }
  const double cov = sab - sa * sb / n;
  const double va = saa - sa * sa / n;
  const double vb = sbb - sb * sb / n;
  if (va <= 0.0 || vb <= 0.0) {
    return util::Status::InvalidArgument("zero variance in ranks");
  }
  return cov / std::sqrt(va * vb);
}

}  // namespace llm::eval
