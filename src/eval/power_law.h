// Scaling-law fitting (paper §3-4): straight-line fits in log-log space
// (L ~ a x^b, the Figure 2 panels) and the joint Eq. 4 ansatz
// L(P, D) = [ (Pc/P)^(alphaP/alphaD) + Dc/D ]^alphaD, fitted by
// Nelder-Mead on log-parameters.
#ifndef TFMR_EVAL_POWER_LAW_H_
#define TFMR_EVAL_POWER_LAW_H_

#include <functional>
#include <vector>

#include "util/status.h"

namespace llm::eval {

struct PowerLawFit {
  double a = 0.0;   // prefactor
  double b = 0.0;   // exponent
  double r2 = 0.0;  // R^2 of the log-log regression
};

/// Least squares of log y on log x. All x, y must be positive; needs >= 2
/// points.
util::StatusOr<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                        const std::vector<double>& y);

/// Optionally subtract an irreducible-loss floor first:
/// y = floor + a x^b, with `floor` given (e.g. the entropy of the
/// generating PCFG). Points with y <= floor are rejected.
util::StatusOr<PowerLawFit> FitPowerLawWithFloor(
    const std::vector<double>& x, const std::vector<double>& y,
    double floor);

/// Generic Nelder-Mead simplex minimizer (no derivatives).
struct NelderMeadOptions {
  int max_iterations = 2000;
  double tolerance = 1e-10;
  double initial_step = 0.5;
};
std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> initial, const NelderMeadOptions& options = {});

/// One (P, D, loss) observation for the joint fit.
struct ScalingPoint {
  double params = 0.0;
  double data = 0.0;
  double loss = 0.0;
};

struct AnsatzFit {
  double pc = 0.0;
  double dc = 0.0;
  double alpha_p = 0.0;
  double alpha_d = 0.0;
  /// Irreducible loss floor added to the ansatz (fitted).
  double floor = 0.0;
  double rmse = 0.0;  // in log-loss space
};

/// Eq. 4 evaluated at (P, D).
double AnsatzLoss(const AnsatzFit& fit, double params, double data);

/// Fits Eq. 4 (plus a constant floor, since toy losses do not approach 0)
/// to the observations by Nelder-Mead over log-parameters.
util::StatusOr<AnsatzFit> FitAnsatz(const std::vector<ScalingPoint>& points);

}  // namespace llm::eval

#endif  // TFMR_EVAL_POWER_LAW_H_
