#include "eval/rouge.h"

#include <algorithm>
#include <map>

namespace llm::eval {

namespace {

using NgramCounts = std::map<std::vector<int64_t>, int64_t>;

NgramCounts CountNgrams(const std::vector<int64_t>& tokens, int n) {
  NgramCounts counts;
  if (static_cast<int>(tokens.size()) < n) return counts;
  for (size_t i = 0; i + static_cast<size_t>(n) <= tokens.size(); ++i) {
    ++counts[std::vector<int64_t>(tokens.begin() + static_cast<ptrdiff_t>(i),
                                  tokens.begin() +
                                      static_cast<ptrdiff_t>(i) + n)];
  }
  return counts;
}

RougeScore FromCounts(int64_t matches, int64_t candidate_total,
                      int64_t reference_total) {
  RougeScore s;
  s.precision = candidate_total > 0
                    ? static_cast<double>(matches) / candidate_total
                    : 0.0;
  s.recall = reference_total > 0
                 ? static_cast<double>(matches) / reference_total
                 : 0.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

}  // namespace

util::StatusOr<RougeScore> RougeN(const std::vector<int64_t>& candidate,
                                  const std::vector<int64_t>& reference,
                                  int n) {
  return RougeN(candidate, std::vector<std::vector<int64_t>>{reference}, n);
}

util::StatusOr<RougeScore> RougeN(
    const std::vector<int64_t>& candidate,
    const std::vector<std::vector<int64_t>>& references, int n) {
  if (n < 1) return util::Status::InvalidArgument("n must be >= 1");
  if (references.empty()) {
    return util::Status::InvalidArgument("need at least one reference");
  }
  if (candidate.empty() && references.size() == 1 &&
      references[0].empty()) {
    return util::Status::InvalidArgument("both sequences empty");
  }
  const NgramCounts cand = CountNgrams(candidate, n);
  int64_t candidate_total = 0;
  for (const auto& [ng, c] : cand) candidate_total += c;

  int64_t matches = 0;
  int64_t reference_total = 0;
  // Clip each candidate n-gram count against its max count in any single
  // reference.
  std::vector<NgramCounts> ref_counts;
  ref_counts.reserve(references.size());
  for (const auto& r : references) {
    ref_counts.push_back(CountNgrams(r, n));
    for (const auto& [ng, c] : ref_counts.back()) reference_total += c;
  }
  for (const auto& [ng, c] : cand) {
    int64_t best = 0;
    for (const auto& rc : ref_counts) {
      auto it = rc.find(ng);
      if (it != rc.end()) best = std::max(best, it->second);
    }
    matches += std::min(c, best);
  }
  return FromCounts(matches, candidate_total, reference_total);
}

util::StatusOr<RougeScore> RougeL(const std::vector<int64_t>& candidate,
                                  const std::vector<int64_t>& reference) {
  if (candidate.empty() && reference.empty()) {
    return util::Status::InvalidArgument("both sequences empty");
  }
  const size_t m = candidate.size(), r = reference.size();
  std::vector<std::vector<int64_t>> lcs(m + 1,
                                        std::vector<int64_t>(r + 1, 0));
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= r; ++j) {
      lcs[i][j] = candidate[i - 1] == reference[j - 1]
                      ? lcs[i - 1][j - 1] + 1
                      : std::max(lcs[i - 1][j], lcs[i][j - 1]);
    }
  }
  return FromCounts(lcs[m][r], static_cast<int64_t>(m),
                    static_cast<int64_t>(r));
}

}  // namespace llm::eval
