// Gradient-free evaluation of language models on a TokenDataset: test
// cross-entropy (the held-out "test loss" of Figure 2) and perplexity.
#ifndef TFMR_EVAL_LM_EVAL_H_
#define TFMR_EVAL_LM_EVAL_H_

#include "nn/rnn.h"
#include "nn/transformer.h"
#include "text/dataset.h"

namespace llm::eval {

struct LmEvalResult {
  double cross_entropy = 0.0;  // nats/token
  double perplexity = 0.0;
  int64_t tokens_scored = 0;
};

/// Evaluates a GPT model on up to `max_windows` non-overlapping windows.
LmEvalResult EvaluateGpt(const nn::GPTModel& model,
                         const text::TokenDataset& dataset,
                         int64_t max_windows = 64);

/// Same for a recurrent LM.
LmEvalResult EvaluateRnn(const nn::RnnLm& model,
                         const text::TokenDataset& dataset,
                         int64_t max_windows = 64);

}  // namespace llm::eval

#endif  // TFMR_EVAL_LM_EVAL_H_
