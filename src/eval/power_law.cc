#include "eval/power_law.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llm::eval {

util::StatusOr<PowerLawFit> FitPowerLaw(const std::vector<double>& x,
                                        const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return util::Status::InvalidArgument("x and y length mismatch");
  }
  if (x.size() < 2) {
    return util::Status::InvalidArgument("need at least 2 points");
  }
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) {
      return util::Status::InvalidArgument("power-law fit needs positive data");
    }
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    return util::Status::InvalidArgument("degenerate x values");
  }
  PowerLawFit fit;
  fit.b = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.b * sx) / dn;
  fit.a = std::exp(intercept);
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = intercept + fit.b * std::log(x[i]);
    const double r = std::log(y[i]) - pred;
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

util::StatusOr<PowerLawFit> FitPowerLawWithFloor(
    const std::vector<double>& x, const std::vector<double>& y,
    double floor) {
  std::vector<double> adjusted;
  adjusted.reserve(y.size());
  for (double v : y) {
    if (v <= floor) {
      return util::Status::InvalidArgument(
          "observation at or below the loss floor");
    }
    adjusted.push_back(v - floor);
  }
  return FitPowerLaw(x, adjusted);
}

std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> initial, const NelderMeadOptions& options) {
  const size_t n = initial.size();
  LLM_CHECK_GT(n, 0u);

  struct Vertex {
    std::vector<double> x;
    double f;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({initial, objective(initial)});
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v = initial;
    v[i] += options.initial_step;
    simplex.push_back({v, objective(v)});
  }

  auto sort_simplex = [&] {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    sort_simplex();
    if (simplex.back().f - simplex.front().f < options.tolerance) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) centroid[j] += simplex[i].x[j];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double t) {
      std::vector<double> v(n);
      for (size_t j = 0; j < n; ++j) {
        v[j] = centroid[j] + t * (simplex.back().x[j] - centroid[j]);
      }
      return v;
    };

    const std::vector<double> reflected = blend(-1.0);
    const double fr = objective(reflected);
    if (fr < simplex.front().f) {
      const std::vector<double> expanded = blend(-2.0);
      const double fe = objective(expanded);
      simplex.back() = fe < fr ? Vertex{expanded, fe} : Vertex{reflected, fr};
    } else if (fr < simplex[n - 1].f) {
      simplex.back() = {reflected, fr};
    } else {
      const std::vector<double> contracted = blend(0.5);
      const double fc = objective(contracted);
      if (fc < simplex.back().f) {
        simplex.back() = {contracted, fc};
      } else {
        // Shrink toward the best.
        for (size_t i = 1; i <= n; ++i) {
          for (size_t j = 0; j < n; ++j) {
            simplex[i].x[j] =
                simplex[0].x[j] + 0.5 * (simplex[i].x[j] - simplex[0].x[j]);
          }
          simplex[i].f = objective(simplex[i].x);
        }
      }
    }
  }
  sort_simplex();
  return simplex.front().x;
}

double AnsatzLoss(const AnsatzFit& fit, double params, double data) {
  const double term_p =
      std::pow(fit.pc / params, fit.alpha_p / fit.alpha_d);
  const double term_d = fit.dc / data;
  return fit.floor + std::pow(term_p + term_d, fit.alpha_d);
}

util::StatusOr<AnsatzFit> FitAnsatz(const std::vector<ScalingPoint>& points) {
  if (points.size() < 5) {
    return util::Status::InvalidArgument(
        "need >= 5 (P, D, loss) points for a 5-parameter fit");
  }
  double min_loss = points[0].loss;
  for (const auto& p : points) {
    if (p.params <= 0 || p.data <= 0 || p.loss <= 0) {
      return util::Status::InvalidArgument("non-positive observation");
    }
    min_loss = std::min(min_loss, p.loss);
  }

  // Parameters: log Pc, log Dc, log alphaP, log alphaD, floor fraction
  // (floor = sigmoid(t) * min_loss keeps the floor below every point).
  auto unpack = [&](const std::vector<double>& v) {
    AnsatzFit f;
    f.pc = std::exp(v[0]);
    f.dc = std::exp(v[1]);
    f.alpha_p = std::exp(v[2]);
    f.alpha_d = std::exp(v[3]);
    f.floor = min_loss / (1.0 + std::exp(-v[4])) * 0.999;
    return f;
  };
  auto objective = [&](const std::vector<double>& v) {
    const AnsatzFit f = unpack(v);
    double sq = 0.0;
    for (const auto& p : points) {
      const double pred = AnsatzLoss(f, p.params, p.data);
      if (!(pred > 0.0) || !std::isfinite(pred)) return 1e18;
      const double r = std::log(pred) - std::log(p.loss);
      sq += r * r;
    }
    return sq / static_cast<double>(points.size());
  };

  // Multi-start: the landscape has local minima.
  std::vector<double> best;
  double best_f = 1e300;
  const double starts[][5] = {
      {std::log(1e4), std::log(1e4), std::log(0.3), std::log(0.3), 0.0},
      {std::log(1e5), std::log(1e5), std::log(0.1), std::log(0.1), -1.0},
      {std::log(1e3), std::log(1e5), std::log(0.5), std::log(0.2), 1.0},
      {std::log(1e6), std::log(1e3), std::log(0.2), std::log(0.5), -2.0},
  };
  for (const auto& s : starts) {
    std::vector<double> init(s, s + 5);
    NelderMeadOptions opt;
    opt.max_iterations = 4000;
    std::vector<double> v = NelderMead(objective, init, opt);
    const double f = objective(v);
    if (f < best_f) {
      best_f = f;
      best = v;
    }
  }
  AnsatzFit fit = unpack(best);
  fit.rmse = std::sqrt(best_f);
  return fit;
}

}  // namespace llm::eval
