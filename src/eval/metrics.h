// Evaluation metrics: language-model perplexity (Eq. 3), masked next-token
// accuracy, and confidence calibration (paper §8, "LLMs (mostly) know what
// they know" [65]): expected calibration error and reliability bins.
#ifndef TFMR_EVAL_METRICS_H_
#define TFMR_EVAL_METRICS_H_

#include <vector>

#include "core/tensor.h"
#include "util/status.h"

namespace llm::eval {

/// Fraction of rows where argmax(logits) == target, skipping rows with
/// target == ignore_index. logits: [N, V].
double MaskedAccuracy(const core::Tensor& logits,
                      const std::vector<int64_t>& targets,
                      int64_t ignore_index = -1);

/// Mean NLL (nats) of the targets under softmax(logits), skipping
/// ignore_index rows. This duplicates the loss op without building a graph
/// (pure evaluation).
double MaskedCrossEntropy(const core::Tensor& logits,
                          const std::vector<int64_t>& targets,
                          int64_t ignore_index = -1);

/// One (confidence, correctness) observation for calibration analysis.
struct CalibrationPoint {
  double confidence = 0.0;  // model's probability on its argmax token
  bool correct = false;
};

/// Extracts calibration points from logits/targets (ignoring masked rows).
std::vector<CalibrationPoint> CalibrationPoints(
    const core::Tensor& logits, const std::vector<int64_t>& targets,
    int64_t ignore_index = -1);

struct ReliabilityBin {
  double bin_lo = 0.0, bin_hi = 0.0;
  int64_t count = 0;
  double mean_confidence = 0.0;
  double accuracy = 0.0;
};

/// Equal-width reliability bins over [0, 1].
std::vector<ReliabilityBin> ReliabilityDiagram(
    const std::vector<CalibrationPoint>& points, int num_bins = 10);

/// Expected calibration error: sum over bins of
/// |accuracy - confidence| * bin_fraction.
double ExpectedCalibrationError(const std::vector<CalibrationPoint>& points,
                                int num_bins = 10);

/// Spearman rank correlation between two equal-length vectors (average
/// ranks for ties). Used by the structural-probe evaluation (§7).
util::StatusOr<double> SpearmanCorrelation(const std::vector<double>& a,
                                           const std::vector<double>& b);

}  // namespace llm::eval

#endif  // TFMR_EVAL_METRICS_H_
