#include "eval/temperature_scaling.h"

#include <cmath>

#include "util/check.h"

namespace llm::eval {

double NllAtTemperature(const core::Tensor& logits,
                        const std::vector<int64_t>& targets, double t,
                        int64_t ignore_index) {
  LLM_CHECK_EQ(logits.ndim(), 2);
  LLM_CHECK_GT(t, 0.0);
  const int64_t n = logits.dim(0), v = logits.dim(1);
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  double total = 0.0;
  int64_t counted = 0;
  for (int64_t r = 0; r < n; ++r) {
    const int64_t target = targets[static_cast<size_t>(r)];
    if (target == ignore_index) continue;
    LLM_CHECK_GE(target, 0);
    LLM_CHECK_LT(target, v);
    const float* row = logits.data() + r * v;
    double maxv = row[0];
    for (int64_t c = 1; c < v; ++c) maxv = std::max<double>(maxv, row[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < v; ++c) {
      sum += std::exp((row[c] - maxv) / t);
    }
    total += -((row[target] - maxv) / t - std::log(sum));
    ++counted;
  }
  LLM_CHECK_GT(counted, 0);
  return total / static_cast<double>(counted);
}

util::StatusOr<TemperatureFit> FitTemperature(
    const core::Tensor& logits, const std::vector<int64_t>& targets,
    int64_t ignore_index, double t_lo, double t_hi) {
  if (logits.ndim() != 2) {
    return util::Status::InvalidArgument("logits must be [N, V]");
  }
  if (t_lo <= 0.0 || t_hi <= t_lo) {
    return util::Status::InvalidArgument("need 0 < t_lo < t_hi");
  }
  bool any = false;
  for (int64_t t : targets) {
    if (t != ignore_index) any = true;
  }
  if (!any) return util::Status::InvalidArgument("all targets ignored");

  // Golden-section search in log-temperature (NLL is unimodal in T).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = std::log(t_lo), b = std::log(t_hi);
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  auto nll = [&](double log_t) {
    return NllAtTemperature(logits, targets, std::exp(log_t),
                            ignore_index);
  };
  double fc = nll(c), fd = nll(d);
  for (int iter = 0; iter < 80 && (b - a) > 1e-7; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = nll(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = nll(d);
    }
  }
  TemperatureFit fit;
  fit.temperature = std::exp(0.5 * (a + b));
  fit.nll_before = NllAtTemperature(logits, targets, 1.0, ignore_index);
  fit.nll_after =
      NllAtTemperature(logits, targets, fit.temperature, ignore_index);
  return fit;
}

}  // namespace llm::eval
