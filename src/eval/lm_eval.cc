#include "eval/lm_eval.h"

#include <cmath>

#include "eval/metrics.h"

namespace llm::eval {

namespace {
template <typename LogitsFn>
LmEvalResult EvaluateWindows(const text::TokenDataset& dataset,
                             int64_t max_windows, const LogitsFn& logits_fn) {
  std::vector<int64_t> inputs, targets;
  int64_t num_windows = 0;
  dataset.EvalWindows(max_windows, &inputs, &targets, &num_windows);
  const int64_t T = dataset.seq_len();

  // Evaluate window-by-window to bound peak memory.
  double total_nll = 0.0;
  int64_t total_tokens = 0;
  for (int64_t w = 0; w < num_windows; ++w) {
    std::vector<int64_t> in(inputs.begin() + w * T,
                            inputs.begin() + (w + 1) * T);
    std::vector<int64_t> tg(targets.begin() + w * T,
                            targets.begin() + (w + 1) * T);
    core::Tensor logits = logits_fn(in, T);
    total_nll += MaskedCrossEntropy(logits, tg) * static_cast<double>(T);
    total_tokens += T;
  }
  LmEvalResult result;
  result.tokens_scored = total_tokens;
  result.cross_entropy = total_nll / static_cast<double>(total_tokens);
  result.perplexity = std::exp(result.cross_entropy);
  return result;
}
}  // namespace

LmEvalResult EvaluateGpt(const nn::GPTModel& model,
                         const text::TokenDataset& dataset,
                         int64_t max_windows) {
  return EvaluateWindows(
      dataset, max_windows,
      [&](const std::vector<int64_t>& in, int64_t T) {
        return model.ForwardLogits(in, 1, T).value();
      });
}

LmEvalResult EvaluateRnn(const nn::RnnLm& model,
                         const text::TokenDataset& dataset,
                         int64_t max_windows) {
  return EvaluateWindows(
      dataset, max_windows,
      [&](const std::vector<int64_t>& in, int64_t T) {
        return model.ForwardLogits(in, 1, T).value();
      });
}

}  // namespace llm::eval
