// ROUGE-N text-overlap metrics (paper §4: "If the answer is freeform
// text, one can use text comparison metrics such as the ROUGE score").
// Computed over token-id sequences: clipped n-gram precision, recall, and
// F1 of a candidate against one or more references.
#ifndef TFMR_EVAL_ROUGE_H_
#define TFMR_EVAL_ROUGE_H_

#include <vector>

#include "util/status.h"

namespace llm::eval {

struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// ROUGE-N of `candidate` against a single `reference`. n >= 1; sequences
/// shorter than n score 0 (with OK status) unless both are empty, which is
/// InvalidArgument.
util::StatusOr<RougeScore> RougeN(const std::vector<int64_t>& candidate,
                                  const std::vector<int64_t>& reference,
                                  int n);

/// Multi-reference variant: per-ngram match counts are clipped against the
/// best single reference (standard ROUGE practice); recall uses the total
/// reference n-gram count.
util::StatusOr<RougeScore> RougeN(
    const std::vector<int64_t>& candidate,
    const std::vector<std::vector<int64_t>>& references, int n);

/// Longest-common-subsequence F-measure (ROUGE-L).
util::StatusOr<RougeScore> RougeL(const std::vector<int64_t>& candidate,
                                  const std::vector<int64_t>& reference);

}  // namespace llm::eval

#endif  // TFMR_EVAL_ROUGE_H_
