// Temperature scaling — the standard post-hoc calibration method for the
// §8 confidence problem: fit a single scalar T on held-out data so that
// softmax(logits / T) minimizes NLL, then report probabilities at that
// temperature. One parameter, preserves argmax, typically removes most
// over/under-confidence (Guo et al., 2017; the practical complement to
// Kadavath et al. [65]).
#ifndef TFMR_EVAL_TEMPERATURE_SCALING_H_
#define TFMR_EVAL_TEMPERATURE_SCALING_H_

#include <vector>

#include "core/tensor.h"
#include "util/status.h"

namespace llm::eval {

struct TemperatureFit {
  double temperature = 1.0;
  double nll_before = 0.0;  // at T = 1
  double nll_after = 0.0;   // at the fitted T
};

/// Mean NLL of `targets` under softmax(logits / T), skipping ignore rows.
double NllAtTemperature(const core::Tensor& logits,
                        const std::vector<int64_t>& targets, double t,
                        int64_t ignore_index = -1);

/// Fits T in [t_lo, t_hi] by golden-section search on validation NLL
/// (the NLL is unimodal in T for fixed logits). logits: [N, V].
util::StatusOr<TemperatureFit> FitTemperature(
    const core::Tensor& logits, const std::vector<int64_t>& targets,
    int64_t ignore_index = -1, double t_lo = 0.05, double t_hi = 20.0);

}  // namespace llm::eval

#endif  // TFMR_EVAL_TEMPERATURE_SCALING_H_
