#include "train/schedule.h"

#include <cmath>

#include "util/check.h"

namespace llm::train {

WarmupCosineLr::WarmupCosineLr(float base_lr, int64_t warmup_steps,
                               int64_t total_steps, float min_lr)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      min_lr_(min_lr) {
  LLM_CHECK_GE(warmup_steps, 0);
  LLM_CHECK_GT(total_steps, warmup_steps);
}

float WarmupCosineLr::LrAt(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return min_lr_;
  const double progress =
      static_cast<double>(step - warmup_steps_) /
      static_cast<double>(total_steps_ - warmup_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
  return static_cast<float>(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

}  // namespace llm::train
