// Trainer: the generic SGD loop shared by every experiment in bench/.
//
// The caller supplies a loss-builder closure (which assembles a fresh
// forward graph for one batch and returns the scalar loss Variable) and an
// optimizer; the trainer runs Backward, optional gradient clipping, the
// optimizer step, the LR schedule, and records the loss history.
//
// Fault tolerance (all opt-in via TrainerOptions):
//   * Periodic crash-safe checkpoints (format v2: weights + optimizer
//     moments + RNG stream + step history) with keep-last-k rotation.
//   * ResumeFrom(path): continue a killed run bit-exactly from its last
//     checkpoint — same batches, same moments, same loss curve.
//   * Divergence recovery: a NaN/Inf loss or an exploding gradient norm
//     rolls the run back to the last good checkpoint (or skips the bad
//     update when no checkpoint exists), shrinks the learning rate by
//     lr_backoff, and retries, up to max_recoveries times. Every incident
//     is recorded; exhausting the budget surfaces Status::Internal with
//     the full incident log.
#ifndef TFMR_TRAIN_TRAINER_H_
#define TFMR_TRAIN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "train/optimizer.h"
#include "train/schedule.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::nn {
class Module;
}  // namespace llm::nn

namespace llm::train {

struct TrainerOptions {
  int64_t max_steps = 1000;
  /// Global grad-norm clip; 0 disables.
  float clip_norm = 0.0f;
  /// Invoke the eval callback every this many steps (and at the last
  /// step); 0 disables.
  int64_t eval_every = 0;
  /// Optional schedule; when null the optimizer's fixed lr is used.
  const LrSchedule* schedule = nullptr;
  /// Print progress lines every this many steps; 0 = silent.
  int64_t log_every = 0;

  // --- Checkpointing (enabled when checkpoint_dir is non-empty) ---
  /// Directory for periodic checkpoints; created if missing. Requires
  /// `model` to be set.
  std::string checkpoint_dir;
  /// Save every this many steps (plus one initial and one final save);
  /// 0 = only initial and final.
  int64_t checkpoint_every = 0;
  /// Retain at most this many most-recent checkpoints (>= 1).
  int keep_last_k = 2;
  /// The module whose weights the checkpoints capture.
  nn::Module* model = nullptr;
  /// Data-sampling RNG used by the loss closure; saved/restored so a
  /// resumed run replays the exact batch sequence. Optional.
  util::Rng* data_rng = nullptr;

  // --- Divergence detection & recovery ---
  /// Treat a NaN/Inf loss as a divergence (vs silently recording it).
  bool detect_divergence = true;
  /// Pre-clip grad norm above this is a divergence; 0 disables the check.
  float grad_explode_threshold = 0.0f;
  /// Recoveries (rollback or skip) allowed before Run gives up with
  /// Status::Internal; 0 = fail on first divergence.
  int max_recoveries = 0;
  /// LR multiplier applied on every recovery (cumulative).
  float lr_backoff = 0.5f;
};

enum class StepEvent : uint8_t {
  kOk = 0,
  kDiverged = 1,   // this step's loss/grad was rejected
  kRecovered = 2,  // first step re-run after a rollback / skip
};

struct StepRecord {
  int64_t step = 0;
  float loss = 0.0f;
  float lr = 0.0f;
  float grad_norm = 0.0f;
  uint8_t event = 0;  // StepEvent
};

/// One divergence (or checkpoint failure) and how the trainer responded.
struct Incident {
  int64_t step = 0;
  std::string kind;    // "nan-loss", "grad-explosion", "checkpoint-write"
  std::string detail;  // human-readable context
  /// Action taken: "rollback:<path>", "skip-step", "none (budget
  /// exhausted)", ...
  std::string action;
  float lr_scale_after = 1.0f;
};

class Trainer {
 public:
  Trainer(Optimizer* optimizer, const TrainerOptions& options);

  /// Runs the loop from the current start step (0, or wherever ResumeFrom
  /// landed). `loss_fn` is called once per step. `eval_fn`, if given, is
  /// called with the current step per TrainerOptions::eval_every.
  ///
  /// Returns OK when max_steps completed; Status::Internal when the
  /// divergence-recovery budget is exhausted (message carries the incident
  /// log); or the underlying IO error when checkpointing is enabled and
  /// even the initial checkpoint cannot be written.
  util::Status Run(const std::function<core::Variable()>& loss_fn,
                   const std::function<void(int64_t step)>& eval_fn = {});

  /// Restores model weights, optimizer state, RNG stream, step history,
  /// and LR backoff scale from a v2 checkpoint written by this trainer,
  /// so the next Run continues the interrupted run bit-exactly. Call
  /// before Run. Requires options.model; fails with kFailedPrecondition
  /// on a v1 / weights-only checkpoint.
  util::Status ResumeFrom(const std::string& path);

  const std::vector<StepRecord>& history() const { return history_; }

  /// Divergences and checkpoint failures encountered so far (survives
  /// rollbacks, unlike history).
  const std::vector<Incident>& incidents() const { return incidents_; }

  /// Incident log formatted one-per-line (used in Status messages).
  std::string FormatIncidents() const;

  /// First step the next Run will execute (> 0 after ResumeFrom).
  int64_t start_step() const { return start_step_; }

  /// Mean loss over the last `n` recorded steps; 0 when no history.
  float RecentLoss(int64_t n = 50) const;

 private:
  /// Writes a full v2 checkpoint capturing "about to run `next_step`",
  /// rotating out old files beyond keep_last_k.
  util::Status SaveCheckpointNow(int64_t next_step);

  /// Rolls back to the newest loadable checkpoint (skipping corrupt or
  /// unreadable ones). On success sets *resume_step. Fails when no
  /// checkpoint can be loaded.
  util::Status Rollback(int64_t* resume_step);

  /// Handles one divergence at `step`: rollback or skip, backoff, record
  /// the incident. Returns OK and sets *resume_step to continue, or
  /// Status::Internal when the recovery budget is exhausted.
  util::Status HandleDivergence(int64_t step, const std::string& kind,
                                const std::string& detail,
                                int64_t* resume_step);

  Optimizer* optimizer_;
  TrainerOptions options_;
  std::vector<StepRecord> history_;
  std::vector<Incident> incidents_;
  /// Checkpoints written this run, oldest first (for rotation/rollback).
  std::vector<std::string> checkpoints_;
  int64_t start_step_ = 0;
  /// Cumulative LR backoff from divergence recoveries (persisted in
  /// checkpoints).
  float lr_scale_ = 1.0f;
  int recoveries_ = 0;
  /// True for the first step executed after a recovery (marks the record).
  bool just_recovered_ = false;
};

}  // namespace llm::train

#endif  // TFMR_TRAIN_TRAINER_H_
