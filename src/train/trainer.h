// Trainer: the generic SGD loop shared by every experiment in bench/.
//
// The caller supplies a loss-builder closure (which assembles a fresh
// forward graph for one batch and returns the scalar loss Variable) and an
// optimizer; the trainer runs Backward, optional gradient clipping, the
// optimizer step, the LR schedule, and records the loss history.
#ifndef TFMR_TRAIN_TRAINER_H_
#define TFMR_TRAIN_TRAINER_H_

#include <functional>
#include <vector>

#include "train/optimizer.h"
#include "train/schedule.h"

namespace llm::train {

struct TrainerOptions {
  int64_t max_steps = 1000;
  /// Global grad-norm clip; 0 disables.
  float clip_norm = 0.0f;
  /// Invoke the eval callback every this many steps (and at the last
  /// step); 0 disables.
  int64_t eval_every = 0;
  /// Optional schedule; when null the optimizer's fixed lr is used.
  const LrSchedule* schedule = nullptr;
  /// Print progress lines every this many steps; 0 = silent.
  int64_t log_every = 0;
};

struct StepRecord {
  int64_t step = 0;
  float loss = 0.0f;
  float lr = 0.0f;
  float grad_norm = 0.0f;
};

class Trainer {
 public:
  Trainer(Optimizer* optimizer, const TrainerOptions& options);

  /// Runs the loop. `loss_fn` is called once per step. `eval_fn`, if given,
  /// is called with the current step per TrainerOptions::eval_every.
  void Run(const std::function<core::Variable()>& loss_fn,
           const std::function<void(int64_t step)>& eval_fn = {});

  const std::vector<StepRecord>& history() const { return history_; }

  /// Mean loss over the last `n` recorded steps.
  float RecentLoss(int64_t n = 50) const;

 private:
  Optimizer* optimizer_;
  TrainerOptions options_;
  std::vector<StepRecord> history_;
};

}  // namespace llm::train

#endif  // TFMR_TRAIN_TRAINER_H_
