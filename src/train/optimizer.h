// Optimizers: plain SGD (paper Eq. 16), SGD with momentum, and AdamW
// (decoupled weight decay — the optimizer used in the grokking literature
// the paper discusses in §4).
#ifndef TFMR_TRAIN_OPTIMIZER_H_
#define TFMR_TRAIN_OPTIMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "core/graph.h"
#include "util/status.h"

namespace llm::train {

/// Serializable snapshot of an optimizer's internal state (beyond the
/// parameters themselves): the step counter and any per-parameter slot
/// tensors (momentum, Adam moments). Checkpoint v2 persists this so a
/// resumed run is bit-exact with an uninterrupted one.
struct OptimizerState {
  /// Which optimizer produced the state ("sgd", "adamw"); ImportState
  /// rejects a mismatch.
  std::string type;
  int64_t step = 0;
  /// Named slot tensors, e.g. "m/3" / "v/3" for AdamW moments of param 3.
  std::vector<std::pair<std::string, core::Tensor>> slots;
};

/// Base class: owns the parameter list and the learning rate.
class Optimizer {
 public:
  explicit Optimizer(std::vector<core::Variable> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients (call after Step).
  void ZeroGrad();

  /// Snapshot / restore internal state for checkpointing. The base
  /// optimizer is stateless; subclasses with slots override both.
  virtual OptimizerState ExportState() const { return {"stateless", 0, {}}; }
  virtual util::Status ImportState(const OptimizerState& state);

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  const std::vector<core::Variable>& params() const { return params_; }

 protected:
  /// Shared ImportState validation: checks the type tag and that every
  /// slot's shape matches the corresponding parameter.
  util::Status CheckStateShape(const OptimizerState& state,
                               const std::string& expected_type,
                               size_t slots_per_param) const;

  std::vector<core::Variable> params_;
  float lr_;
};

/// theta <- theta - lr * grad, optionally with momentum buffer.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<core::Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;

 private:
  float momentum_;
  std::vector<core::Tensor> velocity_;  // allocated on first step if needed
};

struct AdamWOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// Decoupled weight decay. Applied only to parameters with ndim >= 2
  /// (matrices), never to biases, gains, or embedding-free vectors —
  /// the standard masking.
  float weight_decay = 0.0f;
};

class AdamW : public Optimizer {
 public:
  AdamW(std::vector<core::Variable> params, const AdamWOptions& options);

  void Step() override;

  OptimizerState ExportState() const override;
  util::Status ImportState(const OptimizerState& state) override;

  int64_t step_count() const { return step_; }

 private:
  AdamWOptions options_;
  int64_t step_ = 0;
  std::vector<core::Tensor> m_;
  std::vector<core::Tensor> v_;
};

/// Scales all gradients so their global L2 norm is at most max_norm.
/// Returns the pre-clip norm. No-op (returns norm) if max_norm <= 0.
float ClipGradNorm(const std::vector<core::Variable>& params, float max_norm);

}  // namespace llm::train

#endif  // TFMR_TRAIN_OPTIMIZER_H_
