// Checkpointing: binary save/load of a module's named parameters.
//
// Format (little-endian):
//   magic "TFMRCKPT" (8 bytes) | uint64 param_count
//   per param: uint32 name_len | name bytes | uint32 ndim |
//              int64 dims[ndim] | float32 data[numel]
#ifndef TFMR_TRAIN_CHECKPOINT_H_
#define TFMR_TRAIN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace llm::train {

/// Writes all named parameters of `module` to `path`.
util::Status SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Loads parameters by name into `module`. Every parameter in the module
/// must be present in the file with a matching shape; extra entries in the
/// file are an error (strict round-trip).
util::Status LoadCheckpoint(nn::Module* module, const std::string& path);

}  // namespace llm::train

#endif  // TFMR_TRAIN_CHECKPOINT_H_
