// Checkpointing: crash-safe binary save/load of a module's parameters and,
// in format v2, the full training state needed for bit-exact resume.
//
// v2 format (little-endian):
//   magic "TFMRCKP2" (8 bytes) | uint32 version=2 | uint32 section_mask
//   [weights]   uint64 param_count, then per param:
//               uint32 name_len | name | uint32 ndim | int64 dims[ndim] |
//               uint32 crc32(data) | float32 data[numel]
//   [optimizer] (mask bit 1) uint32 type_len | type | int64 step |
//               uint64 slot_count, then per slot: same layout as a param
//   [rng]       (mask bit 2) uint64 s[4] | uint8 have_cached | double cached
//   [trainer]   (mask bit 3) int64 next_step | float lr_scale |
//               uint64 history_count, then per record:
//               int64 step | float loss | float lr | float grad_norm |
//               uint8 event
//   footer magic "TFMREND2" (8 bytes) — catches truncated tails
//
// Writes are atomic: everything goes to "<path>.tmp", is flushed, and only
// then renamed over <path>, so a crash mid-write never leaves a torn file
// at the final path. Every tensor carries a CRC32; LoadCheckpoint reports
// truncation as kIOError and bad magic / checksum mismatch / shape drift
// as kFailedPrecondition, never a crash or a silent misload.
//
// v1 files ("TFMRCKPT": no version, no checksums, weights only) still load
// read-only for weights; resuming training from them is rejected.
#ifndef TFMR_TRAIN_CHECKPOINT_H_
#define TFMR_TRAIN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::train {

/// Everything beyond the weights that a resumed run needs. Absent
/// sections leave their has_* flag false.
struct TrainState {
  bool has_optimizer = false;
  OptimizerState optimizer;

  bool has_rng = false;
  util::RngState rng;

  bool has_trainer = false;
  int64_t next_step = 0;
  float lr_scale = 1.0f;
  std::vector<StepRecord> history;
};

/// Writes all named parameters of `module` (and, when `state` is non-null,
/// its sections) to `path` in format v2, atomically.
util::Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                            const TrainState* state = nullptr);

/// Loads parameters by name into `module` (v1 or v2). Every parameter in
/// the module must be present in the file with a matching shape; extra
/// entries in the file are an error (strict round-trip). When `state` is
/// non-null, also loads whichever optional sections the file carries.
/// Atomic with respect to `module`: the file is parsed and fully
/// validated (checksums, names, shapes) before any parameter is written,
/// so a rejected checkpoint leaves the module bit-identical to before.
util::Status LoadCheckpoint(nn::Module* module, const std::string& path,
                            TrainState* state = nullptr);

/// Parses and fully validates the checkpoint at `path` — magic, version,
/// per-tensor CRC32s, section structure, footer — without touching any
/// module. When `module` is non-null, additionally checks architecture
/// compatibility: the file's parameter set must match the module's by
/// name and shape exactly. This is the pre-swap gate the serving fleet
/// runs before hot-reloading weights into a live replica: a corrupt or
/// architecturally incompatible file is rejected here, before any drain
/// or swap is attempted.
util::Status ValidateCheckpoint(const std::string& path,
                                const nn::Module* module = nullptr);

/// Newest checkpoint (by step number encoded in the filename) that
/// SaveCheckpoint wrote under `dir`; kNotFound when there is none.
util::StatusOr<std::string> LatestCheckpoint(const std::string& dir);

/// Rotation: deletes all but the `keep_last_k` newest checkpoints under
/// `dir`, plus any stale "<ckpt>.tmp" leftovers from torn writes. Deletion
/// runs newest-survivor-outward (oldest first), so a crash mid-prune —
/// modelled by FaultSite::kCheckpointPrune, which aborts the sweep with
/// kIOError — can only leave extra OLD files behind, never touch the
/// newest k; LatestCheckpoint's answer is unaffected and the next prune
/// finishes the job. A missing dir is OK (nothing to prune).
util::Status PruneCheckpoints(const std::string& dir, int keep_last_k);

/// Filename (not path) the trainer uses for the checkpoint taken before
/// running `next_step`, e.g. "ckpt_000000042.tfmr". Zero-padded so
/// lexicographic order equals step order.
std::string CheckpointFileName(int64_t next_step);

}  // namespace llm::train

#endif  // TFMR_TRAIN_CHECKPOINT_H_
