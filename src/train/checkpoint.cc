#include "train/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "util/crc32.h"
#include "util/fault.h"

namespace llm::train {

namespace {

constexpr char kMagicV1[8] = {'T', 'F', 'M', 'R', 'C', 'K', 'P', 'T'};
constexpr char kMagicV2[8] = {'T', 'F', 'M', 'R', 'C', 'K', 'P', '2'};
constexpr char kFooterV2[8] = {'T', 'F', 'M', 'R', 'E', 'N', 'D', '2'};
constexpr uint32_t kVersion2 = 2;

// Section bits in the v2 header mask.
constexpr uint32_t kSectionOptimizer = 1u << 1;
constexpr uint32_t kSectionRng = 1u << 2;
constexpr uint32_t kSectionTrainer = 1u << 3;

template <typename T>
void WritePod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Corrupt bytes can decode to absurd sizes; cap them so a bad file yields
// a Status instead of a multi-gigabyte allocation or an aborting Tensor.
constexpr uint32_t kMaxNameLen = 1u << 16;
constexpr uint32_t kMaxNdim = 16;
constexpr int64_t kMaxDim = int64_t{1} << 32;
constexpr int64_t kMaxNumel = int64_t{1} << 28;  // 1 GiB of float32

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len)) return false;
  if (len > kMaxNameLen) return false;
  s->assign(len, '\0');
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

/// name | ndim | dims | crc32 | data — shared by weights and opt slots.
void WriteTensorEntry(std::ofstream& out, const std::string& name,
                      const core::Tensor& t) {
  WriteString(out, name);
  WritePod<uint32_t>(out, static_cast<uint32_t>(t.ndim()));
  for (int i = 0; i < t.ndim(); ++i) WritePod<int64_t>(out, t.dim(i));
  const size_t bytes = static_cast<size_t>(t.numel()) * sizeof(float);
  WritePod<uint32_t>(out, util::Crc32(t.data(), bytes));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(bytes));
}

/// Reads one tensor entry into freshly-allocated storage, verifying the
/// checksum. `what` names the section for error messages.
util::Status ReadTensorEntry(std::ifstream& in, const std::string& path,
                             const char* what, std::string* name,
                             core::Tensor* t) {
  if (!ReadString(in, name)) {
    return util::Status::IOError(std::string("truncated checkpoint (") +
                                 what + " name): " + path);
  }
  uint32_t ndim = 0;
  if (!ReadPod(in, &ndim)) {
    return util::Status::IOError(std::string("truncated checkpoint (") +
                                 what + " ndim): " + path);
  }
  if (ndim > kMaxNdim) {
    return util::Status::FailedPrecondition(
        std::string("corrupt checkpoint (") + what + " ndim " +
        std::to_string(ndim) + "): " + path);
  }
  core::Shape shape(ndim);
  for (auto& d : shape) {
    if (!ReadPod(in, &d)) {
      return util::Status::IOError(std::string("truncated checkpoint (") +
                                   what + " dims): " + path);
    }
    if (d < 0 || d > kMaxDim) {
      return util::Status::FailedPrecondition(
          std::string("corrupt checkpoint (") + what + " dim " +
          std::to_string(d) + "): " + path);
    }
  }
  int64_t numel = 1;
  for (int64_t d : shape) {
    if (d != 0 && numel > kMaxNumel / d) {
      return util::Status::FailedPrecondition(
          std::string("corrupt checkpoint (") + what +
          " implausible element count): " + path);
    }
    numel *= d;
  }
  uint32_t stored_crc = 0;
  if (!ReadPod(in, &stored_crc)) {
    return util::Status::IOError(std::string("truncated checkpoint (") +
                                 what + " crc): " + path);
  }
  *t = core::Tensor(shape);
  const size_t bytes = static_cast<size_t>(t->numel()) * sizeof(float);
  in.read(reinterpret_cast<char*>(t->data()),
          static_cast<std::streamsize>(bytes));
  if (!in) {
    return util::Status::IOError(std::string("truncated checkpoint (") +
                                 what + " data): " + path);
  }
  const uint32_t computed = util::Crc32(t->data(), bytes);
  if (computed != stored_crc) {
    return util::Status::FailedPrecondition(
        std::string("checksum mismatch for ") + what + " '" + *name +
        "' in " + path + " (file says " + std::to_string(stored_crc) +
        ", data hashes to " + std::to_string(computed) + ")");
  }
  return util::Status::OK();
}

/// Architecture-compatibility gate: the loaded parameter set must match
/// the module's by name and shape exactly (strict round-trip). Pure check,
/// no mutation — shared by LoadCheckpoint and ValidateCheckpoint.
util::Status CheckCompatible(
    const nn::Module& module,
    const std::vector<std::pair<std::string, core::Tensor>>& loaded,
    const std::string& path) {
  std::map<std::string, core::Variable> by_name;
  for (auto& [name, var] : module.NamedParameters()) {
    by_name.emplace(name, var);
  }
  if (loaded.size() != by_name.size()) {
    return util::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(loaded.size()) +
        " params, module has " + std::to_string(by_name.size()) + ": " +
        path);
  }
  for (const auto& [name, tensor] : loaded) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::NotFound("unknown parameter in checkpoint: " +
                                    name);
    }
    if (it->second.value().shape() != tensor.shape()) {
      return util::Status::FailedPrecondition(
          "shape mismatch for " + name + ": file " +
          core::ShapeToString(tensor.shape()) + " vs module " +
          core::ShapeToString(it->second.value().shape()));
    }
  }
  return util::Status::OK();
}

/// Copies loaded tensors into the module's parameters by name. Two-phase:
/// CheckCompatible must pass over the whole set before the first byte is
/// written, so a rejected file never leaves the module half-mutated.
util::Status AssignParams(
    nn::Module* module,
    const std::vector<std::pair<std::string, core::Tensor>>& loaded,
    const std::string& path) {
  LLM_RETURN_IF_ERROR(CheckCompatible(*module, loaded, path));
  std::map<std::string, core::Variable> by_name;
  for (auto& [name, var] : module->NamedParameters()) {
    by_name.emplace(name, var);
  }
  for (const auto& [name, tensor] : loaded) {
    core::Tensor& dst = by_name.find(name)->second.mutable_value();
    std::memcpy(dst.data(), tensor.data(),
                static_cast<size_t>(dst.numel()) * sizeof(float));
  }
  return util::Status::OK();
}

/// v1 body: no checksums, weights only. `in` is positioned after the magic.
util::Status ParseV1Body(std::ifstream& in, const std::string& path,
                         std::vector<std::pair<std::string, core::Tensor>>*
                             out) {
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::IOError("truncated checkpoint: " + path);
  }
  std::vector<std::pair<std::string, core::Tensor>> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      return util::Status::IOError("truncated checkpoint (name): " + path);
    }
    uint32_t ndim = 0;
    if (!ReadPod(in, &ndim)) {
      return util::Status::IOError("truncated checkpoint (ndim): " + path);
    }
    core::Shape shape(ndim);
    for (auto& d : shape) {
      if (!ReadPod(in, &d)) {
        return util::Status::IOError("truncated checkpoint (dims): " + path);
      }
    }
    core::Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) {
      return util::Status::IOError("truncated checkpoint (data): " + path);
    }
    loaded.emplace_back(std::move(name), std::move(t));
  }
  *out = std::move(loaded);
  return util::Status::OK();
}

/// Reads and structurally validates the whole file (v1 or v2): magic,
/// version, tensor checksums, optional sections, footer. Fills `loaded`
/// and `parsed` on success; touches no module. The single parse path
/// behind both LoadCheckpoint and ValidateCheckpoint.
util::Status ParseCheckpointFile(
    const std::string& path,
    std::vector<std::pair<std::string, core::Tensor>>* loaded,
    TrainState* parsed) {
  if (util::MaybeInjectFault(util::FaultSite::kCheckpointRead)) {
    return util::Status::IOError("injected fault: unreadable checkpoint " +
                                 path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) return util::Status::IOError("truncated checkpoint: " + path);
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    // Legacy v1: weights only, loadable but carries no training state.
    return ParseV1Body(in, path, loaded);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0) {
    return util::Status::FailedPrecondition("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version)) {
    return util::Status::IOError("truncated checkpoint (version): " + path);
  }
  if (version != kVersion2) {
    return util::Status::FailedPrecondition(
        "unsupported checkpoint version " + std::to_string(version) + ": " +
        path);
  }
  uint32_t mask = 0;
  if (!ReadPod(in, &mask)) {
    return util::Status::IOError("truncated checkpoint (mask): " + path);
  }

  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::IOError("truncated checkpoint (param count): " +
                                 path);
  }
  loaded->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    core::Tensor t;
    LLM_RETURN_IF_ERROR(ReadTensorEntry(in, path, "param", &name, &t));
    loaded->emplace_back(std::move(name), std::move(t));
  }

  if (mask & kSectionOptimizer) {
    if (!ReadString(in, &parsed->optimizer.type) ||
        !ReadPod(in, &parsed->optimizer.step)) {
      return util::Status::IOError("truncated checkpoint (optimizer): " +
                                   path);
    }
    uint64_t slots = 0;
    if (!ReadPod(in, &slots)) {
      return util::Status::IOError("truncated checkpoint (slot count): " +
                                   path);
    }
    for (uint64_t i = 0; i < slots; ++i) {
      std::string name;
      core::Tensor t;
      LLM_RETURN_IF_ERROR(ReadTensorEntry(in, path, "slot", &name, &t));
      parsed->optimizer.slots.emplace_back(std::move(name), std::move(t));
    }
    parsed->has_optimizer = true;
  }
  if (mask & kSectionRng) {
    uint8_t have_cached = 0;
    for (uint64_t& s : parsed->rng.s) {
      if (!ReadPod(in, &s)) {
        return util::Status::IOError("truncated checkpoint (rng): " + path);
      }
    }
    if (!ReadPod(in, &have_cached) ||
        !ReadPod(in, &parsed->rng.cached_normal)) {
      return util::Status::IOError("truncated checkpoint (rng): " + path);
    }
    parsed->rng.have_cached_normal = have_cached != 0;
    parsed->has_rng = true;
  }
  if (mask & kSectionTrainer) {
    uint64_t records = 0;
    if (!ReadPod(in, &parsed->next_step) || !ReadPod(in, &parsed->lr_scale) ||
        !ReadPod(in, &records)) {
      return util::Status::IOError("truncated checkpoint (trainer): " + path);
    }
    parsed->history.reserve(records);
    for (uint64_t i = 0; i < records; ++i) {
      StepRecord r;
      if (!ReadPod(in, &r.step) || !ReadPod(in, &r.loss) ||
          !ReadPod(in, &r.lr) || !ReadPod(in, &r.grad_norm) ||
          !ReadPod(in, &r.event)) {
        return util::Status::IOError("truncated checkpoint (history): " +
                                     path);
      }
      parsed->history.push_back(r);
    }
    parsed->has_trainer = true;
  }
  char footer[8];
  in.read(footer, sizeof(footer));
  if (!in) return util::Status::IOError("truncated checkpoint (footer): " +
                                        path);
  if (std::memcmp(footer, kFooterV2, sizeof(kFooterV2)) != 0) {
    return util::Status::FailedPrecondition("bad checkpoint footer: " + path);
  }
  return util::Status::OK();
}

}  // namespace

util::Status SaveCheckpoint(const nn::Module& module, const std::string& path,
                            const TrainState* state) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IOError("cannot open for write: " + tmp);
    out.write(kMagicV2, sizeof(kMagicV2));
    WritePod<uint32_t>(out, kVersion2);
    uint32_t mask = 1;  // weights, always present
    if (state != nullptr) {
      if (state->has_optimizer) mask |= kSectionOptimizer;
      if (state->has_rng) mask |= kSectionRng;
      if (state->has_trainer) mask |= kSectionTrainer;
    }
    WritePod<uint32_t>(out, mask);

    // Injected torn write (counted once per save): stop partway through
    // the parameter list, as a crash would. The tmp file is abandoned
    // un-renamed, so the destination path is never corrupted.
    const bool tear =
        util::MaybeInjectFault(util::FaultSite::kCheckpointWrite);
    const nn::NamedParams params = module.NamedParameters();
    WritePod<uint64_t>(out, params.size());
    size_t written = 0;
    for (const auto& [name, var] : params) {
      if (tear && written >= params.size() / 2) {
        out.flush();
        out.close();
        return util::Status::IOError(
            "injected fault: torn checkpoint write at " + tmp);
      }
      WriteTensorEntry(out, name, var.value());
      ++written;
    }

    if (mask & kSectionOptimizer) {
      WriteString(out, state->optimizer.type);
      WritePod<int64_t>(out, state->optimizer.step);
      WritePod<uint64_t>(out, state->optimizer.slots.size());
      for (const auto& [name, t] : state->optimizer.slots) {
        WriteTensorEntry(out, name, t);
      }
    }
    if (mask & kSectionRng) {
      for (uint64_t s : state->rng.s) WritePod<uint64_t>(out, s);
      WritePod<uint8_t>(out, state->rng.have_cached_normal ? 1 : 0);
      WritePod<double>(out, state->rng.cached_normal);
    }
    if (mask & kSectionTrainer) {
      WritePod<int64_t>(out, state->next_step);
      WritePod<float>(out, state->lr_scale);
      WritePod<uint64_t>(out, state->history.size());
      for (const StepRecord& r : state->history) {
        WritePod<int64_t>(out, r.step);
        WritePod<float>(out, r.loss);
        WritePod<float>(out, r.lr);
        WritePod<float>(out, r.grad_norm);
        WritePod<uint8_t>(out, r.event);
      }
    }
    out.write(kFooterV2, sizeof(kFooterV2));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return util::Status::IOError("write failed: " + tmp);
    }
  }
  // Atomic publish: readers see either the old complete file or the new
  // complete file, never a partial one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return util::Status::OK();
}

util::Status LoadCheckpoint(nn::Module* module, const std::string& path,
                            TrainState* state) {
  if (module == nullptr) {
    return util::Status::InvalidArgument("null module");
  }
  std::vector<std::pair<std::string, core::Tensor>> loaded;
  TrainState parsed;
  LLM_RETURN_IF_ERROR(ParseCheckpointFile(path, &loaded, &parsed));
  // All parsing and validation passed — only now mutate the module and
  // outputs (AssignParams re-checks compatibility before the first write),
  // so a rejected file leaves everything untouched.
  LLM_RETURN_IF_ERROR(AssignParams(module, loaded, path));
  if (state != nullptr) *state = std::move(parsed);
  return util::Status::OK();
}

util::Status ValidateCheckpoint(const std::string& path,
                                const nn::Module* module) {
  std::vector<std::pair<std::string, core::Tensor>> loaded;
  TrainState parsed;
  LLM_RETURN_IF_ERROR(ParseCheckpointFile(path, &loaded, &parsed));
  if (module != nullptr) {
    LLM_RETURN_IF_ERROR(CheckCompatible(*module, loaded, path));
  }
  return util::Status::OK();
}

std::string CheckpointFileName(int64_t next_step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%09lld.tfmr",
                static_cast<long long>(next_step));
  return buf;
}

namespace {

// Exactly ckpt_<digits>.tfmr, as CheckpointFileName writes — stray files
// that merely share the prefix/suffix (ckpt_old.tfmr, editor backups,
// subdirectories) are not checkpoints.
bool IsCheckpointFileName(const std::string& name) {
  if (name.rfind("ckpt_", 0) != 0) return false;
  if (name.size() < 11 || name.substr(name.size() - 5) != ".tfmr") {
    return false;
  }
  const std::string step = name.substr(5, name.size() - 10);
  return !step.empty() &&
         step.find_first_not_of("0123456789") == std::string::npos;
}

}  // namespace

util::StatusOr<std::string> LatestCheckpoint(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    // A missing (or not-a-directory) checkpoint dir means "no checkpoints",
    // the same answer an empty dir gives — NotFound, never a malformed
    // path. Real I/O problems (e.g. permissions) stay IOError.
    if (ec == std::errc::no_such_file_or_directory ||
        ec == std::errc::not_a_directory) {
      return util::Status::NotFound("no checkpoint dir: " + dir);
    }
    return util::Status::IOError("cannot list checkpoint dir " + dir + ": " +
                                 ec.message());
  }
  std::string best_name;
  std::string best;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (!IsCheckpointFileName(name)) continue;
    // Zero-padded step numbers make lexicographic order step order.
    if (name > best_name) {
      best_name = name;
      best = entry.path().string();
    }
  }
  if (best.empty()) {
    return util::Status::NotFound("no checkpoints under " + dir);
  }
  return best;
}

util::Status PruneCheckpoints(const std::string& dir, int keep_last_k) {
  if (keep_last_k < 1) {
    return util::Status::InvalidArgument("keep_last_k must be >= 1, got " +
                                         std::to_string(keep_last_k));
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory ||
        ec == std::errc::not_a_directory) {
      return util::Status::OK();  // nothing to prune
    }
    return util::Status::IOError("cannot list checkpoint dir " + dir + ": " +
                                 ec.message());
  }
  std::vector<std::string> names;
  std::vector<std::string> stale_tmps;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (IsCheckpointFileName(name)) {
      names.push_back(name);
    } else if (name.size() > 4 &&
               name.substr(name.size() - 4) == ".tmp" &&
               IsCheckpointFileName(name.substr(0, name.size() - 4))) {
      // A crash between SaveCheckpoint's write and its rename leaves
      // "<ckpt>.tmp" behind; it is never a valid checkpoint, only debris.
      stale_tmps.push_back(name);
    }
  }
  // Oldest debris and checkpoints go first, so an aborted sweep can only
  // leave extra OLD files — the newest keep_last_k are never at risk.
  std::sort(names.begin(), names.end());
  std::sort(stale_tmps.begin(), stale_tmps.end());
  const auto unlink = [&](const std::string& name) -> util::Status {
    if (util::MaybeInjectFault(util::FaultSite::kCheckpointPrune)) {
      return util::Status::IOError(
          "injected fault: crashed pruning " + name +
          " (FaultSite::kCheckpointPrune)");
    }
    std::error_code rm_ec;
    std::filesystem::remove(std::filesystem::path(dir) / name, rm_ec);
    if (rm_ec) {
      return util::Status::IOError("cannot prune " + name + " under " + dir +
                                   ": " + rm_ec.message());
    }
    return util::Status::OK();
  };
  for (const std::string& name : stale_tmps) {
    LLM_RETURN_IF_ERROR(unlink(name));
  }
  const size_t keep = static_cast<size_t>(keep_last_k);
  if (names.size() > keep) {
    for (size_t i = 0; i + keep < names.size(); ++i) {
      LLM_RETURN_IF_ERROR(unlink(names[i]));
    }
  }
  return util::Status::OK();
}

}  // namespace llm::train
