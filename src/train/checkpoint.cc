#include "train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

namespace llm::train {

namespace {
constexpr char kMagic[8] = {'T', 'F', 'M', 'R', 'C', 'K', 'P', 'T'};

template <typename T>
void WritePod(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

util::Status SaveCheckpoint(const nn::Module& module,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  const nn::NamedParams params = module.NamedParameters();
  WritePod<uint64_t>(out, params.size());
  for (const auto& [name, var] : params) {
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const core::Tensor& t = var.value();
    WritePod<uint32_t>(out, static_cast<uint32_t>(t.ndim()));
    for (int i = 0; i < t.ndim(); ++i) WritePod<int64_t>(out, t.dim(i));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::Status LoadCheckpoint(nn::Module* module, const std::string& path) {
  if (module == nullptr) {
    return util::Status::InvalidArgument("null module");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IOError("cannot open for read: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) {
    return util::Status::IOError("truncated checkpoint: " + path);
  }

  std::map<std::string, core::Variable> by_name;
  for (auto& [name, var] : module->NamedParameters()) {
    by_name.emplace(name, var);
  }
  if (count != by_name.size()) {
    return util::Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " params, module has " +
        std::to_string(by_name.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return util::Status::IOError("truncated checkpoint (name len)");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t ndim = 0;
    if (!in || !ReadPod(in, &ndim)) {
      return util::Status::IOError("truncated checkpoint (ndim)");
    }
    core::Shape shape(ndim);
    for (auto& d : shape) {
      if (!ReadPod(in, &d)) {
        return util::Status::IOError("truncated checkpoint (dims)");
      }
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return util::Status::NotFound("unknown parameter in checkpoint: " +
                                    name);
    }
    core::Tensor& dst = it->second.mutable_value();
    if (dst.shape() != shape) {
      return util::Status::InvalidArgument(
          "shape mismatch for " + name + ": file " +
          core::ShapeToString(shape) + " vs module " +
          core::ShapeToString(dst.shape()));
    }
    in.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(dst.numel() * sizeof(float)));
    if (!in) return util::Status::IOError("truncated checkpoint (data)");
  }
  return util::Status::OK();
}

}  // namespace llm::train
