// Learning-rate schedules (the "learning rate hyperparameter" of Eq. 16;
// warmup+cosine is the standard LLM recipe).
#ifndef TFMR_TRAIN_SCHEDULE_H_
#define TFMR_TRAIN_SCHEDULE_H_

#include <cstdint>

namespace llm::train {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use at 0-based step `step`.
  virtual float LrAt(int64_t step) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LrAt(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Linear warmup from 0 over `warmup_steps`, then cosine decay from base_lr
/// to min_lr over the remaining steps up to total_steps, constant after.
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float base_lr, int64_t warmup_steps, int64_t total_steps,
                 float min_lr = 0.0f);

  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  float min_lr_;
};

}  // namespace llm::train

#endif  // TFMR_TRAIN_SCHEDULE_H_
