#include "train/optimizer.h"

#include <cmath>

namespace llm::train {

Optimizer::Optimizer(std::vector<core::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    LLM_CHECK(p.defined());
    LLM_CHECK(p.requires_grad()) << "optimizer given a frozen parameter";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

util::Status Optimizer::ImportState(const OptimizerState& state) {
  if (!state.slots.empty()) {
    return util::Status::FailedPrecondition(
        "stateless optimizer given " + std::to_string(state.slots.size()) +
        " state slots");
  }
  return util::Status::OK();
}

util::Status Optimizer::CheckStateShape(const OptimizerState& state,
                                        const std::string& expected_type,
                                        size_t slots_per_param) const {
  if (state.type != expected_type) {
    return util::Status::FailedPrecondition(
        "optimizer state type mismatch: file has '" + state.type +
        "', optimizer is '" + expected_type + "'");
  }
  const size_t expected = slots_per_param * params_.size();
  if (state.slots.size() != expected) {
    return util::Status::FailedPrecondition(
        "optimizer state has " + std::to_string(state.slots.size()) +
        " slots, expected " + std::to_string(expected));
  }
  for (size_t i = 0; i < state.slots.size(); ++i) {
    const core::Tensor& t = state.slots[i].second;
    const core::Variable& p = params_[i % params_.size()];
    if (t.shape() != p.shape()) {
      return util::Status::FailedPrecondition(
          "optimizer slot '" + state.slots[i].first + "' has shape " +
          core::ShapeToString(t.shape()) + ", parameter has " +
          core::ShapeToString(p.shape()));
    }
  }
  return util::Status::OK();
}

Sgd::Sgd(std::vector<core::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {}

void Sgd::Step() {
  if (momentum_ != 0.0f && velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.shape());
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    core::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const core::Tensor& g = p.grad();
    core::Tensor& w = p.mutable_value();
    if (momentum_ == 0.0f) {
      w.AddScaled(g, -lr_);
    } else {
      core::Tensor& vel = velocity_[i];
      vel.Scale(momentum_);
      vel.Add(g);
      w.AddScaled(vel, -lr_);
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state{"sgd", 0, {}};
  for (size_t i = 0; i < velocity_.size(); ++i) {
    state.slots.emplace_back("velocity/" + std::to_string(i), velocity_[i]);
  }
  return state;
}

util::Status Sgd::ImportState(const OptimizerState& state) {
  // Velocity buffers are lazily allocated, so both "no slots yet" and one
  // slot per parameter are valid snapshots.
  const size_t per_param = state.slots.empty() ? 0 : 1;
  LLM_RETURN_IF_ERROR(CheckStateShape(state, "sgd", per_param));
  velocity_.clear();
  for (const auto& [name, t] : state.slots) velocity_.push_back(t);
  return util::Status::OK();
}

AdamW::AdamW(std::vector<core::Variable> params, const AdamWOptions& options)
    : Optimizer(std::move(params), options.lr), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.shape());
    v_.emplace_back(p.shape());
  }
}

void AdamW::Step() {
  ++step_;
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    core::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const core::Tensor& g = p.grad();
    core::Tensor& w = p.mutable_value();
    core::Tensor& m = m_[i];
    core::Tensor& v = v_[i];
    const bool decay = options_.weight_decay > 0.0f && w.ndim() >= 2;
    for (int64_t j = 0; j < w.numel(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      float update = mhat / (std::sqrt(vhat) + options_.eps);
      if (decay) update += options_.weight_decay * w[j];
      w[j] -= lr_ * update;
    }
  }
}

OptimizerState AdamW::ExportState() const {
  OptimizerState state{"adamw", step_, {}};
  for (size_t i = 0; i < m_.size(); ++i) {
    state.slots.emplace_back("m/" + std::to_string(i), m_[i]);
  }
  for (size_t i = 0; i < v_.size(); ++i) {
    state.slots.emplace_back("v/" + std::to_string(i), v_[i]);
  }
  return state;
}

util::Status AdamW::ImportState(const OptimizerState& state) {
  LLM_RETURN_IF_ERROR(CheckStateShape(state, "adamw", 2));
  const size_t n = params_.size();
  for (size_t i = 0; i < n; ++i) {
    m_[i] = state.slots[i].second;
    v_[i] = state.slots[n + i].second;
  }
  step_ = state.step;
  return util::Status::OK();
}

float ClipGradNorm(const std::vector<core::Variable>& params,
                   float max_norm) {
  double sq = 0.0;
  for (const auto& p : params) {
    if (p.has_grad()) sq += p.grad().SquaredNorm();
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (max_norm > 0.0f && norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (auto p : params) {
      if (p.has_grad()) p.mutable_grad().Scale(scale);
    }
  }
  return norm;
}

}  // namespace llm::train
