#include "train/trainer.h"

#include <cstdio>

namespace llm::train {

Trainer::Trainer(Optimizer* optimizer, const TrainerOptions& options)
    : optimizer_(optimizer), options_(options) {
  LLM_CHECK(optimizer != nullptr);
  LLM_CHECK_GT(options.max_steps, 0);
}

void Trainer::Run(const std::function<core::Variable()>& loss_fn,
                  const std::function<void(int64_t)>& eval_fn) {
  history_.reserve(static_cast<size_t>(options_.max_steps));
  for (int64_t step = 0; step < options_.max_steps; ++step) {
    if (options_.schedule) optimizer_->set_lr(options_.schedule->LrAt(step));
    core::Variable loss = loss_fn();
    optimizer_->ZeroGrad();
    core::Backward(loss);
    const float grad_norm =
        ClipGradNorm(optimizer_->params(), options_.clip_norm);
    optimizer_->Step();
    history_.push_back(
        {step, loss.value()[0], optimizer_->lr(), grad_norm});
    if (options_.log_every > 0 &&
        (step % options_.log_every == 0 || step + 1 == options_.max_steps)) {
      std::printf("step %6lld  loss %.4f  lr %.2e  |g| %.3f\n",
                  static_cast<long long>(step),
                  static_cast<double>(loss.value()[0]),
                  static_cast<double>(optimizer_->lr()),
                  static_cast<double>(grad_norm));
      std::fflush(stdout);
    }
    if (eval_fn && options_.eval_every > 0 &&
        (step % options_.eval_every == 0 ||
         step + 1 == options_.max_steps)) {
      eval_fn(step);
    }
  }
}

float Trainer::RecentLoss(int64_t n) const {
  if (history_.empty()) return 0.0f;
  const int64_t count =
      std::min<int64_t>(n, static_cast<int64_t>(history_.size()));
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    sum += history_[history_.size() - 1 - static_cast<size_t>(i)].loss;
  }
  return static_cast<float>(sum / count);
}

}  // namespace llm::train
