#include "train/trainer.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "obs/flight_recorder.h"
#include "train/checkpoint.h"
#include "util/fault.h"

namespace llm::train {

Trainer::Trainer(Optimizer* optimizer, const TrainerOptions& options)
    : optimizer_(optimizer), options_(options) {
  LLM_CHECK(optimizer != nullptr);
  LLM_CHECK_GT(options.max_steps, 0);
  if (!options.checkpoint_dir.empty()) {
    LLM_CHECK(options.model != nullptr)
        << "checkpointing enabled but TrainerOptions::model is null";
    LLM_CHECK_GE(options.keep_last_k, 1);
  }
  LLM_CHECK_GT(options.lr_backoff, 0.0f);
}

util::Status Trainer::ResumeFrom(const std::string& path) {
  if (options_.model == nullptr) {
    return util::Status::FailedPrecondition(
        "ResumeFrom requires TrainerOptions::model");
  }
  TrainState state;
  LLM_RETURN_IF_ERROR(LoadCheckpoint(options_.model, path, &state));
  if (!state.has_trainer) {
    return util::Status::FailedPrecondition(
        "checkpoint carries no trainer state (v1 or weights-only file): " +
        path);
  }
  if (state.has_optimizer) {
    LLM_RETURN_IF_ERROR(optimizer_->ImportState(state.optimizer));
  }
  if (state.has_rng && options_.data_rng != nullptr) {
    options_.data_rng->RestoreState(state.rng);
  }
  history_ = std::move(state.history);
  start_step_ = state.next_step;
  lr_scale_ = state.lr_scale;
  return util::Status::OK();
}

util::Status Trainer::SaveCheckpointNow(int64_t next_step) {
  TrainState state;
  state.has_optimizer = true;
  state.optimizer = optimizer_->ExportState();
  if (options_.data_rng != nullptr) {
    state.has_rng = true;
    state.rng = options_.data_rng->SaveState();
  }
  state.has_trainer = true;
  state.next_step = next_step;
  state.lr_scale = lr_scale_;
  state.history = history_;

  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(next_step);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(*options_.model, path, &state));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpointSaved, 0, next_step);
  // Re-saving the same step (after a rollback) must not duplicate the
  // rotation entry.
  if (checkpoints_.empty() || checkpoints_.back() != path) {
    checkpoints_.push_back(path);
  }
  while (checkpoints_.size() > static_cast<size_t>(options_.keep_last_k)) {
    checkpoints_.erase(checkpoints_.begin());
  }
  // On-disk rotation goes through the shared pruner, which also sweeps
  // stale .tmp debris from torn writes; the in-memory list above only
  // tracks this run's rollback candidates.
  return PruneCheckpoints(options_.checkpoint_dir, options_.keep_last_k);
}

util::Status Trainer::Rollback(int64_t* resume_step) {
  // Newest first; skip checkpoints that fail to load (torn, corrupt, or
  // injected-unreadable) — an older good one still recovers the run.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    TrainState state;
    util::Status s = LoadCheckpoint(options_.model, *it, &state);
    if (!s.ok()) {
      std::fprintf(stderr, "[trainer] rollback skipping %s: %s\n",
                   it->c_str(), s.ToString().c_str());
      continue;
    }
    if (!state.has_trainer || !state.has_optimizer) continue;
    LLM_RETURN_IF_ERROR(optimizer_->ImportState(state.optimizer));
    if (state.has_rng && options_.data_rng != nullptr) {
      options_.data_rng->RestoreState(state.rng);
    }
    history_ = std::move(state.history);
    *resume_step = state.next_step;
    return util::Status::OK();
  }
  return util::Status::NotFound("no loadable checkpoint to roll back to");
}

util::Status Trainer::HandleDivergence(int64_t step, const std::string& kind,
                                       const std::string& detail,
                                       int64_t* resume_step) {
  Incident incident;
  incident.step = step;
  incident.kind = kind;
  incident.detail = detail;
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kTrainDivergence, kind == "nan-loss" ? 0 : 1,
      step);
  if (recoveries_ >= options_.max_recoveries) {
    incident.action = "none (recovery budget exhausted)";
    incident.lr_scale_after = lr_scale_;
    incidents_.push_back(incident);
    return util::Status::Internal(
        "training diverged at step " + std::to_string(step) + " (" + kind +
        ") after " + std::to_string(recoveries_) +
        " recoveries; incident log:\n" + FormatIncidents());
  }
  ++recoveries_;
  lr_scale_ *= options_.lr_backoff;

  int64_t target = step;
  bool rolled_back = false;
  if (!checkpoints_.empty()) {
    util::Status rolled = Rollback(&target);
    if (rolled.ok()) {
      incident.action = "rollback to step " + std::to_string(target);
      rolled_back = true;
    } else {
      // Every checkpoint unreadable: fall through to skipping the bad
      // update — parameters were not touched yet, so this is still sound.
      incident.action = "skip-step (" + rolled.ToString() + ")";
      optimizer_->ZeroGrad();
    }
  } else {
    incident.action = "skip-step";
    optimizer_->ZeroGrad();
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kTrainRollback,
                                       rolled_back ? 1 : 0, target);
  incident.lr_scale_after = lr_scale_;
  incidents_.push_back(incident);
  std::fprintf(stderr,
               "[trainer] divergence at step %lld (%s): %s; %s, lr scale "
               "now %.3g\n",
               static_cast<long long>(step), kind.c_str(), detail.c_str(),
               incident.action.c_str(), static_cast<double>(lr_scale_));
  *resume_step = target;
  just_recovered_ = true;
  return util::Status::OK();
}

std::string Trainer::FormatIncidents() const {
  std::ostringstream os;
  for (const Incident& inc : incidents_) {
    os << "  step " << inc.step << " [" << inc.kind << "] " << inc.detail
       << " -> " << inc.action << " (lr scale " << inc.lr_scale_after
       << ")\n";
  }
  return os.str();
}

util::Status Trainer::Run(const std::function<core::Variable()>& loss_fn,
                          const std::function<void(int64_t)>& eval_fn) {
  const bool checkpointing = !options_.checkpoint_dir.empty();
  // Without a schedule the optimizer's configured lr is the base that the
  // divergence backoff scales.
  const float base_lr = optimizer_->lr();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      return util::Status::IOError("cannot create checkpoint dir " +
                                   options_.checkpoint_dir + ": " +
                                   ec.message());
    }
    // Initial checkpoint: guarantees a rollback target exists before the
    // first risky step, and marks the run as resumable from step 0.
    LLM_RETURN_IF_ERROR(SaveCheckpointNow(start_step_));
  }

  history_.reserve(static_cast<size_t>(options_.max_steps));
  int64_t step = start_step_;
  while (step < options_.max_steps) {
    const float lr_base =
        options_.schedule ? options_.schedule->LrAt(step) : base_lr;
    optimizer_->set_lr(lr_base * lr_scale_);

    core::Variable loss = loss_fn();
    float loss_val = loss.value()[0];
    if (util::MaybeInjectFault(util::FaultSite::kLossNaN)) {
      loss_val = std::nanf("");
    }

    if (options_.detect_divergence && !std::isfinite(loss_val)) {
      int64_t resume = step;
      LLM_RETURN_IF_ERROR(HandleDivergence(
          step, "nan-loss",
          "loss is " + std::to_string(static_cast<double>(loss_val)),
          &resume));
      step = resume;
      continue;
    }

    optimizer_->ZeroGrad();
    core::Backward(loss);
    if (util::MaybeInjectFault(util::FaultSite::kGradExplode)) {
      for (auto p : optimizer_->params()) {
        if (p.has_grad()) p.mutable_grad().Scale(1e12f);
      }
    }
    const float grad_norm =
        ClipGradNorm(optimizer_->params(), options_.clip_norm);
    if (!std::isfinite(grad_norm) ||
        (options_.grad_explode_threshold > 0.0f &&
         grad_norm > options_.grad_explode_threshold)) {
      int64_t resume = step;
      LLM_RETURN_IF_ERROR(HandleDivergence(
          step, "grad-explosion",
          "pre-clip |g| = " + std::to_string(static_cast<double>(grad_norm)),
          &resume));
      step = resume;
      continue;
    }
    optimizer_->Step();

    StepRecord record{step, loss_val, optimizer_->lr(), grad_norm,
                      static_cast<uint8_t>(just_recovered_
                                               ? StepEvent::kRecovered
                                               : StepEvent::kOk)};
    just_recovered_ = false;
    history_.push_back(record);

    if (options_.log_every > 0 &&
        (step % options_.log_every == 0 || step + 1 == options_.max_steps)) {
      std::printf("step %6lld  loss %.4f  lr %.2e  |g| %.3f\n",
                  static_cast<long long>(step),
                  static_cast<double>(loss_val),
                  static_cast<double>(optimizer_->lr()),
                  static_cast<double>(grad_norm));
      std::fflush(stdout);
    }
    if (eval_fn && options_.eval_every > 0 &&
        (step % options_.eval_every == 0 ||
         step + 1 == options_.max_steps)) {
      eval_fn(step);
    }

    ++step;
    if (checkpointing &&
        ((options_.checkpoint_every > 0 &&
          step % options_.checkpoint_every == 0) ||
         step == options_.max_steps)) {
      util::Status saved = SaveCheckpointNow(step);
      if (!saved.ok()) {
        // A failed save must not kill a healthy run: the previous
        // checkpoint is still intact (writes are atomic). Log and go on.
        incidents_.push_back({step, "checkpoint-write", saved.ToString(),
                              "continue on last good checkpoint",
                              lr_scale_});
        std::fprintf(stderr, "[trainer] checkpoint at step %lld failed: %s\n",
                     static_cast<long long>(step),
                     saved.ToString().c_str());
      }
    }
  }
  return util::Status::OK();
}

float Trainer::RecentLoss(int64_t n) const {
  if (history_.empty()) return 0.0f;
  const int64_t count =
      std::min<int64_t>(n, static_cast<int64_t>(history_.size()));
  if (count <= 0) return 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    sum += history_[history_.size() - 1 - static_cast<size_t>(i)].loss;
  }
  return static_cast<float>(sum / count);
}

}  // namespace llm::train
