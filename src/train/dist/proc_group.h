// ProcGroupCoordinator: gang-scheduled distributed training over REAL
// worker processes.
//
// The thread-backed DistTrainer proves the recovery algebra; this runner
// proves it against the actual failure domain it models. Each rank is a
// forked+exec'd copy of a worker binary (examples/dist_worker) that
// connects back to the coordinator's SocketServer, runs the shared
// transport-agnostic worker loop, and exits with a meaningful code. A
// SIGKILL here is a real SIGKILL: no destructors, no goodbye frame, a
// half-written stream on the wire — exactly what the framing, fencing,
// and reconnect machinery exist for.
//
// Recovery is gang-style, same as DistTrainer: on any incident (a worker
// dies by signal, exits nonzero, flatlines its heartbeats, or its
// transport connection stays dirtily down past the disconnect grace) the
// coordinator SIGKILLs every survivor, reaps them, bumps the fencing
// epoch, and respawns the full world from the newest checkpoint that
// validates. Replay is bit-exact, so a faulted run finishes with exactly
// the weights of an unfaulted one — dist_socket_test asserts this by
// loading the final checkpoints of both.
//
// Worker exit codes (the coordinator's side of the contract):
//   0  loop ran to max_steps
//   2  collective cancelled / fenced / timed out — respawn me
//   3  checkpoint load failed
//   4  bad arguments
#ifndef TFMR_TRAIN_DIST_PROC_GROUP_H_
#define TFMR_TRAIN_DIST_PROC_GROUP_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "train/dist/dist_trainer.h"
#include "train/dist/socket_transport.h"
#include "train/optimizer.h"
#include "util/status.h"

namespace llm::train::dist {

/// Worker exit codes; keep in sync with examples/dist_worker.
inline constexpr int kWorkerExitDone = 0;
inline constexpr int kWorkerExitCancelled = 2;
inline constexpr int kWorkerExitLoadFailure = 3;
inline constexpr int kWorkerExitBadArgs = 4;

struct ProcGroupOptions {
  int world_size = 2;
  int64_t max_steps = 20;
  int64_t checkpoint_every = 5;
  int keep_last_k = 2;
  std::string checkpoint_dir;
  /// Path to the dist_worker binary to fork+exec per rank.
  std::string worker_binary;
  /// Unix socket path or "tcp://HOST:PORT"; empty =
  /// "<checkpoint_dir>/comm.sock".
  std::string socket_address;
  uint64_t seed = 0x5eedULL;
  std::chrono::milliseconds collective_timeout{4000};
  std::chrono::milliseconds heartbeat_timeout{20000};
  /// See DistTrainerOptions::disconnect_grace.
  std::chrono::milliseconds disconnect_grace{500};
  std::chrono::milliseconds monitor_poll{10};
  int max_recoveries = 8;
  /// Extra argv entries appended to every worker (fault-arming flags:
  /// "--arm-fault=sock-drop@3", "--arm-fault=worker-kill@5", ...).
  std::vector<std::string> worker_extra_args;
  /// Workers ship a telemetry unit every N steps (plus a final one);
  /// 0 disables shipping (and with it postmortem harvesting has only
  /// files to go on).
  int64_t telemetry_every = 2;
  /// Directory workers dump crash postmortems into; empty =
  /// checkpoint_dir.
  std::string postmortem_dir;
  /// Merged-timeline events attached to each IncidentReport.
  size_t incident_timeline_events = 24;
};

class ProcGroupCoordinator {
 public:
  /// `factory`/`adamw` are used only to write the step-0 checkpoint; they
  /// MUST describe the same task the worker binary hardcodes (toy_task.h
  /// for the in-tree worker).
  ProcGroupCoordinator(ProcGroupOptions options, ModelFactory factory,
                       AdamWOptions adamw);
  ~ProcGroupCoordinator();

  ProcGroupCoordinator(const ProcGroupCoordinator&) = delete;
  ProcGroupCoordinator& operator=(const ProcGroupCoordinator&) = delete;

  /// Runs the gang to max_steps, surviving up to max_recoveries
  /// incidents.
  util::Status Run();

  /// SIGKILLs rank's live worker process (chaos hook for tests and the
  /// demo). False when the rank has no live process.
  bool KillRank(int rank);

  int recoveries() const { return recoveries_; }
  const std::vector<DistIncident>& incidents() const { return incidents_; }
  std::string FormatIncidents() const;

  /// One structured report per incident, finalized after the recovery it
  /// triggered (so the merged timeline interleaves the victim's last
  /// shipped events with the coordinator's detection + respawn events).
  const std::vector<obs::IncidentReport>& incident_reports() const {
    return reports_;
  }
  /// The gang aggregator: every shipped unit and harvested postmortem.
  const obs::TelemetryAggregator& telemetry() const { return telemetry_; }

 private:
  util::Status WriteInitialCheckpoint();
  util::Status PickCheckpoint(std::string* path);
  util::Status SpawnWorkers(const std::string& ckpt_path, int64_t epoch);
  /// Returns true when the run is over; false to recover and respawn.
  bool MonitorGang(util::Status* verdict, int64_t epoch);
  void KillAllWorkers();
  std::string PostmortemDir() const;
  /// Reads, ingests, archives, and deletes every rank's postmortem file;
  /// marks `report` when the victim's dump was among them.
  void HarvestPostmortems(obs::IncidentReport* report);
  /// Splices the coordinator's own flight delta into the gang timeline,
  /// attaches the merged window to `report`, emits the DIST_INCIDENT
  /// line, and files the report.
  void FinalizeReport(obs::IncidentReport report);

  ProcGroupOptions options_;
  ModelFactory factory_;
  AdamWOptions adamw_;
  std::unique_ptr<SocketServer> server_;
  int recoveries_ = 0;
  std::vector<DistIncident> incidents_;
  obs::TelemetryAggregator telemetry_;
  std::vector<obs::IncidentReport> reports_;
  /// Coordinator-side flight-delta cursor (events already spliced into
  /// the gang timeline).
  uint64_t coord_shipped_ticket_ = 0;
  /// A recover-path incident's report awaits the respawn before
  /// finalizing, so its timeline contains the recovery events.
  bool pending_report_ = false;
  obs::IncidentReport pending_;

  mutable std::mutex pids_mu_;
  std::vector<pid_t> pids_;        // guarded by pids_mu_; -1 = reaped
  std::vector<bool> done_;         // guarded by pids_mu_
};

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_PROC_GROUP_H_
