#include "train/dist/dist_trainer.h"

#include "train/dist/socket_transport.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/module.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fault.h"

namespace llm::train::dist {
namespace {

/// Step number encoded in a checkpoint path ("…/ckpt_000000042.tfmr" ->
/// 42); -1 when the name does not match.
int64_t StepFromCheckpointPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.rfind("ckpt_", 0) != 0) return -1;
  int64_t step = 0;
  bool any = false;
  for (size_t pos = 5; pos < name.size() && name[pos] >= '0' &&
                       name[pos] <= '9';
       ++pos) {
    step = step * 10 + (name[pos] - '0');
    any = true;
  }
  return any ? step : -1;
}

}  // namespace

DistTrainer::DistTrainer(const DistTrainerOptions& options,
                         ModelFactory model_factory, DistLossFn loss_fn)
    : options_(options),
      factory_(std::move(model_factory)),
      loss_fn_(std::move(loss_fn)) {
  LLM_CHECK_GE(options.world_size, 1);
  LLM_CHECK_GT(options.max_steps, 0);
  LLM_CHECK(!options.checkpoint_dir.empty())
      << "DistTrainer requires checkpoint_dir: the latest checkpoint is the "
         "rendezvous and recovery substrate";
  LLM_CHECK_GE(options.keep_last_k, 1);
  LLM_CHECK(factory_ != nullptr);
  LLM_CHECK(loss_fn_ != nullptr);
  hub_ = std::make_unique<CommHub>(options.world_size);
  hub_->SetTelemetrySink([this](int rank, const std::vector<uint8_t>& blob) {
    auto unit = obs::DecodeRankTelemetry(blob);
    // A corrupt unit costs one snapshot, never the run.
    if (unit.ok()) telemetry_.Ingest(unit.value(), blob.size());
    (void)rank;
  });
  workers_.reserve(static_cast<size_t>(options.world_size));
  for (int r = 0; r < options.world_size; ++r) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rank = r;
  }
}

DistTrainer::~DistTrainer() {
  epoch_.fetch_add(1);
  AbortTransport();
  JoinAll();
}

void DistTrainer::AbortTransport() {
  hub_->AbortAll();
  if (server_) server_->AbortEpoch();
}

int64_t DistTrainer::WorkerHeartbeats(int rank) const {
  return server_ ? server_->HeartbeatCount(rank)
                 : hub_->HeartbeatCount(rank);
}

void DistTrainer::JoinAll() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

const nn::Module* DistTrainer::model(int rank) const {
  return workers_[static_cast<size_t>(rank)]->model.get();
}

void DistTrainer::AddIncident(DistIncident incident) {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  incidents_.push_back(std::move(incident));
}

std::string DistTrainer::FormatIncidents() const {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  std::ostringstream os;
  for (const DistIncident& inc : incidents_) {
    os << "  epoch " << inc.epoch << " step " << inc.step << " rank "
       << inc.rank << " [" << inc.kind << "] " << inc.detail << " -> "
       << inc.action << "\n";
  }
  return os.str();
}

float DistTrainer::RecentLoss(int64_t n) const {
  if (history_.empty()) return 0.0f;
  const int64_t count =
      std::min<int64_t>(n, static_cast<int64_t>(history_.size()));
  if (count <= 0) return 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    sum += history_[history_.size() - 1 - static_cast<size_t>(i)].loss;
  }
  return static_cast<float>(sum / count);
}

util::Status DistTrainer::WriteInitialCheckpoint() {
  // A throwaway replica + plain AdamW yields the factory-fresh weights and
  // an all-zero full "adamw" moment state — the step-0 rendezvous point.
  std::unique_ptr<nn::Module> model = factory_();
  AdamW opt(model->Parameters(), options_.adamw);
  TrainState state;
  state.has_optimizer = true;
  state.optimizer = opt.ExportState();
  state.has_trainer = true;
  state.next_step = 0;
  state.lr_scale = 1.0f;
  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(0);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(*model, path, &state));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpointSaved, 0, 0);
  return util::Status::OK();
}

util::Status DistTrainer::Run() {
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create checkpoint dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
  }
  obs::WireFaultEventsToFlightRecorder();
  auto& registry = obs::MetricsRegistry::Global();
  obs::Gauge* g_epoch = registry.GetGauge("dist.epoch");
  obs::Gauge* g_recoveries = registry.GetGauge("dist.recoveries");

  if (!LatestCheckpoint(options_.checkpoint_dir).ok()) {
    LLM_RETURN_IF_ERROR(WriteInitialCheckpoint());
  }

  if (options_.transport == CommTransport::kSocket && !server_) {
    const std::string address = options_.socket_address.empty()
                                    ? options_.checkpoint_dir + "/comm.sock"
                                    : options_.socket_address;
    server_ = std::make_unique<SocketServer>(options_.world_size, address);
    LLM_RETURN_IF_ERROR(server_->Start());
    server_->SetTelemetrySink(
        [this](int rank, const std::vector<uint8_t>& blob) {
          auto unit = obs::DecodeRankTelemetry(blob);
          if (unit.ok()) telemetry_.Ingest(unit.value(), blob.size());
          (void)rank;
        });
  }

  while (true) {
    // Pick the newest checkpoint that fully validates; a corrupt or torn
    // file (e.g. a save that raced a kill) is discarded so an older good
    // one takes over.
    std::string ckpt;
    while (true) {
      auto latest = LatestCheckpoint(options_.checkpoint_dir);
      if (!latest.ok()) {
        return util::Status::Internal(
            "no loadable checkpoint to (re)start from: " +
            latest.status().ToString() + "; incident log:\n" +
            FormatIncidents());
      }
      util::Status valid = ValidateCheckpoint(latest.value());
      if (valid.ok()) {
        ckpt = latest.value();
        break;
      }
      std::fprintf(stderr, "[dist] discarding corrupt checkpoint %s: %s\n",
                   latest.value().c_str(), valid.ToString().c_str());
      std::remove(latest.value().c_str());
    }

    SpawnEpoch(ckpt);
    g_epoch->Set(static_cast<double>(epoch_.load()));
    g_recoveries->Set(static_cast<double>(recoveries_));
    util::Status verdict;
    if (MonitorEpoch(&verdict)) return verdict;
  }
}

void DistTrainer::SpawnEpoch(const std::string& ckpt_path) {
  hub_->Reset();
  const int epoch = epoch_.load();
  if (server_) server_->Reset(epoch);
  const int64_t resume = StepFromCheckpointPath(ckpt_path);
  if (epoch > 0) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kDistRecovery, epoch, resume, recoveries_);
    std::fprintf(stderr,
                 "[dist] recovery %d: epoch %d respawning %d workers from "
                 "%s (step %lld)\n",
                 recoveries_, epoch, options_.world_size, ckpt_path.c_str(),
                 static_cast<long long>(resume));
  }
  // Replicas and shards are built serially here so worker threads never
  // race the user's model factory; the checkpoint load itself happens in
  // parallel on the worker threads.
  for (auto& w : workers_) {
    w->phase.store(static_cast<int>(Phase::kLoading));
    w->step_reached.store(resume);
    w->status = util::Status::OK();
    w->model = factory_();
    w->opt = std::make_unique<ShardedAdamW>(
        w->model->Parameters(), options_.adamw, w->rank,
        options_.world_size);
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, rank = w->rank, epoch, ckpt_path] {
      WorkerMain(rank, epoch, ckpt_path);
    });
  }
}

void DistTrainer::WorkerMain(int rank, int my_epoch,
                             const std::string& ckpt_path) {
  Worker& me = *workers_[static_cast<size_t>(rank)];
  const auto fail = [&](util::Status status, Phase phase) {
    me.status = std::move(status);
    me.phase.store(static_cast<int>(phase));
  };

  TrainState init;
  util::Status loaded = LoadCheckpoint(me.model.get(), ckpt_path, &init);
  if (loaded.ok() && (!init.has_trainer || !init.has_optimizer)) {
    loaded = util::Status::FailedPrecondition(
        "checkpoint lacks trainer/optimizer state: " + ckpt_path);
  }
  if (loaded.ok()) loaded = me.opt->ImportState(init.optimizer);
  if (!loaded.ok()) return fail(std::move(loaded), Phase::kFailed);

  const int64_t start_step = init.next_step;
  if (rank == 0) history_ = std::move(init.history);

  obs::FlightRecorder::Global().Record(obs::FlightEventType::kWorkerJoin,
                                       rank, my_epoch, start_step);
  me.phase.store(static_cast<int>(Phase::kRunning));

  // The step loop itself is transport-agnostic (worker_loop.h); all this
  // function decides is which Comm carries the collectives.
  std::unique_ptr<SocketComm> sock;
  Comm* comm = hub_.get();
  if (options_.transport == CommTransport::kSocket) {
    SocketCommOptions sock_options;
    sock_options.jitter_seed = options_.seed ^ 0x50c7e7ULL;
    sock = std::make_unique<SocketComm>(rank, options_.world_size,
                                        server_->bound_address(), my_epoch,
                                        sock_options);
    comm = sock.get();
  }

  WorkerLoopOptions loop;
  loop.rank = rank;
  loop.world_size = options_.world_size;
  loop.max_steps = options_.max_steps;
  loop.start_step = start_step;
  loop.clip_norm = options_.clip_norm;
  loop.schedule = options_.schedule;
  loop.base_lr = options_.adamw.lr;
  loop.seed = options_.seed;
  loop.collective_timeout = options_.collective_timeout;
  loop.checkpoint_every = options_.checkpoint_every;
  loop.checkpoint_dir = options_.checkpoint_dir;
  loop.keep_last_k = options_.keep_last_k;
  loop.straggle_ms = options_.straggle_ms;
  loop.epoch = my_epoch;
  loop.telemetry_every = options_.telemetry_every;
  // Thread workers share this process (both transports): ship only the
  // per-rank metric namespace and no flight events.
  loop.telemetry_whole_process = false;

  WorkerLoopResult result = RunWorkerLoop(
      *comm, *me.model, *me.opt, loss_fn_, loop,
      rank == 0 ? &history_ : nullptr, &me.step_reached,
      /*superseded=*/[this, my_epoch] { return epoch_.load() != my_epoch; },
      /*on_warning=*/
      [this, my_epoch, &me](const std::string& kind,
                            const std::string& detail) {
        AddIncident({my_epoch, me.step_reached.load(), 0, kind, detail,
                     "continue on last good checkpoint"});
      });
  if (result.killed) return fail(std::move(result.status), Phase::kDead);
  if (!result.status.ok()) {
    return fail(std::move(result.status), Phase::kFailed);
  }
  me.phase.store(static_cast<int>(Phase::kDone));
}

bool DistTrainer::MonitorEpoch(util::Status* verdict) {
  const int world = options_.world_size;
  const auto start = std::chrono::steady_clock::now();
  std::vector<int64_t> last_hb(static_cast<size_t>(world), -1);
  std::vector<std::chrono::steady_clock::time_point> last_beat(
      static_cast<size_t>(world), start);

  while (true) {
    std::this_thread::sleep_for(options_.monitor_poll);
    const auto now = std::chrono::steady_clock::now();
    int done = 0;
    std::vector<int> dead, stalled, failed;
    for (int r = 0; r < world; ++r) {
      Worker& w = *workers_[static_cast<size_t>(r)];
      const Phase phase = static_cast<Phase>(w.phase.load());
      if (phase == Phase::kDone) {
        ++done;
        continue;
      }
      if (phase == Phase::kDead) {
        dead.push_back(r);
        continue;
      }
      if (phase == Phase::kFailed) {
        failed.push_back(r);
        continue;
      }
      const int64_t hb = WorkerHeartbeats(r);
      if (hb != last_hb[static_cast<size_t>(r)]) {
        last_hb[static_cast<size_t>(r)] = hb;
        last_beat[static_cast<size_t>(r)] = now;
      } else if (phase == Phase::kRunning &&
                 now - last_beat[static_cast<size_t>(r)] >
                     options_.heartbeat_timeout) {
        stalled.push_back(r);
      }
    }

    // Blind-spot fix: a rank whose transport connection dirtily dropped
    // and stayed down past the grace period is fenced now, instead of
    // waiting for its heartbeat counter to flatline for heartbeat_timeout
    // or for a full collective timeout to cascade.
    std::vector<int> dropped;
    if (server_) {
      for (int r :
           server_->RanksDisconnectedOver(options_.disconnect_grace)) {
        if (static_cast<Phase>(
                workers_[static_cast<size_t>(r)]->phase.load()) ==
            Phase::kRunning) {
          dropped.push_back(r);
        }
      }
    }

    if (dead.empty() && stalled.empty() && failed.empty() &&
        dropped.empty()) {
      if (done == world) {
        JoinAll();
        *verdict = util::Status::OK();
        return true;
      }
      continue;
    }

    // Classify the incident by root cause: a death or stall explains the
    // collective failures it cascades into.
    DistIncident incident;
    incident.epoch = epoch_.load();
    if (!dead.empty()) {
      incident.rank = dead.front();
      incident.kind = "worker-death";
      incident.detail =
          workers_[static_cast<size_t>(incident.rank)]->status.ToString();
    } else if (!stalled.empty()) {
      incident.rank = stalled.front();
      incident.kind = "worker-stall";
      incident.detail =
          "heartbeat flat for > " +
          std::to_string(options_.heartbeat_timeout.count()) + "ms";
      for (int r : stalled) {
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kWorkerDeath, r,
            workers_[static_cast<size_t>(r)]->step_reached.load(),
            /*reason=*/1);
      }
    } else if (!failed.empty()) {
      incident.rank = failed.front();
      incident.kind = "collective-failure";
      incident.detail =
          workers_[static_cast<size_t>(incident.rank)]->status.ToString();
    } else {
      incident.rank = dropped.front();
      incident.kind = "transport-disconnect";
      incident.detail =
          "transport connection down > " +
          std::to_string(options_.disconnect_grace.count()) + "ms";
      for (int r : dropped) {
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kWorkerDeath, r,
            workers_[static_cast<size_t>(r)]->step_reached.load(),
            /*reason=*/2);
      }
    }
    incident.step =
        workers_[static_cast<size_t>(incident.rank)]->step_reached.load();

    if (recoveries_ >= options_.max_recoveries) {
      incident.action = "none (recovery budget exhausted)";
      AddIncident(std::move(incident));
      epoch_.fetch_add(1);
      AbortTransport();
      JoinAll();
      *verdict = util::Status::Internal(
          "distributed run failed after " + std::to_string(recoveries_) +
          " recoveries; incident log:\n" + FormatIncidents());
      return true;
    }
    ++recoveries_;
    incident.action = "respawn world from latest checkpoint";
    std::fprintf(stderr,
                 "[dist] epoch %d incident [%s] rank %d step %lld: %s\n",
                 incident.epoch, incident.kind.c_str(), incident.rank,
                 static_cast<long long>(incident.step),
                 incident.detail.c_str());
    AddIncident(std::move(incident));
    // Collapse the world: newer epoch number stops loop-top workers,
    // AbortAll wakes everyone blocked in a collective.
    epoch_.fetch_add(1);
    AbortTransport();
    JoinAll();
    return false;
  }
}

}  // namespace llm::train::dist
