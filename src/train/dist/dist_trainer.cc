#include "train/dist/dist_trainer.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "nn/module.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fault.h"

namespace llm::train::dist {
namespace {

/// Per-(seed, rank, step) data seed. Splitmix-style odd-constant mixing so
/// neighbouring (rank, step) pairs land far apart; util::Rng finishes the
/// scrambling. Replay of any (rank, step) — rollback or respawn —
/// regenerates identical batches.
uint64_t StepSeed(uint64_t seed, int rank, int64_t step) {
  uint64_t x = seed;
  x += 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(step) + 1);
  x += 0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(rank) + 1);
  return x;
}

/// Step number encoded in a checkpoint path ("…/ckpt_000000042.tfmr" ->
/// 42); -1 when the name does not match.
int64_t StepFromCheckpointPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.rfind("ckpt_", 0) != 0) return -1;
  int64_t step = 0;
  bool any = false;
  for (size_t pos = 5; pos < name.size() && name[pos] >= '0' &&
                       name[pos] <= '9';
       ++pos) {
    step = step * 10 + (name[pos] - '0');
    any = true;
  }
  return any ? step : -1;
}

}  // namespace

DistTrainer::DistTrainer(const DistTrainerOptions& options,
                         ModelFactory model_factory, DistLossFn loss_fn)
    : options_(options),
      factory_(std::move(model_factory)),
      loss_fn_(std::move(loss_fn)) {
  LLM_CHECK_GE(options.world_size, 1);
  LLM_CHECK_GT(options.max_steps, 0);
  LLM_CHECK(!options.checkpoint_dir.empty())
      << "DistTrainer requires checkpoint_dir: the latest checkpoint is the "
         "rendezvous and recovery substrate";
  LLM_CHECK_GE(options.keep_last_k, 1);
  LLM_CHECK(factory_ != nullptr);
  LLM_CHECK(loss_fn_ != nullptr);
  hub_ = std::make_unique<CommHub>(options.world_size);
  workers_.reserve(static_cast<size_t>(options.world_size));
  for (int r = 0; r < options.world_size; ++r) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->rank = r;
  }
}

DistTrainer::~DistTrainer() {
  epoch_.fetch_add(1);
  hub_->AbortAll();
  JoinAll();
}

void DistTrainer::JoinAll() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

const nn::Module* DistTrainer::model(int rank) const {
  return workers_[static_cast<size_t>(rank)]->model.get();
}

void DistTrainer::AddIncident(DistIncident incident) {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  incidents_.push_back(std::move(incident));
}

std::string DistTrainer::FormatIncidents() const {
  std::lock_guard<std::mutex> lock(incidents_mu_);
  std::ostringstream os;
  for (const DistIncident& inc : incidents_) {
    os << "  epoch " << inc.epoch << " step " << inc.step << " rank "
       << inc.rank << " [" << inc.kind << "] " << inc.detail << " -> "
       << inc.action << "\n";
  }
  return os.str();
}

float DistTrainer::RecentLoss(int64_t n) const {
  if (history_.empty()) return 0.0f;
  const int64_t count =
      std::min<int64_t>(n, static_cast<int64_t>(history_.size()));
  if (count <= 0) return 0.0f;
  double sum = 0.0;
  for (int64_t i = 0; i < count; ++i) {
    sum += history_[history_.size() - 1 - static_cast<size_t>(i)].loss;
  }
  return static_cast<float>(sum / count);
}

util::Status DistTrainer::WriteInitialCheckpoint() {
  // A throwaway replica + plain AdamW yields the factory-fresh weights and
  // an all-zero full "adamw" moment state — the step-0 rendezvous point.
  std::unique_ptr<nn::Module> model = factory_();
  AdamW opt(model->Parameters(), options_.adamw);
  TrainState state;
  state.has_optimizer = true;
  state.optimizer = opt.ExportState();
  state.has_trainer = true;
  state.next_step = 0;
  state.lr_scale = 1.0f;
  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(0);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(*model, path, &state));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpointSaved, 0, 0);
  return util::Status::OK();
}

util::Status DistTrainer::Run() {
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create checkpoint dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
  }
  obs::WireFaultEventsToFlightRecorder();
  auto& registry = obs::MetricsRegistry::Global();
  obs::Gauge* g_epoch = registry.GetGauge("dist.epoch");
  obs::Gauge* g_recoveries = registry.GetGauge("dist.recoveries");

  if (!LatestCheckpoint(options_.checkpoint_dir).ok()) {
    LLM_RETURN_IF_ERROR(WriteInitialCheckpoint());
  }

  while (true) {
    // Pick the newest checkpoint that fully validates; a corrupt or torn
    // file (e.g. a save that raced a kill) is discarded so an older good
    // one takes over.
    std::string ckpt;
    while (true) {
      auto latest = LatestCheckpoint(options_.checkpoint_dir);
      if (!latest.ok()) {
        return util::Status::Internal(
            "no loadable checkpoint to (re)start from: " +
            latest.status().ToString() + "; incident log:\n" +
            FormatIncidents());
      }
      util::Status valid = ValidateCheckpoint(latest.value());
      if (valid.ok()) {
        ckpt = latest.value();
        break;
      }
      std::fprintf(stderr, "[dist] discarding corrupt checkpoint %s: %s\n",
                   latest.value().c_str(), valid.ToString().c_str());
      std::remove(latest.value().c_str());
    }

    SpawnEpoch(ckpt);
    g_epoch->Set(static_cast<double>(epoch_.load()));
    g_recoveries->Set(static_cast<double>(recoveries_));
    util::Status verdict;
    if (MonitorEpoch(&verdict)) return verdict;
  }
}

void DistTrainer::SpawnEpoch(const std::string& ckpt_path) {
  hub_->Reset();
  const int epoch = epoch_.load();
  const int64_t resume = StepFromCheckpointPath(ckpt_path);
  if (epoch > 0) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kDistRecovery, epoch, resume, recoveries_);
    std::fprintf(stderr,
                 "[dist] recovery %d: epoch %d respawning %d workers from "
                 "%s (step %lld)\n",
                 recoveries_, epoch, options_.world_size, ckpt_path.c_str(),
                 static_cast<long long>(resume));
  }
  // Replicas and shards are built serially here so worker threads never
  // race the user's model factory; the checkpoint load itself happens in
  // parallel on the worker threads.
  for (auto& w : workers_) {
    w->phase.store(static_cast<int>(Phase::kLoading));
    w->step_reached.store(resume);
    w->status = util::Status::OK();
    w->model = factory_();
    w->opt = std::make_unique<ShardedAdamW>(
        w->model->Parameters(), options_.adamw, w->rank,
        options_.world_size);
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, rank = w->rank, epoch, ckpt_path] {
      WorkerMain(rank, epoch, ckpt_path);
    });
  }
}

util::Status DistTrainer::SaveFullCheckpoint(int64_t next_step) {
  // Rank 0 only, between checkpoint barriers A and B: every other rank is
  // parked in barrier B, and its last moment writes happened before its
  // barrier-A arrival (hub mutex), so reading peer shards here is ordered.
  Worker& me = *workers_[0];
  const auto& owners = me.opt->owners();
  const size_t n = me.opt->params().size();
  OptimizerState full{"adamw", me.opt->step_count(), {}};
  full.slots.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    full.slots.emplace_back(
        "m/" + std::to_string(i),
        workers_[static_cast<size_t>(owners[i])]->opt->m(i));
  }
  for (size_t i = 0; i < n; ++i) {
    full.slots.emplace_back(
        "v/" + std::to_string(i),
        workers_[static_cast<size_t>(owners[i])]->opt->v(i));
  }

  TrainState state;
  state.has_optimizer = true;
  state.optimizer = std::move(full);
  state.has_trainer = true;
  state.next_step = next_step;
  state.lr_scale = 1.0f;
  state.history = history_;

  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(next_step);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(*me.model, path, &state));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpointSaved, 0, next_step);
  return PruneCheckpoints(options_.checkpoint_dir, options_.keep_last_k);
}

void DistTrainer::WorkerMain(int rank, int my_epoch,
                             const std::string& ckpt_path) {
  Worker& me = *workers_[static_cast<size_t>(rank)];
  auto& recorder = obs::FlightRecorder::Global();
  obs::Gauge* g_step = obs::MetricsRegistry::Global().GetGauge(
      "dist.worker." + std::to_string(rank) + ".step");
  const auto fail = [&](util::Status status, Phase phase) {
    me.status = std::move(status);
    me.phase.store(static_cast<int>(phase));
  };

  TrainState init;
  util::Status loaded = LoadCheckpoint(me.model.get(), ckpt_path, &init);
  if (loaded.ok() && (!init.has_trainer || !init.has_optimizer)) {
    loaded = util::Status::FailedPrecondition(
        "checkpoint lacks trainer/optimizer state: " + ckpt_path);
  }
  if (loaded.ok()) loaded = me.opt->ImportState(init.optimizer);
  if (!loaded.ok()) return fail(std::move(loaded), Phase::kFailed);

  int64_t step = init.next_step;
  if (rank == 0) history_ = std::move(init.history);

  recorder.Record(obs::FlightEventType::kWorkerJoin, rank, my_epoch, step);
  me.phase.store(static_cast<int>(Phase::kRunning));

  const std::vector<core::Variable>& params = me.opt->params();
  const std::vector<int>& owners = me.opt->owners();
  const size_t n = params.size();
  const float base_lr = options_.adamw.lr;
  int64_t seq = 0;  // collective sequence number, lockstep across ranks

  while (step < options_.max_steps) {
    if (epoch_.load() != my_epoch) {
      return fail(util::Status::Cancelled("superseded by newer epoch"),
                  Phase::kFailed);
    }
    hub_->Heartbeat(rank);
    g_step->Set(static_cast<double>(step));
    me.step_reached.store(step);

    if (util::MaybeInjectFault(util::FaultSite::kWorkerKill)) {
      recorder.Record(obs::FlightEventType::kWorkerDeath, rank, step,
                      /*reason=*/0);
      return fail(
          util::Status::Internal("worker killed by fault injection"),
          Phase::kDead);
    }
    if (util::MaybeInjectFault(util::FaultSite::kWorkerStraggle)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.straggle_ms));
    }

    const float lr =
        options_.schedule ? options_.schedule->LrAt(step) : base_lr;
    me.opt->set_lr(lr);

    util::Rng rng(StepSeed(options_.seed, rank, step));
    StepContext ctx{rank, options_.world_size, step, &rng};
    core::Variable loss = loss_fn_(*me.model, ctx);
    const float local_loss = loss.value()[0];
    me.opt->ZeroGrad();
    core::Backward(loss);

    // Flat all-reduce payload: every grad (zeros where this rank's graph
    // produced none), one has-grad flag per param, the local loss. The
    // flags keep grad *presence* identical to a single-process run: a
    // param no rank touched stays grad-free, so AdamW skips it there too.
    std::vector<float> flat;
    int64_t total = 0;
    for (const auto& p : params) total += p.numel();
    flat.reserve(static_cast<size_t>(total) + n + 1);
    for (const auto& p : params) {
      if (p.has_grad()) {
        const core::Tensor& g = p.grad();
        for (int64_t j = 0; j < g.numel(); ++j) flat.push_back(g[j]);
      } else {
        flat.insert(flat.end(), static_cast<size_t>(p.numel()), 0.0f);
      }
    }
    for (const auto& p : params) flat.push_back(p.has_grad() ? 1.0f : 0.0f);
    flat.push_back(local_loss);

    util::Status reduced =
        hub_->AllReduceMean(rank, seq++, &flat, options_.collective_timeout);
    if (!reduced.ok()) return fail(std::move(reduced), Phase::kFailed);

    size_t off = 0;
    for (size_t i = 0; i < n; ++i) {
      core::Variable p = params[i];
      const int64_t numel = p.numel();
      if (flat[static_cast<size_t>(total) + i] > 0.0f) {
        core::Tensor& g = p.mutable_grad();  // allocates zeros if absent
        for (int64_t j = 0; j < numel; ++j) {
          g[j] = flat[off + static_cast<size_t>(j)];
        }
      }
      off += static_cast<size_t>(numel);
    }
    const float mean_loss = flat.back();

    const float grad_norm = ClipGradNorm(params, options_.clip_norm);
    me.opt->Step();

    // All-gather the owner-updated parameter slices so every replica
    // finishes the step bit-identical.
    std::vector<float> mine;
    for (size_t i = 0; i < n; ++i) {
      if (owners[i] != rank) continue;
      const core::Tensor& w = params[i].value();
      for (int64_t j = 0; j < w.numel(); ++j) mine.push_back(w[j]);
    }
    auto gathered = hub_->Exchange(rank, seq++, std::move(mine),
                                   options_.collective_timeout);
    if (!gathered.ok()) {
      return fail(std::move(gathered).status(), Phase::kFailed);
    }
    std::vector<size_t> offs(static_cast<size_t>(options_.world_size), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t owner = static_cast<size_t>(owners[i]);
      const int64_t numel = params[i].numel();
      if (owners[i] != rank) {
        const std::vector<float>& buf = gathered.value()[owner];
        core::Variable p = params[i];  // Variable is a shared handle
        core::Tensor& w = p.mutable_value();
        for (int64_t j = 0; j < numel; ++j) {
          w[j] = buf[offs[owner] + static_cast<size_t>(j)];
        }
      }
      offs[owner] += static_cast<size_t>(numel);
    }

    if (rank == 0) {
      history_.push_back({step, mean_loss, lr, grad_norm,
                          static_cast<uint8_t>(StepEvent::kOk)});
    }

    ++step;
    const bool checkpoint_due =
        (options_.checkpoint_every > 0 &&
         step % options_.checkpoint_every == 0) ||
        step == options_.max_steps;
    if (checkpoint_due) {
      // Barrier A: every rank's owned moments for steps < step are final.
      util::Status entered =
          hub_->Barrier(rank, seq++, options_.collective_timeout);
      if (!entered.ok()) return fail(std::move(entered), Phase::kFailed);
      if (rank == 0) {
        util::Status saved = SaveFullCheckpoint(step);
        if (!saved.ok()) {
          // The previous checkpoint is intact (writes are atomic); a
          // failed save or prune must not kill a healthy world.
          AddIncident({my_epoch, step, 0, "checkpoint-write",
                       saved.ToString(),
                       "continue on last good checkpoint"});
          std::fprintf(stderr,
                       "[dist] checkpoint at step %lld failed: %s\n",
                       static_cast<long long>(step),
                       saved.ToString().c_str());
        }
      }
      // Barrier B holds the world until the save is done; rank 0's write
      // time rides on everyone else's wait, hence the extra slack.
      util::Status released =
          hub_->Barrier(rank, seq++, options_.collective_timeout * 4);
      if (!released.ok()) return fail(std::move(released), Phase::kFailed);
    }
  }

  g_step->Set(static_cast<double>(step));
  me.step_reached.store(step);
  me.phase.store(static_cast<int>(Phase::kDone));
}

bool DistTrainer::MonitorEpoch(util::Status* verdict) {
  const int world = options_.world_size;
  const auto start = std::chrono::steady_clock::now();
  std::vector<int64_t> last_hb(static_cast<size_t>(world), -1);
  std::vector<std::chrono::steady_clock::time_point> last_beat(
      static_cast<size_t>(world), start);

  while (true) {
    std::this_thread::sleep_for(options_.monitor_poll);
    const auto now = std::chrono::steady_clock::now();
    int done = 0;
    std::vector<int> dead, stalled, failed;
    for (int r = 0; r < world; ++r) {
      Worker& w = *workers_[static_cast<size_t>(r)];
      const Phase phase = static_cast<Phase>(w.phase.load());
      if (phase == Phase::kDone) {
        ++done;
        continue;
      }
      if (phase == Phase::kDead) {
        dead.push_back(r);
        continue;
      }
      if (phase == Phase::kFailed) {
        failed.push_back(r);
        continue;
      }
      const int64_t hb = hub_->HeartbeatCount(r);
      if (hb != last_hb[static_cast<size_t>(r)]) {
        last_hb[static_cast<size_t>(r)] = hb;
        last_beat[static_cast<size_t>(r)] = now;
      } else if (phase == Phase::kRunning &&
                 now - last_beat[static_cast<size_t>(r)] >
                     options_.heartbeat_timeout) {
        stalled.push_back(r);
      }
    }

    if (dead.empty() && stalled.empty() && failed.empty()) {
      if (done == world) {
        JoinAll();
        *verdict = util::Status::OK();
        return true;
      }
      continue;
    }

    // Classify the incident by root cause: a death or stall explains the
    // collective failures it cascades into.
    DistIncident incident;
    incident.epoch = epoch_.load();
    if (!dead.empty()) {
      incident.rank = dead.front();
      incident.kind = "worker-death";
      incident.detail =
          workers_[static_cast<size_t>(incident.rank)]->status.ToString();
    } else if (!stalled.empty()) {
      incident.rank = stalled.front();
      incident.kind = "worker-stall";
      incident.detail =
          "heartbeat flat for > " +
          std::to_string(options_.heartbeat_timeout.count()) + "ms";
      for (int r : stalled) {
        obs::FlightRecorder::Global().Record(
            obs::FlightEventType::kWorkerDeath, r,
            workers_[static_cast<size_t>(r)]->step_reached.load(),
            /*reason=*/1);
      }
    } else {
      incident.rank = failed.front();
      incident.kind = "collective-failure";
      incident.detail =
          workers_[static_cast<size_t>(incident.rank)]->status.ToString();
    }
    incident.step =
        workers_[static_cast<size_t>(incident.rank)]->step_reached.load();

    if (recoveries_ >= options_.max_recoveries) {
      incident.action = "none (recovery budget exhausted)";
      AddIncident(std::move(incident));
      epoch_.fetch_add(1);
      hub_->AbortAll();
      JoinAll();
      *verdict = util::Status::Internal(
          "distributed run failed after " + std::to_string(recoveries_) +
          " recoveries; incident log:\n" + FormatIncidents());
      return true;
    }
    ++recoveries_;
    incident.action = "respawn world from latest checkpoint";
    std::fprintf(stderr,
                 "[dist] epoch %d incident [%s] rank %d step %lld: %s\n",
                 incident.epoch, incident.kind.c_str(), incident.rank,
                 static_cast<long long>(incident.step),
                 incident.detail.c_str());
    AddIncident(std::move(incident));
    // Collapse the world: newer epoch number stops loop-top workers,
    // AbortAll wakes everyone blocked in a collective.
    epoch_.fetch_add(1);
    hub_->AbortAll();
    JoinAll();
    return false;
  }
}

}  // namespace llm::train::dist
