// Socket-backed collective transport: the CommHub contract over real
// process boundaries.
//
// Topology: one SocketServer (owned by the coordinator) and one
// SocketComm per rank (in a worker thread or a separate worker process).
// The server plays the role CommHub's shared memory played — it holds the
// rounds table, gathers contributions, and broadcasts results — while
// SocketComm implements the Comm interface, so DistTrainer's worker loop
// is bit-identical over threads and sockets by construction.
//
// Failure semantics mirror CommHub:
//   * Bounded waits. A client whose wait on round `seq` expires sends
//     kPoison and returns kDeadlineExceeded; the server fails the round
//     so every other participant gets a prompt kError(kCancelled) push
//     instead of serving out its own full timeout.
//   * Corruption detection. A contribution whose payload fails its wire
//     CRC (intact framing, flipped bits — FaultSite::kSockCorruptFrame
//     models exactly this) fails the round with kInternal for every rank;
//     wrong gradients never propagate silently.
//   * AbortEpoch() pushes kAbort to every connection and fails every
//     current and future round with kCancelled; Reset(epoch) clears the
//     rounds and the latch and advances the fencing epoch.
//
// On top of that, what only a real transport needs:
//   * Reconnection. A broken connection (kSockDisconnect, a worker
//     process bounce, a dropped TCP session) is retried with
//     capped-exponential backoff and deterministic jitter inside the
//     collective deadline. The server answers a re-sent contribution for
//     a round that already completed from a small result cache, so a
//     client that disconnected between contributing and hearing the
//     result still converges.
//   * Epoch fencing. Every frame is epoch-stamped. A reconnecting client
//     from a stale spawn generation — a worker the coordinator already
//     declared dead and replaced — is answered kFenced and dropped, so it
//     can never contribute to a live round.
//   * Dead-peer visibility. The server timestamps dirty disconnects;
//     RanksDisconnectedOver(grace) lets the coordinator's monitor fence a
//     rank whose transport died long before a heartbeat timeout or a full
//     collective timeout would notice.
//
// Obs: counters dist.sock.{frames_tx,frames_rx,bytes_tx,bytes_rx,
// crc_rejects,reconnects,fenced}; flight events transport-connect /
// transport-disconnect / transport-fence.
#ifndef TFMR_TRAIN_DIST_SOCKET_TRANSPORT_H_
#define TFMR_TRAIN_DIST_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "train/dist/comm.h"
#include "train/dist/wire.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::train::dist {

// ---------------------------------------------------------------------------
// Server (coordinator side).
// ---------------------------------------------------------------------------

class SocketServer {
 public:
  /// `address`: a Unix socket path or "tcp://HOST:PORT" ("tcp://HOST:0"
  /// binds an ephemeral port — read bound_address() after Start).
  SocketServer(int world_size, std::string address);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  util::Status Start();
  void Stop();

  /// The address clients must connect to. Valid after Start().
  const std::string& bound_address() const { return bound_address_; }

  /// Fails every current and future round with kCancelled and pushes
  /// kAbort to every live connection. Idempotent.
  void AbortEpoch();

  /// New epoch: clears rounds, the result cache, the abort latch, and
  /// per-rank liveness state; connections from older epochs are fenced as
  /// they next speak. Callers must ensure no in-epoch worker is mid-round.
  void Reset(int64_t epoch);

  int64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Heartbeat frames received from `rank` this epoch.
  int64_t HeartbeatCount(int rank) const;
  /// True once `rank` sent kGoodbye (orderly loop completion) this epoch.
  bool Finished(int rank) const;
  /// Ranks that connected this epoch, then dirtily lost their connection
  /// more than `grace` ago and have not reconnected or said goodbye. The
  /// monitor's fast path: transport death is visible here long before a
  /// heartbeat or collective timeout expires.
  std::vector<int> RanksDisconnectedOver(std::chrono::milliseconds grace) const;

  /// Receives every intact kTelemetry payload (an encoded
  /// obs::RankTelemetry blob, opaque to the transport). Called from the
  /// per-connection reader threads; the sink must be thread-safe. A
  /// payload that fails its wire CRC is dropped, never delivered.
  using TelemetrySink =
      std::function<void(int rank, const std::vector<uint8_t>& blob)>;
  void SetTelemetrySink(TelemetrySink sink);

 private:
  struct Conn {
    int fd = -1;
    int rank = -1;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> stop{false};
  };

  struct Round {
    std::vector<std::vector<float>> contrib;
    std::vector<bool> present;
    int num_present = 0;
    /// 0 = live; otherwise the util::StatusCode every participant gets.
    int32_t failed = 0;
  };

  struct RankState {
    int64_t heartbeats = 0;
    bool ever_connected = false;
    bool finished = false;
    bool connected = false;
    std::chrono::steady_clock::time_point disconnected_at{};
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Sends under the connection's write mutex; counts frames/bytes.
  void SendOn(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Sends `frame` to every present contributor of `round` (call with
  /// mu_ held; sends happen after collecting the live conns).
  void FailRoundLocked(int64_t seq, Round* round, int32_t code,
                       std::vector<std::shared_ptr<Conn>>* notify);
  void NoteDisconnect(int rank, bool dirty);

  const int world_size_;
  const std::string address_;
  std::string bound_address_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> epoch_{0};

  mutable std::mutex mu_;
  bool aborted_ = false;                         // guarded by mu_
  std::map<int64_t, Round> rounds_;              // guarded by mu_
  /// Encoded results of recently completed rounds, answering re-sent
  /// contributions after a reconnect race. Bounded FIFO.
  std::map<int64_t, std::vector<uint8_t>> done_;  // guarded by mu_
  std::deque<int64_t> done_order_;                // guarded by mu_
  std::vector<std::shared_ptr<Conn>> by_rank_;    // guarded by mu_
  std::vector<std::shared_ptr<Conn>> graveyard_;  // guarded by mu_
  std::vector<RankState> ranks_;                  // guarded by mu_
  TelemetrySink telemetry_sink_;                  // guarded by mu_
};

// ---------------------------------------------------------------------------
// Client (worker side).
// ---------------------------------------------------------------------------

struct SocketCommOptions {
  /// Per-attempt connect + handshake budget.
  std::chrono::milliseconds connect_timeout{2000};
  /// Reconnect backoff (SubmitWithRetry's discipline).
  std::chrono::milliseconds backoff_initial{5};
  std::chrono::milliseconds backoff_cap{200};
  /// Seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 0x50c7e7ULL;
};

/// Comm over one socket connection to a SocketServer. Single-threaded by
/// contract (one SocketComm per worker, used from that worker's loop);
/// internally it still serializes socket use so Heartbeat may race a
/// slow Exchange teardown.
class SocketComm : public Comm {
 public:
  SocketComm(int rank, int world_size, std::string server_address,
             int64_t epoch, SocketCommOptions options = {});
  ~SocketComm() override;

  SocketComm(const SocketComm&) = delete;
  SocketComm& operator=(const SocketComm&) = delete;

  /// See Comm::Exchange. Transparently reconnects (with backoff) on
  /// connection loss within `timeout`; returns kCancelled if this rank
  /// was fenced (stale epoch) or the epoch aborted, kDeadlineExceeded if
  /// the round did not complete in time (after poisoning it server-side),
  /// kInternal if any rank's contribution was corrupt.
  util::StatusOr<std::vector<std::vector<float>>> Exchange(
      int rank, int64_t seq, std::vector<float> data,
      std::chrono::milliseconds timeout) override;

  /// Best-effort kHeartbeat frame; never blocks past a short deadline and
  /// never attempts a reconnect (Exchange owns reconnection).
  void Heartbeat(int rank) override;

  /// Sends kGoodbye so the server can tell orderly completion from death.
  void Finish(int rank) override;

  /// Best-effort kTelemetry frame carrying an opaque blob; same
  /// discipline as Heartbeat (short deadline, never reconnects — a
  /// dropped unit costs visibility, never correctness).
  void ShipTelemetry(int rank, const std::vector<uint8_t>& blob) override;

  int world_size() const override { return world_size_; }

  /// Connections established, including the first. >1 means reconnected.
  int64_t connect_count() const { return connects_; }

 private:
  /// Ensures a live, hello-acked connection, retrying with backoff until
  /// `deadline`. Returns kCancelled immediately once fenced.
  util::Status EnsureConnected(SteadyClock::time_point deadline);
  void CloseConn(bool dirty);

  const int rank_;
  const int world_size_;
  const std::string address_;
  const int64_t epoch_;
  const SocketCommOptions options_;

  std::mutex mu_;       // serializes fd use across Exchange/Heartbeat
  int fd_ = -1;         // guarded by mu_
  bool fenced_ = false; // guarded by mu_: server rejected our epoch
  int64_t connects_ = 0;
  util::Rng jitter_;
};

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_SOCKET_TRANSPORT_H_
