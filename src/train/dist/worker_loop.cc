#include "train/dist/worker_loop.h"

#include <csignal>
#include <cstdio>
#include <thread>
#include <utility>

#include "nn/module.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fault.h"

namespace llm::train::dist {
namespace {

/// Rank 0 only, inside checkpoint collective A: rebuilds the full "adamw"
/// state from every rank's gathered moment buffer (owned m slices then
/// owned v slices, each in parameter-index order — the exact order every
/// rank flattened with) and writes the v2 checkpoint.
util::Status SaveAssembledCheckpoint(
    nn::Module& model, ShardedAdamW& opt,
    const std::vector<std::vector<float>>& moment_bufs,
    const std::vector<StepRecord>* history, int64_t next_step,
    const WorkerLoopOptions& options) {
  const std::vector<int>& owners = opt.owners();
  const std::vector<core::Variable>& params = opt.params();
  const size_t n = params.size();
  std::vector<size_t> cur(static_cast<size_t>(opt.world_size()), 0);
  OptimizerState full{"adamw", opt.step_count(), {}};
  full.slots.reserve(2 * n);
  for (int pass = 0; pass < 2; ++pass) {  // m slots, then v slots
    for (size_t i = 0; i < n; ++i) {
      const size_t o = static_cast<size_t>(owners[i]);
      const size_t numel = static_cast<size_t>(params[i].numel());
      const std::vector<float>& buf = moment_bufs[o];
      if (cur[o] + numel > buf.size()) {
        return util::Status::Internal(
            "moment gather underflow: rank " + std::to_string(o) +
            " sent " + std::to_string(buf.size()) + " floats");
      }
      std::vector<float> slice(
          buf.begin() + static_cast<ptrdiff_t>(cur[o]),
          buf.begin() + static_cast<ptrdiff_t>(cur[o] + numel));
      cur[o] += numel;
      full.slots.emplace_back(
          (pass == 0 ? "m/" : "v/") + std::to_string(i),
          core::Tensor::FromVector(params[i].value().shape(),
                                   std::move(slice)));
    }
  }

  TrainState state;
  state.has_optimizer = true;
  state.optimizer = std::move(full);
  state.has_trainer = true;
  state.next_step = next_step;
  state.lr_scale = 1.0f;
  if (history != nullptr) state.history = *history;

  const std::string path =
      options.checkpoint_dir + "/" + CheckpointFileName(next_step);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(model, path, &state));
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kCheckpointSaved, 0, next_step);
  return PruneCheckpoints(options.checkpoint_dir, options.keep_last_k);
}

}  // namespace

uint64_t StepSeed(uint64_t seed, int rank, int64_t step) {
  uint64_t x = seed;
  x += 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(step) + 1);
  x += 0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(rank) + 1);
  return x;
}

WorkerLoopResult RunWorkerLoop(Comm& comm, nn::Module& model,
                               ShardedAdamW& opt, const DistLossFn& loss_fn,
                               const WorkerLoopOptions& options,
                               std::vector<StepRecord>* history,
                               std::atomic<int64_t>* step_reached,
                               const std::function<bool()>& superseded,
                               const WorkerWarningFn& on_warning) {
  const int rank = options.rank;
  const std::string rank_prefix = "dist.worker." + std::to_string(rank) + ".";
  auto& recorder = obs::FlightRecorder::Global();
  auto& registry = obs::MetricsRegistry::Global();
  obs::Gauge* g_step = registry.GetGauge(rank_prefix + "step");
  obs::Counter* c_wait = registry.GetCounter("dist.comm.wait_ns");
  // Per-rank twin of dist.comm.wait_ns. It lives in the rank's telemetry
  // namespace so a shipped snapshot attributes comm overhead to the rank
  // that paid it — the bench's per-rank comm_ms_per_step source.
  obs::Counter* c_rank_wait = registry.GetCounter(rank_prefix + "comm_wait_ns");
  obs::Counter* c_tel_bytes =
      registry.GetCounter(rank_prefix + "telemetry_bytes");
  obs::Counter* c_tel_ships =
      registry.GetCounter(rank_prefix + "telemetry_ships");

  // Times a collective wait into the comm-overhead counters the bench's
  // per-step comm-overhead figures are computed from.
  const auto timed = [&](auto&& collective) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = collective();
    const auto waited = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    c_wait->Increment(waited);
    c_rank_wait->Increment(waited);
    return result;
  };

  const std::vector<core::Variable>& params = opt.params();
  const std::vector<int>& owners = opt.owners();
  const size_t n = params.size();
  int64_t step = options.start_step;
  int64_t seq = 0;  // collective sequence number, lockstep across ranks

  WorkerLoopResult res;
  res.step_reached = step;
  const auto fail = [&](util::Status status) {
    res.status = std::move(status);
    res.step_reached = step;
    return res;
  };

  // Ships one telemetry unit to the coordinator and returns it (the kill
  // path reuses the captured unit for the postmortem file). The ship
  // event is recorded *before* capture so every shipped delta contains
  // its own ship marker; the bytes counter is bumped after encoding, so
  // it trails the in-flight unit by one ship (the final/postmortem unit
  // carries the cumulative total).
  uint64_t ship_from_ticket = 0;
  const auto ship = [&](int32_t reason) {
    recorder.Record(obs::FlightEventType::kTelemetryShip, rank, step, reason);
    c_tel_ships->Increment();
    obs::TelemetryCaptureOptions cap;
    if (options.telemetry_whole_process) {
      cap.include_events = true;
      cap.events_from_ticket = ship_from_ticket;
    } else {
      // Shared-process worker: only this rank's namespace, no events —
      // see WorkerLoopOptions::telemetry_whole_process.
      cap.metric_prefix = rank_prefix;
      cap.include_events = false;
    }
    obs::RankTelemetry unit = obs::CaptureRankTelemetry(
        rank, options.epoch, step, reason, cap);
    if (!unit.events.empty()) {
      ship_from_ticket = unit.events.back().ticket + 1;
    }
    const std::vector<uint8_t> blob = obs::EncodeRankTelemetry(unit);
    c_tel_bytes->Increment(blob.size());
    comm.ShipTelemetry(rank, blob);
    return unit;
  };

  while (step < options.max_steps) {
    if (superseded && superseded()) {
      return fail(util::Status::Cancelled("superseded by newer epoch"));
    }
    comm.Heartbeat(rank);
    g_step->Set(static_cast<double>(step));
    if (step_reached != nullptr) step_reached->store(step);

    if (util::MaybeInjectFault(util::FaultSite::kWorkerKill)) {
      recorder.Record(obs::FlightEventType::kWorkerDeath, rank, step,
                      /*reason=*/0);
      if (options.die_on_kill_fault) {
        // Worker-process mode: die the way a real incident would —
        // mid-step, no destructors, no goodbye on the wire. But first,
        // the last gasp: SIGKILL itself is uncatchable, and this is the
        // one death we inflict on ourselves, so the postmortem handshake
        // runs *before* the raise — ship a postmortem-tagged telemetry
        // unit over the still-healthy transport and atomically dump the
        // same unit to the per-rank postmortem file for the coordinator
        // to harvest.
        recorder.Record(obs::FlightEventType::kPostmortemDump, rank, step,
                        /*signal=*/0);
        const obs::RankTelemetry last = ship(obs::kTelemetryShipPostmortem);
        if (!options.postmortem_path.empty()) {
          (void)obs::WritePostmortem(options.postmortem_path, last);
        }
        std::raise(SIGKILL);
      }
      res.killed = true;
      return fail(
          util::Status::Internal("worker killed by fault injection"));
    }
    if (util::MaybeInjectFault(util::FaultSite::kWorkerStraggle)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.straggle_ms));
    }

    const float lr =
        options.schedule ? options.schedule->LrAt(step) : options.base_lr;
    opt.set_lr(lr);

    util::Rng rng(StepSeed(options.seed, rank, step));
    StepContext ctx{rank, options.world_size, step, &rng};
    core::Variable loss = loss_fn(model, ctx);
    const float local_loss = loss.value()[0];
    opt.ZeroGrad();
    core::Backward(loss);

    // Flat all-reduce payload: every grad (zeros where this rank's graph
    // produced none), one has-grad flag per param, the local loss. The
    // flags keep grad *presence* identical to a single-process run: a
    // param no rank touched stays grad-free, so AdamW skips it there too.
    std::vector<float> flat;
    int64_t total = 0;
    for (const auto& p : params) total += p.numel();
    flat.reserve(static_cast<size_t>(total) + n + 1);
    for (const auto& p : params) {
      if (p.has_grad()) {
        const core::Tensor& g = p.grad();
        for (int64_t j = 0; j < g.numel(); ++j) flat.push_back(g[j]);
      } else {
        flat.insert(flat.end(), static_cast<size_t>(p.numel()), 0.0f);
      }
    }
    for (const auto& p : params) flat.push_back(p.has_grad() ? 1.0f : 0.0f);
    flat.push_back(local_loss);

    util::Status reduced = timed([&] {
      return comm.AllReduceMean(rank, seq++, &flat,
                                options.collective_timeout);
    });
    if (!reduced.ok()) return fail(std::move(reduced));

    size_t off = 0;
    for (size_t i = 0; i < n; ++i) {
      core::Variable p = params[i];
      const int64_t numel = p.numel();
      if (flat[static_cast<size_t>(total) + i] > 0.0f) {
        core::Tensor& g = p.mutable_grad();  // allocates zeros if absent
        for (int64_t j = 0; j < numel; ++j) {
          g[j] = flat[off + static_cast<size_t>(j)];
        }
      }
      off += static_cast<size_t>(numel);
    }
    const float mean_loss = flat.back();

    const float grad_norm = ClipGradNorm(params, options.clip_norm);
    opt.Step();

    // All-gather the owner-updated parameter slices so every replica
    // finishes the step bit-identical.
    std::vector<float> mine;
    for (size_t i = 0; i < n; ++i) {
      if (owners[i] != rank) continue;
      const core::Tensor& w = params[i].value();
      for (int64_t j = 0; j < w.numel(); ++j) mine.push_back(w[j]);
    }
    auto gathered = timed([&] {
      return comm.Exchange(rank, seq++, std::move(mine),
                           options.collective_timeout);
    });
    if (!gathered.ok()) return fail(std::move(gathered).status());
    std::vector<size_t> offs(static_cast<size_t>(options.world_size), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t owner = static_cast<size_t>(owners[i]);
      const int64_t numel = params[i].numel();
      if (owners[i] != rank) {
        const std::vector<float>& buf = gathered.value()[owner];
        core::Variable p = params[i];  // Variable is a shared handle
        core::Tensor& w = p.mutable_value();
        for (int64_t j = 0; j < numel; ++j) {
          w[j] = buf[offs[owner] + static_cast<size_t>(j)];
        }
      }
      offs[owner] += static_cast<size_t>(numel);
    }

    if (rank == 0 && history != nullptr) {
      history->push_back({step, mean_loss, lr, grad_norm,
                          static_cast<uint8_t>(StepEvent::kOk)});
    }

    ++step;
    const bool checkpoint_due =
        (options.checkpoint_every > 0 &&
         step % options.checkpoint_every == 0) ||
        step == options.max_steps;
    if (checkpoint_due) {
      // Checkpoint collective A: every rank's owned moments for steps <
      // step are final, and — because rank 0 cannot reach across a
      // process boundary for peer shards — the barrier carries them:
      // each rank contributes its owned m slices then v slices, in
      // parameter-index order.
      std::vector<float> moments;
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < n; ++i) {
          if (owners[i] != rank) continue;
          const core::Tensor& t = pass == 0 ? opt.m(i) : opt.v(i);
          for (int64_t j = 0; j < t.numel(); ++j) moments.push_back(t[j]);
        }
      }
      auto shards = timed([&] {
        return comm.Exchange(rank, seq++, std::move(moments),
                             options.collective_timeout);
      });
      if (!shards.ok()) return fail(std::move(shards).status());
      if (rank == 0) {
        util::Status saved = SaveAssembledCheckpoint(
            model, opt, shards.value(), history, step, options);
        if (!saved.ok()) {
          // The previous checkpoint is intact (writes are atomic); a
          // failed save or prune must not kill a healthy world.
          if (on_warning) on_warning("checkpoint-write", saved.ToString());
          std::fprintf(stderr,
                       "[dist] checkpoint at step %lld failed: %s\n",
                       static_cast<long long>(step),
                       saved.ToString().c_str());
        }
      }
      // Barrier B holds the world until the save is done; rank 0's write
      // time rides on everyone else's wait, hence the extra slack.
      util::Status released = timed([&] {
        return comm.Barrier(rank, seq++, options.collective_timeout * 4);
      });
      if (!released.ok()) return fail(std::move(released));
    }

    if (options.telemetry_every > 0 &&
        step % options.telemetry_every == 0) {
      ship(obs::kTelemetryShipPeriodic);
    }
  }

  g_step->Set(static_cast<double>(step));
  if (step_reached != nullptr) step_reached->store(step);
  // Final unit before the goodbye, so the coordinator's aggregator holds
  // this rank's end-of-run totals even if no periodic ship was due.
  if (options.telemetry_every > 0) ship(obs::kTelemetryShipFinal);
  comm.Finish(rank);
  res.status = util::Status::OK();
  res.step_reached = step;
  return res;
}

}  // namespace llm::train::dist
