// DistTrainer: fault-tolerant data-parallel training over N local workers.
//
// Topology: one coordinator (the thread that calls Run) and world_size
// worker threads. Every worker owns a full model replica and a
// ZeRO-1-sharded AdamW (sharded_adamw.h); each step it
//
//   1. builds the loss on its own data shard (the caller's DistLossFn
//      sees rank/world_size/step and a per-(seed,rank,step) RNG),
//   2. runs Backward locally,
//   3. all-reduces gradients (and the scalar loss) to the global mean
//      through the CommHub — rank-ordered summation, so every replica
//      computes bit-identical averaged gradients,
//   4. clips by the global norm, applies the AdamW update to the
//      parameters it owns, and
//   5. all-gathers the updated owner slices so every replica ends the
//      step bit-identical.
//
// Elasticity is the headline. The latest v2 checkpoint (PR 1's format,
// written by rank 0 at checkpoint barriers with the full optimizer state
// assembled from every rank's shard) doubles as the rendezvous substrate:
// *joining* an epoch and *recovering* from one are the same code path,
// "load the newest checkpoint and run". The coordinator's monitor watches
// worker phases and heartbeat counters; when a worker dies
// (FaultSite::kWorkerKill), stalls past the heartbeat timeout
// (kWorkerStraggle), or a collective fails (timeout from a dropped
// contribution, checksum mismatch from a corrupted one), it collapses the
// epoch — AbortAll wakes every blocked rank — joins all threads, and
// re-spawns the full world from the latest checkpoint. Because replay
// from a checkpoint is bit-exact (same batches by step index, same
// moments, deterministic collectives), a run that survives any number of
// kill/drop/straggle incidents finishes with exactly the weights and loss
// curve of an unfaulted run — the property dist_chaos_test asserts over
// seeded fault storms.
//
// Observability: worker join/death, recovery epochs, collective aborts,
// and checkpoint saves all land in the obs flight recorder, and
// per-worker step gauges plus epoch/recovery gauges in the global metrics
// registry, so every incident is reconstructible after the fact.
#ifndef TFMR_TRAIN_DIST_DIST_TRAINER_H_
#define TFMR_TRAIN_DIST_DIST_TRAINER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "train/dist/comm.h"
#include "train/dist/sharded_adamw.h"
#include "train/dist/worker_loop.h"
#include "train/schedule.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::train::dist {

class SocketServer;

/// Which collective transport carries the workers' traffic.
enum class CommTransport {
  /// In-process CommHub: shared memory under a mutex. Zero copies, zero
  /// syscalls — the baseline every other transport must match bit-exactly.
  kThread,
  /// SocketComm against a SocketServer over a Unix-domain (or TCP)
  /// socket: the full wire stack — framing, CRCs, reconnects, epoch
  /// fencing — exercised even when workers happen to be threads.
  kSocket,
};

struct DistTrainerOptions {
  int world_size = 2;
  int64_t max_steps = 100;
  /// Global grad-norm clip applied to the averaged gradients; 0 disables.
  float clip_norm = 0.0f;
  /// Optional LR schedule; when null the AdamW lr is used as-is.
  const LrSchedule* schedule = nullptr;
  AdamWOptions adamw;

  /// Rendezvous + recovery substrate. Required: workers join and recover
  /// by loading the newest checkpoint here.
  std::string checkpoint_dir;
  /// Save every this many steps (plus one initial and one final save);
  /// 0 = only initial and final.
  int64_t checkpoint_every = 0;
  int keep_last_k = 2;

  /// Base seed for the per-(rank, step) data RNG handed to the loss fn.
  uint64_t seed = 0x5eedULL;

  /// Full-world respawns allowed before Run gives up with Internal.
  int max_recoveries = 8;
  /// Bound on every collective wait; a rank that misses it poisons the
  /// round and triggers a recovery epoch.
  std::chrono::milliseconds collective_timeout{2000};
  /// A running worker whose heartbeat counter is flat for this long is
  /// declared stalled. Must comfortably exceed the longest legitimate
  /// inter-heartbeat gap: one step's compute plus the checkpoint barrier
  /// (4x collective_timeout). A premature stall verdict costs a wasted
  /// recovery epoch, never a wrong result.
  std::chrono::milliseconds heartbeat_timeout{10000};
  /// Monitor poll interval.
  std::chrono::milliseconds monitor_poll{2};
  /// Sleep injected when FaultSite::kWorkerStraggle fires. Below
  /// collective_timeout it is a benign slowdown; above it, the straggler
  /// is recovered like a dead worker.
  int64_t straggle_ms = 20;

  CommTransport transport = CommTransport::kThread;
  /// Socket transport only: Unix socket path or "tcp://HOST:PORT".
  /// Empty = "<checkpoint_dir>/comm.sock".
  std::string socket_address;
  /// Socket transport only: a running rank whose transport connection has
  /// been dirtily down this long is fenced by the monitor — transport
  /// death is detected here, long before heartbeat_timeout or a full
  /// collective timeout would notice. Must exceed a worst-case reconnect
  /// (backoff cap + handshake) so a transient drop stays benign.
  std::chrono::milliseconds disconnect_grace{400};

  /// Workers ship a rank-tagged telemetry unit to the coordinator's
  /// aggregator every N steps (plus a final one); 0 = off. Workers here
  /// share the coordinator's process, so each unit carries only that
  /// rank's "dist.worker.<r>." metrics and no flight events — the
  /// aggregator's cross-rank sums stay honest and nothing is
  /// double-counted (see WorkerLoopOptions::telemetry_whole_process).
  int64_t telemetry_every = 0;
};

/// One distributed incident and how the coordinator responded.
struct DistIncident {
  int epoch = 0;
  int64_t step = 0;  // last step the offending rank reached
  int rank = -1;
  std::string kind;    // "worker-death", "worker-stall",
                       // "collective-failure", "checkpoint-write", ...
  std::string detail;
  std::string action;  // "respawn world from ckpt step N", ...
};

class DistTrainer {
 public:
  DistTrainer(const DistTrainerOptions& options, ModelFactory model_factory,
              DistLossFn loss_fn);
  ~DistTrainer();

  DistTrainer(const DistTrainer&) = delete;
  DistTrainer& operator=(const DistTrainer&) = delete;

  /// Runs to max_steps, surviving up to max_recoveries incidents. If the
  /// checkpoint dir already holds a checkpoint, the run resumes from it.
  /// Returns OK on completion; Internal when the recovery budget is
  /// exhausted (message carries the incident log); or the underlying IO
  /// error when even the initial checkpoint cannot be written.
  util::Status Run();

  /// Global loss curve (the all-reduced mean loss per step), recorded by
  /// rank 0. Valid after Run.
  const std::vector<StepRecord>& history() const { return history_; }

  const std::vector<DistIncident>& incidents() const { return incidents_; }
  std::string FormatIncidents() const;
  int recoveries() const { return recoveries_; }

  /// Mean loss over the last n recorded steps; 0 when no history.
  float RecentLoss(int64_t n = 50) const;

  /// Rank `rank`'s replica (all replicas are bit-identical after a
  /// successful Run). Valid after Run; null before the first epoch.
  const nn::Module* model(int rank = 0) const;

  /// The coordinator-side aggregator of every shipped telemetry unit
  /// (populated only when options.telemetry_every > 0).
  const obs::TelemetryAggregator& telemetry() const { return telemetry_; }

 private:
  enum class Phase : int {
    kLoading = 0,
    kRunning,
    kDone,
    kDead,    // kWorkerKill fired; the thread exited mid-run
    kFailed,  // collective or checkpoint-load failure; thread exited
  };

  struct Worker {
    int rank = 0;
    std::unique_ptr<nn::Module> model;
    std::unique_ptr<ShardedAdamW> opt;
    std::thread thread;
    std::atomic<int> phase{static_cast<int>(Phase::kLoading)};
    std::atomic<int64_t> step_reached{0};
    util::Status status;  // written before the terminal phase store
  };

  util::Status WriteInitialCheckpoint();
  void SpawnEpoch(const std::string& ckpt_path);
  /// Returns true when the run is over (success or fatal); false to
  /// respawn another epoch.
  bool MonitorEpoch(util::Status* verdict);
  void JoinAll();
  void AbortTransport();
  int64_t WorkerHeartbeats(int rank) const;

  void WorkerMain(int rank, int my_epoch, const std::string& ckpt_path);

  void AddIncident(DistIncident incident);

  DistTrainerOptions options_;
  ModelFactory factory_;
  DistLossFn loss_fn_;

  std::unique_ptr<CommHub> hub_;
  std::unique_ptr<SocketServer> server_;  // socket transport only
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<int> epoch_{0};
  int recoveries_ = 0;

  std::vector<StepRecord> history_;  // written by rank 0's worker thread
  mutable std::mutex incidents_mu_;
  std::vector<DistIncident> incidents_;
  obs::TelemetryAggregator telemetry_;
};

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_DIST_TRAINER_H_
