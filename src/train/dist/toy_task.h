// The canonical tiny data-parallel task shared by the multi-process
// worker binary (examples/dist_worker), the coordinator side of proc-mode
// runs, the dist demo, and the socket tests.
//
// It must be ONE header because proc-mode correctness rests on the
// coordinator and every worker process constructing bit-identical
// replicas and batches from nothing but (seed, rank, step): the model
// factory seeds its own Rng, and the global batch is derived from the
// step index alone — rank r of N takes the r-th slice of rows, and the
// per-rank loss is the shard's SumAll scaled by N so the all-reduced
// MEAN equals the single-process full-batch SumAll.
#ifndef TFMR_TRAIN_DIST_TOY_TASK_H_
#define TFMR_TRAIN_DIST_TOY_TASK_H_

#include <memory>

#include "nn/layers.h"
#include "train/dist/worker_loop.h"
#include "train/optimizer.h"
#include "util/rng.h"

namespace llm::train::dist {

inline constexpr int kToyIn = 4;
inline constexpr int kToyHidden = 8;
inline constexpr int kToyOut = 2;
inline constexpr int kToyGlobalBatch = 4;
inline constexpr uint64_t kToyDataSeed = 0xD157ull;

inline std::unique_ptr<nn::Module> MakeToyReplica() {
  util::Rng rng(7);
  return std::make_unique<nn::Mlp>(kToyIn, kToyHidden, kToyOut, &rng);
}

inline ModelFactory ToyModelFactory() {
  return [] { return MakeToyReplica(); };
}

inline core::Tensor ToyGlobalBatch(int64_t step) {
  util::Rng rng(kToyDataSeed +
                0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(step) + 1));
  return core::Tensor::RandomNormal({kToyGlobalBatch, kToyIn}, &rng);
}

inline core::Variable ToyShardLoss(nn::Module& model, int rank, int world,
                                   int64_t step) {
  core::Tensor full = ToyGlobalBatch(step);
  const int rows = kToyGlobalBatch / world;
  core::Tensor shard({rows, kToyIn});
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < kToyIn; ++j) {
      shard[i * kToyIn + j] = full[(rank * rows + i) * kToyIn + j];
    }
  }
  core::Variable x(shard, false);
  core::Variable y = static_cast<nn::Mlp&>(model).Forward(x);
  core::Variable loss = core::SumAll(core::Mul(y, y));
  if (world == 1) return loss;
  core::Tensor scale = core::Tensor::Scalar(static_cast<float>(world));
  return core::Mul(loss, core::Variable(scale, false));
}

inline DistLossFn ToyDistLoss() {
  return [](nn::Module& model, const StepContext& ctx) {
    return ToyShardLoss(model, ctx.rank, ctx.world_size, ctx.step);
  };
}

inline AdamWOptions ToyAdamWOptions() {
  AdamWOptions adamw;
  adamw.lr = 1e-2f;
  return adamw;
}

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_TOY_TASK_H_
