// CommHub: the collective-communication layer under data-parallel training.
//
// N worker threads (one per rank) rendezvous on numbered collectives. The
// primitive is Exchange — an all-gather: every rank contributes a float
// buffer and receives every rank's contribution, indexed by rank. The
// reductions data-parallel training needs are built on top of it in plain
// code (AllReduceMean sums the gathered buffers in rank order, so every
// rank computes bit-identical results — the property the bit-exact replay
// guarantees in dist_trainer rest on).
//
// Failure semantics, which is most of the point:
//   * Every wait is bounded. A rank that does not show up within the
//     timeout (dead, stalled, or its contribution was dropped in
//     transport) poisons the round: the first waiter to time out returns
//     kDeadlineExceeded and every other participant of that round returns
//     kCancelled promptly instead of hanging on its own full timeout.
//   * Every contribution carries a CRC32 computed at deposit time.
//     Corruption in transport (FaultSite::kCommCorrupt flips a payload
//     bit after the checksum is taken) is detected by every receiving
//     rank and surfaces as kInternal — never as silently wrong gradients.
//   * AbortAll() wakes every current and future waiter with kCancelled;
//     the coordinator calls it to collapse the world before a recovery
//     epoch. Reset() clears rounds and the abort latch for the next epoch.
//
// Heartbeats ride on the hub because every worker already touches it each
// step: Heartbeat(rank) is one relaxed increment, and the coordinator's
// monitor compares counters over time to detect silent stalls that never
// reach a collective.
//
// Fault sites (all fired by the contributing rank, inside Exchange):
//   kCommDrop     contribution vanishes; the round times out everywhere.
//   kCommCorrupt  one bit of the deposited payload flips after the CRC.
#ifndef TFMR_TRAIN_DIST_COMM_H_
#define TFMR_TRAIN_DIST_COMM_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace llm::train::dist {

/// Worker-side collective transport. The one primitive is Exchange (an
/// all-gather); Barrier and AllReduceMean are derived on top of it in
/// plain rank-ordered code, so every implementation — the in-process
/// CommHub below, the socket-backed SocketComm — produces bit-identical
/// reductions by construction. DistTrainer and the multi-process worker
/// loop are written against this interface and never name a transport.
class Comm {
 public:
  virtual ~Comm() = default;

  /// All-gather over ranks. Every live rank must call with the same `seq`
  /// (collectives are numbered in lockstep within an epoch; workers keep a
  /// local counter). Blocks until all world_size ranks of this round have
  /// contributed, then returns every rank's buffer, indexed by rank.
  ///
  /// Errors: kDeadlineExceeded (this rank's wait expired first),
  /// kCancelled (the round was poisoned by another rank's timeout, the
  /// epoch was aborted, or this rank was fenced out as stale), kInternal
  /// (a contribution failed its CRC).
  virtual util::StatusOr<std::vector<std::vector<float>>> Exchange(
      int rank, int64_t seq, std::vector<float> data,
      std::chrono::milliseconds timeout) = 0;

  /// One cheap liveness signal per step; the coordinator's monitor
  /// compares counters over time to detect silent stalls.
  virtual void Heartbeat(int rank) = 0;

  /// Announces an orderly exit (loop ran to completion), so the
  /// coordinator can tell a finished rank from a dead one when the
  /// transport connection goes away. No-op for in-process transports.
  virtual void Finish(int rank) { (void)rank; }

  /// Best-effort ship of an encoded obs::RankTelemetry blob to the
  /// coordinator's aggregator. The blob is opaque to the transport.
  /// Telemetry rides outside the collective algebra: a dropped or
  /// delayed unit costs observability, never correctness, so
  /// implementations must never block a step on it and must never
  /// reconnect for it. Default: drop (transports without a coordinator
  /// sink).
  virtual void ShipTelemetry(int rank, const std::vector<uint8_t>& blob) {
    (void)rank;
    (void)blob;
  }

  virtual int world_size() const = 0;

  /// Rendezvous with no payload: Exchange of empty buffers.
  util::Status Barrier(int rank, int64_t seq,
                       std::chrono::milliseconds timeout);

  /// In-place mean all-reduce: exchanges `*data`, then overwrites it with
  /// the element-wise mean, summed in rank order so every rank gets the
  /// same bits. All buffers must be the same size.
  util::Status AllReduceMean(int rank, int64_t seq, std::vector<float>* data,
                             std::chrono::milliseconds timeout);
};

class CommHub : public Comm {
 public:
  explicit CommHub(int world_size);

  CommHub(const CommHub&) = delete;
  CommHub& operator=(const CommHub&) = delete;

  /// See Comm::Exchange.
  util::StatusOr<std::vector<std::vector<float>>> Exchange(
      int rank, int64_t seq, std::vector<float> data,
      std::chrono::milliseconds timeout) override;

  /// Wakes every current and future waiter with kCancelled. Idempotent.
  void AbortAll();

  /// Clears all rounds and the abort latch for a new epoch. Callers must
  /// ensure no rank is inside a collective (join workers first).
  void Reset();

  /// One relaxed increment; the coordinator's monitor reads the counter
  /// to detect ranks that stopped making progress.
  void Heartbeat(int rank) override;
  int64_t HeartbeatCount(int rank) const;

  /// Receives every ShipTelemetry blob (the in-process analogue of the
  /// server's kTelemetry frame handler). Called from worker threads;
  /// the sink must be thread-safe. Set before workers start.
  using TelemetrySink =
      std::function<void(int rank, const std::vector<uint8_t>& blob)>;
  void SetTelemetrySink(TelemetrySink sink);
  void ShipTelemetry(int rank, const std::vector<uint8_t>& blob) override;

  int world_size() const override { return world_size_; }

 private:
  struct Round {
    std::vector<std::vector<float>> contrib;
    std::vector<uint32_t> crc;
    std::vector<bool> present;
    int num_present = 0;
    int num_done = 0;
    bool poisoned = false;  // a waiter timed out; fail the round everywhere
  };

  const int world_size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int64_t, Round> rounds_;  // guarded by mu_
  bool aborted_ = false;             // guarded by mu_
  std::unique_ptr<std::atomic<int64_t>[]> heartbeats_;
  mutable std::mutex sink_mu_;
  TelemetrySink telemetry_sink_;     // guarded by sink_mu_
};

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_COMM_H_
