#include "train/dist/socket_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace llm::train::dist {
namespace {

using obs::FlightEventType;
using obs::FlightRecorder;

struct SockMetrics {
  obs::Counter* frames_tx;
  obs::Counter* frames_rx;
  obs::Counter* bytes_tx;
  obs::Counter* bytes_rx;
  obs::Counter* crc_rejects;
  obs::Counter* reconnects;
  obs::Counter* fenced;
};

SockMetrics& Metrics() {
  static SockMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return new SockMetrics{reg.GetCounter("dist.sock.frames_tx"),
                           reg.GetCounter("dist.sock.frames_rx"),
                           reg.GetCounter("dist.sock.bytes_tx"),
                           reg.GetCounter("dist.sock.bytes_rx"),
                           reg.GetCounter("dist.sock.crc_rejects"),
                           reg.GetCounter("dist.sock.reconnects"),
                           reg.GetCounter("dist.sock.fenced")};
  }();
  return *m;
}

void CountTx(const Frame& frame) {
  Metrics().frames_tx->Increment();
  Metrics().bytes_tx->Increment(kFrameHeaderBytes + frame.payload.size());
}

void CountRx(const Frame& frame) {
  Metrics().frames_rx->Increment();
  Metrics().bytes_rx->Increment(kFrameHeaderBytes + frame.payload.size());
}

/// Reconstructs the Status a round failed with from its wire code.
util::Status RoundStatus(int32_t code, int64_t seq) {
  const std::string msg =
      "collective " + std::to_string(seq) + " failed over socket transport";
  return util::Status(static_cast<util::StatusCode>(code), msg);
}

/// Server-side write deadline: bounded so a wedged client can never park
/// a reader thread that is fanning out results.
SteadyClock::time_point ShortWriteDeadline() {
  return SteadyClock::now() + std::chrono::milliseconds(2000);
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(int world_size, std::string address)
    : world_size_(world_size), address_(std::move(address)) {
  LLM_CHECK_GE(world_size, 1);
  by_rank_.resize(static_cast<size_t>(world_size));
  ranks_.resize(static_cast<size_t>(world_size));
}

SocketServer::~SocketServer() { Stop(); }

util::Status SocketServer::Start() {
  auto fd = ListenOn(address_, &bound_address_);
  LLM_RETURN_IF_ERROR(fd.status());
  listen_fd_ = fd.value();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::OK();
}

void SocketServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Conn>> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : by_rank_) {
      if (conn) {
        conn->stop.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
        reap.push_back(std::move(conn));
      }
    }
    reap.insert(reap.end(), std::make_move_iterator(graveyard_.begin()),
                std::make_move_iterator(graveyard_.end()));
    graveyard_.clear();
  }
  for (auto& conn : reap) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load()) {
    // Reap readers that exited on their own (client disconnects) and
    // retired connections replaced by a reconnect.
    std::vector<std::shared_ptr<Conn>> reap;
    {
      std::lock_guard<std::mutex> lock(mu_);
      reap.swap(graveyard_);
    }
    for (auto& conn : reap) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }

    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      ::close(fd);
      continue;
    }

    // Handshake: the first frame must be a kHello carrying the client's
    // rank and spawn epoch.
    auto hello = ReadFrame(
        fd, SteadyClock::now() + std::chrono::milliseconds(2000));
    if (!hello.ok() || hello.value().type != FrameType::kHello ||
        hello.value().rank < 0 || hello.value().rank >= world_size_) {
      ::close(fd);
      continue;
    }
    CountRx(hello.value());
    const int rank = hello.value().rank;
    const int64_t cur_epoch = epoch_.load(std::memory_order_relaxed);
    if (hello.value().epoch != cur_epoch) {
      // A worker from a stale spawn generation — fence it out before it
      // can say anything else.
      Frame fence;
      fence.type = FrameType::kFenced;
      fence.rank = rank;
      fence.epoch = cur_epoch;
      (void)SendFrame(fd, fence, ShortWriteDeadline());
      CountTx(fence);
      Metrics().fenced->Increment();
      FlightRecorder::Global().Record(FlightEventType::kTransportFence,
                                      rank, hello.value().epoch, cur_epoch);
      ::close(fd);
      continue;
    }

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->rank = rank;
    bool reconnect = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (auto& old = by_rank_[static_cast<size_t>(rank)]) {
        old->stop.store(true);
        ::shutdown(old->fd, SHUT_RDWR);
        graveyard_.push_back(std::move(old));
      }
      RankState& rs = ranks_[static_cast<size_t>(rank)];
      reconnect = rs.ever_connected;
      rs.ever_connected = true;
      rs.connected = true;
      by_rank_[static_cast<size_t>(rank)] = conn;
      // The reader is started under the same lock that publishes the
      // conn: a concurrent Reset/Stop must either see the conn with its
      // reader attached (and join it) or not see it at all. Publishing
      // first and attaching after opens a window where the conn is
      // reaped "readerless" and the thread is never joined.
      conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    }
    if (reconnect) Metrics().reconnects->Increment();
    FlightRecorder::Global().Record(FlightEventType::kTransportConnect,
                                    rank, cur_epoch, reconnect ? 1 : 0);

    Frame ack;
    ack.type = FrameType::kHelloAck;
    ack.rank = rank;
    ack.epoch = cur_epoch;
    SendOn(conn, ack);
  }
}

void SocketServer::NoteDisconnect(int rank, bool dirty) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RankState& rs = ranks_[static_cast<size_t>(rank)];
    if (!rs.connected) return;  // already noted (replaced by reconnect)
    rs.connected = false;
    rs.disconnected_at = std::chrono::steady_clock::now();
  }
  FlightRecorder::Global().Record(
      FlightEventType::kTransportDisconnect, rank,
      epoch_.load(std::memory_order_relaxed), dirty ? 1 : 0);
}

void SocketServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  while (!conn->stop.load() && !stopping_.load()) {
    auto frame = ReadFrame(
        conn->fd, SteadyClock::now() + std::chrono::milliseconds(100));
    if (!frame.ok()) {
      if (frame.status().code() == util::StatusCode::kDeadlineExceeded) {
        continue;  // idle poll tick
      }
      break;  // closed / reset / desynced stream: drop the connection
    }
    CountRx(frame.value());
    const int64_t cur_epoch = epoch_.load(std::memory_order_relaxed);
    if (frame.value().epoch != cur_epoch) {
      Frame fence;
      fence.type = FrameType::kFenced;
      fence.rank = conn->rank;
      fence.epoch = cur_epoch;
      SendOn(conn, fence);
      Metrics().fenced->Increment();
      FlightRecorder::Global().Record(FlightEventType::kTransportFence,
                                      conn->rank, frame.value().epoch,
                                      cur_epoch);
      break;
    }
    HandleFrame(conn, frame.value());
  }
  bool clean;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clean = ranks_[static_cast<size_t>(conn->rank)].finished;
  }
  if (!stopping_.load() && !conn->stop.load()) {
    NoteDisconnect(conn->rank, /*dirty=*/!clean);
  }
  // The fd is closed by whoever joins this conn (Stop/Reset/reap); a
  // replaced conn's fd must outlive the reader to avoid fd-number reuse.
}

void SocketServer::SendOn(const std::shared_ptr<Conn>& conn,
                          const Frame& frame) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  // Errors are deliberately swallowed: a failed push means the client is
  // gone; it will reconnect and re-ask, or the monitor will fence it.
  (void)SendFrame(conn->fd, frame, ShortWriteDeadline());
  CountTx(frame);
}

void SocketServer::FailRoundLocked(
    int64_t seq, Round* round, int32_t code,
    std::vector<std::shared_ptr<Conn>>* notify) {
  round->failed = code;
  for (int r = 0; r < world_size_; ++r) {
    if (round->present[static_cast<size_t>(r)] &&
        by_rank_[static_cast<size_t>(r)]) {
      notify->push_back(by_rank_[static_cast<size_t>(r)]);
    }
  }
  (void)seq;
}

void SocketServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                               const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHeartbeat: {
      std::lock_guard<std::mutex> lock(mu_);
      ++ranks_[static_cast<size_t>(conn->rank)].heartbeats;
      return;
    }
    case FrameType::kGoodbye: {
      std::lock_guard<std::mutex> lock(mu_);
      ranks_[static_cast<size_t>(conn->rank)].finished = true;
      return;
    }
    case FrameType::kTelemetry: {
      // Best-effort observability: a payload that failed its wire CRC is
      // dropped here rather than failing anything — telemetry rides
      // outside the collective algebra.
      if (!frame.payload_ok) {
        Metrics().crc_rejects->Increment();
        return;
      }
      TelemetrySink sink;
      {
        std::lock_guard<std::mutex> lock(mu_);
        sink = telemetry_sink_;
      }
      // Invoked outside mu_: the sink (typically an aggregator ingest)
      // takes its own locks and must not serialize round handling.
      if (sink) sink(conn->rank, frame.payload);
      return;
    }
    case FrameType::kPoison: {
      // The sender's wait on `seq` expired: fail the round so every other
      // participant gets a prompt kCancelled instead of its own timeout.
      std::vector<std::shared_ptr<Conn>> notify;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (done_.count(frame.seq) != 0) return;  // round did complete
        Round& round = rounds_[frame.seq];
        if (round.present.empty()) {
          round.contrib.resize(static_cast<size_t>(world_size_));
          round.present.resize(static_cast<size_t>(world_size_), false);
        }
        if (round.failed == 0) {
          FailRoundLocked(frame.seq, &round,
                          static_cast<int32_t>(util::StatusCode::kCancelled),
                          &notify);
        }
      }
      Frame err;
      err.type = FrameType::kError;
      err.status = static_cast<int32_t>(util::StatusCode::kCancelled);
      err.epoch = frame.epoch;
      err.seq = frame.seq;
      for (auto& c : notify) {
        err.rank = c->rank;
        SendOn(c, err);
      }
      return;
    }
    case FrameType::kContribution:
      break;  // handled below
    default:
      return;  // client->server stream carries nothing else
  }

  // kContribution.
  Frame reply;
  reply.rank = conn->rank;
  reply.epoch = frame.epoch;
  reply.seq = frame.seq;
  std::vector<std::shared_ptr<Conn>> notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) {
      reply.type = FrameType::kAbort;
      SendOn(conn, reply);
      return;
    }
    auto cached = done_.find(frame.seq);
    if (cached != done_.end()) {
      // A reconnect race: the client contributed, lost its connection,
      // and is re-asking for a round that already completed.
      reply.type = FrameType::kResult;
      reply.payload = cached->second;
      SendOn(conn, reply);
      return;
    }
    Round& round = rounds_[frame.seq];
    if (round.present.empty()) {
      round.contrib.resize(static_cast<size_t>(world_size_));
      round.present.resize(static_cast<size_t>(world_size_), false);
    }
    if (round.failed != 0) {
      reply.type = FrameType::kError;
      reply.status = round.failed;
      SendOn(conn, reply);
      return;
    }
    if (!frame.payload_ok) {
      // Corruption in transport: the framing held but the payload CRC
      // did not. Fail the round for everyone — kInternal, same verdict
      // CommHub reaches on a deposit-checksum mismatch.
      Metrics().crc_rejects->Increment();
      FailRoundLocked(frame.seq, &round,
                      static_cast<int32_t>(util::StatusCode::kInternal),
                      &notify);
      if (!round.present[static_cast<size_t>(conn->rank)]) {
        notify.push_back(conn);
      }
      reply.type = FrameType::kError;
      reply.status = static_cast<int32_t>(util::StatusCode::kInternal);
    } else if (round.present[static_cast<size_t>(conn->rank)]) {
      return;  // idempotent duplicate (re-sent across a reconnect)
    } else {
      round.contrib[static_cast<size_t>(conn->rank)] =
          DecodeFloats(frame.payload);
      round.present[static_cast<size_t>(conn->rank)] = true;
      if (++round.num_present == world_size_) {
        reply.type = FrameType::kResult;
        reply.payload = EncodeGather(round.contrib);
        done_[frame.seq] = reply.payload;
        done_order_.push_back(frame.seq);
        while (done_order_.size() > 4) {
          done_.erase(done_order_.front());
          done_order_.pop_front();
        }
        for (int r = 0; r < world_size_; ++r) {
          if (by_rank_[static_cast<size_t>(r)]) {
            notify.push_back(by_rank_[static_cast<size_t>(r)]);
          }
        }
        rounds_.erase(frame.seq);
      } else {
        return;  // parked: the completing contribution will answer us
      }
    }
  }
  for (auto& c : notify) {
    reply.rank = c->rank;
    SendOn(c, reply);
  }
}

void SocketServer::AbortEpoch() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
    for (auto& [seq, round] : rounds_) {
      if (round.failed == 0) {
        round.failed = static_cast<int32_t>(util::StatusCode::kCancelled);
      }
    }
    for (auto& conn : by_rank_) {
      if (conn) conns.push_back(conn);
    }
  }
  Frame abort;
  abort.type = FrameType::kAbort;
  abort.epoch = epoch_.load(std::memory_order_relaxed);
  for (auto& conn : conns) {
    abort.rank = conn->rank;
    SendOn(conn, abort);
  }
}

void SocketServer::Reset(int64_t epoch) {
  std::vector<std::shared_ptr<Conn>> reap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.store(epoch, std::memory_order_relaxed);
    aborted_ = false;
    rounds_.clear();
    done_.clear();
    done_order_.clear();
    for (auto& conn : by_rank_) {
      if (conn) {
        conn->stop.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
        reap.push_back(std::move(conn));
      }
    }
    reap.insert(reap.end(), std::make_move_iterator(graveyard_.begin()),
                std::make_move_iterator(graveyard_.end()));
    graveyard_.clear();
    ranks_.assign(static_cast<size_t>(world_size_), RankState{});
  }
  for (auto& conn : reap) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
}

int64_t SocketServer::HeartbeatCount(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ranks_[static_cast<size_t>(rank)].heartbeats;
}

bool SocketServer::Finished(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ranks_[static_cast<size_t>(rank)].finished;
}

void SocketServer::SetTelemetrySink(TelemetrySink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry_sink_ = std::move(sink);
}

std::vector<int> SocketServer::RanksDisconnectedOver(
    std::chrono::milliseconds grace) const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (int r = 0; r < world_size_; ++r) {
    const RankState& rs = ranks_[static_cast<size_t>(r)];
    if (rs.ever_connected && !rs.connected && !rs.finished &&
        now - rs.disconnected_at > grace) {
      out.push_back(r);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SocketComm
// ---------------------------------------------------------------------------

SocketComm::SocketComm(int rank, int world_size, std::string server_address,
                       int64_t epoch, SocketCommOptions options)
    : rank_(rank),
      world_size_(world_size),
      address_(std::move(server_address)),
      epoch_(epoch),
      options_(options),
      jitter_(options.jitter_seed ^
              (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(rank + 1))) {}

SocketComm::~SocketComm() {
  std::lock_guard<std::mutex> lock(mu_);
  CloseConn(/*dirty=*/false);
}

void SocketComm::CloseConn(bool dirty) {
  (void)dirty;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status SocketComm::EnsureConnected(SteadyClock::time_point deadline) {
  if (fd_ >= 0) return util::Status::OK();
  int attempt = 0;
  while (true) {
    if (fenced_) {
      return util::Status::Cancelled(
          "rank " + std::to_string(rank_) + " fenced: epoch " +
          std::to_string(epoch_) + " is stale");
    }
    const auto now = SteadyClock::now();
    if (now >= deadline) {
      return util::Status::DeadlineExceeded(
          "rank " + std::to_string(rank_) +
          " could not (re)connect to " + address_ + " within deadline");
    }
    const auto attempt_deadline =
        std::min(deadline, now + options_.connect_timeout);
    auto fd = ConnectTo(address_, attempt_deadline);
    if (fd.ok()) {
      Frame hello;
      hello.type = FrameType::kHello;
      hello.rank = rank_;
      hello.epoch = epoch_;
      util::Status sent = SendFrame(fd.value(), hello, attempt_deadline);
      if (sent.ok()) {
        CountTx(hello);
        auto ack = ReadFrame(fd.value(), attempt_deadline);
        if (ack.ok()) {
          CountRx(ack.value());
          if (ack.value().type == FrameType::kHelloAck) {
            fd_ = fd.value();
            ++connects_;
            return util::Status::OK();
          }
          if (ack.value().type == FrameType::kFenced) {
            fenced_ = true;
            ::close(fd.value());
            return util::Status::Cancelled(
                "rank " + std::to_string(rank_) + " fenced: epoch " +
                std::to_string(epoch_) + " superseded by " +
                std::to_string(ack.value().epoch));
          }
        }
      }
      ::close(fd.value());
    }
    const auto delay = BackoffDelay(attempt++, options_.backoff_initial,
                                    options_.backoff_cap, jitter_.Uniform());
    std::this_thread::sleep_for(
        std::min<SteadyClock::duration>(delay, deadline - SteadyClock::now()));
  }
}

util::StatusOr<std::vector<std::vector<float>>> SocketComm::Exchange(
    int rank, int64_t seq, std::vector<float> data,
    std::chrono::milliseconds timeout) {
  LLM_CHECK_EQ(rank, rank_) << "SocketComm is bound to one rank";
  const auto deadline = SteadyClock::now() + timeout;
  std::lock_guard<std::mutex> lock(mu_);

  Frame contribution;
  contribution.type = FrameType::kContribution;
  contribution.rank = rank_;
  contribution.epoch = epoch_;
  contribution.seq = seq;
  contribution.payload = EncodeFloats(data);

  const auto poison_and_timeout = [&]() -> util::Status {
    // Best effort: wake the other participants promptly. If the send
    // fails the server's poisoning falls to the next rank to time out.
    if (fd_ >= 0) {
      Frame poison;
      poison.type = FrameType::kPoison;
      poison.rank = rank_;
      poison.epoch = epoch_;
      poison.seq = seq;
      if (SendFrame(fd_, poison,
                    SteadyClock::now() + std::chrono::milliseconds(100))
              .ok()) {
        CountTx(poison);
      }
    }
    return util::Status::DeadlineExceeded(
        "collective " + std::to_string(seq) + " timed out at rank " +
        std::to_string(rank_) + " (socket transport)");
  };

  bool sent = false;
  while (true) {
    if (SteadyClock::now() >= deadline) return poison_and_timeout();
    util::Status conn = EnsureConnected(deadline);
    if (!conn.ok()) {
      if (conn.code() == util::StatusCode::kDeadlineExceeded) {
        return poison_and_timeout();
      }
      return conn;  // fenced
    }
    if (!sent) {
      util::Status pushed = SendFrame(fd_, contribution, deadline);
      if (!pushed.ok()) {
        CloseConn(/*dirty=*/true);
        continue;  // reconnect and re-send
      }
      CountTx(contribution);
      sent = true;
    }

    // Wait for this round's verdict.
    while (true) {
      auto frame = ReadFrame(fd_, deadline);
      if (!frame.ok()) {
        if (frame.status().code() == util::StatusCode::kDeadlineExceeded) {
          return poison_and_timeout();
        }
        // Connection lost (or stream desynced): reconnect and re-send;
        // the server's result cache answers if the round completed while
        // we were away.
        CloseConn(/*dirty=*/true);
        sent = false;
        break;
      }
      const Frame& f = frame.value();
      CountRx(f);
      if (f.type == FrameType::kAbort) {
        return util::Status::Cancelled(
            "collective " + std::to_string(seq) + " aborted at rank " +
            std::to_string(rank_) + " (epoch teardown)");
      }
      if (f.type == FrameType::kFenced) {
        fenced_ = true;
        CloseConn(/*dirty=*/false);
        return util::Status::Cancelled(
            "rank " + std::to_string(rank_) + " fenced mid-round: epoch " +
            std::to_string(epoch_) + " superseded by " +
            std::to_string(f.epoch));
      }
      if (f.seq != seq) continue;  // stale push from an earlier round
      if (f.type == FrameType::kError) {
        return RoundStatus(f.status, seq);
      }
      if (f.type != FrameType::kResult) continue;
      if (!f.payload_ok) {
        // The *result* got corrupted on the way down. The server holds a
        // good copy in its cache: drop the connection and re-ask.
        Metrics().crc_rejects->Increment();
        CloseConn(/*dirty=*/true);
        sent = false;
        break;
      }
      auto gathered = DecodeGather(f.payload);
      LLM_RETURN_IF_ERROR(gathered.status());
      if (static_cast<int>(gathered.value().size()) != world_size_) {
        return util::Status::Internal(
            "gather result has " + std::to_string(gathered.value().size()) +
            " buffers, want " + std::to_string(world_size_));
      }
      return std::move(gathered).value();
    }
  }
}

void SocketComm::Heartbeat(int rank) {
  LLM_CHECK_EQ(rank, rank_);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;  // Exchange owns reconnection
  Frame hb;
  hb.type = FrameType::kHeartbeat;
  hb.rank = rank_;
  hb.epoch = epoch_;
  if (SendFrame(fd_, hb, SteadyClock::now() + std::chrono::milliseconds(100))
          .ok()) {
    CountTx(hb);
  } else {
    CloseConn(/*dirty=*/true);
  }
}

void SocketComm::ShipTelemetry(int rank, const std::vector<uint8_t>& blob) {
  LLM_CHECK_EQ(rank, rank_);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;  // Exchange owns reconnection
  Frame tel;
  tel.type = FrameType::kTelemetry;
  tel.rank = rank_;
  tel.epoch = epoch_;
  tel.payload = blob;
  if (SendFrame(fd_, tel, SteadyClock::now() + std::chrono::milliseconds(100))
          .ok()) {
    CountTx(tel);
  } else {
    CloseConn(/*dirty=*/true);
  }
}

void SocketComm::Finish(int rank) {
  LLM_CHECK_EQ(rank, rank_);
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    // One short-budget attempt so the coordinator can tell "finished"
    // from "died": without the goodbye a final-step disconnect looks
    // dirty and costs a needless fence.
    if (!EnsureConnected(SteadyClock::now() +
                         std::chrono::milliseconds(500))
             .ok()) {
      return;
    }
  }
  Frame bye;
  bye.type = FrameType::kGoodbye;
  bye.rank = rank_;
  bye.epoch = epoch_;
  if (SendFrame(fd_, bye,
                SteadyClock::now() + std::chrono::milliseconds(200))
          .ok()) {
    CountTx(bye);
  }
  CloseConn(/*dirty=*/false);
}

}  // namespace llm::train::dist
