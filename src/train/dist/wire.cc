#include "train/dist/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>

#include "util/crc32.h"
#include "util/fault.h"

namespace llm::train::dist {
namespace {

// Header byte offsets (little-endian fields; total kFrameHeaderBytes).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffType = 6;
constexpr size_t kOffRank = 8;
constexpr size_t kOffStatus = 12;
constexpr size_t kOffEpoch = 16;
constexpr size_t kOffSeq = 24;
constexpr size_t kOffPayloadLen = 32;
constexpr size_t kOffPayloadCrc = 36;
constexpr size_t kOffHeaderCrc = 40;

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = deadline - SteadyClock::now();
  if (left <= SteadyClock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count();
  return static_cast<int>(std::min<int64_t>(ms + 1, 60'000));
}

/// Writes all of buf[0..len), polling for writability against the
/// deadline. MSG_NOSIGNAL: a peer that died mid-round must surface as
/// EPIPE, not kill the process.
util::Status WriteAll(int fd, const uint8_t* buf, size_t len,
                      SteadyClock::time_point deadline) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, buf + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) {
        return util::Status::DeadlineExceeded("socket write deadline");
      }
      struct pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0 && errno != EINTR) {
        return util::Status::IOError("poll(POLLOUT): " +
                                     std::string(std::strerror(errno)));
      }
      continue;
    }
    return util::Status::IOError("socket write: " +
                                 std::string(std::strerror(errno)));
  }
  return util::Status::OK();
}

/// Reads exactly len bytes; kIOError with "connection closed" on EOF.
util::Status ReadAll(int fd, uint8_t* buf, size_t len,
                     SteadyClock::time_point deadline) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return util::Status::IOError("connection closed by peer");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) {
        return util::Status::DeadlineExceeded("socket read deadline");
      }
      struct pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0 && errno != EINTR) {
        return util::Status::IOError("poll(POLLIN): " +
                                     std::string(std::strerror(errno)));
      }
      continue;
    }
    return util::Status::IOError("socket read: " +
                                 std::string(std::strerror(errno)));
  }
  return util::Status::OK();
}

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::IOError("fcntl(O_NONBLOCK): " +
                                 std::string(std::strerror(errno)));
  }
  return util::Status::OK();
}

constexpr const char* kTcpPrefix = "tcp://";

bool IsTcpAddress(const std::string& address) {
  return address.rfind(kTcpPrefix, 0) == 0;
}

util::Status ParseTcp(const std::string& address, std::string* host,
                      uint16_t* port) {
  const std::string rest = address.substr(std::strlen(kTcpPrefix));
  const size_t colon = rest.find_last_of(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == rest.size()) {
    return util::Status::InvalidArgument("bad tcp address: " + address);
  }
  *host = rest.substr(0, colon);
  long p = 0;
  for (size_t i = colon + 1; i < rest.size(); ++i) {
    if (rest[i] < '0' || rest[i] > '9') {
      return util::Status::InvalidArgument("bad tcp port in " + address);
    }
    p = p * 10 + (rest[i] - '0');
  }
  if (p < 0 || p > 65535) {
    return util::Status::InvalidArgument("tcp port out of range: " +
                                         address);
  }
  *port = static_cast<uint16_t>(p);
  return util::Status::OK();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kContribution: return "contribution";
    case FrameType::kResult: return "result";
    case FrameType::kError: return "error";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kPoison: return "poison";
    case FrameType::kFenced: return "fenced";
    case FrameType::kAbort: return "abort";
    case FrameType::kGoodbye: return "goodbye";
    case FrameType::kTelemetry: return "telemetry";
  }
  return "unknown";
}

util::Status SendFrame(int fd, const Frame& frame,
                       SteadyClock::time_point deadline) {
  // Fault sites model the transport misbehaving *after* the sender
  // computed its checksums — exactly what the receiver must catch.
  if (util::MaybeInjectFault(util::FaultSite::kSockStallWrite)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }
  if (util::MaybeInjectFault(util::FaultSite::kSockDisconnect)) {
    ::shutdown(fd, SHUT_RDWR);
    return util::Status::IOError("injected disconnect before send");
  }
  if (util::MaybeInjectFault(util::FaultSite::kSockDrop)) {
    return util::Status::OK();  // the frame vanishes in transport
  }

  const uint32_t payload_crc =
      util::Crc32(frame.payload.data(), frame.payload.size());
  const uint8_t* payload = frame.payload.data();
  std::vector<uint8_t> corrupted;
  if (util::MaybeInjectFault(util::FaultSite::kSockCorruptFrame) &&
      !frame.payload.empty()) {
    corrupted = frame.payload;
    corrupted[corrupted.size() / 2] ^= 0x10;  // one bit, after the CRC
    payload = corrupted.data();
  }

  uint8_t header[kFrameHeaderBytes];
  StoreU32(header + kOffMagic, kWireMagic);
  StoreU16(header + kOffVersion, kWireVersion);
  StoreU16(header + kOffType, static_cast<uint16_t>(frame.type));
  StoreU32(header + kOffRank, static_cast<uint32_t>(frame.rank));
  StoreU32(header + kOffStatus, static_cast<uint32_t>(frame.status));
  StoreU64(header + kOffEpoch, static_cast<uint64_t>(frame.epoch));
  StoreU64(header + kOffSeq, static_cast<uint64_t>(frame.seq));
  StoreU32(header + kOffPayloadLen,
           static_cast<uint32_t>(frame.payload.size()));
  StoreU32(header + kOffPayloadCrc, payload_crc);
  StoreU32(header + kOffHeaderCrc, util::Crc32(header, kOffHeaderCrc));

  LLM_RETURN_IF_ERROR(WriteAll(fd, header, kFrameHeaderBytes, deadline));
  if (!frame.payload.empty()) {
    LLM_RETURN_IF_ERROR(
        WriteAll(fd, payload, frame.payload.size(), deadline));
  }
  return util::Status::OK();
}

util::StatusOr<Frame> ReadFrame(int fd, SteadyClock::time_point deadline) {
  uint8_t header[kFrameHeaderBytes];
  LLM_RETURN_IF_ERROR(ReadAll(fd, header, kFrameHeaderBytes, deadline));
  if (LoadU32(header + kOffMagic) != kWireMagic) {
    return util::Status::Internal("frame magic mismatch (desynced stream)");
  }
  if (LoadU16(header + kOffVersion) != kWireVersion) {
    return util::Status::Internal(
        "frame version mismatch: " +
        std::to_string(LoadU16(header + kOffVersion)));
  }
  if (LoadU32(header + kOffHeaderCrc) !=
      util::Crc32(header, kOffHeaderCrc)) {
    return util::Status::Internal("frame header checksum mismatch");
  }
  const uint32_t payload_len = LoadU32(header + kOffPayloadLen);
  if (payload_len > kMaxFramePayload) {
    return util::Status::Internal("frame payload oversized: " +
                                  std::to_string(payload_len));
  }

  Frame frame;
  frame.type = static_cast<FrameType>(LoadU16(header + kOffType));
  frame.rank = static_cast<int32_t>(LoadU32(header + kOffRank));
  frame.status = static_cast<int32_t>(LoadU32(header + kOffStatus));
  frame.epoch = static_cast<int64_t>(LoadU64(header + kOffEpoch));
  frame.seq = static_cast<int64_t>(LoadU64(header + kOffSeq));
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    LLM_RETURN_IF_ERROR(
        ReadAll(fd, frame.payload.data(), payload_len, deadline));
  }
  // The framing was intact (length honored, stream still aligned), so a
  // payload-CRC mismatch is corruption-in-transport: report it in-band so
  // the round fails with kInternal while the connection survives.
  frame.payload_ok = util::Crc32(frame.payload.data(),
                                 frame.payload.size()) ==
                     LoadU32(header + kOffPayloadCrc);
  return frame;
}

std::vector<uint8_t> EncodeFloats(const std::vector<float>& values) {
  std::vector<uint8_t> bytes(values.size() * sizeof(float));
  if (!values.empty()) {
    std::memcpy(bytes.data(), values.data(), bytes.size());
  }
  return bytes;
}

std::vector<float> DecodeFloats(const std::vector<uint8_t>& bytes) {
  std::vector<float> values(bytes.size() / sizeof(float));
  if (!values.empty()) {
    std::memcpy(values.data(), bytes.data(),
                values.size() * sizeof(float));
  }
  return values;
}

std::vector<uint8_t> EncodeGather(
    const std::vector<std::vector<float>>& bufs) {
  size_t total = 0;
  for (const auto& b : bufs) total += b.size();
  std::vector<uint8_t> bytes(4 + 4 * bufs.size() + sizeof(float) * total);
  uint8_t* p = bytes.data();
  StoreU32(p, static_cast<uint32_t>(bufs.size()));
  p += 4;
  for (const auto& b : bufs) {
    StoreU32(p, static_cast<uint32_t>(b.size()));
    p += 4;
  }
  for (const auto& b : bufs) {
    if (!b.empty()) {
      std::memcpy(p, b.data(), b.size() * sizeof(float));
      p += b.size() * sizeof(float);
    }
  }
  return bytes;
}

util::StatusOr<std::vector<std::vector<float>>> DecodeGather(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) {
    return util::Status::Internal("gather payload truncated (no count)");
  }
  const uint32_t count = LoadU32(bytes.data());
  if (count > 4096 || bytes.size() < 4 + 4 * static_cast<size_t>(count)) {
    return util::Status::Internal("gather payload truncated (size table)");
  }
  std::vector<std::vector<float>> bufs(count);
  size_t total = 0;
  for (uint32_t r = 0; r < count; ++r) {
    total += LoadU32(bytes.data() + 4 + 4 * r);
  }
  if (bytes.size() != 4 + 4 * static_cast<size_t>(count) +
                          sizeof(float) * total) {
    return util::Status::Internal("gather payload length mismatch");
  }
  const uint8_t* p = bytes.data() + 4 + 4 * static_cast<size_t>(count);
  for (uint32_t r = 0; r < count; ++r) {
    const uint32_t len = LoadU32(bytes.data() + 4 + 4 * r);
    bufs[r].resize(len);
    if (len > 0) {
      std::memcpy(bufs[r].data(), p, len * sizeof(float));
      p += len * sizeof(float);
    }
  }
  return bufs;
}

util::StatusOr<int> ListenOn(const std::string& address,
                             std::string* bound_address) {
  int fd = -1;
  if (IsTcpAddress(address)) {
    std::string host;
    uint16_t port = 0;
    LLM_RETURN_IF_ERROR(ParseTcp(address, &host, &port));
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return util::Status::IOError("socket(AF_INET): " +
                                   std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return util::Status::InvalidArgument(
          "tcp host must be a numeric IPv4 address: " + host);
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return util::Status::IOError("bind(" + address + "): " + err);
    }
    if (bound_address != nullptr) {
      struct sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual),
                        &len) == 0) {
        *bound_address = std::string(kTcpPrefix) + host + ":" +
                         std::to_string(ntohs(actual.sin_port));
      } else {
        *bound_address = address;
      }
    }
  } else {
    if (address.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return util::Status::InvalidArgument(
          "unix socket path too long: " + address);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return util::Status::IOError("socket(AF_UNIX): " +
                                   std::string(std::strerror(errno)));
    }
    ::unlink(address.c_str());  // a stale path from a dead server
    struct sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, address.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return util::Status::IOError("bind(" + address + "): " + err);
    }
    if (bound_address != nullptr) *bound_address = address;
  }
  if (::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("listen(" + address + "): " + err);
  }
  util::Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  return fd;
}

util::StatusOr<int> ConnectTo(const std::string& address,
                              SteadyClock::time_point deadline) {
  int fd = -1;
  struct sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (IsTcpAddress(address)) {
    std::string host;
    uint16_t port = 0;
    LLM_RETURN_IF_ERROR(ParseTcp(address, &host, &port));
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return util::Status::IOError("socket(AF_INET): " +
                                   std::string(std::strerror(errno)));
    }
    auto* addr = reinterpret_cast<struct sockaddr_in*>(&storage);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
      ::close(fd);
      return util::Status::InvalidArgument(
          "tcp host must be a numeric IPv4 address: " + host);
    }
    addr_len = sizeof(struct sockaddr_in);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  } else {
    if (address.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return util::Status::InvalidArgument(
          "unix socket path too long: " + address);
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return util::Status::IOError("socket(AF_UNIX): " +
                                   std::string(std::strerror(errno)));
    }
    auto* addr = reinterpret_cast<struct sockaddr_un*>(&storage);
    addr->sun_family = AF_UNIX;
    std::strncpy(addr->sun_path, address.c_str(),
                 sizeof(addr->sun_path) - 1);
    addr_len = sizeof(struct sockaddr_un);
  }
  {
    util::Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      ::close(fd);
      return nb;
    }
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&storage),
                addr_len) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return util::Status::IOError("connect(" + address + "): " + err);
    }
    // Async connect: wait for writability, then read the verdict.
    while (true) {
      const int wait_ms = RemainingMs(deadline);
      if (wait_ms == 0) {
        ::close(fd);
        return util::Status::DeadlineExceeded("connect(" + address +
                                              ") deadline");
      }
      struct pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        return util::Status::IOError("poll(connect): " + err);
      }
      if (rc > 0) break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      ::close(fd);
      return util::Status::IOError(
          "connect(" + address +
          "): " + std::strerror(so_error != 0 ? so_error : errno));
    }
  }
  return fd;
}

std::chrono::milliseconds BackoffDelay(int attempt,
                                       std::chrono::milliseconds initial,
                                       std::chrono::milliseconds cap,
                                       double jitter_uniform) {
  const double base_ms =
      std::min<double>(static_cast<double>(cap.count()),
                       static_cast<double>(initial.count()) *
                           std::pow(2.0, std::max(attempt, 0)));
  // Jitter in [0.5, 1.0)x — SubmitWithRetry's discipline: decorrelated
  // clients do not re-collide on the reconnect stampede.
  const double jittered = base_ms * (0.5 + 0.5 * jitter_uniform);
  return std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(jittered)));
}

}  // namespace llm::train::dist
