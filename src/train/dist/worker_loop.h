// The transport-agnostic data-parallel worker step loop.
//
// One rank's whole life — load-resume point aside — is this loop: build
// the loss on its data shard, all-reduce gradients and loss to the global
// mean, clip, apply the owned slice of the ZeRO-1 AdamW update, all-gather
// the updated parameters, and at checkpoint boundaries contribute its
// owned moment shards so rank 0 can assemble and write the full v2
// checkpoint.
//
// It is written against the Comm interface and nothing else, which is the
// load-bearing design point: the thread-backed CommHub, the in-process
// socket loopback, and a real worker process talking to the coordinator
// over a Unix socket all execute the exact same arithmetic in the exact
// same order, so "world-N over sockets is bit-exact with world-N over
// threads" holds by construction rather than by test luck. DistTrainer's
// worker threads and the dist_worker process entry point both call
// RunWorkerLoop.
//
// Checkpointing across a real process boundary forced one change from the
// original in-process design: rank 0 can no longer read peer optimizer
// shards directly, so checkpoint barrier A *is* a payload-carrying
// collective — every rank exchanges its flattened owned m-then-v moment
// slices — and rank 0 reconstructs the full "adamw" state from the
// gathered buffers. Same values, same slot names, same two collectives
// per checkpoint as before.
#ifndef TFMR_TRAIN_DIST_WORKER_LOOP_H_
#define TFMR_TRAIN_DIST_WORKER_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "train/dist/comm.h"
#include "train/dist/sharded_adamw.h"
#include "train/schedule.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::nn {
class Module;
}  // namespace llm::nn

namespace llm::train::dist {

/// Per-(seed, rank, step) data seed. Splitmix-style odd-constant mixing so
/// neighbouring (rank, step) pairs land far apart; util::Rng finishes the
/// scrambling. Replay of any (rank, step) — rollback or respawn —
/// regenerates identical batches.
uint64_t StepSeed(uint64_t seed, int rank, int64_t step);

/// Per-step view handed to the loss builder. `rng` is freshly seeded from
/// (seed, rank, step) every step, so replay after a rollback — and a
/// worker re-spawned mid-run — regenerates identical batches.
struct StepContext {
  int rank = 0;
  int world_size = 1;
  int64_t step = 0;
  util::Rng* rng = nullptr;
};

/// Creates one model replica. Called once per worker per epoch; must
/// produce identically-initialized models on every call (seed inside).
using ModelFactory = std::function<std::unique_ptr<nn::Module>()>;

/// Builds the loss for this rank's shard of the global batch at
/// ctx.step. For equal-global-batch equivalence with a single-process
/// run, derive the global batch from ctx.step and take the ctx.rank-th
/// of ctx.world_size slices.
using DistLossFn =
    std::function<core::Variable(nn::Module& model, const StepContext& ctx)>;

struct WorkerLoopOptions {
  int rank = 0;
  int world_size = 1;
  int64_t max_steps = 0;
  /// Resume point (the checkpoint's next_step).
  int64_t start_step = 0;
  float clip_norm = 0.0f;
  const LrSchedule* schedule = nullptr;
  /// Used when `schedule` is null.
  float base_lr = 1e-3f;
  uint64_t seed = 0;
  std::chrono::milliseconds collective_timeout{2000};
  int64_t checkpoint_every = 0;  // 0 = final save only
  std::string checkpoint_dir;
  int keep_last_k = 2;
  int64_t straggle_ms = 20;
  /// Worker-process mode: a fired FaultSite::kWorkerKill raises SIGKILL —
  /// the process dies for real, mid-step, exactly like an OOM kill —
  /// instead of returning a killed result the way a thread worker must.
  bool die_on_kill_fault = false;
  /// Spawn generation, stamped into every shipped telemetry unit so the
  /// coordinator's aggregator can order events across recoveries.
  int64_t epoch = 0;
  /// Ship a telemetry unit (metrics snapshot + flight delta) to the
  /// coordinator every N steps, plus once on orderly completion. 0 = off.
  /// Shipping rides Comm::ShipTelemetry: best-effort, outside the
  /// collective algebra, so it cannot perturb training arithmetic.
  int64_t telemetry_every = 0;
  /// True when this loop owns the whole process (dist_worker): telemetry
  /// captures every metric and the flight-ring delta. False for thread
  /// workers sharing the coordinator's process: capture only this rank's
  /// "dist.worker.<r>."-prefixed metrics and no events, so shared-process
  /// state is never double-counted or misattributed across ranks.
  bool telemetry_whole_process = false;
  /// When non-empty and a kWorkerKill fault fires in die_on_kill_fault
  /// mode: atomically dump a final telemetry unit here before SIGKILL —
  /// the crash half of the coordinator's postmortem handshake.
  std::string postmortem_path;
};

struct WorkerLoopResult {
  /// OK when the loop ran to max_steps.
  util::Status status;
  /// FaultSite::kWorkerKill fired (and die_on_kill_fault was off).
  bool killed = false;
  int64_t step_reached = 0;
};

/// Non-fatal incident sink (rank 0's failed checkpoint write). May be
/// null.
using WorkerWarningFn =
    std::function<void(const std::string& kind, const std::string& detail)>;

/// Runs the step loop from options.start_step to options.max_steps.
/// `history` (rank 0 only; may be null elsewhere) receives one StepRecord
/// per step and rides into every checkpoint. `step_reached` (optional)
/// is kept current for an external monitor. `superseded` (optional) is
/// polled at the top of every step; returning true exits with kCancelled.
/// Collective wait time accumulates into the obs counter
/// "dist.comm.wait_ns". Calls comm.Finish on orderly completion.
WorkerLoopResult RunWorkerLoop(Comm& comm, nn::Module& model,
                               ShardedAdamW& opt, const DistLossFn& loss_fn,
                               const WorkerLoopOptions& options,
                               std::vector<StepRecord>* history,
                               std::atomic<int64_t>* step_reached,
                               const std::function<bool()>& superseded,
                               const WorkerWarningFn& on_warning);

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_WORKER_LOOP_H_
