#include "train/dist/sharded_adamw.h"

#include <cmath>

namespace llm::train::dist {

std::vector<int> ShardedAdamW::PartitionOwners(
    const std::vector<core::Variable>& params, int world_size) {
  std::vector<int64_t> load(static_cast<size_t>(world_size), 0);
  std::vector<int> owners;
  owners.reserve(params.size());
  for (const auto& p : params) {
    int lightest = 0;
    for (int r = 1; r < world_size; ++r) {
      if (load[static_cast<size_t>(r)] < load[static_cast<size_t>(lightest)]) {
        lightest = r;
      }
    }
    owners.push_back(lightest);
    load[static_cast<size_t>(lightest)] += p.numel();
  }
  return owners;
}

ShardedAdamW::ShardedAdamW(std::vector<core::Variable> params,
                           const AdamWOptions& options, int rank,
                           int world_size)
    : Optimizer(std::move(params), options.lr),
      options_(options),
      rank_(rank),
      world_size_(world_size) {
  LLM_CHECK(rank >= 0 && rank < world_size);
  owners_ = PartitionOwners(params_, world_size);
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    if (owners_[i] == rank_) {
      m_[i] = core::Tensor(params_[i].shape());
      v_[i] = core::Tensor(params_[i].shape());
    }
  }
}

void ShardedAdamW::Step() {
  // Identical arithmetic to train::AdamW::Step (bit-exact at world=1),
  // restricted to the parameters this rank owns.
  ++step_;
  const float b1 = options_.beta1, b2 = options_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    if (owners_[i] != rank_) continue;
    core::Variable& p = params_[i];
    if (!p.has_grad()) continue;
    const core::Tensor& g = p.grad();
    core::Tensor& w = p.mutable_value();
    core::Tensor& m = m_[i];
    core::Tensor& v = v_[i];
    const bool decay = options_.weight_decay > 0.0f && w.ndim() >= 2;
    for (int64_t j = 0; j < w.numel(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      float update = mhat / (std::sqrt(vhat) + options_.eps);
      if (decay) update += options_.weight_decay * w[j];
      w[j] -= lr_ * update;
    }
  }
}

OptimizerState ShardedAdamW::ExportState() const {
  OptimizerState state{"adamw-shard", step_, {}};
  for (size_t i = 0; i < params_.size(); ++i) {
    if (owners_[i] != rank_) continue;
    state.slots.emplace_back("m/" + std::to_string(i), m_[i]);
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (owners_[i] != rank_) continue;
    state.slots.emplace_back("v/" + std::to_string(i), v_[i]);
  }
  return state;
}

util::Status ShardedAdamW::ImportState(const OptimizerState& state) {
  // Full "adamw" layout only: m/0..m/n-1 then v/0..v/n-1, as plain AdamW
  // exports and distributed checkpoints store.
  LLM_RETURN_IF_ERROR(CheckStateShape(state, "adamw", 2));
  const size_t n = params_.size();
  for (size_t i = 0; i < n; ++i) {
    if (owners_[i] != rank_) continue;
    m_[i] = state.slots[i].second;
    v_[i] = state.slots[n + i].second;
  }
  step_ = state.step;
  return util::Status::OK();
}

}  // namespace llm::train::dist
