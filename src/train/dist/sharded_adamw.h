// ShardedAdamW: ZeRO-1-style optimizer-state sharding for data-parallel
// training.
//
// Every rank holds a full replica of the parameters (data parallelism),
// but the AdamW moment tensors — which in fp32 are 2x the model size —
// are partitioned: each parameter has exactly one owner rank, chosen by a
// deterministic numel-balanced greedy partition that every rank computes
// identically. A rank allocates m/v only for the parameters it owns, so
// N-way training stores each moment once across the world instead of N
// times.
//
// Step() therefore updates only the owned parameters (using the globally
// averaged gradients, which every rank holds after the all-reduce); the
// updated values then travel to the other replicas via the parameter
// all-gather the distributed trainer runs right after Step. The update
// arithmetic is copied verbatim from train::AdamW so that a world_size=1
// shard is bit-exact with the single-process optimizer — the anchor for
// the distributed-equals-local equivalence tests.
//
// Checkpoint interop: ExportState() emits only the owned slots (type
// "adamw-shard"); the distributed trainer assembles the owned slices from
// all ranks into a full "adamw" state for the v2 checkpoint, and
// ImportState() accepts such a full state, keeping this rank's slice —
// so distributed checkpoints remain loadable by plain train::AdamW and
// vice versa.
#ifndef TFMR_TRAIN_DIST_SHARDED_ADAMW_H_
#define TFMR_TRAIN_DIST_SHARDED_ADAMW_H_

#include <vector>

#include "train/optimizer.h"

namespace llm::train::dist {

class ShardedAdamW : public Optimizer {
 public:
  ShardedAdamW(std::vector<core::Variable> params,
               const AdamWOptions& options, int rank, int world_size);

  /// AdamW update over the parameters this rank owns; other parameters
  /// are untouched (their new values arrive via the all-gather).
  void Step() override;

  /// Owned slots only, type "adamw-shard": slots m/<i> and v/<i> for each
  /// owned parameter index i, in index order.
  OptimizerState ExportState() const override;

  /// Accepts a full "adamw" state (2 slots per parameter, as written to
  /// distributed checkpoints or by plain AdamW) and keeps this rank's
  /// slice plus the step counter.
  util::Status ImportState(const OptimizerState& state) override;

  int rank() const { return rank_; }
  int world_size() const { return world_size_; }
  int64_t step_count() const { return step_; }

  /// Owner rank of parameter i.
  int owner(size_t i) const { return owners_[i]; }
  const std::vector<int>& owners() const { return owners_; }
  bool Owns(size_t i) const { return owners_[i] == rank_; }

  /// Owned moment tensors (defined only for owned indices); the trainer
  /// reads these across ranks — at a barrier — to assemble the full
  /// checkpoint state.
  const core::Tensor& m(size_t i) const { return m_[i]; }
  const core::Tensor& v(size_t i) const { return v_[i]; }

  /// Deterministic numel-balanced greedy partition: parameters in index
  /// order each go to the currently lightest rank (ties to the lowest
  /// rank). Identical on every rank by construction.
  static std::vector<int> PartitionOwners(
      const std::vector<core::Variable>& params, int world_size);

 private:
  AdamWOptions options_;
  int rank_;
  int world_size_;
  int64_t step_ = 0;
  std::vector<int> owners_;
  std::vector<core::Tensor> m_;  // allocated only at owned indices
  std::vector<core::Tensor> v_;
};

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_SHARDED_ADAMW_H_
