#include "train/dist/proc_group.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "nn/module.h"
#include "obs/flight_recorder.h"
#include "train/checkpoint.h"
#include "util/check.h"

namespace llm::train::dist {
namespace {

using obs::FlightEventType;
using obs::FlightRecorder;

std::string DescribeExit(int wstatus) {
  if (WIFSIGNALED(wstatus)) {
    return "killed by signal " + std::to_string(WTERMSIG(wstatus));
  }
  if (WIFEXITED(wstatus)) {
    return "exited with code " + std::to_string(WEXITSTATUS(wstatus));
  }
  return "stopped with wstatus " + std::to_string(wstatus);
}

/// CI hook: when TFMR_INCIDENT_DIR is set, DIST_INCIDENT lines and
/// harvested postmortems are archived there so a failing workflow can
/// upload them as artifacts after the run's scratch dirs are gone.
const char* IncidentArchiveDir() { return std::getenv("TFMR_INCIDENT_DIR"); }

}  // namespace

ProcGroupCoordinator::ProcGroupCoordinator(ProcGroupOptions options,
                                           ModelFactory factory,
                                           AdamWOptions adamw)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      adamw_(adamw) {
  LLM_CHECK_GE(options_.world_size, 1);
  LLM_CHECK(!options_.checkpoint_dir.empty());
  LLM_CHECK(!options_.worker_binary.empty());
  LLM_CHECK(factory_ != nullptr);
  pids_.assign(static_cast<size_t>(options_.world_size), -1);
  done_.assign(static_cast<size_t>(options_.world_size), false);
}

ProcGroupCoordinator::~ProcGroupCoordinator() {
  KillAllWorkers();
  if (server_) server_->Stop();
}

std::string ProcGroupCoordinator::FormatIncidents() const {
  std::ostringstream os;
  for (const DistIncident& inc : incidents_) {
    os << "  epoch " << inc.epoch << " rank " << inc.rank << " ["
       << inc.kind << "] " << inc.detail << " -> " << inc.action << "\n";
  }
  return os.str();
}

std::string ProcGroupCoordinator::PostmortemDir() const {
  return options_.postmortem_dir.empty() ? options_.checkpoint_dir
                                         : options_.postmortem_dir;
}

void ProcGroupCoordinator::HarvestPostmortems(obs::IncidentReport* report) {
  for (int r = 0; r < options_.world_size; ++r) {
    const std::string path = obs::PostmortemPath(PostmortemDir(), r);
    auto unit = obs::ReadPostmortem(path);
    if (!unit.ok()) {
      if (unit.status().code() != util::StatusCode::kNotFound) {
        // A torn or corrupt last gasp: detected, reported, never trusted.
        std::fprintf(stderr, "[dist-proc] discarding bad postmortem %s: %s\n",
                     path.c_str(), unit.status().ToString().c_str());
        std::remove(path.c_str());
      }
      continue;
    }
    telemetry_.Ingest(unit.value());
    if (r == report->rank) {
      report->postmortem_harvested = true;
      if (report->step < 0) report->step = unit.value().step;
    }
    if (const char* archive = IncidentArchiveDir()) {
      std::error_code ec;
      std::filesystem::create_directories(archive, ec);
      std::filesystem::copy_file(
          path,
          std::string(archive) + "/postmortem_e" +
              std::to_string(unit.value().epoch) + "_rank" +
              std::to_string(r) + ".tfmr",
          std::filesystem::copy_options::overwrite_existing, ec);
    }
    // Consume: a harvested dump must not masquerade as evidence for the
    // next incident.
    std::remove(path.c_str());
  }
}

void ProcGroupCoordinator::FinalizeReport(obs::IncidentReport report) {
  // The report's own marker event goes into the ring first, then the
  // coordinator's flight delta — detection, gang SIGKILL, recovery,
  // respawns, and the marker itself — is spliced into the gang timeline.
  FlightRecorder::Global().Record(FlightEventType::kIncidentReport,
                                  report.rank, report.epoch, report.recovery);
  std::vector<obs::FlightEvent> delta =
      FlightRecorder::Global().DumpSince(coord_shipped_ticket_);
  if (!delta.empty()) coord_shipped_ticket_ = delta.back().ticket + 1;
  telemetry_.IngestCoordinatorEvents(report.epoch, delta);
  report.timeline = telemetry_.Timeline(options_.incident_timeline_events);

  const std::string json = report.ToJson();
  std::fprintf(stderr, "DIST_INCIDENT %s\n", json.c_str());
  if (const char* archive = IncidentArchiveDir()) {
    std::error_code ec;
    std::filesystem::create_directories(archive, ec);
    if (std::FILE* f = std::fopen(
            (std::string(archive) + "/incidents.jsonl").c_str(), "a")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  reports_.push_back(std::move(report));
}

util::Status ProcGroupCoordinator::WriteInitialCheckpoint() {
  std::unique_ptr<nn::Module> model = factory_();
  AdamW opt(model->Parameters(), adamw_);
  TrainState state;
  state.has_optimizer = true;
  state.optimizer = opt.ExportState();
  state.has_trainer = true;
  state.next_step = 0;
  state.lr_scale = 1.0f;
  const std::string path =
      options_.checkpoint_dir + "/" + CheckpointFileName(0);
  LLM_RETURN_IF_ERROR(SaveCheckpoint(*model, path, &state));
  FlightRecorder::Global().Record(FlightEventType::kCheckpointSaved, 0, 0);
  return util::Status::OK();
}

util::Status ProcGroupCoordinator::PickCheckpoint(std::string* path) {
  while (true) {
    auto latest = LatestCheckpoint(options_.checkpoint_dir);
    if (!latest.ok()) {
      return util::Status::Internal(
          "no loadable checkpoint to (re)start from: " +
          latest.status().ToString() + "; incident log:\n" +
          FormatIncidents());
    }
    util::Status valid = ValidateCheckpoint(latest.value());
    if (valid.ok()) {
      *path = latest.value();
      return util::Status::OK();
    }
    std::fprintf(stderr, "[dist-proc] discarding corrupt checkpoint %s: %s\n",
                 latest.value().c_str(), valid.ToString().c_str());
    std::remove(latest.value().c_str());
  }
}

util::Status ProcGroupCoordinator::SpawnWorkers(const std::string& ckpt_path,
                                                int64_t epoch) {
  for (int r = 0; r < options_.world_size; ++r) {
    // Argv is fully materialized BEFORE fork: the child must go straight
    // to execv without touching the allocator (fork duplicates only the
    // calling thread, so any lock another thread held stays locked
    // forever in the child).
    std::vector<std::string> args = {
        options_.worker_binary,
        "--rank=" + std::to_string(r),
        "--world=" + std::to_string(options_.world_size),
        "--address=" + server_->bound_address(),
        "--epoch=" + std::to_string(epoch),
        "--ckpt=" + ckpt_path,
        "--ckpt-dir=" + options_.checkpoint_dir,
        "--max-steps=" + std::to_string(options_.max_steps),
        "--checkpoint-every=" + std::to_string(options_.checkpoint_every),
        "--keep-last-k=" + std::to_string(options_.keep_last_k),
        "--seed=" + std::to_string(options_.seed),
        "--collective-timeout-ms=" +
            std::to_string(options_.collective_timeout.count()),
        "--telemetry-every=" + std::to_string(options_.telemetry_every),
        "--postmortem=" + obs::PostmortemPath(PostmortemDir(), r),
    };
    for (const std::string& extra : options_.worker_extra_args) {
      args.push_back(extra);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      return util::Status::Internal("fork failed for rank " +
                                    std::to_string(r));
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed; async-signal-safe exit only
    }
    {
      std::lock_guard<std::mutex> lock(pids_mu_);
      pids_[static_cast<size_t>(r)] = pid;
      done_[static_cast<size_t>(r)] = false;
    }
    FlightRecorder::Global().Record(FlightEventType::kProcSpawn, r,
                                    static_cast<int64_t>(pid), epoch);
  }
  return util::Status::OK();
}

void ProcGroupCoordinator::KillAllWorkers() {
  std::vector<pid_t> live;
  {
    std::lock_guard<std::mutex> lock(pids_mu_);
    for (auto& pid : pids_) {
      if (pid > 0) {
        live.push_back(pid);
        pid = -1;
      }
    }
  }
  for (pid_t pid : live) ::kill(pid, SIGKILL);
  for (pid_t pid : live) ::waitpid(pid, nullptr, 0);
}

bool ProcGroupCoordinator::KillRank(int rank) {
  std::lock_guard<std::mutex> lock(pids_mu_);
  const pid_t pid = pids_[static_cast<size_t>(rank)];
  if (pid <= 0) return false;
  ::kill(pid, SIGKILL);
  return true;  // the monitor reaps it and drives the recovery
}

bool ProcGroupCoordinator::MonitorGang(util::Status* verdict,
                                       int64_t epoch) {
  const int world = options_.world_size;
  const auto start = std::chrono::steady_clock::now();
  std::vector<int64_t> last_hb(static_cast<size_t>(world), -1);
  std::vector<std::chrono::steady_clock::time_point> last_beat(
      static_cast<size_t>(world), start);

  while (true) {
    std::this_thread::sleep_for(options_.monitor_poll);
    const auto now = std::chrono::steady_clock::now();

    DistIncident incident;
    incident.epoch = static_cast<int>(epoch);
    incident.step = -1;  // a process's step lives in its own memory
    obs::IncidentReport report;
    report.epoch = epoch;
    bool have_incident = false;
    int done = 0;

    {
      std::lock_guard<std::mutex> lock(pids_mu_);
      for (int r = 0; r < world; ++r) {
        pid_t& pid = pids_[static_cast<size_t>(r)];
        if (done_[static_cast<size_t>(r)]) {
          ++done;
          continue;
        }
        if (pid <= 0) continue;
        int wstatus = 0;
        const pid_t reaped = ::waitpid(pid, &wstatus, WNOHANG);
        if (reaped != pid) continue;
        pid = -1;
        if (WIFEXITED(wstatus) &&
            WEXITSTATUS(wstatus) == kWorkerExitDone) {
          done_[static_cast<size_t>(r)] = true;
          ++done;
          continue;
        }
        if (!have_incident) {
          have_incident = true;
          incident.rank = r;
          incident.kind =
              WIFSIGNALED(wstatus) ? "worker-death" : "worker-exit";
          incident.detail = DescribeExit(wstatus);
          report.exit_code =
              WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
          report.term_signal =
              WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : -1;
          FlightRecorder::Global().Record(FlightEventType::kWorkerDeath, r,
                                          server_->HeartbeatCount(r),
                                          /*reason=*/0);
        }
      }
    }

    if (!have_incident) {
      // Silent stall: the process is alive but its heartbeat frames
      // stopped arriving.
      for (int r = 0; r < world && !have_incident; ++r) {
        bool live;
        {
          std::lock_guard<std::mutex> lock(pids_mu_);
          live = pids_[static_cast<size_t>(r)] > 0 &&
                 !done_[static_cast<size_t>(r)];
        }
        if (!live) continue;
        const int64_t hb = server_->HeartbeatCount(r);
        if (hb != last_hb[static_cast<size_t>(r)]) {
          last_hb[static_cast<size_t>(r)] = hb;
          last_beat[static_cast<size_t>(r)] = now;
        } else if (now - last_beat[static_cast<size_t>(r)] >
                   options_.heartbeat_timeout) {
          have_incident = true;
          incident.rank = r;
          incident.kind = "worker-stall";
          incident.detail =
              "heartbeat flat for > " +
              std::to_string(options_.heartbeat_timeout.count()) + "ms";
          FlightRecorder::Global().Record(FlightEventType::kWorkerDeath, r,
                                          hb, /*reason=*/1);
        }
      }
    }

    if (!have_incident) {
      // Blind-spot fast path: a live, unfinished rank whose transport
      // connection has been dirtily down past the grace period.
      for (int r : server_->RanksDisconnectedOver(options_.disconnect_grace)) {
        bool live;
        {
          std::lock_guard<std::mutex> lock(pids_mu_);
          live = pids_[static_cast<size_t>(r)] > 0 &&
                 !done_[static_cast<size_t>(r)];
        }
        if (!live) continue;
        have_incident = true;
        incident.rank = r;
        incident.kind = "transport-disconnect";
        incident.detail =
            "transport connection down > " +
            std::to_string(options_.disconnect_grace.count()) + "ms";
        FlightRecorder::Global().Record(FlightEventType::kWorkerDeath, r,
                                        server_->HeartbeatCount(r),
                                        /*reason=*/2);
        break;
      }
    }

    if (!have_incident) {
      if (done == world) {
        *verdict = util::Status::OK();
        return true;
      }
      continue;
    }

    report.rank = incident.rank;
    report.kind = incident.kind;
    report.detail = incident.detail;
    report.step = telemetry_.RankStep(incident.rank);

    if (recoveries_ >= options_.max_recoveries) {
      incident.action = "none (recovery budget exhausted)";
      incidents_.push_back(incident);
      KillAllWorkers();
      // Terminal: no respawn to wait for — harvest and finalize now.
      report.action = incident.action;
      report.recovery = recoveries_;
      HarvestPostmortems(&report);
      FinalizeReport(std::move(report));
      *verdict = util::Status::Internal(
          "proc-group run failed after " + std::to_string(recoveries_) +
          " recoveries; incident log:\n" + FormatIncidents());
      return true;
    }
    ++recoveries_;
    incident.action = "SIGKILL gang, respawn from latest checkpoint";
    std::fprintf(stderr, "[dist-proc] epoch %lld incident [%s] rank %d: %s\n",
                 static_cast<long long>(epoch), incident.kind.c_str(),
                 incident.rank, incident.detail.c_str());
    report.action = incident.action;
    report.recovery = recoveries_;
    incidents_.push_back(std::move(incident));
    KillAllWorkers();
    // Harvest now — the victim's last-gasp dump is on disk — but finalize
    // only after Run() has respawned the gang, so the report's merged
    // timeline interleaves the victim's final events with the
    // coordinator's detection, recovery, and respawn events.
    HarvestPostmortems(&report);
    pending_ = std::move(report);
    pending_report_ = true;
    return false;
  }
}

util::Status ProcGroupCoordinator::Run() {
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create checkpoint dir " +
                                 options_.checkpoint_dir + ": " +
                                 ec.message());
  }
  if (!LatestCheckpoint(options_.checkpoint_dir).ok()) {
    LLM_RETURN_IF_ERROR(WriteInitialCheckpoint());
  }
  if (!server_) {
    const std::string address = options_.socket_address.empty()
                                    ? options_.checkpoint_dir + "/comm.sock"
                                    : options_.socket_address;
    server_ = std::make_unique<SocketServer>(options_.world_size, address);
    LLM_RETURN_IF_ERROR(server_->Start());
    server_->SetTelemetrySink(
        [this](int rank, const std::vector<uint8_t>& blob) {
          auto unit = obs::DecodeRankTelemetry(blob);
          // A corrupt unit costs one snapshot, never the run.
          if (unit.ok()) telemetry_.Ingest(unit.value(), blob.size());
          (void)rank;
        });
  }

  int64_t epoch = 0;
  while (true) {
    std::string ckpt;
    LLM_RETURN_IF_ERROR(PickCheckpoint(&ckpt));
    server_->Reset(epoch);
    if (epoch > 0) {
      FlightRecorder::Global().Record(FlightEventType::kDistRecovery,
                                      static_cast<int32_t>(epoch),
                                      /*resume_step=*/-1, recoveries_);
      std::fprintf(stderr,
                   "[dist-proc] recovery %d: epoch %lld respawning %d "
                   "workers from %s\n",
                   recoveries_, static_cast<long long>(epoch),
                   options_.world_size, ckpt.c_str());
    }
    LLM_RETURN_IF_ERROR(SpawnWorkers(ckpt, epoch));
    if (pending_report_) {
      // The respawn is done: the coordinator's kDistRecovery + kProcSpawn
      // events exist, so the previous incident's report can carry them.
      pending_report_ = false;
      FinalizeReport(std::move(pending_));
      pending_ = obs::IncidentReport{};
    }
    util::Status verdict;
    if (MonitorGang(&verdict, epoch)) return verdict;
    ++epoch;
  }
}

}  // namespace llm::train::dist
