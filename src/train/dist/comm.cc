#include "train/dist/comm.h"

#include <cstring>

#include "obs/flight_recorder.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault.h"

namespace llm::train::dist {

CommHub::CommHub(int world_size)
    : world_size_(world_size),
      heartbeats_(new std::atomic<int64_t>[static_cast<size_t>(world_size)]) {
  LLM_CHECK_GE(world_size, 1);
  for (int r = 0; r < world_size_; ++r) {
    heartbeats_[r].store(0, std::memory_order_relaxed);
  }
}

void CommHub::Heartbeat(int rank) {
  heartbeats_[rank].fetch_add(1, std::memory_order_relaxed);
}

int64_t CommHub::HeartbeatCount(int rank) const {
  return heartbeats_[rank].load(std::memory_order_relaxed);
}

void CommHub::SetTelemetrySink(TelemetrySink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  telemetry_sink_ = std::move(sink);
}

void CommHub::ShipTelemetry(int rank, const std::vector<uint8_t>& blob) {
  TelemetrySink sink;
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    sink = telemetry_sink_;
  }
  // Invoked outside the lock: the sink (typically an aggregator ingest)
  // may itself take locks, and a slow sink must not serialize shippers.
  if (sink) sink(rank, blob);
}

util::StatusOr<std::vector<std::vector<float>>> CommHub::Exchange(
    int rank, int64_t seq, std::vector<float> data,
    std::chrono::milliseconds timeout) {
  LLM_CHECK(rank >= 0 && rank < world_size_);
  // Fault sites fire outside the hub lock: the injector's fire listener
  // (the obs bridge) must be free to record without lock nesting.
  const bool drop = util::MaybeInjectFault(util::FaultSite::kCommDrop);
  const bool corrupt = util::MaybeInjectFault(util::FaultSite::kCommCorrupt);
  // Checksum the payload as handed to the transport; corruption below
  // models a transport-level bit flip the checksum must catch.
  const uint32_t crc =
      util::Crc32(data.data(), data.size() * sizeof(float));
  if (corrupt && !data.empty()) {
    uint32_t bits;
    std::memcpy(&bits, &data[data.size() / 2], sizeof(bits));
    bits ^= 1u << 12;
    std::memcpy(&data[data.size() / 2], &bits, sizeof(bits));
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) {
    return util::Status::Cancelled("collective aborted (epoch teardown)");
  }
  Round& round = rounds_[seq];
  if (round.contrib.empty()) {
    round.contrib.resize(static_cast<size_t>(world_size_));
    round.crc.resize(static_cast<size_t>(world_size_), 0);
    round.present.resize(static_cast<size_t>(world_size_), false);
  }
  if (!drop) {
    LLM_CHECK(!round.present[static_cast<size_t>(rank)])
        << "rank " << rank << " contributed twice to collective " << seq;
    round.contrib[static_cast<size_t>(rank)] = std::move(data);
    round.crc[static_cast<size_t>(rank)] = crc;
    round.present[static_cast<size_t>(rank)] = true;
    if (++round.num_present == world_size_) cv_.notify_all();
  }

  const bool arrived = cv_.wait_for(lock, timeout, [&] {
    return round.num_present == world_size_ || round.poisoned || aborted_;
  });
  if (aborted_ || round.poisoned) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kCollectiveAbort, rank, seq, /*reason=*/2);
    return util::Status::Cancelled(
        "collective " + std::to_string(seq) + " aborted at rank " +
        std::to_string(rank));
  }
  if (!arrived) {
    // First waiter to expire poisons the round so every other participant
    // fails fast instead of serving out its own full timeout.
    round.poisoned = true;
    cv_.notify_all();
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kCollectiveAbort, rank, seq, /*reason=*/0);
    return util::Status::DeadlineExceeded(
        "collective " + std::to_string(seq) + " timed out at rank " +
        std::to_string(rank) + " (" +
        std::to_string(round.num_present) + "/" +
        std::to_string(world_size_) + " ranks arrived)");
  }

  // Verify every contribution against its deposit-time checksum. All
  // ranks see the same buffers, so all reach the same verdict.
  for (int r = 0; r < world_size_; ++r) {
    const auto& buf = round.contrib[static_cast<size_t>(r)];
    if (util::Crc32(buf.data(), buf.size() * sizeof(float)) !=
        round.crc[static_cast<size_t>(r)]) {
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kCollectiveAbort, rank, seq, /*reason=*/1);
      return util::Status::Internal(
          "collective " + std::to_string(seq) +
          ": checksum mismatch in rank " + std::to_string(r) +
          "'s contribution (corrupt transport)");
    }
  }

  std::vector<std::vector<float>> result = round.contrib;
  if (++round.num_done == world_size_) rounds_.erase(seq);
  return result;
}

util::Status Comm::Barrier(int rank, int64_t seq,
                           std::chrono::milliseconds timeout) {
  return Exchange(rank, seq, {}, timeout).status();
}

util::Status Comm::AllReduceMean(int rank, int64_t seq,
                                 std::vector<float>* data,
                                 std::chrono::milliseconds timeout) {
  const int world = world_size();
  auto gathered = Exchange(rank, seq, *data, timeout);
  LLM_RETURN_IF_ERROR(gathered.status());
  const auto& bufs = gathered.value();
  const size_t n = data->size();
  for (int r = 0; r < world; ++r) {
    LLM_CHECK_EQ(bufs[static_cast<size_t>(r)].size(), n)
        << "AllReduceMean buffer size mismatch at rank " << r;
  }
  const float inv = 1.0f / static_cast<float>(world);
  for (size_t j = 0; j < n; ++j) {
    // Rank-ordered summation: every rank computes identical bits.
    float sum = 0.0f;
    for (int r = 0; r < world; ++r) {
      sum += bufs[static_cast<size_t>(r)][j];
    }
    (*data)[j] = sum * inv;
  }
  return util::Status::OK();
}

void CommHub::AbortAll() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  cv_.notify_all();
}

void CommHub::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rounds_.clear();
  aborted_ = false;
}

}  // namespace llm::train::dist
