// Wire protocol for the socket-backed collective transport.
//
// Everything that crosses a process boundary is a length-prefixed,
// CRC32-framed message with a fixed 44-byte header:
//
//   u32 magic  u16 version  u16 type  i32 rank  i32 status
//   i64 epoch  i64 seq  u32 payload_len  u32 payload_crc  u32 header_crc
//
// The header carries its own CRC (over the first 40 bytes) so a torn or
// desynchronized stream is detected at the frame boundary, and the
// payload carries a separate CRC computed by the sender *before* the
// bytes hit the transport — a bit flipped in flight (or by the
// kSockCorruptFrame fault, which models exactly that) fails verification
// at the receiver and surfaces as a status, never as silently wrong
// gradients. The epoch stamp on every frame is the fencing substrate: a
// receiver drops — and answers with a fence — any frame from a stale
// spawn generation, so a worker that survived a recovery it should have
// died in cannot corrupt a live round.
//
// All IO here is deadline-bounded: sockets run non-blocking and every
// partial read/write waits in poll() against the caller's absolute
// deadline, so no syscall can park a worker past its collective timeout.
//
// Fault sites (fired by the sending side, in SendFrame):
//   kSockDrop          the frame is silently never written
//   kSockCorruptFrame  one payload bit flips after the CRC was taken
//   kSockStallWrite    the sender sleeps before writing (straggler wire)
//   kSockDisconnect    the connection closes instead of sending
#ifndef TFMR_TRAIN_DIST_WIRE_H_
#define TFMR_TRAIN_DIST_WIRE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace llm::train::dist {

using SteadyClock = std::chrono::steady_clock;

/// Frame types. Keep in sync with FrameTypeName().
enum class FrameType : uint16_t {
  kHello = 1,         // client -> server: rank announces itself + epoch
  kHelloAck = 2,      // server -> client: registration accepted
  kContribution = 3,  // client -> server: Exchange payload (floats)
  kResult = 4,        // server -> client: gathered round (EncodeGather)
  kError = 5,         // server -> client: round failed; status in header
  kHeartbeat = 6,     // client -> server: liveness tick
  kPoison = 7,        // client -> server: my wait on `seq` expired
  kFenced = 8,        // server -> client: your epoch is stale; go away
  kAbort = 9,         // server -> client: epoch torn down
  kGoodbye = 10,      // client -> server: orderly exit (loop completed)
  kTelemetry = 11,    // client -> server: encoded obs::RankTelemetry blob
                      //   (opaque to the wire; best-effort, like
                      //   heartbeats — a dropped unit costs visibility,
                      //   never correctness)
};

const char* FrameTypeName(FrameType type);

inline constexpr uint32_t kWireMagic = 0x54464D57u;  // "TFMW"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 44;
/// Sanity bound; anything larger is treated as a corrupt stream.
inline constexpr uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

struct Frame {
  FrameType type = FrameType::kHello;
  int32_t rank = -1;
  /// For kError: the util::StatusCode the round failed with. Otherwise 0.
  int32_t status = 0;
  int64_t epoch = 0;
  int64_t seq = 0;
  std::vector<uint8_t> payload;
  /// Set by ReadFrame: false when the framing was intact but the payload
  /// failed its CRC — i.e. corruption in transport, not a desynced
  /// stream. The connection is still usable; the *round* is not.
  bool payload_ok = true;
};

// ---------------------------------------------------------------------------
// Frame IO. `fd` must be a non-blocking stream socket.
// ---------------------------------------------------------------------------

/// Writes one frame, honoring `deadline` across partial writes. Injects
/// the kSock* fault sites (see header comment); a fired kSockDrop returns
/// OK without writing, a fired kSockDisconnect shuts the socket down and
/// returns kUnavailable-style IOError.
util::Status SendFrame(int fd, const Frame& frame,
                       SteadyClock::time_point deadline);

/// Reads one frame, honoring `deadline` across partial reads. Returns
/// kDeadlineExceeded when the deadline expires mid-frame, kIOError on a
/// closed/reset connection, and kInternal on a bad magic, header CRC, or
/// oversized payload (the stream is desynced — the caller must drop the
/// connection). A payload-CRC mismatch with intact framing is NOT an
/// error return: the frame comes back with payload_ok == false so the
/// receiver can fail the round (kInternal to every rank) while keeping
/// the connection.
util::StatusOr<Frame> ReadFrame(int fd, SteadyClock::time_point deadline);

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

/// Float vector <-> bytes (little-endian memcpy; every box we run on is
/// little-endian, asserted at connect time by the hello exchange).
std::vector<uint8_t> EncodeFloats(const std::vector<float>& values);
std::vector<float> DecodeFloats(const std::vector<uint8_t>& bytes);

/// Gathered round <-> bytes: u32 count, u32 len[count] (floats), then the
/// concatenated buffers. Rank buffers may have different lengths (the
/// parameter all-gather does).
std::vector<uint8_t> EncodeGather(
    const std::vector<std::vector<float>>& bufs);
util::StatusOr<std::vector<std::vector<float>>> DecodeGather(
    const std::vector<uint8_t>& bytes);

// ---------------------------------------------------------------------------
// Connection establishment. `address` is either a filesystem path (a
// Unix-domain socket) or "tcp://HOST:PORT" (TCP with TCP_NODELAY).
// ---------------------------------------------------------------------------

/// Binds + listens. For Unix sockets, unlinks a stale path first; for
/// "tcp://HOST:0", binds an ephemeral port. On success `*bound_address`
/// (if non-null) receives the resolved address (with the real port) that
/// clients should connect to. The returned fd is non-blocking.
util::StatusOr<int> ListenOn(const std::string& address,
                             std::string* bound_address);

/// Connects with a deadline; the returned fd is non-blocking.
util::StatusOr<int> ConnectTo(const std::string& address,
                              SteadyClock::time_point deadline);

/// Capped exponential backoff delay for reconnect attempt `attempt`
/// (0-based), jittered into [0.5, 1.0)x by `jitter` — the same discipline
/// as serve's SubmitWithRetry, so decorrelated clients do not re-collide.
std::chrono::milliseconds BackoffDelay(int attempt,
                                       std::chrono::milliseconds initial,
                                       std::chrono::milliseconds cap,
                                       double jitter_uniform);

}  // namespace llm::train::dist

#endif  // TFMR_TRAIN_DIST_WIRE_H_
