#include "text/persistence.h"

#include <fstream>

namespace llm::text {

util::Status SaveVocab(const Vocab& vocab, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot open for write: " + path);
  for (int64_t id = 0; id < vocab.size(); ++id) {
    const std::string& token = vocab.TokenOf(id);
    if (token.find('\n') != std::string::npos) {
      return util::Status::InvalidArgument("token contains newline");
    }
    out << token << '\n';
  }
  if (!out) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::StatusOr<Vocab> LoadVocab(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open for read: " + path);
  Vocab vocab;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const int64_t id = vocab.AddToken(line);
    if (id != line_no - 1) {
      return util::Status::InvalidArgument(
          "duplicate token at line " + std::to_string(line_no));
    }
  }
  if (vocab.size() == 0) {
    return util::Status::InvalidArgument("empty vocabulary file: " + path);
  }
  return vocab;
}

util::Status SaveBpeMerges(const Bpe& bpe, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot open for write: " + path);
  for (const auto& [left, right] : bpe.merges()) {
    out << left << ' ' << right << '\n';
  }
  if (!out) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

util::StatusOr<Bpe> LoadBpeMerges(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open for read: " + path);
  std::vector<std::pair<std::string, std::string>> merges;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size() ||
        line.find(' ', space + 1) != std::string::npos) {
      return util::Status::InvalidArgument(
          "malformed merge at line " + std::to_string(line_no) + ": " +
          line);
    }
    merges.emplace_back(line.substr(0, space), line.substr(space + 1));
  }
  return Bpe::FromMerges(std::move(merges));
}

}  // namespace llm::text
