// Byte-pair encoding: the sub-word tokenization of §5 ("supersymmetrization"
// -> "super" + "symmetr" + "ization"). Classic Sennrich et al. algorithm:
// start from characters, repeatedly merge the most frequent adjacent symbol
// pair across the training corpus.
#ifndef TFMR_TEXT_BPE_H_
#define TFMR_TEXT_BPE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace llm::text {

class Bpe {
 public:
  /// Marks the end of a word so merges cannot cross word boundaries and
  /// decoding is unambiguous.
  static constexpr const char* kEndOfWord = "</w>";

  /// Learns up to `num_merges` merges from the words of `corpus`
  /// (whitespace-tokenized internally). Resets any previous state.
  void Train(const std::string& corpus, int num_merges);

  /// Reconstructs an encoder from a learned merge list (highest priority
  /// first) — the deserialization path of text/persistence.h.
  static Bpe FromMerges(
      std::vector<std::pair<std::string, std::string>> merges);

  /// Encodes one word as a sequence of learned sub-word symbols (the last
  /// symbol carries the kEndOfWord suffix).
  std::vector<std::string> EncodeWord(const std::string& word) const;

  /// Whitespace-splits `text` and concatenates per-word encodings.
  std::vector<std::string> Encode(const std::string& text) const;

  /// Inverse of Encode (joins symbols; kEndOfWord becomes a space).
  std::string Decode(const std::vector<std::string>& symbols) const;

  /// Learned merges, highest-priority first.
  const std::vector<std::pair<std::string, std::string>>& merges() const {
    return merges_;
  }

  /// Distinct symbols producible by the encoder (characters + merge
  /// results, with end-of-word variants).
  std::vector<std::string> SymbolInventory() const;

 private:
  std::vector<std::pair<std::string, std::string>> merges_;
  /// Merge -> rank (lower = applied first).
  std::map<std::pair<std::string, std::string>, int> rank_;
};

}  // namespace llm::text

#endif  // TFMR_TEXT_BPE_H_
