#include "text/vocab.h"

namespace llm::text {

int64_t Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int64_t id = size();
  ids_.emplace(token, id);
  tokens_.push_back(token);
  return id;
}

int64_t Vocab::IdOf(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? -1 : it->second;
}

int64_t Vocab::IdOrUnk(const std::string& token, int64_t unk_id) const {
  const int64_t id = IdOf(token);
  return id >= 0 ? id : unk_id;
}

const std::string& Vocab::TokenOf(int64_t id) const {
  LLM_CHECK_GE(id, 0);
  LLM_CHECK_LT(id, size());
  return tokens_[static_cast<size_t>(id)];
}

std::vector<int64_t> Vocab::Encode(const std::vector<std::string>& tokens,
                                   bool grow, int64_t unk_id) {
  std::vector<int64_t> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    if (grow) {
      out.push_back(AddToken(t));
    } else {
      const int64_t id = IdOrUnk(t, unk_id);
      LLM_CHECK_GE(id, 0) << "unknown token with no unk id:" << t;
      out.push_back(id);
    }
  }
  return out;
}

util::StatusOr<std::vector<int64_t>> Vocab::TryEncode(
    const std::vector<std::string>& tokens, int64_t unk_id) const {
  std::vector<int64_t> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) {
    const int64_t id = IdOrUnk(t, unk_id);
    if (id < 0) {
      return util::Status::InvalidArgument(
          "unknown token with no unk id: '" + t + "'");
    }
    out.push_back(id);
  }
  return out;
}

std::string Vocab::Decode(const std::vector<int64_t>& ids,
                          const std::string& sep) const {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i) out += sep;
    out += TokenOf(ids[i]);
  }
  return out;
}

}  // namespace llm::text
