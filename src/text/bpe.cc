#include "text/bpe.h"

#include <algorithm>
#include <set>

#include "text/tokenizer.h"
#include "util/check.h"

namespace llm::text {

namespace {

/// A word as a symbol sequence plus its corpus frequency.
struct WordEntry {
  std::vector<std::string> symbols;
  int64_t count = 0;
};

std::vector<std::string> WordToSymbols(const std::string& word) {
  std::vector<std::string> symbols;
  for (char c : word) symbols.push_back(std::string(1, c));
  if (!symbols.empty()) symbols.back() += Bpe::kEndOfWord;
  return symbols;
}

}  // namespace

void Bpe::Train(const std::string& corpus, int num_merges) {
  merges_.clear();
  rank_.clear();

  // Word frequency table.
  std::unordered_map<std::string, int64_t> word_counts;
  for (const auto& w : WhitespaceTokenize(corpus)) ++word_counts[w];

  std::vector<WordEntry> words;
  words.reserve(word_counts.size());
  for (const auto& [w, count] : word_counts) {
    if (w.empty()) continue;
    words.push_back({WordToSymbols(w), count});
  }

  for (int merge = 0; merge < num_merges; ++merge) {
    // Count all adjacent pairs weighted by word frequency.
    std::map<std::pair<std::string, std::string>, int64_t> pair_counts;
    for (const auto& entry : words) {
      for (size_t i = 0; i + 1 < entry.symbols.size(); ++i) {
        pair_counts[{entry.symbols[i], entry.symbols[i + 1]}] += entry.count;
      }
    }
    if (pair_counts.empty()) break;
    // Most frequent pair; std::map iteration makes ties deterministic.
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // nothing left worth merging

    const auto [left, right] = best->first;
    const std::string merged = left + right;
    rank_[best->first] = merge;
    merges_.push_back(best->first);

    // Apply the merge to every word.
    for (auto& entry : words) {
      std::vector<std::string> out;
      out.reserve(entry.symbols.size());
      for (size_t i = 0; i < entry.symbols.size(); ++i) {
        if (i + 1 < entry.symbols.size() && entry.symbols[i] == left &&
            entry.symbols[i + 1] == right) {
          out.push_back(merged);
          ++i;
        } else {
          out.push_back(entry.symbols[i]);
        }
      }
      entry.symbols = std::move(out);
    }
  }
}

Bpe Bpe::FromMerges(
    std::vector<std::pair<std::string, std::string>> merges) {
  Bpe bpe;
  for (size_t i = 0; i < merges.size(); ++i) {
    bpe.rank_[merges[i]] = static_cast<int>(i);
  }
  bpe.merges_ = std::move(merges);
  return bpe;
}

std::vector<std::string> Bpe::EncodeWord(const std::string& word) const {
  std::vector<std::string> symbols = WordToSymbols(word);
  if (symbols.size() < 2) return symbols;
  // Repeatedly apply the lowest-rank applicable merge.
  for (;;) {
    int best_rank = -1;
    size_t best_pos = 0;
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = rank_.find({symbols[i], symbols[i + 1]});
      if (it != rank_.end() && (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank < 0) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<ptrdiff_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::string> Bpe::Encode(const std::string& text) const {
  std::vector<std::string> out;
  for (const auto& w : WhitespaceTokenize(text)) {
    auto symbols = EncodeWord(w);
    out.insert(out.end(), symbols.begin(), symbols.end());
  }
  return out;
}

std::string Bpe::Decode(const std::vector<std::string>& symbols) const {
  const std::string eow = kEndOfWord;
  std::string out;
  for (const auto& s : symbols) {
    if (s.size() >= eow.size() &&
        s.compare(s.size() - eow.size(), eow.size(), eow) == 0) {
      out += s.substr(0, s.size() - eow.size());
      out += ' ';
    } else {
      out += s;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> Bpe::SymbolInventory() const {
  std::set<std::string> symbols;
  for (const auto& [l, r] : merges_) {
    symbols.insert(l);
    symbols.insert(r);
    symbols.insert(l + r);
  }
  return std::vector<std::string>(symbols.begin(), symbols.end());
}

}  // namespace llm::text
