// Vocabulary: bidirectional token <-> id map (the index set W of §5).
#ifndef TFMR_TEXT_VOCAB_H_
#define TFMR_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace llm::text {

class Vocab {
 public:
  Vocab() = default;

  /// Adds a token if not present; returns its id either way.
  int64_t AddToken(const std::string& token);

  /// Id of `token`, or -1 if absent.
  int64_t IdOf(const std::string& token) const;

  /// Id of `token`, or `unk_id` if absent.
  int64_t IdOrUnk(const std::string& token, int64_t unk_id) const;

  bool Contains(const std::string& token) const { return IdOf(token) >= 0; }

  /// Token string for a valid id (aborts on out-of-range).
  const std::string& TokenOf(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  /// Encodes a token sequence, adding unseen tokens when `grow` is true,
  /// otherwise mapping them to unk_id (which must be >= 0 then).
  /// Aborts on an unknown token with no unk id — corpus-building use only;
  /// untrusted text (serving-facing prompt encoding) must go through
  /// TryEncode, which reports the bad token as a Status instead.
  std::vector<int64_t> Encode(const std::vector<std::string>& tokens,
                              bool grow = true, int64_t unk_id = -1);

  /// Non-growing, non-aborting encode for untrusted input: unknown tokens
  /// map to `unk_id` when it is >= 0, and return InvalidArgument (naming
  /// the offending token) when there is no unk id. Never mutates the
  /// vocabulary, never crashes the process.
  util::StatusOr<std::vector<int64_t>> TryEncode(
      const std::vector<std::string>& tokens, int64_t unk_id = -1) const;

  /// Decodes ids to tokens joined with `sep`.
  std::string Decode(const std::vector<int64_t>& ids,
                     const std::string& sep = " ") const;

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace llm::text

#endif  // TFMR_TEXT_VOCAB_H_
