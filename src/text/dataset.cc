#include "text/dataset.h"

#include "util/check.h"

namespace llm::text {

TokenDataset::TokenDataset(std::vector<int64_t> tokens, int64_t seq_len)
    : tokens_(std::move(tokens)), seq_len_(seq_len) {
  LLM_CHECK_GT(seq_len, 0);
  LLM_CHECK_GT(num_tokens(), seq_len) << "need seq_len+1 tokens";
}

void TokenDataset::SampleBatch(util::Rng* rng, int64_t batch_size,
                               std::vector<int64_t>* inputs,
                               std::vector<int64_t>* targets) const {
  LLM_CHECK(rng && inputs && targets);
  inputs->resize(static_cast<size_t>(batch_size * seq_len_));
  targets->resize(static_cast<size_t>(batch_size * seq_len_));
  const int64_t max_offset = num_tokens() - seq_len_ - 1;
  for (int64_t b = 0; b < batch_size; ++b) {
    const int64_t off =
        static_cast<int64_t>(rng->UniformInt(
            static_cast<uint64_t>(max_offset + 1)));
    for (int64_t i = 0; i < seq_len_; ++i) {
      (*inputs)[static_cast<size_t>(b * seq_len_ + i)] =
          tokens_[static_cast<size_t>(off + i)];
      (*targets)[static_cast<size_t>(b * seq_len_ + i)] =
          tokens_[static_cast<size_t>(off + i + 1)];
    }
  }
}

void TokenDataset::EvalWindows(int64_t max_windows,
                               std::vector<int64_t>* inputs,
                               std::vector<int64_t>* targets,
                               int64_t* num_windows) const {
  LLM_CHECK(inputs && targets && num_windows);
  inputs->clear();
  targets->clear();
  int64_t count = 0;
  for (int64_t off = 0; off + seq_len_ + 1 <= num_tokens() &&
                        count < max_windows;
       off += seq_len_) {
    for (int64_t i = 0; i < seq_len_; ++i) {
      inputs->push_back(tokens_[static_cast<size_t>(off + i)]);
      targets->push_back(tokens_[static_cast<size_t>(off + i + 1)]);
    }
    ++count;
  }
  *num_windows = count;
  LLM_CHECK_GT(count, 0);
}

std::pair<std::vector<int64_t>, std::vector<int64_t>> SplitTokens(
    const std::vector<int64_t>& tokens, double test_fraction) {
  LLM_CHECK_GE(test_fraction, 0.0);
  LLM_CHECK_LT(test_fraction, 1.0);
  const auto n = static_cast<int64_t>(tokens.size());
  const int64_t test_n = static_cast<int64_t>(n * test_fraction);
  const int64_t train_n = n - test_n;
  return {std::vector<int64_t>(tokens.begin(), tokens.begin() + train_n),
          std::vector<int64_t>(tokens.begin() + train_n, tokens.end())};
}

}  // namespace llm::text
