#include "text/tokenizer.h"

#include <cctype>

namespace llm::text {

std::vector<std::string> WhitespaceTokenize(const std::string& text,
                                            bool split_punctuation,
                                            bool lowercase) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    char c = lowercase ? static_cast<char>(std::tolower(
                             static_cast<unsigned char>(raw)))
                       : raw;
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (split_punctuation &&
               std::ispunct(static_cast<unsigned char>(c))) {
      flush();
      out.push_back(std::string(1, c));
    } else {
      current += c;
    }
  }
  flush();
  return out;
}

std::vector<std::string> CharTokenize(const std::string& text) {
  std::vector<std::string> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(std::string(1, c));
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace llm::text
