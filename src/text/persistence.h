// Persistence for text-pipeline artifacts: vocabularies and learned BPE
// merge tables, in line-oriented text formats (a production tokenizer is
// trained once and shipped; see the §3 footnote on consistent
// tokenization of the corpus).
#ifndef TFMR_TEXT_PERSISTENCE_H_
#define TFMR_TEXT_PERSISTENCE_H_

#include <string>

#include "text/bpe.h"
#include "text/vocab.h"
#include "util/status.h"

namespace llm::text {

/// One token per line, in id order. Tokens must not contain newlines.
util::Status SaveVocab(const Vocab& vocab, const std::string& path);

/// Loads a vocabulary saved by SaveVocab (ids are line numbers).
util::StatusOr<Vocab> LoadVocab(const std::string& path);

/// "left right" per line, highest-priority merge first (the standard
/// merges.txt format).
util::Status SaveBpeMerges(const Bpe& bpe, const std::string& path);

/// Reconstructs a Bpe encoder from a merges file (ranks = line order).
util::StatusOr<Bpe> LoadBpeMerges(const std::string& path);

}  // namespace llm::text

#endif  // TFMR_TEXT_PERSISTENCE_H_
