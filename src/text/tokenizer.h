// Tokenizers: whitespace and character-level splitting (the "first step in
// LLM processing" of §5). Sub-word BPE lives in bpe.h.
#ifndef TFMR_TEXT_TOKENIZER_H_
#define TFMR_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

namespace llm::text {

/// Splits on runs of whitespace. When `split_punctuation` is true,
/// punctuation characters become their own tokens ("cat." -> "cat", ".").
std::vector<std::string> WhitespaceTokenize(const std::string& text,
                                            bool split_punctuation = false,
                                            bool lowercase = false);

/// One token per byte-character.
std::vector<std::string> CharTokenize(const std::string& text);

/// Joins tokens with single spaces (inverse of WhitespaceTokenize up to
/// whitespace normalization).
std::string JoinTokens(const std::vector<std::string>& tokens);

}  // namespace llm::text

#endif  // TFMR_TEXT_TOKENIZER_H_
