// TokenDataset: sliding-window batching over an encoded token stream for
// next-token prediction (the training objective, Eq. 3).
#ifndef TFMR_TEXT_DATASET_H_
#define TFMR_TEXT_DATASET_H_

#include <utility>
#include <vector>

#include "util/rng.h"

namespace llm::text {

class TokenDataset {
 public:
  /// seq_len is the model window length T. Requires at least seq_len + 1
  /// tokens (input + shifted target).
  TokenDataset(std::vector<int64_t> tokens, int64_t seq_len);

  /// Fills `inputs`/`targets` (row-major [B, seq_len]) with B windows
  /// starting at uniform random offsets. targets[i] = tokens[offset+i+1].
  void SampleBatch(util::Rng* rng, int64_t batch_size,
                   std::vector<int64_t>* inputs,
                   std::vector<int64_t>* targets) const;

  /// Deterministic evaluation windows tiling the stream (non-overlapping),
  /// at most `max_windows` of them.
  void EvalWindows(int64_t max_windows, std::vector<int64_t>* inputs,
                   std::vector<int64_t>* targets, int64_t* num_windows) const;

  int64_t num_tokens() const { return static_cast<int64_t>(tokens_.size()); }
  int64_t seq_len() const { return seq_len_; }
  const std::vector<int64_t>& tokens() const { return tokens_; }

 private:
  std::vector<int64_t> tokens_;
  int64_t seq_len_;
};

/// Splits a token stream into train/test prefix+suffix; test_fraction of
/// the tokens (at the end) go to the second element.
std::pair<std::vector<int64_t>, std::vector<int64_t>> SplitTokens(
    const std::vector<int64_t>& tokens, double test_fraction);

}  // namespace llm::text

#endif  // TFMR_TEXT_DATASET_H_
