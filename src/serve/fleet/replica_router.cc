#include "serve/fleet/replica_router.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "util/check.h"
#include "util/fault.h"

namespace llm::serve {

namespace {

bool FinishedOk(const RequestResult& result) {
  return result.status.ok() &&
         (result.reason == FinishReason::kStop ||
          result.reason == FinishReason::kLength ||
          result.reason == FinishReason::kWindow);
}

}  // namespace

const char* ReplicaPhaseName(ReplicaPhase phase) {
  switch (phase) {
    case ReplicaPhase::kActive: return "active";
    case ReplicaPhase::kReloading: return "reloading";
    case ReplicaPhase::kDead: return "dead";
  }
  return "unknown";
}

ReplicaRouter::ReplicaRouter(const nn::GPTModel& prototype,
                             const FleetOptions& options)
    : options_(options),
      phase_(static_cast<size_t>(std::max(options.num_replicas, 1))) {
  LLM_CHECK_GT(options.num_replicas, 0);
  for (int i = 0; i < options.num_replicas; ++i) {
    replicas_.push_back(
        std::make_unique<Replica>(i, prototype, options.server));
    breakers_.push_back(std::make_unique<CircuitBreaker>(options.breaker, i));
    phase_[static_cast<size_t>(i)].store(
        static_cast<int>(ReplicaPhase::kActive), std::memory_order_relaxed);
  }
}

ReplicaRouter::~ReplicaRouter() { Shutdown(); }

void ReplicaRouter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  for (auto& replica : replicas_) replica->Start();
  pump_thread_ = std::thread(&ReplicaRouter::PumpMain, this);
}

bool ReplicaRouter::ReplicaEligibleLocked(int i) const {
  const auto& replica = replicas_[static_cast<size_t>(i)];
  if (replica->dead()) return false;
  if (phase_[static_cast<size_t>(i)].load(std::memory_order_acquire) !=
      static_cast<int>(ReplicaPhase::kActive)) {
    return false;
  }
  return replica->server()->Health() != ServerHealth::kDraining;
}

util::Status ReplicaRouter::DispatchLocked(
    const std::shared_ptr<FleetRequest>& freq, bool is_hedge,
    std::chrono::steady_clock::time_point now) {
  GenerateRequest inner = freq->request;
  if (freq->deadline != std::chrono::steady_clock::time_point::max()) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(freq->deadline -
                                                              now);
    if (remaining.count() <= 0) {
      return util::Status::DeadlineExceeded(
          "deadline expired before dispatch");
    }
    // Failover/hedge attempts get the request's REMAINING budget, not a
    // fresh one — the client's deadline is absolute.
    inner.timeout = remaining;
  }

  // Candidates: in rotation and not already hosting an attempt of this
  // request (a hedge on the same replica would prove nothing).
  struct Candidate {
    int index;
    int health_rank;  // 0 = healthy, 1 = degraded
    int64_t load;
  };
  std::vector<Candidate> candidates;
  for (int i = 0; i < num_replicas(); ++i) {
    if (!ReplicaEligibleLocked(i)) continue;
    bool taken = false;
    for (const Attempt& a : freq->attempts) taken |= (a.replica == i);
    if (taken) continue;
    auto server = replicas_[static_cast<size_t>(i)]->server();
    candidates.push_back(
        {i, server->Health() == ServerHealth::kHealthy ? 0 : 1,
         server->ApproxLoad()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.health_rank != b.health_rank)
                return a.health_rank < b.health_rank;
              if (a.load != b.load) return a.load < b.load;
              return a.index < b.index;
            });

  util::Status last = util::Status::Internal("no eligible replica");
  for (const Candidate& c : candidates) {
    CircuitBreaker* breaker = breakers_[static_cast<size_t>(c.index)].get();
    if (!breaker->Allow(now)) {
      if (freq->trace) {
        freq->trace->Event("breaker_open", obs::Trace::kRootSpan, c.index);
      }
      last = util::Status::ResourceExhausted(
          "circuit breaker open on replica " + std::to_string(c.index));
      continue;
    }
    if (util::MaybeInjectFault(util::FaultSite::kReplicaDispatch)) {
      breaker->RecordFailure(now);
      if (freq->trace) {
        freq->trace->Event("dispatch_fault", obs::Trace::kRootSpan, c.index,
                           "injected dispatch failure");
      }
      last = util::Status::Internal("injected dispatch failure (replica " +
                                    std::to_string(c.index) + ")");
      continue;
    }
    auto server = replicas_[static_cast<size_t>(c.index)]->server();

    // Streamed-prefix dedup: each attempt counts its own emissions; a
    // token is forwarded to the user's callback only when it EXTENDS the
    // globally streamed prefix. Determinism (same seed => same tokens)
    // makes duplicate positions interchangeable, so across hedges and
    // failovers the client observes each position exactly once, in order.
    GenerateRequest attempt_req = inner;
    auto position = std::make_shared<size_t>(0);
    auto user_cb = freq->request.on_token;
    const RequestId fleet_id = freq->id;
    auto freq_keepalive = freq;
    attempt_req.on_token = [freq_keepalive, position, user_cb, fleet_id](
                               RequestId, int64_t token) {
      const size_t pos = (*position)++;
      std::lock_guard<std::mutex> lock(freq_keepalive->stream_mu);
      if (pos == freq_keepalive->streamed) {
        ++freq_keepalive->streamed;
        if (user_cb) user_cb(fleet_id, token);
      }
    };

    // Traced requests get an "attempt" span per dispatch; the replica's
    // server parents its queue/decode spans under it via trace_sink.
    int32_t attempt_span = -1;
    if (freq->trace) {
      attempt_span =
          freq->trace->BeginSpan("attempt", obs::Trace::kRootSpan, c.index);
      attempt_req.trace_sink = freq->trace;
      attempt_req.trace_parent = attempt_span;
    }

    auto id_or = server->Submit(std::move(attempt_req));
    if (!id_or.ok()) {
      breaker->AbortProbe();  // the granted probe was never dispatched
      if (freq->trace) freq->trace->EndSpan(attempt_span, "submit rejected");
      if (id_or.status().code() == util::StatusCode::kInvalidArgument) {
        return id_or.status();  // the request itself is bad; don't shop it
      }
      last = id_or.status();
      continue;
    }
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kDispatch, c.index,
        static_cast<int64_t>(freq->id), is_hedge ? 1 : 0);
    if (is_hedge) {
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kHedgeLaunch,
                                           c.index,
                                           static_cast<int64_t>(freq->id));
      if (freq->trace) {
        freq->trace->Event("hedge_launch", attempt_span, c.index);
      }
    }
    Attempt attempt;
    attempt.replica = c.index;
    attempt.server = std::move(server);
    attempt.inner_id = id_or.value();
    attempt.weights_version =
        replicas_[static_cast<size_t>(c.index)]->weights_version();
    attempt.dispatched_at = now;
    attempt.is_hedge = is_hedge;
    attempt.span = attempt_span;
    freq->attempts.push_back(std::move(attempt));
    return util::Status::OK();
  }
  return last;
}

util::StatusOr<RequestId> ReplicaRouter::Submit(GenerateRequest request) {
  if (admission_closed_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition("fleet is draining or shut down");
  }
  const auto now = std::chrono::steady_clock::now();
  auto freq = std::make_shared<FleetRequest>();
  freq->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  freq->request = std::move(request);
  freq->submit_time = now;
  freq->deadline = freq->request.timeout.count() > 0
                       ? now + freq->request.timeout
                       : std::chrono::steady_clock::time_point::max();
  if (freq->request.trace) {
    // The fleet owns the root span; attempts hang under it and the winner
    // closes it at finalization.
    freq->trace = std::make_shared<obs::Trace>(freq->id);
  }

  std::lock_guard<std::mutex> lock(mu_);
  util::Status dispatched = DispatchLocked(freq, /*is_hedge=*/false, now);
  if (!dispatched.ok()) {
    ++rejected_;
    return dispatched;
  }
  ++submitted_;
  active_[freq->id] = freq;
  return freq->id;
}

util::StatusOr<RequestResult> ReplicaRouter::Wait(RequestId id) {
  std::shared_ptr<FleetRequest> freq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(id);
    if (it != active_.end()) {
      freq = it->second;
    } else {
      auto jt = done_.find(id);
      if (jt == done_.end()) {
        return util::Status::NotFound("unknown or already-collected id " +
                                      std::to_string(id));
      }
      freq = jt->second;
    }
  }
  {
    std::unique_lock<std::mutex> lk(freq->mu);
    freq->cv.wait(lk, [&] { return freq->done; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  done_.erase(id);
  return freq->result;
}

bool ReplicaRouter::Cancel(RequestId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return false;
  it->second->cancel_requested.store(true, std::memory_order_release);
  return true;
}

RequestResult ReplicaRouter::GenerateBlocking(GenerateRequest request) {
  auto id_or = Submit(std::move(request));
  if (!id_or.ok()) {
    RequestResult result;
    result.status = id_or.status();
    return result;
  }
  auto result_or = Wait(id_or.value());
  if (!result_or.ok()) {
    RequestResult result;
    result.status = result_or.status();
    return result;
  }
  return result_or.value();
}

std::chrono::milliseconds ReplicaRouter::HedgeThresholdLocked() const {
  auto threshold = options_.hedge_delay;
  if (options_.hedge_p99_factor > 0.0 && cached_p99_ms_ > 0.0) {
    const auto from_p99 = std::chrono::milliseconds(static_cast<int64_t>(
        std::ceil(options_.hedge_p99_factor * cached_p99_ms_)));
    threshold = std::max(threshold, from_p99);
  }
  return threshold;
}

void ReplicaRouter::FinalizeLocked(const std::shared_ptr<FleetRequest>& freq,
                                   RequestResult result,
                                   const Attempt* winner) {
  // Surviving non-winner attempts become zombies: cancelled (default) or
  // left to finish (hedge_verify_full), then collected and — for hedge
  // losers — verified bit-identical against the winner.
  const bool keep_running = options_.hedge_verify_full && winner != nullptr &&
                            FinishedOk(result);
  for (Attempt& attempt : freq->attempts) {
    if (winner != nullptr && attempt.inner_id == winner->inner_id &&
        attempt.replica == winner->replica) {
      continue;
    }
    if (!keep_running) attempt.server->Cancel(attempt.inner_id);
    if (freq->trace) {
      freq->trace->EndSpan(attempt.span,
                           keep_running ? "lost: verifying" : "lost: cancelled");
    }
    zombies_.push_back({freq, std::move(attempt)});
  }
  freq->attempts.clear();

  // Fleet-level latency: the client's submit -> final completion, across
  // however many attempts it took.
  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - freq->submit_time)
                        .count();

  if (FinishedOk(result)) {
    ++completed_;
    if (winner != nullptr && winner->is_hedge) ++hedges_won_;
    latency_hist_.Record(result.total_ms);
    if (++completions_since_p99_ >= 16) {
      completions_since_p99_ = 0;
      cached_p99_ms_ = latency_hist_.Percentile(0.99);
    }
  } else if (result.reason == FinishReason::kCancelled) {
    ++cancelled_;
  } else if (result.reason == FinishReason::kDeadline) {
    ++expired_;
  } else if (result.reason == FinishReason::kPreempted) {
    ++preempted_;
  } else {
    ++failed_;
  }

  if (freq->trace) {
    if (winner != nullptr) freq->trace->EndSpan(winner->span, "won");
    freq->trace->EndSpan(obs::Trace::kRootSpan,
                         FinishReasonName(result.reason));
    result.trace = freq->trace;
  }
  {
    std::lock_guard<std::mutex> lk(freq->mu);
    freq->result = std::move(result);
    freq->result_version = winner != nullptr ? winner->weights_version : 0;
    freq->done = true;
  }
  freq->cv.notify_all();
  done_[freq->id] = freq;
  active_.erase(freq->id);
  if (active_.empty()) idle_cv_.notify_all();
}

void ReplicaRouter::VerifyLoserLocked(
    const std::shared_ptr<FleetRequest>& freq, const Attempt& attempt,
    const RequestResult& loser) {
  // Only comparable when the winner finished OK and both attempts ran on
  // the same weights version (a reload between them changes the function).
  if (!FinishedOk(freq->result)) return;
  if (attempt.weights_version != freq->result_version) return;
  const std::vector<int64_t>& winner_tokens = freq->result.tokens;
  const std::vector<int64_t>& loser_tokens = loser.tokens;
  if (FinishedOk(loser)) {
    // Both ran to completion: full bit-equality.
    if (loser_tokens != winner_tokens) ++hedge_mismatches_;
    return;
  }
  if (loser.reason == FinishReason::kCancelled) {
    // Cancelled mid-flight: its partial output must be a prefix of the
    // winner's (determinism contract), and never longer than a completed
    // winner's full output.
    if (loser_tokens.size() > winner_tokens.size()) {
      ++hedge_mismatches_;
      return;
    }
    if (!std::equal(loser_tokens.begin(), loser_tokens.end(),
                    winner_tokens.begin())) {
      ++hedge_mismatches_;
    }
  }
  // Faulted / expired losers carry no determinism claim; skip.
}

void ReplicaRouter::PumpRequestLocked(
    const std::shared_ptr<FleetRequest>& freq,
    std::chrono::steady_clock::time_point now) {
  const bool cancel_wanted =
      freq->cancel_requested.load(std::memory_order_acquire);
  if (cancel_wanted) {
    for (const Attempt& attempt : freq->attempts) {
      attempt.server->Cancel(attempt.inner_id);
    }
  }

  for (size_t i = 0; i < freq->attempts.size();) {
    Attempt& attempt = freq->attempts[i];
    RequestResult result;
    const auto outcome = attempt.server->Poll(attempt.inner_id, &result);
    if (outcome == InferenceServer::PollOutcome::kPending) {
      ++i;
      continue;
    }
    if (outcome == InferenceServer::PollOutcome::kReady) {
      if (FinishedOk(result)) {
        breakers_[static_cast<size_t>(attempt.replica)]->RecordSuccess();
        const Attempt winner = std::move(attempt);
        freq->attempts.erase(freq->attempts.begin() +
                             static_cast<ptrdiff_t>(i));
        FinalizeLocked(freq, std::move(result), &winner);
        return;
      }
      if (result.reason == FinishReason::kDeadline) {
        // The client's deadline expired: terminal wherever it happened.
        FinalizeLocked(freq, std::move(result), nullptr);
        return;
      }
      if (result.reason == FinishReason::kCancelled &&
          (cancel_wanted || shutting_down_.load(std::memory_order_acquire))) {
        FinalizeLocked(freq, std::move(result), nullptr);
        return;
      }
      // Everything else is an attempt lost to the fleet, not the client:
      // kFault (poisoned/stalled replica), a cancellation the client never
      // asked for (replica killed or drained under the request), or a
      // preemption (displaced by a higher-priority tenant). Faults feed
      // the breaker; infrastructure cancellations and preemptions don't —
      // a preempting replica is healthy, it just chose a more important
      // request. The re-dispatch below carries the original TenantClass,
      // so a preempted-then-retried request keeps its priority.
      if (result.reason == FinishReason::kFault) {
        breakers_[static_cast<size_t>(attempt.replica)]->RecordFailure(now);
      } else if (result.reason == FinishReason::kPreempted) {
        // Keep the furthest partial output so failover exhaustion can
        // finalize as resumable kPreempted rather than a fault.
        if (!freq->was_preempted ||
            result.tokens.size() >= freq->preempt_result.tokens.size()) {
          freq->preempt_result = result;
        }
        freq->was_preempted = true;
      }
      if (freq->trace) {
        freq->trace->EndSpan(
            attempt.span,
            std::string("lost: ") + FinishReasonName(result.reason));
      }
      freq->attempts.erase(freq->attempts.begin() + static_cast<ptrdiff_t>(i));
      continue;
    }
    // kUnknown: defensive — treat as a lost attempt.
    freq->attempts.erase(freq->attempts.begin() + static_cast<ptrdiff_t>(i));
  }

  if (freq->attempts.empty()) {
    // No live attempt left. Fail over with the remaining deadline, unless
    // the fleet is going down, the client cancelled, or the budget is out.
    if (shutting_down_.load(std::memory_order_acquire) || cancel_wanted) {
      RequestResult result;
      result.reason = FinishReason::kCancelled;
      result.status = util::Status::Cancelled(
          cancel_wanted ? "cancelled by client" : "fleet shut down");
      FinalizeLocked(freq, std::move(result), nullptr);
      return;
    }
    if (freq->failovers >= options_.max_failovers) {
      if (freq->was_preempted) {
        // Every attempt ended in a policy preemption, not a fault: hand
        // back the furthest partial output as kPreempted so the client
        // can resubmit (resume) rather than treating the fleet as broken.
        FinalizeLocked(freq, std::move(freq->preempt_result), nullptr);
        return;
      }
      RequestResult result;
      result.reason = FinishReason::kFault;
      result.status = util::Status::Internal(
          "request failed after " + std::to_string(freq->failovers) +
          " failovers");
      FinalizeLocked(freq, std::move(result), nullptr);
      return;
    }
    util::Status redispatched = DispatchLocked(freq, /*is_hedge=*/false, now);
    if (redispatched.ok()) {
      ++freq->failovers;  // counts successful re-dispatches, not sweeps
      ++failovers_;
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kFailover, freq->attempts.back().replica,
          static_cast<int64_t>(freq->id), freq->failovers);
      if (freq->trace) {
        freq->trace->Event("failover", freq->attempts.back().span,
                           freq->failovers);
      }
      return;
    }
    if (redispatched.code() == util::StatusCode::kDeadlineExceeded) {
      RequestResult result;
      result.reason = FinishReason::kDeadline;
      result.status = std::move(redispatched);
      FinalizeLocked(freq, std::move(result), nullptr);
      return;
    }
    // Nobody would take it right now (breakers cooling, queues full, the
    // only sibling mid-reload). That's transient at 1ms sweep granularity
    // — keep the request parked and retry next sweep; deadlines and
    // max_failovers bound the wait. Only a fleet with no living replica
    // at all makes the request hopeless.
    bool any_alive = false;
    for (const auto& replica : replicas_) any_alive |= !replica->dead();
    if (!any_alive) {
      RequestResult result;
      result.reason = FinishReason::kFault;
      result.status = util::Status::Internal("every replica is dead");
      FinalizeLocked(freq, std::move(result), nullptr);
    }
    return;
  }

  // Hedging: one extra attempt per request, once the only attempt has
  // outlived the threshold.
  if (options_.hedge_delay.count() > 0 && !freq->hedged &&
      freq->attempts.size() == 1 && !cancel_wanted &&
      now - freq->attempts[0].dispatched_at >= HedgeThresholdLocked()) {
    freq->hedged = true;  // one hedge chance, dispatched or not
    if (DispatchLocked(freq, /*is_hedge=*/true, now).ok()) {
      ++hedges_launched_;
    }
  }
}

void ReplicaRouter::PumpZombiesLocked() {
  for (size_t i = 0; i < zombies_.size();) {
    Zombie& zombie = zombies_[i];
    RequestResult result;
    const auto outcome =
        zombie.attempt.server->Poll(zombie.attempt.inner_id, &result);
    if (outcome == InferenceServer::PollOutcome::kPending) {
      ++i;
      continue;
    }
    if (outcome == InferenceServer::PollOutcome::kReady) {
      VerifyLoserLocked(zombie.freq, zombie.attempt, result);
    }
    zombies_.erase(zombies_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void ReplicaRouter::PumpMain() {
  std::vector<std::shared_ptr<FleetRequest>> sweep;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      sweep.clear();
      sweep.reserve(active_.size());
      for (const auto& [id, freq] : active_) sweep.push_back(freq);
      for (const auto& freq : sweep) {
        if (active_.count(freq->id) == 0) continue;  // finalized this sweep
        PumpRequestLocked(freq, now);
      }
      PumpZombiesLocked();
      if (active_.empty() && zombies_.empty()) {
        idle_cv_.notify_all();
        if (stop_.load(std::memory_order_acquire)) break;
      }
    }
    std::this_thread::sleep_for(options_.pump_interval);
  }
}

util::Status ReplicaRouter::Drain(std::chrono::milliseconds timeout) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kDrainBegin);
  admission_closed_.store(true, std::memory_order_release);
  bool drained = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained = idle_cv_.wait_for(lock, timeout, [&] {
      return active_.empty() && zombies_.empty();
    });
  }
  Shutdown();
  return drained ? util::Status::OK()
                 : util::Status::DeadlineExceeded(
                       "fleet drain timed out with requests outstanding");
}

void ReplicaRouter::Shutdown() {
  admission_closed_.store(true, std::memory_order_release);
  shutting_down_.store(true, std::memory_order_release);
  for (auto& replica : replicas_) replica->server()->Shutdown();
  stop_.store(true, std::memory_order_release);
  bool join = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    join = started_ && pump_thread_.joinable();
  }
  if (join) {
    pump_thread_.join();
  } else {
    // Start() was never called: run the pump inline until every accepted
    // request reaches its terminal state (all servers are down, so each
    // attempt polls ready immediately).
    PumpMain();
  }
}

util::Status ReplicaRouter::ReloadModel(const std::string& checkpoint_path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reload_in_progress_) {
      return util::Status::FailedPrecondition(
          "a rolling reload is already in progress");
    }
    reload_in_progress_ = true;
  }
  util::Status result = util::Status::OK();
  for (int i = 0; i < num_replicas(); ++i) {
    Replica* replica = replicas_[static_cast<size_t>(i)].get();
    if (replica->dead()) continue;
    // Out of rotation first: no new dispatches land on the replica while
    // it drains and swaps. In-flight attempts that outlive the drain are
    // cancelled and failed over by the pump.
    phase_[static_cast<size_t>(i)].store(
        static_cast<int>(ReplicaPhase::kReloading), std::memory_order_release);
    util::Status swapped =
        replica->Reload(checkpoint_path, options_.reload_drain_timeout);
    phase_[static_cast<size_t>(i)].store(
        static_cast<int>(ReplicaPhase::kActive), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (swapped.ok()) {
        ++reloads_;
      } else {
        ++reload_failures_;
      }
    }
    if (!swapped.ok()) {
      // The replica rolled itself back and is serving its old weights;
      // stop the roll here rather than half-upgrading the fleet.
      result = swapped;
      break;
    }
    // New weights, new history: the breaker's memory of the old server
    // no longer applies.
    breakers_[static_cast<size_t>(i)]->Reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  reload_in_progress_ = false;
  return result;
}

FleetStats ReplicaRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats stats;
  stats.submitted = submitted_;
  stats.rejected = rejected_;
  stats.completed = completed_;
  stats.cancelled = cancelled_;
  stats.expired = expired_;
  stats.failed = failed_;
  stats.preempted = preempted_;
  stats.failovers = failovers_;
  stats.hedges_launched = hedges_launched_;
  stats.hedges_won = hedges_won_;
  stats.hedge_mismatches = hedge_mismatches_;
  stats.reloads = reloads_;
  stats.reload_failures = reload_failures_;
  stats.p99_latency_ms = cached_p99_ms_;
  return stats;
}

void ExportFleetStats(const FleetStats& stats, const std::string& prefix,
                      obs::MetricsRegistry* registry) {
  const auto set = [&](const char* name, double value) {
    registry->GetGauge(prefix + "." + name)->Set(value);
  };
  set("submitted", static_cast<double>(stats.submitted));
  set("rejected", static_cast<double>(stats.rejected));
  set("completed", static_cast<double>(stats.completed));
  set("cancelled", static_cast<double>(stats.cancelled));
  set("expired", static_cast<double>(stats.expired));
  set("failed", static_cast<double>(stats.failed));
  set("preempted", static_cast<double>(stats.preempted));
  set("failovers", static_cast<double>(stats.failovers));
  set("hedges_launched", static_cast<double>(stats.hedges_launched));
  set("hedges_won", static_cast<double>(stats.hedges_won));
  set("hedge_mismatches", static_cast<double>(stats.hedge_mismatches));
  set("reloads", static_cast<double>(stats.reloads));
  set("reload_failures", static_cast<double>(stats.reload_failures));
  set("p99_latency_ms", stats.p99_latency_ms);
}

ReplicaPhase ReplicaRouter::replica_phase(int i) const {
  if (replicas_[static_cast<size_t>(i)]->dead()) return ReplicaPhase::kDead;
  return static_cast<ReplicaPhase>(
      phase_[static_cast<size_t>(i)].load(std::memory_order_acquire));
}

BreakerState ReplicaRouter::breaker_state(int i) const {
  return breakers_[static_cast<size_t>(i)]->state();
}

uint64_t ReplicaRouter::replica_weights_version(int i) const {
  return replicas_[static_cast<size_t>(i)]->weights_version();
}

ServerStats ReplicaRouter::replica_stats(int i) const {
  return replicas_[static_cast<size_t>(i)]->server()->Stats();
}

void ReplicaRouter::KillReplica(int i) {
  replicas_[static_cast<size_t>(i)]->Kill();
}

void ReplicaRouter::PoisonReplica(int i, bool on) {
  replicas_[static_cast<size_t>(i)]->server()->DebugPoisonDecode(on);
}

}  // namespace llm::serve
