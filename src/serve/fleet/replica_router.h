// ReplicaRouter: one serving front door over N independent InferenceServer
// replicas (each with its own model copy, KV pool, and scheduler thread).
//
// The router owns everything that makes a fleet more than N servers:
//
//   Routing      Submit picks the least-loaded replica among those that
//                are alive, in rotation (not mid-reload), and not
//                draining, preferring kHealthy over kDegraded.
//   Breakers     A per-replica circuit breaker (fleet/circuit_breaker.h)
//                absorbs the outcome of every dispatched attempt; a
//                replica that keeps faulting stops receiving traffic
//                until a cooldown probe succeeds.
//   Failover     An attempt that dies with the replica (kFault, or
//                cancelled by a replica shutdown the client didn't ask
//                for) is re-dispatched to a sibling with the request's
//                remaining deadline, up to max_failovers times.
//   Hedging      When a request's only attempt has been running longer
//                than the hedge threshold (max of hedge_delay and
//                hedge_p99_factor x observed fleet p99), a second attempt
//                with the SAME seed is dispatched to a different replica.
//                First completion wins; the loser is cancelled and its
//                partial output is asserted bit-identical to the winner's
//                prefix — the serving runtime's determinism contract
//                (request output is a pure function of the request) made
//                checkable in production. Mismatches are counted, never
//                silently dropped.
//   Reload       ReloadModel(path) rolls new weights across the fleet one
//                replica at a time with zero downtime: each replica is
//                taken out of rotation, drained, validated, swapped,
//                canaried, and re-admitted (breaker reset) before the
//                next begins — see fleet/replica.h for the rollback
//                protocol. Live traffic rides the remaining replicas.
//
// A dedicated pump thread polls all outstanding attempts every
// pump_interval and owns hedging, failover, and finalization; client
// threads only Submit, Wait, and Cancel. Fleet-level conservation mirrors
// the single-server invariant: every accepted request reaches exactly one
// terminal state, so at quiescence
//   submitted == completed + cancelled + expired + failed + preempted.
//
// Multi-tenancy: the request's TenantClass rides inside GenerateRequest,
// so every failover and hedge re-dispatch carries the original priority,
// quota class, and fair-share weight to the next replica. An attempt a
// replica preempted (kPreempted — displaced by a higher-priority tenant,
// not a fault) is re-dispatched like a lost attempt but WITHOUT a breaker
// penalty; if the failover budget runs out the request finalizes as
// kPreempted with the partial tokens of its furthest attempt, never as a
// fault.
#ifndef TFMR_SERVE_FLEET_REPLICA_ROUTER_H_
#define TFMR_SERVE_FLEET_REPLICA_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/transformer.h"
#include "serve/fleet/circuit_breaker.h"
#include "serve/fleet/replica.h"
#include "serve/inference_server.h"
#include "util/status.h"

namespace llm::serve {

struct FleetOptions {
  int num_replicas = 2;
  /// Per-replica server configuration (batch size, workers, queue, ...).
  ServerOptions server;
  CircuitBreakerOptions breaker;
  /// Hedge a request once its only attempt has run this long; zero
  /// disables hedging entirely.
  std::chrono::milliseconds hedge_delay{0};
  /// When > 0 and a fleet p99 estimate exists, the effective hedge
  /// threshold is max(hedge_delay, factor * p99) — hedge only genuine
  /// tail stragglers, not the median.
  double hedge_p99_factor = 0.0;
  /// Test mode: let the hedge loser run to completion and assert FULL
  /// bit-equality with the winner (default cancels the loser and checks
  /// its partial output as a prefix).
  bool hedge_verify_full = false;
  /// Re-dispatch attempts lost to replica failure at most this many times
  /// before the request finalizes as failed.
  int max_failovers = 3;
  /// Per-replica drain budget during a rolling reload.
  std::chrono::milliseconds reload_drain_timeout{2000};
  /// Pump thread sweep cadence.
  std::chrono::milliseconds pump_interval{1};
};

/// A replica's standing in the rotation, for operators and tests.
enum class ReplicaPhase {
  kActive = 0,  // eligible for traffic (breaker permitting)
  kReloading,   // mid weight-swap; out of rotation
  kDead,        // killed; never returns
};

const char* ReplicaPhaseName(ReplicaPhase phase);

/// Fleet-wide counters. Conservation at quiescence:
/// submitted == completed + cancelled + expired + failed + preempted.
struct FleetStats {
  uint64_t submitted = 0;  // accepted into the fleet
  uint64_t rejected = 0;   // refused at Submit (no replica would take it)
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
  uint64_t preempted = 0;  // finalized kPreempted after the failover
                           // budget ran out (partial tokens preserved)
  uint64_t failovers = 0;         // attempts re-dispatched after loss
  uint64_t hedges_launched = 0;
  uint64_t hedges_won = 0;        // requests whose hedge beat the primary
  uint64_t hedge_mismatches = 0;  // determinism violations (must stay 0)
  uint64_t reloads = 0;           // successful per-replica reloads
  uint64_t reload_failures = 0;   // rejected/rolled-back reloads
  double p99_latency_ms = 0.0;    // fleet-observed completion latency
};

class ReplicaRouter {
 public:
  /// Builds num_replicas replicas, each with a private copy of
  /// `prototype`'s weights. `prototype` may be freed after construction.
  ReplicaRouter(const nn::GPTModel& prototype, const FleetOptions& options);
  ~ReplicaRouter();  // implies Shutdown()

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  void Start();

  /// Routes to the best eligible replica. Errors: InvalidArgument (bad
  /// request), FailedPrecondition (fleet draining / shut down),
  /// ResourceExhausted (every eligible replica refused), Internal (no
  /// eligible replica at all).
  util::StatusOr<RequestId> Submit(GenerateRequest request);

  /// Blocks until the request reaches its fleet-terminal state. The id is
  /// fleet-scoped (returned by Submit); NotFound for unknown/collected.
  util::StatusOr<RequestResult> Wait(RequestId id);

  /// Requests cancellation; the pump propagates it to live attempts.
  bool Cancel(RequestId id);

  /// Submit + Wait; admission failures come back in RequestResult::status.
  RequestResult GenerateBlocking(GenerateRequest request);

  /// Graceful: closes fleet admission, lets outstanding requests finish
  /// (failover still active), then shuts down. DeadlineExceeded if the
  /// timeout lapsed first.
  util::Status Drain(std::chrono::milliseconds timeout);

  /// Hard stop: outstanding requests finalize (mostly kCancelled) and
  /// every Wait returns. Idempotent.
  void Shutdown();

  /// Zero-downtime rolling reload: for each live replica in turn — out of
  /// rotation, drain, validate checkpoint (CRC + architecture), swap,
  /// canary, re-admit with a reset breaker. Stops at the first failing
  /// replica (that replica is already rolled back and re-admitted on its
  /// old weights) and returns the error. Serialized: concurrent calls are
  /// rejected with FailedPrecondition.
  util::Status ReloadModel(const std::string& checkpoint_path);

  FleetStats Stats() const;

  /// Completion-latency histogram snapshot behind the fleet p99.
  obs::HistogramSnapshot LatencySnapshot() const {
    return latency_hist_.Snapshot();
  }

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  ReplicaPhase replica_phase(int i) const;
  BreakerState breaker_state(int i) const;
  uint64_t replica_weights_version(int i) const;
  /// The replica's CURRENT server's stats (post-reload servers start
  /// fresh). Feeds the per-replica KV-slot conservation assertions.
  ServerStats replica_stats(int i) const;

  /// Chaos hooks. Kill is permanent (hard shutdown + out of rotation);
  /// Poison makes every decode on the replica fault until its server is
  /// rebuilt by a reload.
  void KillReplica(int i);
  void PoisonReplica(int i, bool on);

 private:
  struct Attempt {
    int replica = -1;
    /// The exact server generation the attempt was submitted to; kept
    /// alive here so Poll stays valid across replica server swaps.
    std::shared_ptr<InferenceServer> server;
    RequestId inner_id = 0;
    uint64_t weights_version = 0;
    std::chrono::steady_clock::time_point dispatched_at;
    bool is_hedge = false;
    /// This attempt's span in the request's trace (-1 untraced). The inner
    /// server parents its queue/decode spans under it.
    int32_t span = -1;
  };

  struct FleetRequest {
    RequestId id = 0;
    GenerateRequest request;  // user's original (incl. their on_token)
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::atomic<bool> cancel_requested{false};

    /// Request-wide trace (null unless the client asked for one). The
    /// router owns the root span; every attempt's server-side spans hang
    /// under that attempt's span.
    std::shared_ptr<obs::Trace> trace;

    // Routing state: guarded by the router's mu_.
    std::vector<Attempt> attempts;
    int failovers = 0;
    bool hedged = false;
    /// A replica preempted an attempt of this request (policy, not a
    /// fault). `preempt_result` keeps the furthest preempted attempt's
    /// partial output so failover exhaustion can finalize as kPreempted
    /// (resumable at the client) instead of a fault. Guarded by mu_.
    bool was_preempted = false;
    RequestResult preempt_result;

    // Streamed-prefix dedup across attempts: guarded by stream_mu (taken
    // on replica scheduler threads, so kept separate from mu_).
    std::mutex stream_mu;
    size_t streamed = 0;

    // Terminal state: guarded by mu.
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    RequestResult result;
    uint64_t result_version = 0;  // weights_version the winner ran on
  };

  /// A cancelled-or-abandoned attempt whose retirement we still collect
  /// (hedge losers awaiting bit-exactness verification).
  struct Zombie {
    std::shared_ptr<FleetRequest> freq;
    Attempt attempt;
  };

  void PumpMain();
  void PumpRequestLocked(const std::shared_ptr<FleetRequest>& freq,
                         std::chrono::steady_clock::time_point now);
  void PumpZombiesLocked();
  /// Dispatches one attempt. On success appends to freq->attempts.
  util::Status DispatchLocked(const std::shared_ptr<FleetRequest>& freq,
                              bool is_hedge,
                              std::chrono::steady_clock::time_point now);
  void FinalizeLocked(const std::shared_ptr<FleetRequest>& freq,
                      RequestResult result, const Attempt* winner);
  void VerifyLoserLocked(const std::shared_ptr<FleetRequest>& freq,
                         const Attempt& attempt, const RequestResult& loser);
  std::chrono::milliseconds HedgeThresholdLocked() const;
  bool ReplicaEligibleLocked(int i) const;

  const FleetOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::atomic<int>> phase_;  // ReplicaPhase as int

  std::thread pump_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> admission_closed_{false};
  std::atomic<bool> shutting_down_{false};
  bool started_ = false;  // guarded by mu_

  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  // notified when active_ empties
  std::unordered_map<RequestId, std::shared_ptr<FleetRequest>> active_;
  std::unordered_map<RequestId, std::shared_ptr<FleetRequest>> done_;
  std::vector<Zombie> zombies_;
  bool reload_in_progress_ = false;  // guarded by mu_

  // Counters: guarded by mu_.
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t expired_ = 0;
  uint64_t failed_ = 0;
  uint64_t preempted_ = 0;
  uint64_t failovers_ = 0;
  uint64_t hedges_launched_ = 0;
  uint64_t hedges_won_ = 0;
  uint64_t hedge_mismatches_ = 0;
  uint64_t reloads_ = 0;
  uint64_t reload_failures_ = 0;
  /// Fleet completion latencies (submit -> final completion across all
  /// attempts); the hedge threshold reads its p99 via cached_p99_ms_.
  obs::Histogram latency_hist_;
  double cached_p99_ms_ = 0.0;  // refreshed every few completions
  uint64_t completions_since_p99_ = 0;
};

/// FleetStats counterpart of ExportServerStats: every field becomes the
/// gauge `<prefix>.<field>` in `registry`.
void ExportFleetStats(const FleetStats& stats, const std::string& prefix,
                      obs::MetricsRegistry* registry);

}  // namespace llm::serve

#endif  // TFMR_SERVE_FLEET_REPLICA_ROUTER_H_
