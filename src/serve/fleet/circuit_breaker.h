// Per-replica circuit breaker: the fleet router's memory of which
// replicas have been failing.
//
// A replica that keeps emitting kFault/Internal retirements (poisoned
// model, wedged workers) should stop receiving traffic instead of failing
// every batch it touches. The breaker is the standard three-state machine:
//
//   kClosed    traffic flows; a sliding window of recent outcomes is
//              tracked, and when the failure rate over at least
//              `min_events` outcomes reaches `failure_threshold`, the
//              breaker trips to...
//   kOpen      no traffic. After `cooldown` has elapsed the next Allow()
//              transitions to...
//   kHalfOpen  a bounded number of probe requests (one in flight at a
//              time) are let through. `probe_successes` consecutive
//              successful probes close the breaker (window cleared); any
//              probe failure re-opens it and restarts the cooldown.
//
// Time is passed in explicitly (steady_clock time_points) rather than
// read internally, so the state machine is unit-testable without sleeps.
// All methods are thread-safe; outcome recording from stragglers that
// finish after a trip is tolerated and cannot wedge the machine.
#ifndef TFMR_SERVE_FLEET_CIRCUIT_BREAKER_H_
#define TFMR_SERVE_FLEET_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace llm::serve {

struct CircuitBreakerOptions {
  /// Sliding window of recent request outcomes per replica.
  int window = 16;
  /// Don't trip before this many outcomes are in the window: one early
  /// failure out of one request is not a 100% failure *rate*.
  int min_events = 4;
  /// Trip when failures/outcomes in the window reaches this fraction.
  double failure_threshold = 0.5;
  /// How long an open breaker blocks traffic before probing.
  std::chrono::milliseconds cooldown{250};
  /// Consecutive half-open probe successes required to close.
  int probe_successes = 2;
};

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

class CircuitBreaker {
 public:
  /// `label` identifies this breaker (the router passes the replica index)
  /// in flight-recorder kBreakerTransition events; -1 suppresses nothing,
  /// it's just what unlabeled breakers report.
  explicit CircuitBreaker(const CircuitBreakerOptions& options,
                          int label = -1);

  /// May this replica receive a request at `now`? Closed: yes. Open: no,
  /// unless the cooldown has elapsed — then the breaker moves to half-open
  /// and grants a probe. Half-open: grants at most one outstanding probe.
  /// A granted probe is reserved; if the caller fails to dispatch it, it
  /// must call AbortProbe() so the next Allow can grant again.
  bool Allow(std::chrono::steady_clock::time_point now);

  /// Un-reserves a probe granted by Allow() that was never dispatched
  /// (e.g. the replica's queue rejected the submit).
  void AbortProbe();

  /// Outcome of a dispatched request: success = finished OK (or by client
  /// choice: cancel/deadline), failure = kFault/Internal or the replica
  /// dying under the request.
  void RecordSuccess();
  void RecordFailure(std::chrono::steady_clock::time_point now);

  /// Back to a fresh closed state (window cleared) — used after a replica
  /// is reloaded with new weights and its history no longer applies.
  void Reset();

  BreakerState state() const;
  /// Times the breaker tripped closed->open or half-open->open.
  uint64_t opens() const;

 private:
  void TripLocked(std::chrono::steady_clock::time_point now);
  void ClearWindowLocked();
  /// Moves to `to`, recording a kBreakerTransition flight event when the
  /// state actually changes.
  void TransitionLocked(BreakerState to);

  const CircuitBreakerOptions options_;
  const int label_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> outcomes_;  // ring: true = failure
  size_t next_ = 0;
  int filled_ = 0;
  int failures_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
  int probes_in_flight_ = 0;
  int probe_streak_ = 0;  // consecutive half-open successes
  uint64_t opens_ = 0;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_FLEET_CIRCUIT_BREAKER_H_
