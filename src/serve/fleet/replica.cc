#include "serve/fleet/replica.h"

#include <string>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "train/checkpoint.h"
#include "util/check.h"
#include "util/fault.h"

namespace llm::serve {

namespace {

// Reload phase numbering in kReloadPhase flight events (field b).
enum ReloadPhase : int64_t {
  kPhaseDrain = 1,
  kPhaseValidate = 2,
  kPhaseLoad = 3,
  kPhaseCanary = 4,
  kPhaseCommit = 5,
};

void RecordReloadPhase(int replica, int64_t phase, bool ok) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kReloadPhase,
                                       replica, phase, ok ? 1 : 0);
}

}  // namespace

void CopyModelWeights(const nn::GPTModel& src, nn::GPTModel* dst) {
  const nn::NamedParams src_params = src.NamedParameters();
  nn::NamedParams dst_params = dst->NamedParameters();
  LLM_CHECK_EQ(src_params.size(), dst_params.size());
  for (size_t i = 0; i < src_params.size(); ++i) {
    LLM_CHECK(src_params[i].first == dst_params[i].first)
        << "parameter order mismatch: " << src_params[i].first << " vs "
        << dst_params[i].first;
    dst_params[i].second.mutable_value() = src_params[i].second.value();
  }
}

Replica::Replica(int index, const nn::GPTModel& prototype,
                 const ServerOptions& server_options)
    : index_(index), server_options_(server_options) {
  // Private model copy: replicas must not share weight storage, or a
  // poisoned / mid-reload replica would corrupt its siblings.
  util::Rng init_rng(0x5eed0000u + static_cast<uint64_t>(index));
  model_ = std::make_unique<nn::GPTModel>(prototype.config(), &init_rng);
  CopyModelWeights(prototype, model_.get());
  server_ = std::make_shared<InferenceServer>(model_.get(), server_options_);
}

void Replica::Start() {
  std::lock_guard<std::mutex> lock(server_mu_);
  if (started_) return;
  started_ = true;
  server_->Start();
}

std::shared_ptr<InferenceServer> Replica::server() const {
  std::lock_guard<std::mutex> lock(server_mu_);
  return server_;
}

void Replica::Kill() {
  dead_.store(true, std::memory_order_release);
  // Hard stop: in-flight requests retire kCancelled; the router sees the
  // dead flag (and the cancellations) and fails them over elsewhere.
  server()->Shutdown();
}

void Replica::SwapInFreshServer() {
  // Carry the outgoing server's measured decode rate into the fresh one as
  // a feasibility hint: a reloaded replica's hardware didn't change, so
  // deadline-aware admission shouldn't have to re-learn it from scratch
  // (and falsely admit doomed requests while it does).
  ServerOptions fresh_options = server_options_;
  {
    std::lock_guard<std::mutex> lock(server_mu_);
    if (server_) {
      fresh_options.est_ms_per_step_seed = server_->Stats().est_ms_per_step;
    }
  }
  auto fresh = std::make_shared<InferenceServer>(model_.get(), fresh_options);
  std::shared_ptr<InferenceServer> old;
  bool serve = false;
  {
    std::lock_guard<std::mutex> lock(server_mu_);
    serve = started_ && !dead_.load(std::memory_order_acquire);
    if (serve) fresh->Start();
    old = std::move(server_);
    server_ = std::move(fresh);
  }
  if (old) old->Shutdown();  // idempotent; requests already drained
  if (!serve) server()->Shutdown();  // dead replica: reject all submits
}

Replica::WeightSnapshot Replica::SnapshotWeights() const {
  WeightSnapshot snapshot;
  for (const auto& [name, param] : model_->NamedParameters()) {
    snapshot.emplace_back(name, param.value());  // deep Tensor copy
  }
  return snapshot;
}

void Replica::RestoreWeights(const WeightSnapshot& snapshot) {
  nn::NamedParams params = model_->NamedParameters();
  LLM_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    LLM_CHECK(params[i].first == snapshot[i].first);
    params[i].second.mutable_value() = snapshot[i].second;
  }
}

util::Status Replica::RunCanary() {
  if (util::MaybeInjectFault(util::FaultSite::kReplicaCanary)) {
    return util::Status::Internal("injected canary failure (replica " +
                                  std::to_string(index_) + ")");
  }
  // A throwaway single-slot server on the just-loaded weights: one greedy
  // generation must complete without a fault before the replica re-admits
  // live traffic. Weights that pass CRC + shape checks but decode to
  // NaN/Inf are caught here, not by the first unlucky user request.
  ServerOptions canary_options;
  canary_options.max_batch_size = 1;
  canary_options.num_workers = 0;
  canary_options.queue_capacity = 1;
  InferenceServer canary(model_.get(), canary_options);
  canary.Start();
  GenerateRequest probe;
  probe.prompt = {0};
  probe.sampler.temperature = 0.0f;  // greedy: tests weights, not sampling
  probe.max_new_tokens = 4;
  probe.seed = 0;
  RequestResult result = canary.GenerateBlocking(std::move(probe));
  canary.Shutdown();
  if (!result.status.ok()) {
    return util::Status::Internal(
        "canary generation failed on replica " + std::to_string(index_) +
        ": " + result.status.ToString());
  }
  return util::Status::OK();
}

util::Status Replica::Reload(const std::string& checkpoint_path,
                             std::chrono::milliseconds drain_timeout) {
  if (dead()) {
    return util::Status::FailedPrecondition(
        "replica " + std::to_string(index_) + " is dead");
  }
  // 1. Drain: stop admission, let in-flight work finish. Drain shuts the
  // server down either way; stragglers past the timeout retire kCancelled
  // and the router fails them over to siblings.
  const util::Status drained = server()->Drain(drain_timeout);
  RecordReloadPhase(index_, kPhaseDrain, drained.ok());

  // 2. Validate the file end-to-end (CRCs, structure) and against the
  // live architecture — before any weight byte changes.
  util::Status validated =
      train::ValidateCheckpoint(checkpoint_path, model_.get());
  RecordReloadPhase(index_, kPhaseValidate, validated.ok());
  if (!validated.ok()) {
    SwapInFreshServer();  // back in service on the untouched weights
    return validated;
  }

  // 3. Swap the weights, keeping a snapshot to roll back to.
  const WeightSnapshot snapshot = SnapshotWeights();
  util::Status loaded = train::LoadCheckpoint(model_.get(), checkpoint_path);
  RecordReloadPhase(index_, kPhaseLoad, loaded.ok());
  if (!loaded.ok()) {
    RestoreWeights(snapshot);
    SwapInFreshServer();
    return loaded;
  }

  // 4. Canary: the new weights must actually generate before going live.
  util::Status canary = RunCanary();
  RecordReloadPhase(index_, kPhaseCanary, canary.ok());
  if (!canary.ok()) {
    RestoreWeights(snapshot);
    SwapInFreshServer();
    return canary;
  }

  // 5. Commit: bump the version (hedging never compares outputs across
  // versions) and rebuild the serving stack on the new weights.
  weights_version_.fetch_add(1, std::memory_order_acq_rel);
  SwapInFreshServer();
  RecordReloadPhase(index_, kPhaseCommit, true);
  return util::Status::OK();
}

}  // namespace llm::serve
