#include "serve/fleet/circuit_breaker.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "util/check.h"

namespace llm::serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options,
                               int label)
    : options_(options),
      label_(label),
      outcomes_(static_cast<size_t>(std::max(options.window, 1)), false) {
  LLM_CHECK_GT(options_.window, 0);
  LLM_CHECK_GT(options_.probe_successes, 0);
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  if (state_ == to) return;
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kBreakerTransition, label_,
      static_cast<int64_t>(state_), static_cast<int64_t>(to));
  state_ = to;
}

void CircuitBreaker::ClearWindowLocked() {
  std::fill(outcomes_.begin(), outcomes_.end(), false);
  next_ = 0;
  filled_ = 0;
  failures_ = 0;
}

void CircuitBreaker::TripLocked(std::chrono::steady_clock::time_point now) {
  TransitionLocked(BreakerState::kOpen);
  opened_at_ = now;
  probes_in_flight_ = 0;
  probe_streak_ = 0;
  ++opens_;
}

bool CircuitBreaker::Allow(std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ < options_.cooldown) return false;
      // Cooled down: probe cautiously rather than re-opening the
      // floodgates — one request at a time until the streak closes it.
      TransitionLocked(BreakerState::kHalfOpen);
      probe_streak_ = 0;
      probes_in_flight_ = 1;  // this grant
      return true;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= 1) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::AbortProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_in_flight_ > 0) --probes_in_flight_;
    if (++probe_streak_ >= options_.probe_successes) {
      TransitionLocked(BreakerState::kClosed);
      ClearWindowLocked();
    }
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // straggler; ignore
  failures_ -= outcomes_[next_] ? 1 : 0;
  outcomes_[next_] = false;
  next_ = (next_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, static_cast<int>(outcomes_.size()));
}

void CircuitBreaker::RecordFailure(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe: the replica is still sick, back to cooling off.
    if (probes_in_flight_ > 0) --probes_in_flight_;
    TripLocked(now);
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // straggler; ignore
  failures_ += outcomes_[next_] ? 0 : 1;
  outcomes_[next_] = true;
  next_ = (next_ + 1) % outcomes_.size();
  filled_ = std::min(filled_ + 1, static_cast<int>(outcomes_.size()));
  if (filled_ >= options_.min_events &&
      static_cast<double>(failures_) >=
          options_.failure_threshold * static_cast<double>(filled_)) {
    TripLocked(now);
  }
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  TransitionLocked(BreakerState::kClosed);
  probes_in_flight_ = 0;
  probe_streak_ = 0;
  ClearWindowLocked();
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

}  // namespace llm::serve
