// One member of the serving fleet: a private model copy plus the
// InferenceServer stack (KV pool, scheduler thread, queue) serving it.
//
// The replica owns the weight-swap machinery behind zero-downtime rolling
// reload. Reload(path) is a local, single-replica operation — the router
// sequences it across the fleet — and follows the validate-first,
// rollback-on-anything protocol:
//
//   1. Drain the live server (in-flight requests finish; stragglers past
//      the timeout are cancelled and fail over to sibling replicas).
//   2. ValidateCheckpoint: CRC32 of every tensor, section structure, and
//      architecture compatibility (names + shapes) against the live model
//      — all BEFORE any weight byte changes. A corrupt or incompatible
//      file is rejected here and the old server stack is rebuilt on the
//      untouched weights.
//   3. Snapshot the current weights, LoadCheckpoint the new ones (itself
//      atomic: fully validated before the first write).
//   4. Canary generation on a private throwaway server: a fixed greedy
//      prompt must complete without a fault. Weights that load cleanly
//      but decode to NaN (or an injected kReplicaCanary fault) roll the
//      snapshot back.
//   5. Rebuild the serving stack and bump weights_version().
//
// The InferenceServer is held by shared_ptr and swapped atomically under a
// mutex: router threads that grabbed the old server mid-swap keep a valid
// (shut down) object that rejects new work with FailedPrecondition, which
// the router treats as "try another replica".
#ifndef TFMR_SERVE_FLEET_REPLICA_H_
#define TFMR_SERVE_FLEET_REPLICA_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "nn/transformer.h"
#include "serve/inference_server.h"
#include "util/status.h"

namespace llm::serve {

class Replica {
 public:
  /// Builds this replica's private model (weights copied from
  /// `prototype`) and its first server stack. Call Start() to serve.
  Replica(int index, const nn::GPTModel& prototype,
          const ServerOptions& server_options);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  void Start();

  /// The current serving stack. Never null; after Kill()/during a swap it
  /// may be a shut-down server that rejects submits (the router's cue to
  /// route elsewhere). Callers keep the shared_ptr for the lifetime of
  /// any request they submitted through it.
  std::shared_ptr<InferenceServer> server() const;

  int index() const { return index_; }
  const nn::GPTModel* model() const { return model_.get(); }

  /// Bumped on every successful Reload. Hedged-request bit-exactness is
  /// only asserted between attempts that ran on the same version.
  uint64_t weights_version() const {
    return weights_version_.load(std::memory_order_acquire);
  }

  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Hard failure: shuts the server down (in-flight requests retire
  /// cancelled and fail over) and marks the replica permanently dead.
  void Kill();

  /// The rolling-reload step for this replica; see the file comment for
  /// the protocol. On ANY failure the previous weights are restored, a
  /// fresh server is started on them, and the error is returned — the
  /// replica is never left out of service or on half-swapped weights.
  util::Status Reload(const std::string& checkpoint_path,
                      std::chrono::milliseconds drain_timeout);

 private:
  using WeightSnapshot = std::vector<std::pair<std::string, core::Tensor>>;

  void SwapInFreshServer();  // build + start + publish a new stack
  WeightSnapshot SnapshotWeights() const;
  void RestoreWeights(const WeightSnapshot& snapshot);
  util::Status RunCanary();

  const int index_;
  const ServerOptions server_options_;
  std::unique_ptr<nn::GPTModel> model_;
  mutable std::mutex server_mu_;
  std::shared_ptr<InferenceServer> server_;  // guarded by server_mu_
  std::atomic<uint64_t> weights_version_{1};
  std::atomic<bool> dead_{false};
  bool started_ = false;  // guarded by server_mu_
};

/// Copies every named parameter of `src` into `dst` (same architecture).
void CopyModelWeights(const nn::GPTModel& src, nn::GPTModel* dst);

}  // namespace llm::serve

#endif  // TFMR_SERVE_FLEET_REPLICA_H_
