#include "serve/batch_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "sample/sampler.h"
#include "util/fault.h"

namespace llm::serve {
namespace {

// Preferred sequences per worker chunk. The fused kernels win by streaming
// each weight row across many lanes, so splitting the batch thinner than
// this for the sake of thread fan-out costs more than it buys.
constexpr int64_t kPreferredSubBatch = 4;

// How long an injected kWorkerStall sleeps. Long enough that any sane tick
// budget (tests use 5-20ms) sees the tick as stalled; short enough that
// chaos schedules firing a handful of stalls stay fast.
constexpr int kInjectedStallMs = 30;

// Numeric-health check for one lane's logits: every sampled lane must
// produce finite logits before they feed the sampler.
bool LaneFinite(const float* logits, int64_t vocab) {
  for (int64_t v = 0; v < vocab; ++v) {
    if (!std::isfinite(logits[v])) return false;
  }
  return true;
}

}  // namespace

BatchScheduler::BatchScheduler(const nn::GPTModel* model, KvCachePool* pool)
    : model_(model), pool_(pool) {
  LLM_CHECK(model != nullptr);
  LLM_CHECK(pool != nullptr);
  seqs_.resize(static_cast<size_t>(pool->num_slots()));
  logits_.resize(static_cast<size_t>(pool->num_slots()) *
                 static_cast<size_t>(model->config().vocab_size));
  active_idx_.reserve(static_cast<size_t>(pool->num_slots()));
}

void BatchScheduler::Admit(std::shared_ptr<RequestState> state) {
  const int64_t slot = pool_->Acquire();
  LLM_CHECK_GE(slot, 0);  // caller must have checked HasFreeSlot()
  ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
  LLM_CHECK(!seq.occupied);
  seq.occupied = true;
  seq.rng = util::Rng(state->request.seed);
  seq.pos = 0;
  seq.generated = 0;
  seq.next_token = state->request.prompt.front();
  seq.sampled = -1;
  seq.faulted = false;
  const double queue_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - state->submit_time)
          .count();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->queue_ms = queue_ms;
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kAdmission,
                                       static_cast<int32_t>(slot),
                                       static_cast<int64_t>(state->id));
  if (state->trace) {
    state->trace->EndSpan(state->queue_span.load(std::memory_order_acquire),
                          "admitted");
    state->decode_span.store(
        state->trace->BeginSpan("decode", state->trace_parent, slot),
        std::memory_order_release);
  }
  ++active_per_class_[static_cast<int>(state->request.tenant)];
  seq.state = std::move(state);
  ++active_count_;
}

void BatchScheduler::Retire(int64_t slot, FinishReason reason,
                            const util::Status& status, TickOutput* out) {
  ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kRetirement, static_cast<int32_t>(reason),
      static_cast<int64_t>(seq.state->id), seq.generated);
  --active_per_class_[static_cast<int>(seq.state->request.tenant)];
  out->finished.push_back({std::move(seq.state), reason, status});
  seq.state = nullptr;
  seq.occupied = false;
  if (!util::MaybeInjectFault(util::FaultSite::kSlotLeak)) {
    pool_->Release(slot);
  }
  // Injected leak: the slot stays leased with no occupant. The server's
  // per-iteration ReclaimLeakedSlots() sweep detects and repairs it.
  --active_count_;
}

int64_t BatchScheduler::PickVictim(TenantClass incoming,
                                   const TenantPolicy& policy) const {
  const int in_cls = static_cast<int>(incoming);
  const int64_t w_in = std::max(policy.classes[in_cls].weight, 1);
  const int64_t active_in = ActivePerClass(incoming);
  // Lowest-priority (highest-index) class first, so background lanes are
  // always displaced before batch lanes.
  for (int cls = kNumTenantClasses - 1; cls > in_cls; --cls) {
    if (!policy.classes[cls].preemptible) continue;
    const int64_t active_victim =
        active_per_class_[cls].load(std::memory_order_relaxed);
    if (active_victim == 0) continue;
    // Fairness gate: after the displacement the incoming class must still
    // be at or under its weighted share relative to the victim class —
    // otherwise a stream of high-priority arrivals would churn every
    // low-priority lane instead of sharing by weight.
    const int64_t w_victim = std::max(policy.classes[cls].weight, 1);
    if ((active_in + 1) * w_victim > active_victim * w_in) continue;
    int64_t best = -1;
    for (int64_t slot = 0; slot < pool_->num_slots(); ++slot) {
      const ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
      if (!seq.occupied ||
          static_cast<int>(seq.state->request.tenant) != cls) {
        continue;
      }
      // Longest decode first: it has the most resumable work banked and
      // would otherwise hold its lane the longest. Ties break to the
      // highest slot so the choice is deterministic.
      if (best < 0 ||
          seq.generated >= seqs_[static_cast<size_t>(best)].generated) {
        best = slot;
      }
    }
    if (best >= 0) return best;
  }
  return -1;
}

bool BatchScheduler::CanPreemptFor(TenantClass incoming,
                                   const TenantPolicy& policy) const {
  return PickVictim(incoming, policy) >= 0;
}

bool BatchScheduler::PreemptFor(TenantClass incoming,
                                const TenantPolicy& policy, TickOutput* out) {
  const int64_t slot = PickVictim(incoming, policy);
  if (slot < 0) return false;
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kPreempt, static_cast<int32_t>(incoming),
      static_cast<int64_t>(seqs_[static_cast<size_t>(slot)].state->id),
      seqs_[static_cast<size_t>(slot)].generated);
  Retire(slot, FinishReason::kPreempted,
         util::Status::ResourceExhausted(
             "preempted: lane reclaimed for a higher-priority tenant; "
             "partial output returned, resubmit to resume"),
         out);
  return true;
}

int64_t BatchScheduler::ReclaimLeakedSlots() {
  int64_t repaired = 0;
  for (int64_t slot = 0; slot < pool_->num_slots(); ++slot) {
    if (pool_->leased(slot) && !seqs_[static_cast<size_t>(slot)].occupied) {
      pool_->Release(slot);
      ++repaired;
    }
  }
  return repaired;
}

void BatchScheduler::Tick(WorkerPool* workers,
                          std::vector<nn::BatchedScratch>* scratch,
                          TickOutput* out) {
  out->Clear();
  const auto now = std::chrono::steady_clock::now();

  // Expire cancelled / past-deadline sequences before spending compute.
  active_idx_.clear();
  for (int64_t slot = 0; slot < pool_->num_slots(); ++slot) {
    ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
    if (!seq.occupied) continue;
    if (seq.state->cancel_requested.load(std::memory_order_acquire)) {
      Retire(slot, FinishReason::kCancelled,
             util::Status::Cancelled("cancelled by client"), out);
      continue;
    }
    if (now >= seq.state->deadline) {
      Retire(slot, FinishReason::kDeadline,
             util::Status::DeadlineExceeded("deadline expired in flight"), out);
      continue;
    }
    active_idx_.push_back(slot);
  }
  const int64_t n_active = static_cast<int64_t>(active_idx_.size());
  if (n_active == 0) return;
  out->steps = n_active;

  // Partition into contiguous chunks. Fewer, fatter chunks beat maximal
  // fan-out: each chunk is one fused BatchedDecodeStep call, and its
  // efficiency grows with its lane count.
  const int64_t lanes = workers->lanes();
  const int64_t n_chunks = std::max<int64_t>(
      1, std::min<int64_t>(lanes, (n_active + kPreferredSubBatch - 1) /
                                      kPreferredSubBatch));
  LLM_CHECK_LE(lanes, static_cast<int64_t>(scratch->size()));
  chunk_inputs_.resize(static_cast<size_t>(n_chunks));
  const int64_t base = n_active / n_chunks;
  const int64_t rem = n_active % n_chunks;
  const int64_t vocab = model_->config().vocab_size;
  const int64_t max_len = model_->config().max_seq_len;

  workers->Run(n_chunks, [&](int64_t chunk, int lane) {
    const int64_t begin = chunk * base + std::min(chunk, rem);
    const int64_t end = begin + base + (chunk < rem ? 1 : 0);
    std::vector<nn::SeqStepInput>& inputs =
        chunk_inputs_[static_cast<size_t>(chunk)];
    inputs.clear();
    for (int64_t k = begin; k < end; ++k) {
      const int64_t slot = active_idx_[static_cast<size_t>(k)];
      ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
      inputs.push_back({seq.next_token, seq.pos, pool_->slot_views(slot),
                        logits_.data() + static_cast<size_t>(slot) * vocab});
    }
    if (util::MaybeInjectFault(util::FaultSite::kWorkerStall)) {
      // A wedged worker: the whole tick overruns its budget, which is what
      // the server's watchdog exists to catch.
      std::this_thread::sleep_for(std::chrono::milliseconds(kInjectedStallMs));
    }
    nn::BatchedDecodeStep(*model_, inputs.data(),
                          static_cast<int64_t>(inputs.size()),
                          &(*scratch)[static_cast<size_t>(lane)]);
    // Advance and sample inside the worker: each sequence belongs to
    // exactly one chunk, so this mutation is race-free, and sampling here
    // parallelizes the top-k/top-p work along with the forward pass.
    for (int64_t k = begin; k < end; ++k) {
      const int64_t slot = active_idx_[static_cast<size_t>(k)];
      ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
      ++seq.pos;
      const auto& req = seq.state->request;
      float* lane_logits = logits_.data() + static_cast<size_t>(slot) * vocab;
      // Mirrors sample::GenerateWithSession: a sampling step happens only
      // once the whole prompt is in and while the window has room.
      if (seq.pos >= static_cast<int64_t>(req.prompt.size()) &&
          seq.pos < max_len) {
        if (util::MaybeInjectFault(util::FaultSite::kDecodeNaN) ||
            poison_all_.load(std::memory_order_acquire)) {
          lane_logits[0] = std::numeric_limits<float>::quiet_NaN();
        }
        // Poisoned-lane guard: NaN/Inf logits retire this lane alone; its
        // logits buffer and KV slot are private, so batch mates are
        // bit-exact whatever happened here.
        if (!LaneFinite(lane_logits, vocab)) {
          seq.faulted = true;
          seq.sampled = -1;
        } else {
          seq.sampled = sample::SampleFromLogits(lane_logits, vocab,
                                                 req.sampler, &seq.rng);
        }
      } else {
        seq.sampled = -1;
      }
    }
  });

  // Post-barrier bookkeeping, in slot order for deterministic event order.
  for (int64_t k = 0; k < n_active; ++k) {
    const int64_t slot = active_idx_[static_cast<size_t>(k)];
    ActiveSeq& seq = seqs_[static_cast<size_t>(slot)];
    const auto& req = seq.state->request;
    if (seq.faulted) {
      Retire(slot, FinishReason::kFault,
             util::Status::Internal("non-finite logits in decode lane (slot " +
                                    std::to_string(slot) + ")"),
             out);
      continue;
    }
    if (seq.sampled >= 0) {
      ++seq.generated;
      {
        std::lock_guard<std::mutex> lock(seq.state->mu);
        seq.state->tokens.push_back(seq.sampled);
        if (seq.generated == 1) {
          // TTFT: submit -> first sampled token, the latency interactive
          // tenants' SLOs are pinned to.
          seq.state->first_token_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - seq.state->submit_time)
                  .count();
        }
      }
      if (seq.state->trace) {
        seq.state->trace->Event(
            "step", seq.state->decode_span.load(std::memory_order_acquire),
            seq.sampled);
      }
      out->tokens.push_back({seq.state, seq.sampled});
      // Finish precedence mirrors the single-stream generation loop:
      // stop token, then length, then window exhaustion.
      if (seq.sampled == req.stop_token) {
        Retire(slot, FinishReason::kStop, util::Status::OK(), out);
      } else if (seq.generated >= req.max_new_tokens) {
        Retire(slot, FinishReason::kLength, util::Status::OK(), out);
      } else if (seq.pos >= max_len) {
        Retire(slot, FinishReason::kWindow, util::Status::OK(), out);
      } else {
        seq.next_token = seq.sampled;
      }
    } else if (seq.pos < static_cast<int64_t>(req.prompt.size())) {
      seq.next_token = req.prompt[static_cast<size_t>(seq.pos)];  // prefill
    } else {
      // Prompt consumed but the window is full: nothing left to sample.
      Retire(slot, FinishReason::kWindow, util::Status::OK(), out);
    }
  }
}

void BatchScheduler::DrainActive(FinishReason reason,
                                 const util::Status& status, TickOutput* out) {
  for (int64_t slot = 0; slot < pool_->num_slots(); ++slot) {
    if (seqs_[static_cast<size_t>(slot)].occupied) {
      Retire(slot, reason, status, out);
    }
  }
}

}  // namespace llm::serve
