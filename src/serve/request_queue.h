// Thread-safe bounded admission queue for the inference server.
//
// Producers (any thread calling InferenceServer::Submit) push shared
// request states; the single scheduler thread pops them. The bound is the
// server's overload valve: a full queue rejects with ResourceExhausted
// instead of letting latency grow without limit (load shedding at
// admission, the standard serving-system discipline).
#ifndef TFMR_SERVE_REQUEST_QUEUE_H_
#define TFMR_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "serve/request.h"
#include "util/status.h"

namespace llm::serve {

class RequestQueue {
 public:
  /// `capacity` must be positive.
  explicit RequestQueue(size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues; returns ResourceExhausted when full, FailedPrecondition
  /// after Close().
  util::Status Push(std::shared_ptr<RequestState> state);

  /// Non-blocking pop; false when empty.
  bool TryPop(std::shared_ptr<RequestState>* out);

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false).
  bool WaitPop(std::shared_ptr<RequestState>* out);

  /// Rejects future pushes and wakes blocked poppers. Items already queued
  /// can still be popped (the server fails them on shutdown instead).
  void Close();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<RequestState>> items_;
  bool closed_ = false;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_REQUEST_QUEUE_H_
