// Thread-safe bounded admission queue for the inference server, with one
// FIFO lane per tenant class.
//
// Producers (any thread calling InferenceServer::Submit) push shared
// request states; the single scheduler thread pops them. The bound is the
// server's overload valve: a full queue rejects with ResourceExhausted
// instead of letting latency grow without limit (load shedding at
// admission, the standard serving-system discipline).
//
// Multi-tenancy adds two disciplines on top of the bound (both preserve
// FIFO order WITHIN a class):
//
//   Pop order   TryPop/WaitPop serve strict priority (lowest class index
//               first); TryPopFair serves the backlogged class with the
//               smallest active/weight ratio — the weighted-fair lane
//               allocation the continuous-batching scheduler admits by.
//   Eviction    EvictLowerPriority removes the NEWEST request of the
//               highest-index sheddable class to make room for a
//               higher-priority admission when the queue is full —
//               newest-first so older bulk requests keep their place.
#ifndef TFMR_SERVE_REQUEST_QUEUE_H_
#define TFMR_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>

#include "serve/request.h"
#include "serve/tenant.h"
#include "util/status.h"

namespace llm::serve {

class RequestQueue {
 public:
  /// `capacity` must be positive; it bounds the TOTAL across classes.
  explicit RequestQueue(size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues into the lane of state->request.tenant; returns
  /// ResourceExhausted when full, FailedPrecondition after Close().
  util::Status Push(std::shared_ptr<RequestState> state);

  /// Non-blocking pop in strict priority order (FIFO within a class);
  /// false when empty.
  bool TryPop(std::shared_ptr<RequestState>* out);

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false). Same order as TryPop.
  bool WaitPop(std::shared_ptr<RequestState>* out);

  /// Weighted-fair pop: among non-empty classes, serves the one with the
  /// smallest active[cls]/weight ratio (ties to the higher-priority
  /// class). `active` is the scheduler's current per-class lane counts.
  /// FIFO within the chosen class; false when empty.
  bool TryPopFair(const int64_t (&active)[kNumTenantClasses],
                  const TenantPolicy& policy,
                  std::shared_ptr<RequestState>* out);

  /// Pops the oldest request of exactly `tenant`; false if that lane is
  /// empty. The preemption path uses this after PeekTopClass.
  bool TryPopClass(TenantClass tenant, std::shared_ptr<RequestState>* out);

  /// Highest-priority (lowest-index) non-empty class, or -1 when empty.
  int PeekTopClass() const;

  /// Removes and returns the NEWEST queued request of the highest-index
  /// sheddable class whose index is strictly greater than
  /// `incoming_class`; nullptr when no such victim exists. The caller
  /// completes the victim (FinishReason::kPreempted) and retries Push.
  std::shared_ptr<RequestState> EvictLowerPriority(TenantClass incoming_class,
                                                   const TenantPolicy& policy);

  /// Rejects future pushes and wakes blocked poppers. Items already queued
  /// can still be popped (the server fails them on shutdown instead).
  void Close();

  size_t size() const;
  size_t size_of_class(TenantClass tenant) const;
  size_t capacity() const { return capacity_; }

 private:
  /// Lowest-index non-empty lane; -1 when all empty. Caller holds mu_.
  int TopClassLocked() const;
  bool PopClassLocked(int cls, std::shared_ptr<RequestState>* out);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<RequestState>> lanes_[kNumTenantClasses];
  size_t total_ = 0;
  bool closed_ = false;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_REQUEST_QUEUE_H_
