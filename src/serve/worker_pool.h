// Fixed pool of worker threads executing per-tick fan-out work.
//
// The scheduler calls Run(n, fn) once per tick; workers claim indices
// 0..n-1 via an atomic counter and Run returns only after every index has
// been processed (a full barrier — required because the scheduler samples
// from the logits the workers just produced). With zero threads Run
// executes inline on the caller, which is the right configuration on a
// single-core host: the batched decode step already extracts the
// throughput win within one thread, and an extra hop through a worker
// thread would only add context switches.
#ifndef TFMR_SERVE_WORKER_POOL_H_
#define TFMR_SERVE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llm::serve {

class WorkerPool {
 public:
  /// Spawns `num_threads` workers; 0 means run everything inline.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of execution lanes (>= 1); fn's second argument is in
  /// [0, lanes) and identifies which lane runs the item, letting callers
  /// hand each lane its own scratch buffers.
  int lanes() const { return lanes_; }

  /// Executes fn(i, lane) for every i in [0, n); returns when all are
  /// done. Must be called from one thread at a time (the scheduler).
  void Run(int64_t n, const std::function<void(int64_t, int)>& fn);

 private:
  void WorkerMain(int lane);

  const int lanes_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int64_t, int)>* fn_ = nullptr;  // guarded by mu_
  int64_t n_ = 0;                                          // guarded by mu_
  int64_t busy_ = 0;  // workers inside the claim loop, guarded by mu_
  uint64_t epoch_ = 0;                                     // guarded by mu_
  bool stop_ = false;                                      // guarded by mu_
  std::atomic<int64_t> next_{0};
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_WORKER_POOL_H_
