#include "serve/worker_pool.h"

namespace llm::serve {

WorkerPool::WorkerPool(int num_threads)
    : lanes_(num_threads > 0 ? num_threads : 1) {
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::Run(int64_t n, const std::function<void(int64_t, int)>& fn) {
  if (n <= 0) return;
  if (threads_.empty()) {
    for (int64_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  next_.store(0, std::memory_order_relaxed);
  ++epoch_;
  work_cv_.notify_all();
  // Completion means every participating worker has *left* the claim
  // loop, not merely that all indices were claimed: a worker still inside
  // the loop could otherwise race the next Run's reset of next_ and steal
  // its indices under a stale fn.
  done_cv_.wait(lock, [this] {
    return busy_ == 0 && next_.load(std::memory_order_relaxed) >= n_;
  });
  fn_ = nullptr;
}

void WorkerPool::WorkerMain(int lane) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const std::function<void(int64_t, int)>* fn = fn_;
    const int64_t n = n_;
    ++busy_;
    lock.unlock();
    while (true) {
      const int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i, lane);
    }
    lock.lock();
    if (--busy_ == 0) done_cv_.notify_all();
  }
}

}  // namespace llm::serve
