// InferenceServer: the user-facing facade of the serving runtime.
//
//   InferenceServer server(&model, options);
//   server.Start();
//   auto id = server.Submit({.prompt = {...}, .seed = 7});
//   ...
//   auto result = server.Wait(*id);
//
// Wiring: Submit (any thread) validates and pushes into the bounded
// RequestQueue; one scheduler thread admits requests into free
// KvCachePool slots and drives BatchScheduler::Tick in a loop, fanning
// the fused forward pass across the WorkerPool; completions are published
// through per-request condition variables and streamed tokens through the
// request's on_token callback (invoked on the scheduler thread).
//
// Overloaded? Submit returns ResourceExhausted immediately — callers
// shed or retry; queued work never grows unboundedly stale.
#ifndef TFMR_SERVE_INFERENCE_SERVER_H_
#define TFMR_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/batched_decode.h"
#include "nn/transformer.h"
#include "serve/batch_scheduler.h"
#include "serve/kv_cache_pool.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/worker_pool.h"
#include "util/status.h"

namespace llm::serve {

struct ServerOptions {
  /// Maximum in-flight sequences == KV cache slots pre-allocated.
  int64_t max_batch_size = 8;
  /// Worker threads for the batched forward pass. 0 runs the forward
  /// inline on the scheduler thread — the right choice on a single-core
  /// host, where batching (not fan-out) provides the speedup. Use roughly
  /// one worker per physical core otherwise.
  int num_workers = 0;
  /// Bounded admission: Submit beyond this many queued requests returns
  /// ResourceExhausted.
  size_t queue_capacity = 64;
};

/// Point-in-time server statistics. Latency percentiles are computed over
/// a sliding window of recently completed requests.
struct ServerStats {
  size_t queue_depth = 0;
  int64_t active_slots = 0;
  int64_t total_slots = 0;
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // queue-full Submit attempts
  uint64_t completed = 0;  // finished OK (stop/length/window)
  uint64_t cancelled = 0;
  uint64_t expired = 0;    // deadline exceeded
  uint64_t total_tokens = 0;  // generated tokens since Start
  double tokens_per_sec = 0.0;  // total_tokens over wall time since Start
  double p50_latency_ms = 0.0;  // submit -> completion, finished requests
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

class InferenceServer {
 public:
  /// `model` must outlive the server.
  InferenceServer(const nn::GPTModel* model, const ServerOptions& options);
  ~InferenceServer();  // implies Shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the scheduler (and worker) threads. Requests submitted before
  /// Start sit in the queue — useful for deterministic tests.
  void Start();

  /// Stops the scheduler: queued requests fail with Cancelled, in-flight
  /// sequences retire with partial output, threads are joined. Idempotent.
  void Shutdown();

  /// Validates and enqueues. Errors: InvalidArgument (empty prompt,
  /// oversized prompt, bad token ids), ResourceExhausted (queue full),
  /// FailedPrecondition (after Shutdown).
  util::StatusOr<RequestId> Submit(GenerateRequest request);

  /// Requests cancellation; the scheduler retires the sequence at the next
  /// tick (or at admission if still queued). False if the id is unknown or
  /// already finished.
  bool Cancel(RequestId id);

  /// Blocks until the request finishes and returns its result, forgetting
  /// the id. NotFound for unknown (or already-collected) ids. Must not be
  /// called from an on_token callback.
  util::StatusOr<RequestResult> Wait(RequestId id);

  /// Submit + Wait convenience; admission failures come back in
  /// RequestResult::status.
  RequestResult GenerateBlocking(GenerateRequest request);

  ServerStats Stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  void SchedulerMain();
  /// Pops as many queued requests into free slots as possible; returns the
  /// number admitted. Queued requests that are already cancelled or past
  /// deadline complete immediately without occupying a slot.
  int64_t AdmitFromQueue();
  void Publish(const TickOutput& out);
  void CompleteNow(const std::shared_ptr<RequestState>& state,
                   FinishReason reason, util::Status status);
  void RecordFinish(const RequestState& state, FinishReason reason,
                    double total_ms);

  const nn::GPTModel* model_;
  const ServerOptions options_;
  RequestQueue queue_;
  KvCachePool pool_;
  BatchScheduler scheduler_;
  WorkerPool workers_;
  std::vector<nn::BatchedScratch> scratch_;  // one per worker lane
  TickOutput tick_out_;

  std::thread scheduler_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;   // guarded by lifecycle_mu_
  bool finished_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;

  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex registry_mu_;
  std::unordered_map<RequestId, std::shared_ptr<RequestState>> registry_;

  mutable std::mutex stats_mu_;
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t expired_ = 0;
  uint64_t total_tokens_ = 0;
  std::chrono::steady_clock::time_point started_at_;
  std::vector<double> latency_ring_;  // recent completion latencies, ms
  size_t latency_next_ = 0;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_INFERENCE_SERVER_H_
