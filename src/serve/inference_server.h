// InferenceServer: the user-facing facade of the serving runtime.
//
//   InferenceServer server(&model, options);
//   server.Start();
//   auto id = server.Submit({.prompt = {...}, .seed = 7});
//   ...
//   auto result = server.Wait(*id);
//
// Wiring: Submit (any thread) validates and pushes into the bounded
// RequestQueue; one scheduler thread admits requests into free
// KvCachePool slots and drives BatchScheduler::Tick in a loop, fanning
// the fused forward pass across the WorkerPool; completions are published
// through per-request condition variables and streamed tokens through the
// request's on_token callback (invoked on the scheduler thread).
//
// Overloaded? Submit returns ResourceExhausted immediately — callers
// shed or retry (SubmitWithRetry wraps the standard capped-backoff retry
// loop); queued work never grows unboundedly stale. Admission is also
// deadline-aware: a queued request whose deadline has passed — or cannot
// be met at the current measured decode rate — is rejected at admission
// instead of wasting a KV slot.
//
// Failure model (DESIGN.md §10): one misbehaving request must never take
// down the batch. Poisoned lanes (NaN/Inf logits), throwing on_token
// callbacks, and watchdog-detected stalls all retire only the affected
// request with FinishReason::kFault / an Internal status (counted in
// ServerStats::failed); leaked KV slots are swept back into the pool.
// Health() reports the aggregate state; Drain() is the graceful way out.
#ifndef TFMR_SERVE_INFERENCE_SERVER_H_
#define TFMR_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/batched_decode.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "serve/batch_scheduler.h"
#include "serve/kv_cache_pool.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/tenant.h"
#include "serve/worker_pool.h"
#include "util/status.h"

namespace llm::serve {

struct ServerOptions {
  /// Maximum in-flight sequences == KV cache slots pre-allocated.
  int64_t max_batch_size = 8;
  /// Worker threads for the batched forward pass. 0 runs the forward
  /// inline on the scheduler thread — the right choice on a single-core
  /// host, where batching (not fan-out) provides the speedup. Use roughly
  /// one worker per physical core otherwise.
  int num_workers = 0;
  /// Bounded admission: Submit beyond this many queued requests returns
  /// ResourceExhausted.
  size_t queue_capacity = 64;
  /// Scheduler watchdog: a tick still running after this long is declared
  /// stalled — in-flight requests fail fast with Internal (instead of
  /// leaving every Wait() hung behind a wedged worker) and Health()
  /// reports kDegraded. Zero disables the watchdog. Budget generously:
  /// a false positive fails healthy requests.
  std::chrono::milliseconds tick_budget{0};
  /// Per-tenant-class quotas, fair-share weights, and shed/preempt
  /// eligibility (tenant.h). The default marks batch/background sheddable
  /// and preemptible with unlimited quotas, so a server whose clients
  /// never tag requests (everything kChat) behaves exactly as before.
  TenantPolicy tenants = TenantPolicy::Default();
  /// Optional decode-rate hint (ms per sequence-step), e.g. the previous
  /// server's measured estimate carried across a replica reload. While the
  /// EMA is still warming up, deadline-feasibility admission uses the
  /// smaller of this hint and the fastest observed tick, so a freshly
  /// reloaded server sheds infeasible deadlines from its very first
  /// request instead of admitting doomed work for 8 ticks. Zero = no hint.
  double est_ms_per_step_seed = 0.0;
};

/// Aggregate server condition, for load balancers and operators.
enum class ServerHealth {
  kHealthy = 0,   // serving normally
  kDegraded,      // serving, but at least one fault was isolated
                  // (poisoned lane, stalled tick, leaked slot, throwing
                  // callback) — sticky until shutdown
  kDraining,      // Drain()/Shutdown() begun: no new admissions
};

const char* ServerHealthName(ServerHealth health);

/// Client-side retry policy for SubmitWithRetry: capped exponential
/// backoff with deterministic jitter, retrying only ResourceExhausted
/// (overload) rejections.
struct RetryOptions {
  int max_attempts = 5;
  std::chrono::milliseconds initial_backoff{2};
  std::chrono::milliseconds max_backoff{50};
  /// Seed of the jitter stream: retries are reproducible, and distinct
  /// seeds decorrelate clients so backed-off retries don't re-collide.
  uint64_t jitter_seed = 0;
};

/// Point-in-time server statistics. Latency percentiles are estimated
/// from an obs::Histogram over every completed request since Start —
/// exact to within one bucket width (~19% relative), no sample retention.
///
/// Conservation invariant (asserted by the chaos harness): every accepted
/// request reaches exactly one terminal state, so at quiescence
/// `submitted == completed + cancelled + expired + failed + preempted`,
/// and `free_slots == total_slots`. The same identity holds per class.
///
/// Per-tenant-class slice of the counters, plus the latency percentiles
/// interactive SLOs are written against: TTFT (submit -> first token) and
/// TPOT (mean inter-token gap after the first).
struct TenantClassStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;        // queue-full Submit rejections (no victim)
  uint64_t quota_rejected = 0;  // token-bucket rejections at Submit
  uint64_t shed = 0;            // evicted from the queue by a higher class
  uint64_t preempted = 0;       // terminal kPreempted (shed + mid-decode
                                // lane preemptions; lane share = preempted
                                // - shed)
  uint64_t completed = 0;
  uint64_t cancelled = 0;
  uint64_t expired = 0;
  uint64_t failed = 0;
  uint64_t tokens = 0;          // streamed tokens delivered
  double p50_ttft_ms = 0.0;
  double p99_ttft_ms = 0.0;
  double p50_tpot_ms = 0.0;
  double p99_tpot_ms = 0.0;
};

struct ServerStats {
  size_t queue_depth = 0;
  int64_t active_slots = 0;
  int64_t total_slots = 0;
  int64_t free_slots = 0;
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // queue-full Submit attempts (shed load)
  uint64_t completed = 0;  // finished OK (stop/length/window)
  uint64_t cancelled = 0;
  uint64_t expired = 0;    // deadline exceeded (in queue, in flight, or
                           // infeasible at admission)
  uint64_t failed = 0;     // isolated faults (kFault / Internal)
  uint64_t preempted = 0;  // kPreempted: shed from the queue or displaced
                           // mid-decode for a higher-priority tenant
  uint64_t stalled_ticks = 0;    // watchdog detections
  uint64_t leaks_repaired = 0;   // KV slots swept back into the pool
  uint64_t total_tokens = 0;  // generated tokens since Start
  double tokens_per_sec = 0.0;  // total_tokens over wall time since Start
  /// EMA of per-sequence decode-step cost; feeds deadline-aware admission.
  /// Zero until enough ticks have been observed.
  double est_ms_per_step = 0.0;
  double p50_latency_ms = 0.0;  // submit -> completion, finished requests
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  ServerHealth health = ServerHealth::kHealthy;
  /// Per-tenant-class breakdown of the counters above.
  TenantClassStats classes[kNumTenantClasses];
};

class InferenceServer {
 public:
  /// `model` must outlive the server.
  InferenceServer(const nn::GPTModel* model, const ServerOptions& options);
  ~InferenceServer();  // implies Shutdown()

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the scheduler (and worker/watchdog) threads. Requests
  /// submitted before Start sit in the queue — useful for deterministic
  /// tests.
  void Start();

  /// Stops the scheduler: queued requests fail with Cancelled, in-flight
  /// sequences retire with partial output, threads are joined. Idempotent,
  /// and safe against concurrent Submit: every accepted request still
  /// reaches a terminal state, so Wait() after Shutdown always returns.
  void Shutdown();

  /// Graceful shutdown: stops admission immediately (Submit returns
  /// FailedPrecondition), lets queued and in-flight requests finish, then
  /// shuts down. Returns OK if everything finished within `timeout`,
  /// DeadlineExceeded if the timeout lapsed first (the remainder is
  /// cancelled by the Shutdown that follows either way).
  util::Status Drain(std::chrono::milliseconds timeout);

  /// Aggregate condition: kDraining once Drain/Shutdown has begun,
  /// kDegraded after any isolated fault, kHealthy otherwise.
  ServerHealth Health() const;

  /// Validates and enqueues. Errors: InvalidArgument (empty prompt,
  /// oversized prompt, bad token ids), ResourceExhausted (queue full),
  /// FailedPrecondition (after Drain/Shutdown).
  util::StatusOr<RequestId> Submit(GenerateRequest request);

  /// Submit with a capped-exponential-backoff retry loop around
  /// ResourceExhausted rejections (deterministic jitter from
  /// `retry.jitter_seed`). Any other error — and overload persisting past
  /// the final attempt — is returned as-is. Blocks between attempts; call
  /// from client threads, never from an on_token callback.
  util::StatusOr<RequestId> SubmitWithRetry(const GenerateRequest& request,
                                            const RetryOptions& retry);

  /// Requests cancellation; the scheduler retires the sequence at the next
  /// tick (or at admission if still queued). False if the id is unknown or
  /// already finished. True means the cancel was requested, not that the
  /// request will necessarily finish as kCancelled — it may complete
  /// normally in the same tick the cancel raced.
  bool Cancel(RequestId id);

  /// Blocks until the request finishes and returns its result, forgetting
  /// the id. NotFound for unknown (or already-collected) ids. Must not be
  /// called from an on_token callback. Guaranteed to return (never hang)
  /// regardless of concurrent Cancel/Drain/Shutdown.
  util::StatusOr<RequestResult> Wait(RequestId id);

  /// Non-blocking Wait: kReady fills `*out` and forgets the id (exactly
  /// like a returned Wait), kPending leaves the id live for later polls,
  /// kUnknown means the id was never accepted or was already collected.
  /// The poll primitive replica routers drive hedging and failover from.
  enum class PollOutcome { kReady, kPending, kUnknown };
  PollOutcome Poll(RequestId id, RequestResult* out);

  /// Cheap load signal for routers: queued plus in-flight requests. A
  /// couple of relaxed reads — safe from any thread, no locks taken.
  int64_t ApproxLoad() const;

  /// Chaos hook: while on, every decode lane's logits are poisoned to NaN
  /// before the numeric-health check, so each in-flight request retires
  /// with kFault — a whole-replica "model gone bad", as opposed to the
  /// single-lane kDecodeNaN injection site. Synchronized (atomic flag read
  /// by worker lanes), so chaos schedules stay TSan-clean.
  void DebugPoisonDecode(bool on);

  /// Submit + Wait convenience; admission failures come back in
  /// RequestResult::status.
  RequestResult GenerateBlocking(GenerateRequest request);

  ServerStats Stats() const;

  const ServerOptions& options() const { return options_; }

  /// Direct view of the completion-latency histogram behind the Stats()
  /// percentiles, for exporters that want counts and means too.
  obs::HistogramSnapshot LatencySnapshot() const {
    return latency_hist_.Snapshot();
  }

 private:
  void SchedulerMain();
  void WatchdogMain();
  /// Pops as many queued requests into free slots as possible; returns the
  /// number admitted. Queued requests that are already cancelled, past
  /// deadline, or whose deadline is infeasible at the measured decode rate
  /// complete immediately without occupying a slot.
  int64_t AdmitFromQueue();
  /// Admission gate for one popped request: true to admit, false if it was
  /// completed in place (cancelled / expired / infeasible deadline).
  bool PrepareAdmission(const std::shared_ptr<RequestState>& state);
  /// Registers the request as in-flight (for the watchdog) and admits it.
  void AdmitState(std::shared_ptr<RequestState> state);
  void Publish(const TickOutput& out);
  void CompleteNow(const std::shared_ptr<RequestState>& state,
                   FinishReason reason, util::Status status);
  void RecordFinish(const RequestState& state, FinishReason reason,
                    double total_ms);

  const nn::GPTModel* model_;
  const ServerOptions options_;
  RequestQueue queue_;
  KvCachePool pool_;
  BatchScheduler scheduler_;
  WorkerPool workers_;
  std::vector<nn::BatchedScratch> scratch_;  // one per worker lane
  TickOutput tick_out_;

  std::thread scheduler_thread_;
  std::thread watchdog_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;   // guarded by lifecycle_mu_
  bool finished_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;
  /// Set by Drain/Shutdown before the queue closes; Submit's fast reject.
  std::atomic<bool> admission_closed_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> degraded_{false};

  // Watchdog heartbeat: tick_seq_ is odd while a tick is executing (the
  // scheduler bumps it entering and leaving Tick), tick_start_ns_ is the
  // running tick's start on the steady clock.
  std::atomic<uint64_t> tick_seq_{0};
  std::atomic<int64_t> tick_start_ns_{0};
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;

  /// Requests currently holding a KV slot, for the watchdog's fail-fast
  /// path. Added at admission, removed when their retirement publishes.
  mutable std::mutex inflight_mu_;
  std::unordered_map<RequestId, std::shared_ptr<RequestState>> inflight_;

  // Decode-rate estimate, scheduler thread only; mirrored into an atomic
  // for Stats(). `est_floor_ms_` is the optimistic floor (the fastest
  // observed tick, seeded from options.est_ms_per_step_seed) used for
  // feasibility shedding while the EMA warms up.
  double est_ms_per_step_ = 0.0;
  double est_floor_ms_ = 0.0;
  int64_t ticks_observed_ = 0;
  std::atomic<double> est_ms_per_step_pub_{0.0};

  /// Per-class admission quota buckets (tenant.h); indexed by TenantClass.
  /// TokenBucket is not thread-safe and Submit runs on any thread, hence
  /// the mutex.
  std::mutex quota_mu_;
  std::vector<TokenBucket> quota_;

  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex registry_mu_;
  std::unordered_map<RequestId, std::shared_ptr<RequestState>> registry_;

  mutable std::mutex stats_mu_;
  std::condition_variable drain_cv_;  // with stats_mu_: terminal-count waits
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t completed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t expired_ = 0;
  uint64_t failed_ = 0;
  uint64_t preempted_ = 0;
  /// Per-class counter slices (percentile fields unused here; Stats()
  /// fills them from the histograms below).
  TenantClassStats class_counts_[kNumTenantClasses];
  std::atomic<uint64_t> stalled_ticks_{0};
  std::atomic<uint64_t> leaks_repaired_{0};
  uint64_t total_tokens_ = 0;
  std::chrono::steady_clock::time_point started_at_;
  /// Completion latencies of finished-OK requests; Stats() reads its
  /// percentiles. Atomic buckets — recorded outside any lock.
  obs::Histogram latency_hist_;
  /// Per-tenant-class TTFT (submit -> first token) and TPOT (mean
  /// inter-token gap) distributions, the quantities per-class SLOs pin.
  obs::Histogram ttft_hist_[kNumTenantClasses];
  obs::Histogram tpot_hist_[kNumTenantClasses];
  /// Scheduler-tick profiling sink ("serve.tick_ms" in the global
  /// registry); only written while obs::EnableProfiling(true).
  obs::Histogram* tick_hist_;
};

/// Writes every ServerStats field into `registry` as a gauge named
/// `<prefix>.<field>` (e.g. "serve.completed", "serve.p99_latency_ms").
/// Benches call this right before MetricsRegistry::JsonSnapshot so the
/// METRICS line carries the serving counters alongside everything else.
void ExportServerStats(const ServerStats& stats, const std::string& prefix,
                       obs::MetricsRegistry* registry);

}  // namespace llm::serve

#endif  // TFMR_SERVE_INFERENCE_SERVER_H_
