#include "serve/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace llm::serve {
namespace {

// Zipf inverse-CDF table size cap: enough support to show the heavy tail,
// small enough that building the table is free at bench scale.
constexpr int64_t kMaxZipfSupport = 4096;

}  // namespace

WorkloadGenerator::WorkloadGenerator(std::vector<TenantLoadSpec> specs,
                                     const nn::GPTConfig& config,
                                     uint64_t seed)
    : specs_(std::move(specs)),
      vocab_size_(config.vocab_size),
      max_seq_len_(config.max_seq_len) {
  LLM_CHECK(!specs_.empty());
  for (TenantLoadSpec& spec : specs_) {
    spec.max_prompt_tokens =
        std::max<int64_t>(1, std::min(spec.max_prompt_tokens, max_seq_len_));
    spec.max_output_tokens = std::max<int64_t>(1, spec.max_output_tokens);
    spec.burst_amplitude = std::clamp(spec.burst_amplitude, 0.0, 1.0);
  }
  // Zipf inverse CDF over a capped support, weight 1/rank^s.
  const int64_t support = std::min(vocab_size_, kMaxZipfSupport);
  const double s = specs_.front().zipf_s;
  zipf_cdf_.resize(static_cast<size_t>(support));
  double total = 0.0;
  for (int64_t k = 0; k < support; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    zipf_cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : zipf_cdf_) c /= total;

  util::Rng root(seed);
  arrival_rngs_.reserve(specs_.size());
  content_rngs_.reserve(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    arrival_rngs_.push_back(root.Fork());
    content_rngs_.push_back(root.Fork());
  }
}

int64_t WorkloadGenerator::SampleLength(util::Rng* rng, double log_mean,
                                        double log_sigma, int64_t cap) const {
  const int64_t len =
      static_cast<int64_t>(std::llround(std::exp(rng->Normal(log_mean,
                                                             log_sigma))));
  return std::clamp<int64_t>(len, 1, cap);
}

int64_t WorkloadGenerator::SampleZipfToken(util::Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto idx = it == zipf_cdf_.end() ? zipf_cdf_.size() - 1
                                         : static_cast<size_t>(
                                               it - zipf_cdf_.begin());
  return static_cast<int64_t>(idx);
}

GenerateRequest WorkloadGenerator::Sample(size_t spec_index) {
  LLM_CHECK_LT(spec_index, specs_.size());
  const TenantLoadSpec& spec = specs_[spec_index];
  util::Rng& rng = content_rngs_[spec_index];

  GenerateRequest request;
  request.tenant = spec.tenant;
  const int64_t prompt_len = SampleLength(
      &rng, spec.prompt_log_mean, spec.prompt_log_sigma, spec.max_prompt_tokens);
  request.prompt.reserve(static_cast<size_t>(prompt_len));
  for (int64_t t = 0; t < prompt_len; ++t) {
    request.prompt.push_back(SampleZipfToken(&rng));
  }
  request.max_new_tokens = SampleLength(
      &rng, spec.output_log_mean, spec.output_log_sigma,
      spec.max_output_tokens);
  request.sampler.temperature = static_cast<float>(spec.temperature);
  request.timeout = spec.deadline;
  request.seed = rng.NextU64();
  return request;
}

std::vector<Arrival> WorkloadGenerator::OpenLoopSchedule(double duration_ms) {
  std::vector<Arrival> schedule;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const TenantLoadSpec& spec = specs_[i];
    if (spec.arrivals_per_sec <= 0.0) continue;
    util::Rng& rng = arrival_rngs_[i];
    // Lewis-Shedler thinning: draw candidate arrivals from a homogeneous
    // Poisson process at the envelope's peak rate, keep each with
    // probability rate(t)/rate_max. Exact for any bounded rate function.
    const double rate_max_per_ms =
        spec.arrivals_per_sec * (1.0 + spec.burst_amplitude) / 1000.0;
    double t_ms = 0.0;
    while (true) {
      t_ms += -std::log(1.0 - rng.Uniform()) / rate_max_per_ms;
      if (t_ms >= duration_ms) break;
      const double envelope =
          1.0 + spec.burst_amplitude *
                    std::sin(2.0 * M_PI * t_ms /
                             std::max(spec.burst_period_ms, 1.0));
      const double accept_p =
          envelope / (1.0 + spec.burst_amplitude);
      if (rng.Uniform() >= accept_p) continue;
      schedule.push_back({t_ms, Sample(i)});
    }
  }
  // Stable sort: same-time arrivals keep spec order, so the merged
  // schedule is a pure function of (specs, seed, duration).
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.at_ms < b.at_ms;
                   });
  return schedule;
}

TenantLoadSpec MakeChatSpec(double arrivals_per_sec) {
  TenantLoadSpec spec;
  spec.tenant = TenantClass::kChat;
  spec.arrivals_per_sec = arrivals_per_sec;
  spec.burst_amplitude = 0.8;     // spiky interactive traffic
  spec.burst_period_ms = 400.0;
  spec.prompt_log_mean = 1.4;     // short prompts, median ~4 tokens
  spec.prompt_log_sigma = 0.5;
  spec.max_prompt_tokens = 12;
  spec.output_log_mean = 1.8;     // short replies
  spec.output_log_sigma = 0.5;
  spec.max_output_tokens = 12;
  spec.temperature = 0.8;
  return spec;
}

TenantLoadSpec MakeBatchSpec(double arrivals_per_sec) {
  TenantLoadSpec spec;
  spec.tenant = TenantClass::kBatch;
  spec.arrivals_per_sec = arrivals_per_sec;
  spec.burst_amplitude = 0.0;     // steady bulk pipeline
  spec.prompt_log_mean = 2.2;     // long documents, heavy tail
  spec.prompt_log_sigma = 0.7;
  spec.max_prompt_tokens = 24;
  spec.output_log_mean = 2.4;     // long summaries
  spec.output_log_sigma = 0.6;
  spec.max_output_tokens = 32;
  spec.temperature = 0.7;
  return spec;
}

TenantLoadSpec MakeBackgroundSpec(double arrivals_per_sec) {
  TenantLoadSpec spec;
  spec.tenant = TenantClass::kBackground;
  spec.arrivals_per_sec = arrivals_per_sec;
  spec.burst_amplitude = 0.0;
  spec.prompt_log_mean = 1.8;
  spec.prompt_log_sigma = 0.6;
  spec.max_prompt_tokens = 16;
  spec.output_log_mean = 2.2;     // long eval generations
  spec.output_log_sigma = 0.6;
  spec.max_output_tokens = 32;
  spec.temperature = 1.0;
  return spec;
}

}  // namespace llm::serve
