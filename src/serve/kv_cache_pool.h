// Pre-allocated pool of per-sequence KV cache slots.
//
// All K/V storage for all slots is one contiguous slab allocated at
// construction and sized for the model window, so admitting a request is a
// free-list pop and retiring it is a push — the steady-state serving loop
// never touches the allocator, however many requests flow through.
//
// Slot layout mirrors GptInferenceSession's private slab: per slot,
// n_layer x {keys, values} planes of [max_seq_len, d_model] rows. A leased
// slot's rows are not zeroed on Acquire; the decode step overwrites row
// `position` before reading it, so stale rows from the previous tenant are
// never observed.
//
// Threading: lease/release bookkeeping is owned and driven by the
// scheduler thread only (worker threads touch the leased storage, not the
// free list). The one exception is free_count(), a relaxed atomic mirror
// of the free-list size kept so ServerStats can report slot occupancy from
// any thread without racing the scheduler.
#ifndef TFMR_SERVE_KV_CACHE_POOL_H_
#define TFMR_SERVE_KV_CACHE_POOL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "nn/gpt_inference.h"
#include "nn/transformer.h"

namespace llm::serve {

class KvCachePool {
 public:
  KvCachePool(const nn::GPTConfig& config, int64_t num_slots);

  KvCachePool(const KvCachePool&) = delete;
  KvCachePool& operator=(const KvCachePool&) = delete;

  int64_t num_slots() const { return num_slots_; }
  /// Safe to call from any thread (feeds ServerStats::free_slots).
  int64_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  /// Leases a slot; -1 when all slots are in flight.
  int64_t Acquire();

  /// Returns a leased slot to the free list. Aborts on double-release.
  void Release(int64_t slot);

  /// True iff `slot` is currently leased (scheduler thread only). The
  /// scheduler's leak-reclaim sweep cross-checks this against its own
  /// occupancy map: leased-but-unoccupied means the slot leaked.
  bool leased(int64_t slot) const;

  /// The n_layer KV views of a leased slot, for SeqStepInput::layers.
  nn::KvLayerView* slot_views(int64_t slot);

  /// Total slab size, for capacity logging.
  size_t bytes() const { return slab_.size() * sizeof(float); }

 private:
  const int64_t num_slots_;
  const int n_layer_;
  std::vector<float> slab_;
  std::vector<nn::KvLayerView> views_;  // [num_slots, n_layer]
  std::vector<int64_t> free_list_;
  std::vector<char> leased_;
  std::atomic<int64_t> free_count_{0};
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_KV_CACHE_POOL_H_
