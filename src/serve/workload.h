// Deterministic multi-tenant workload generator for serving benchmarks
// and overload tests.
//
// Real serving traffic is not Poisson-with-fixed-lengths: arrivals surge
// diurnally and in bursts, prompt/output lengths are heavy-tailed (a few
// huge requests dominate token volume), and different tenants mix
// open-loop traffic (arrivals keep coming whether or not the server keeps
// up — the regime where overload happens) with closed-loop clients (the
// next request waits for the previous reply). This generator reproduces
// those shapes from a single seed:
//
//   Arrivals   Per-spec non-homogeneous Poisson process, rate(t) =
//              base_rate * (1 + amplitude * sin(2*pi*t / period)), sampled
//              by Lewis-Shedler thinning — a burst envelope standing in
//              for diurnal/spike structure. Closed-loop clients instead
//              call Sample() per request and pace themselves.
//   Lengths    Log-normal prompt and output token counts (clamped to
//              caps), the standard heavy-tail model for request sizes.
//   Content    Prompt token ids Zipf-distributed over the vocabulary via
//              a precomputed inverse CDF, mimicking natural-language
//              frequency skew (hot tokens dominate, mass in the tail).
//
// Everything derives from the constructor seed through forked util::Rng
// streams, one per spec: the same (specs, config, seed) triple yields an
// identical schedule — token-for-token — on every run, so an SLO
// regression in a bench is a real regression, not workload noise.
#ifndef TFMR_SERVE_WORKLOAD_H_
#define TFMR_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "nn/transformer.h"
#include "serve/request.h"
#include "util/rng.h"

namespace llm::serve {

/// One tenant's traffic shape. Defaults model an interactive chat class;
/// see MakeChatSpec/MakeBatchSpec/MakeBackgroundSpec for tuned presets.
struct TenantLoadSpec {
  TenantClass tenant = TenantClass::kChat;

  /// Mean open-loop arrival rate (requests/sec) before the burst envelope.
  double arrivals_per_sec = 4.0;
  /// Burst envelope: rate(t) = arrivals_per_sec * (1 + amplitude *
  /// sin(2*pi*t/period)). amplitude in [0, 1]; 0 = homogeneous Poisson.
  double burst_amplitude = 0.0;
  double burst_period_ms = 1000.0;

  /// Log-normal prompt length: exp(Normal(log_mean, log_sigma)) tokens,
  /// clamped to [1, max_prompt_tokens].
  double prompt_log_mean = 1.6;   // median ~5 tokens
  double prompt_log_sigma = 0.6;
  int64_t max_prompt_tokens = 24;

  /// Log-normal requested output length, clamped to [1, max_output_tokens].
  double output_log_mean = 2.0;   // median ~7 tokens
  double output_log_sigma = 0.7;
  int64_t max_output_tokens = 24;

  /// Zipf exponent for prompt token ids (higher = more head-heavy).
  double zipf_s = 1.1;

  /// Stamped onto every generated request; 0 = no deadline.
  std::chrono::milliseconds deadline{0};
  double temperature = 1.0;
};

/// One scheduled open-loop arrival.
struct Arrival {
  double at_ms = 0.0;  // offset from schedule start
  GenerateRequest request;
};

class WorkloadGenerator {
 public:
  /// `config` bounds prompt lengths (max_seq_len) and token ids
  /// (vocab_size); spec caps are clamped against it. All randomness
  /// derives from `seed`.
  WorkloadGenerator(std::vector<TenantLoadSpec> specs,
                    const nn::GPTConfig& config, uint64_t seed);

  /// Draws one request from spec `spec_index` (closed-loop clients call
  /// this once per round trip). Deterministic per-spec stream: the k-th
  /// call for a spec returns the same request regardless of interleaving
  /// with other specs.
  GenerateRequest Sample(size_t spec_index);

  /// Generates every open-loop arrival in [0, duration_ms) across all
  /// specs via Poisson thinning, merged and sorted by at_ms (ties break by
  /// spec order, so the schedule is fully deterministic).
  std::vector<Arrival> OpenLoopSchedule(double duration_ms);

  size_t num_specs() const { return specs_.size(); }
  const TenantLoadSpec& spec(size_t i) const { return specs_[i]; }

 private:
  int64_t SampleLength(util::Rng* rng, double log_mean, double log_sigma,
                       int64_t cap) const;
  int64_t SampleZipfToken(util::Rng* rng) const;

  std::vector<TenantLoadSpec> specs_;
  int64_t vocab_size_;
  int64_t max_seq_len_;
  /// Inverse-CDF table for Zipf token ids, shared across specs (the
  /// exponent of the FIRST spec wins; per-spec tables cost more than the
  /// fidelity is worth at bench scale). zipf_cdf_[k] = P(token <= k).
  std::vector<double> zipf_cdf_;
  /// Per-spec independent streams: arrivals and request content draw from
  /// separate forks so schedule length never perturbs request content.
  std::vector<util::Rng> arrival_rngs_;
  std::vector<util::Rng> content_rngs_;
};

/// Preset specs matching the tenant classes: latency-sensitive bursty
/// chat, steady heavy batch, and a trickle of background eval traffic.
TenantLoadSpec MakeChatSpec(double arrivals_per_sec);
TenantLoadSpec MakeBatchSpec(double arrivals_per_sec);
TenantLoadSpec MakeBackgroundSpec(double arrivals_per_sec);

}  // namespace llm::serve

#endif  // TFMR_SERVE_WORKLOAD_H_
