#include "serve/kv_cache_pool.h"

namespace llm::serve {

KvCachePool::KvCachePool(const nn::GPTConfig& config, int64_t num_slots)
    : num_slots_(num_slots), n_layer_(config.n_layer) {
  LLM_CHECK_GT(num_slots, 0);
  LLM_CHECK_GT(config.max_seq_len, 0);
  const int64_t plane = config.max_seq_len * config.d_model;
  slab_.assign(
      static_cast<size_t>(num_slots_) * n_layer_ * 2 * static_cast<size_t>(plane),
      0.0f);
  views_.resize(static_cast<size_t>(num_slots_) * n_layer_);
  for (int64_t s = 0; s < num_slots_; ++s) {
    float* base = slab_.data() +
                  static_cast<size_t>(s) * n_layer_ * 2 * static_cast<size_t>(plane);
    for (int l = 0; l < n_layer_; ++l) {
      nn::KvLayerView& v = views_[static_cast<size_t>(s * n_layer_ + l)];
      v.keys = base + static_cast<size_t>(2 * l) * plane;
      v.values = base + static_cast<size_t>(2 * l + 1) * plane;
    }
  }
  free_list_.reserve(static_cast<size_t>(num_slots_));
  // LIFO free list handed out from the back: slot 0 is leased first, which
  // keeps the hot working set at the front of the slab under low load.
  for (int64_t s = num_slots_ - 1; s >= 0; --s) free_list_.push_back(s);
  leased_.assign(static_cast<size_t>(num_slots_), 0);
  free_count_.store(num_slots_, std::memory_order_relaxed);
}

int64_t KvCachePool::Acquire() {
  if (free_list_.empty()) return -1;
  const int64_t slot = free_list_.back();
  free_list_.pop_back();
  leased_[static_cast<size_t>(slot)] = 1;
  free_count_.store(static_cast<int64_t>(free_list_.size()),
                    std::memory_order_relaxed);
  return slot;
}

void KvCachePool::Release(int64_t slot) {
  LLM_CHECK_GE(slot, 0);
  LLM_CHECK_LT(slot, num_slots_);
  LLM_CHECK(leased_[static_cast<size_t>(slot)] != 0);
  leased_[static_cast<size_t>(slot)] = 0;
  free_list_.push_back(slot);
  free_count_.store(static_cast<int64_t>(free_list_.size()),
                    std::memory_order_relaxed);
}

bool KvCachePool::leased(int64_t slot) const {
  LLM_CHECK_GE(slot, 0);
  LLM_CHECK_LT(slot, num_slots_);
  return leased_[static_cast<size_t>(slot)] != 0;
}

nn::KvLayerView* KvCachePool::slot_views(int64_t slot) {
  LLM_CHECK_GE(slot, 0);
  LLM_CHECK_LT(slot, num_slots_);
  return views_.data() + static_cast<size_t>(slot) * n_layer_;
}

}  // namespace llm::serve
