// Request/response types for the batched inference serving runtime.
//
// A GenerateRequest is the serving-side mirror of sample::GenerateOptions
// plus the prompt and a per-request RNG seed. Seeding the sampler per
// request (rather than sharing one stream across the batch) is what makes
// a request's output independent of batch composition: together with the
// bit-exact batched decode step (nn/batched_decode.h), a request returns
// exactly what a dedicated GptInferenceSession would have produced.
#ifndef TFMR_SERVE_REQUEST_H_
#define TFMR_SERVE_REQUEST_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sample/sampler.h"
#include "util/status.h"

namespace llm::serve {

using RequestId = uint64_t;

/// Tenant (traffic) class of a request. The class index doubles as its
/// priority: lower index = more important. Under overload the server sheds
/// and preempts strictly from the high-index end (background before batch,
/// batch before chat), so interactive traffic keeps its SLO while bulk
/// work degrades by policy — see tenant.h for the per-class knobs.
enum class TenantClass : int32_t {
  kChat = 0,        // interactive chat: latency-sensitive, never shed
  kBatch = 1,       // batch summarization: throughput work, sheddable
  kBackground = 2,  // background eval: lowest priority, quota-limited
};

inline constexpr int kNumTenantClasses = 3;

const char* TenantClassName(TenantClass tenant);

/// One generation request. Copyable; the server takes it by value.
struct GenerateRequest {
  /// Prompt tokens; must be non-empty and fit the model window.
  std::vector<int64_t> prompt;
  /// Per-request decoding strategy (temperature / top-k / top-p).
  sample::SamplerOptions sampler;
  int64_t max_new_tokens = 32;
  /// Stop early when this token is produced; -1 disables.
  int64_t stop_token = -1;
  /// Seed of the request's private sampling RNG. Two submissions with the
  /// same prompt/options/seed return identical tokens, whatever else is in
  /// flight.
  uint64_t seed = 0;
  /// Traffic class: admission priority, quota bucket, fair-share weight,
  /// and shed/preempt eligibility all key off this (tenant.h). The default
  /// kChat is the never-shed class, so untagged requests behave exactly as
  /// they did before multi-tenancy existed.
  TenantClass tenant = TenantClass::kChat;
  /// Relative deadline measured from Submit; zero means none. An expired
  /// request finishes with DeadlineExceeded (partial tokens preserved).
  std::chrono::milliseconds timeout{0};
  /// Streaming callback, invoked once per generated token from the
  /// scheduler thread. Must not block or re-enter the server.
  std::function<void(RequestId, int64_t)> on_token;
  /// When true, Submit mints an obs::Trace and every hop the request takes
  /// (queue wait, admission, decode, stream, retirement) records a span;
  /// the finished tree comes back in RequestResult::trace. Untraced
  /// requests skip all span bookkeeping.
  bool trace = false;
  /// Record spans into this existing trace instead of minting one, under
  /// the span id `trace_parent`. The fleet router uses this to stitch each
  /// replica attempt's server-side spans into one request-wide tree.
  /// Implies `trace` when set.
  std::shared_ptr<obs::Trace> trace_sink;
  int32_t trace_parent = obs::Trace::kRootSpan;
};

/// Why a request left the active set.
enum class FinishReason {
  kNone = 0,    // still queued or in flight
  kStop,        // produced the stop token
  kLength,      // produced max_new_tokens
  kWindow,      // hit the model's max_seq_len
  kCancelled,   // Cancel() or server shutdown
  kDeadline,    // timeout expired
  kFault,       // isolated server-side failure (status is Internal)
  kPreempted,   // shed from the queue or preempted mid-decode to make room
                // for a higher-priority tenant; partial tokens preserved,
                // resumable at the client (status is ResourceExhausted)
};

const char* FinishReasonName(FinishReason reason);

/// Final outcome of a request, returned by InferenceServer::Wait.
struct RequestResult {
  util::Status status;          // OK for kStop/kLength/kWindow
  FinishReason reason = FinishReason::kNone;  // kFault => status is Internal
  std::vector<int64_t> tokens;  // generated tokens (partial on error)
  double queue_ms = 0.0;        // submit -> admission
  double total_ms = 0.0;        // submit -> completion
  double first_token_ms = 0.0;  // submit -> first token (TTFT); 0 if none
  /// Span tree for traced requests (null otherwise). Shared const view:
  /// the trace is complete by the time Wait returns it.
  std::shared_ptr<const obs::Trace> trace;
};

/// Shared per-request state: written by the scheduler thread, observed by
/// whichever thread calls Wait. Guarded by `mu` except the cancel flag.
struct RequestState {
  RequestId id = 0;
  GenerateRequest request;
  std::chrono::steady_clock::time_point submit_time;
  std::chrono::steady_clock::time_point deadline;  // time_point::max() = none
  std::atomic<bool> cancel_requested{false};

  /// Tracing (null for untraced requests). `owns_trace` is true when this
  /// server minted the trace (and so ends the root span at retirement);
  /// false when a fleet router owns the root. Span ids are atomics because
  /// the submitting thread opens the queue span while the scheduler thread
  /// later closes it and opens the decode span.
  std::shared_ptr<obs::Trace> trace;
  bool owns_trace = false;
  int32_t trace_parent = obs::Trace::kRootSpan;
  std::atomic<int32_t> queue_span{-1};
  std::atomic<int32_t> decode_span{-1};

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  FinishReason reason = FinishReason::kNone;
  util::Status status;
  std::vector<int64_t> tokens;
  double queue_ms = 0.0;
  double total_ms = 0.0;
  /// Submit -> first generated token (TTFT); 0 until a token exists.
  double first_token_ms = 0.0;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_REQUEST_H_
