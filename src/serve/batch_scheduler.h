// Continuous (in-flight) batching scheduler.
//
// The classic serving dilemma: static batching waits to assemble a full
// batch (good throughput, bad latency) and holds every slot until the
// slowest member finishes (wasted compute on padding). Continuous batching
// dissolves it by rebuilding the batch every decode step: each Tick
// advances all active sequences by exactly one token through the fused
// batched step, finished sequences retire immediately (their KV slot
// returns to the pool), and newly admitted requests join mid-flight at
// their own position 0. Prefill is uniform with decode — prompt tokens are
// fed one per tick through the same path — so a long prompt never stalls
// the other lanes.
//
// Determinism contract: each sequence samples from its own seeded RNG over
// logits that are bit-identical to a dedicated GptInferenceSession
// (nn/batched_decode.h), so a request's output is a pure function of the
// request — independent of what else shares the batch.
//
// Failure isolation: every sampled lane passes a numeric-health check
// before its logits feed the sampler. A lane whose logits come back
// NaN/Inf (a poisoned batch member) retires alone with FinishReason::
// kFault and an Internal status; the other lanes' outputs are untouched —
// each lane has its own logits buffer and KV slot, so one bad request can
// never corrupt its batch mates. Fault-injection sites (util/fault):
// kDecodeNaN poisons one lane's logits, kWorkerStall sleeps a worker past
// any reasonable tick budget, kSlotLeak drops a retiring slot's Release —
// repaired by the ReclaimLeakedSlots() sweep.
//
// Single-threaded driver: all methods are called from the server's
// scheduler thread only. Tick fans the forward pass out across the
// WorkerPool and returns after the barrier, so worker threads never touch
// scheduler state outside a Tick.
#ifndef TFMR_SERVE_BATCH_SCHEDULER_H_
#define TFMR_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/batched_decode.h"
#include "serve/kv_cache_pool.h"
#include "serve/request.h"
#include "serve/tenant.h"
#include "serve/worker_pool.h"
#include "util/rng.h"

namespace llm::serve {

/// What one Tick produced, for the server to turn into side effects
/// (streaming callbacks, completion signals, stats).
struct TickOutput {
  struct Emitted {
    std::shared_ptr<RequestState> state;
    int64_t token = 0;
  };
  struct Finished {
    std::shared_ptr<RequestState> state;
    FinishReason reason = FinishReason::kNone;
    util::Status status;
  };
  std::vector<Emitted> tokens;
  std::vector<Finished> finished;
  /// Decode steps executed (== sequences stepped this tick).
  int64_t steps = 0;

  void Clear() {
    tokens.clear();
    finished.clear();
    steps = 0;
  }
};

class BatchScheduler {
 public:
  /// Neither pointer is owned; both must outlive the scheduler.
  BatchScheduler(const nn::GPTModel* model, KvCachePool* pool);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  bool HasFreeSlot() const { return pool_->free_count() > 0; }
  /// Safe to read from any thread (feeds ServerStats::active_slots).
  int64_t active_count() const {
    return active_count_.load(std::memory_order_relaxed);
  }
  /// Active lanes currently held by `tenant`; any thread.
  int64_t ActivePerClass(TenantClass tenant) const {
    return active_per_class_[static_cast<int>(tenant)].load(
        std::memory_order_relaxed);
  }
  /// Fills `out` with all per-class active lane counts (for TryPopFair).
  void ActiveSnapshot(int64_t (&out)[kNumTenantClasses]) const {
    for (int c = 0; c < kNumTenantClasses; ++c) {
      out[c] = active_per_class_[c].load(std::memory_order_relaxed);
    }
  }

  /// True when PreemptFor(incoming, ...) would find a victim: some active
  /// lane belongs to a strictly lower-priority preemptible class AND
  /// displacing it keeps the incoming class within its weighted fair share
  /// ((active_in + 1) * w_victim <= active_victim * w_in — without this
  /// check a quota of chat arrivals could churn every batch lane).
  bool CanPreemptFor(TenantClass incoming, const TenantPolicy& policy) const;

  /// Retires the chosen victim with FinishReason::kPreempted (partial
  /// tokens preserved, status ResourceExhausted, KV slot back to the pool)
  /// and records a kPreempt flight event. Victim choice is deterministic:
  /// lowest-priority class first, then the lane with the most generated
  /// tokens (longest decode has the most resumable work banked), then the
  /// highest slot. Returns false when CanPreemptFor is false.
  bool PreemptFor(TenantClass incoming, const TenantPolicy& policy,
                  TickOutput* out);

  /// Leases a KV slot and joins the request to the in-flight batch at the
  /// next Tick. Caller must have checked HasFreeSlot(). Also stamps the
  /// request's queue_ms.
  void Admit(std::shared_ptr<RequestState> state);

  /// Advances every active sequence by one token: expires cancelled /
  /// past-deadline sequences, runs the fused batched forward across the
  /// worker pool (scratch: one BatchedScratch per pool lane), samples, and
  /// retires finished sequences. Fills `out` with emissions/completions.
  /// Lanes whose logits fail the numeric-health check retire with kFault.
  void Tick(WorkerPool* workers, std::vector<nn::BatchedScratch>* scratch,
            TickOutput* out);

  /// Retires every active sequence with the given reason/status (server
  /// shutdown path).
  void DrainActive(FinishReason reason, const util::Status& status,
                   TickOutput* out);

  /// Returns leaked KV slots (leased in the pool but no longer backing any
  /// active sequence — the kSlotLeak failure mode) to the free list.
  /// Returns the number repaired; cheap O(num_slots) sweep.
  int64_t ReclaimLeakedSlots();

  /// Chaos hook (any thread): while set, every sampled lane's logits are
  /// poisoned non-finite, so the whole replica fails requests with kFault
  /// — the "model gone bad" failure mode a fleet router must detect.
  void SetDecodePoison(bool on) {
    poison_all_.store(on, std::memory_order_release);
  }

 private:
  struct ActiveSeq {
    bool occupied = false;
    std::shared_ptr<RequestState> state;
    util::Rng rng{0};
    int64_t pos = 0;         // tokens fed so far
    int64_t generated = 0;   // tokens sampled so far
    int64_t next_token = 0;  // token to feed at the next Tick
    int64_t sampled = -1;    // token sampled this tick (worker-written)
    bool faulted = false;    // non-finite logits this tick (worker-written)
  };

  void Retire(int64_t slot, FinishReason reason, const util::Status& status,
              TickOutput* out);
  /// Slot of the best preemption victim for `incoming`, or -1. Shared by
  /// CanPreemptFor / PreemptFor so the check and the action always agree.
  int64_t PickVictim(TenantClass incoming, const TenantPolicy& policy) const;

  const nn::GPTModel* model_;
  KvCachePool* pool_;
  std::vector<ActiveSeq> seqs_;       // indexed by KV slot
  std::vector<float> logits_;        // [num_slots, vocab]
  std::vector<int64_t> active_idx_;  // slots stepped this tick (reused)
  std::vector<std::vector<nn::SeqStepInput>> chunk_inputs_;  // per chunk
  std::atomic<int64_t> active_count_{0};
  std::atomic<int64_t> active_per_class_[kNumTenantClasses] = {};
  std::atomic<bool> poison_all_{false};  // SetDecodePoison chaos hook
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_BATCH_SCHEDULER_H_
