#include "serve/request_queue.h"

#include <utility>

namespace llm::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  LLM_CHECK_GT(capacity, 0u);
}

util::Status RequestQueue::Push(std::shared_ptr<RequestState> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return util::Status::FailedPrecondition("request queue is closed");
    }
    if (items_.size() >= capacity_) {
      return util::Status::ResourceExhausted("request queue full (capacity " +
                                             std::to_string(capacity_) + ")");
    }
    items_.push_back(std::move(state));
  }
  cv_.notify_one();
  return util::Status::OK();
}

bool RequestQueue::TryPop(std::shared_ptr<RequestState>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool RequestQueue::WaitPop(std::shared_ptr<RequestState>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  *out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace llm::serve
