#include "serve/request_queue.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace llm::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  LLM_CHECK_GT(capacity, 0u);
}

util::Status RequestQueue::Push(std::shared_ptr<RequestState> state) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return util::Status::FailedPrecondition("request queue is closed");
    }
    if (total_ >= capacity_) {
      return util::Status::ResourceExhausted("request queue full (capacity " +
                                             std::to_string(capacity_) + ")");
    }
    lanes_[static_cast<int>(state->request.tenant)].push_back(std::move(state));
    ++total_;
  }
  cv_.notify_one();
  return util::Status::OK();
}

int RequestQueue::TopClassLocked() const {
  for (int cls = 0; cls < kNumTenantClasses; ++cls) {
    if (!lanes_[cls].empty()) return cls;
  }
  return -1;
}

bool RequestQueue::PopClassLocked(int cls,
                                  std::shared_ptr<RequestState>* out) {
  if (cls < 0 || lanes_[cls].empty()) return false;
  *out = std::move(lanes_[cls].front());
  lanes_[cls].pop_front();
  --total_;
  return true;
}

bool RequestQueue::TryPop(std::shared_ptr<RequestState>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return PopClassLocked(TopClassLocked(), out);
}

bool RequestQueue::WaitPop(std::shared_ptr<RequestState>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || total_ > 0; });
  return PopClassLocked(TopClassLocked(), out);
}

bool RequestQueue::TryPopFair(const int64_t (&active)[kNumTenantClasses],
                              const TenantPolicy& policy,
                              std::shared_ptr<RequestState>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  // Smallest active/weight ratio wins the next lane; compared as
  // cross-products so the arithmetic stays exact. Ties go to the
  // higher-priority (lower-index) class.
  int best = -1;
  for (int cls = 0; cls < kNumTenantClasses; ++cls) {
    if (lanes_[cls].empty()) continue;
    if (best < 0) {
      best = cls;
      continue;
    }
    const int64_t w_cls = std::max(policy.classes[cls].weight, 1);
    const int64_t w_best = std::max(policy.classes[best].weight, 1);
    if (active[cls] * w_best < active[best] * w_cls) best = cls;
  }
  return PopClassLocked(best, out);
}

bool RequestQueue::TryPopClass(TenantClass tenant,
                               std::shared_ptr<RequestState>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  return PopClassLocked(static_cast<int>(tenant), out);
}

int RequestQueue::PeekTopClass() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TopClassLocked();
}

std::shared_ptr<RequestState> RequestQueue::EvictLowerPriority(
    TenantClass incoming_class, const TenantPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int cls = kNumTenantClasses - 1; cls > static_cast<int>(incoming_class);
       --cls) {
    if (!policy.classes[cls].sheddable || lanes_[cls].empty()) continue;
    std::shared_ptr<RequestState> victim = std::move(lanes_[cls].back());
    lanes_[cls].pop_back();
    --total_;
    return victim;
  }
  return nullptr;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t RequestQueue::size_of_class(TenantClass tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_[static_cast<int>(tenant)].size();
}

}  // namespace llm::serve
