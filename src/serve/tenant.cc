#include "serve/tenant.h"

#include <algorithm>

namespace llm::serve {

const char* TenantClassName(TenantClass tenant) {
  switch (tenant) {
    case TenantClass::kChat: return "chat";
    case TenantClass::kBatch: return "batch";
    case TenantClass::kBackground: return "background";
  }
  return "unknown";
}

TenantPolicy TenantPolicy::Default() {
  TenantPolicy policy;
  TenantClassPolicy& chat = policy.classes[static_cast<int>(TenantClass::kChat)];
  chat.weight = 4;
  chat.sheddable = false;
  chat.preemptible = false;
  TenantClassPolicy& batch =
      policy.classes[static_cast<int>(TenantClass::kBatch)];
  batch.weight = 2;
  batch.sheddable = true;
  batch.preemptible = true;
  TenantClassPolicy& background =
      policy.classes[static_cast<int>(TenantClass::kBackground)];
  background.weight = 1;
  background.sheddable = true;
  background.preemptible = true;
  return policy;
}

TokenBucket::TokenBucket(double rate_per_sec, double burst,
                         std::chrono::steady_clock::time_point start)
    : rate_per_sec_(rate_per_sec),
      burst_(std::max(burst, 0.0)),
      tokens_(std::max(burst, 0.0)),
      last_refill_(start) {}

void TokenBucket::RefillTo(std::chrono::steady_clock::time_point now) {
  if (now <= last_refill_) return;  // clamp: virtual time never rewinds
  const double secs =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(burst_, tokens_ + rate_per_sec_ * secs);
  last_refill_ = now;
}

bool TokenBucket::TryConsume(double tokens,
                             std::chrono::steady_clock::time_point now) {
  if (unlimited()) return true;
  RefillTo(now);
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::Available(std::chrono::steady_clock::time_point now) {
  if (unlimited()) return 1e18;
  RefillTo(now);
  return tokens_;
}

}  // namespace llm::serve
