#include "serve/inference_server.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace llm::serve {
namespace {

// Completed-request latency samples retained for percentile estimates.
constexpr size_t kLatencyWindow = 8192;

double Percentile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1.0 - frac) + (*sorted)[hi] * frac;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

const char* FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone: return "none";
    case FinishReason::kStop: return "stop";
    case FinishReason::kLength: return "length";
    case FinishReason::kWindow: return "window";
    case FinishReason::kCancelled: return "cancelled";
    case FinishReason::kDeadline: return "deadline";
  }
  return "unknown";
}

InferenceServer::InferenceServer(const nn::GPTModel* model,
                                 const ServerOptions& options)
    : model_(model),
      options_(options),
      queue_(options.queue_capacity),
      pool_(model->config(), options.max_batch_size),
      scheduler_(model, &pool_),
      workers_(options.num_workers),
      scratch_(static_cast<size_t>(workers_.lanes())) {
  LLM_CHECK(model != nullptr);
  LLM_CHECK_GT(options.max_batch_size, 0);
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    started_at_ = std::chrono::steady_clock::now();
  }
  scheduler_thread_ = std::thread([this] { SchedulerMain(); });
}

void InferenceServer::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (finished_) return;
  finished_ = true;
  stop_.store(true, std::memory_order_release);
  queue_.Close();
  if (started_) {
    scheduler_thread_.join();
  } else {
    // Never started: fail anything that was queued for a later Start.
    std::shared_ptr<RequestState> state;
    while (queue_.TryPop(&state)) {
      CompleteNow(state, FinishReason::kCancelled,
                  util::Status::Cancelled("server shutdown"));
    }
  }
}

util::StatusOr<RequestId> InferenceServer::Submit(GenerateRequest request) {
  const auto& config = model_->config();
  if (request.prompt.empty()) {
    return util::Status::InvalidArgument("prompt must be non-empty");
  }
  if (static_cast<int64_t>(request.prompt.size()) > config.max_seq_len) {
    return util::Status::InvalidArgument(
        "prompt length " + std::to_string(request.prompt.size()) +
        " exceeds max_seq_len " + std::to_string(config.max_seq_len));
  }
  for (int64_t t : request.prompt) {
    if (t < 0 || t >= config.vocab_size) {
      return util::Status::InvalidArgument("prompt token " +
                                           std::to_string(t) +
                                           " outside the vocabulary");
    }
  }
  if (request.max_new_tokens < 0) {
    return util::Status::InvalidArgument("max_new_tokens must be >= 0");
  }

  auto state = std::make_shared<RequestState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->submit_time = std::chrono::steady_clock::now();
  state->deadline = request.timeout.count() > 0
                        ? state->submit_time + request.timeout
                        : std::chrono::steady_clock::time_point::max();
  state->request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    registry_.emplace(state->id, state);
  }
  if (state->request.max_new_tokens == 0) {
    // Nothing to generate; complete without touching the queue.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++submitted_;
    }
    CompleteNow(state, FinishReason::kLength, util::Status::OK());
    return state->id;
  }
  const util::Status pushed = queue_.Push(state);
  if (!pushed.ok()) {
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      registry_.erase(state->id);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rejected_;
    return pushed;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++submitted_;
  return state->id;
}

bool InferenceServer::Cancel(RequestId id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    state = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return false;
  }
  state->cancel_requested.store(true, std::memory_order_release);
  return true;
}

util::StatusOr<RequestResult> InferenceServer::Wait(RequestId id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) {
      return util::Status::NotFound("unknown request id " +
                                    std::to_string(id));
    }
    state = it->second;
  }
  RequestResult result;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    result.status = state->status;
    result.reason = state->reason;
    result.tokens = state->tokens;
    result.queue_ms = state->queue_ms;
    result.total_ms = state->total_ms;
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  registry_.erase(id);
  return result;
}

RequestResult InferenceServer::GenerateBlocking(GenerateRequest request) {
  util::StatusOr<RequestId> id = Submit(std::move(request));
  if (!id.ok()) {
    RequestResult result;
    result.status = id.status();
    return result;
  }
  return std::move(Wait(id.value())).value();
}

ServerStats InferenceServer::Stats() const {
  ServerStats stats;
  stats.queue_depth = queue_.size();
  stats.active_slots = scheduler_.active_count();
  stats.total_slots = pool_.num_slots();
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.submitted = submitted_;
    stats.rejected = rejected_;
    stats.completed = completed_;
    stats.cancelled = cancelled_;
    stats.expired = expired_;
    stats.total_tokens = total_tokens_;
    if (started_at_.time_since_epoch().count() != 0) {
      const double secs = MsSince(started_at_) / 1000.0;
      if (secs > 0.0) {
        stats.tokens_per_sec = static_cast<double>(total_tokens_) / secs;
      }
    }
    latencies = latency_ring_;
  }
  std::sort(latencies.begin(), latencies.end());
  stats.p50_latency_ms = Percentile(&latencies, 0.50);
  stats.p95_latency_ms = Percentile(&latencies, 0.95);
  stats.p99_latency_ms = Percentile(&latencies, 0.99);
  return stats;
}

void InferenceServer::RecordFinish(const RequestState& state,
                                   FinishReason reason, double total_ms) {
  (void)state;
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (reason) {
    case FinishReason::kStop:
    case FinishReason::kLength:
    case FinishReason::kWindow:
      ++completed_;
      if (latency_ring_.size() < kLatencyWindow) {
        latency_ring_.push_back(total_ms);
      } else {
        latency_ring_[latency_next_] = total_ms;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      }
      break;
    case FinishReason::kCancelled:
      ++cancelled_;
      break;
    case FinishReason::kDeadline:
      ++expired_;
      break;
    case FinishReason::kNone:
      break;
  }
}

void InferenceServer::CompleteNow(const std::shared_ptr<RequestState>& state,
                                  FinishReason reason, util::Status status) {
  const double total_ms = MsSince(state->submit_time);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Stats must be updated before `done` is observable: a waiter may read
    // Stats() the instant Wait() returns.
    RecordFinish(*state, reason, total_ms);
    state->done = true;
    state->reason = reason;
    state->status = std::move(status);
    state->total_ms = total_ms;
  }
  state->cv.notify_all();
}

int64_t InferenceServer::AdmitFromQueue() {
  int64_t admitted = 0;
  std::shared_ptr<RequestState> state;
  while (scheduler_.HasFreeSlot() && queue_.TryPop(&state)) {
    if (state->cancel_requested.load(std::memory_order_acquire)) {
      CompleteNow(state, FinishReason::kCancelled,
                  util::Status::Cancelled("cancelled while queued"));
      continue;
    }
    if (std::chrono::steady_clock::now() >= state->deadline) {
      CompleteNow(state, FinishReason::kDeadline,
                  util::Status::DeadlineExceeded("deadline expired in queue"));
      continue;
    }
    scheduler_.Admit(std::move(state));
    ++admitted;
  }
  return admitted;
}

void InferenceServer::Publish(const TickOutput& out) {
  for (const TickOutput::Emitted& emitted : out.tokens) {
    const auto& callback = emitted.state->request.on_token;
    if (callback) callback(emitted.state->id, emitted.token);
  }
  if (!out.tokens.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_tokens_ += out.tokens.size();
  }
  for (const TickOutput::Finished& finished : out.finished) {
    const double total_ms = MsSince(finished.state->submit_time);
    {
      std::lock_guard<std::mutex> lock(finished.state->mu);
      if (finished.state->done) continue;
      RecordFinish(*finished.state, finished.reason, total_ms);
      finished.state->done = true;
      finished.state->reason = finished.reason;
      finished.state->status = finished.status;
      finished.state->total_ms = total_ms;
    }
    finished.state->cv.notify_all();
  }
}

void InferenceServer::SchedulerMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (scheduler_.active_count() == 0) {
      // Idle: block until work arrives or the queue is closed and empty.
      std::shared_ptr<RequestState> state;
      if (!queue_.WaitPop(&state)) break;
      if (state->cancel_requested.load(std::memory_order_acquire)) {
        CompleteNow(state, FinishReason::kCancelled,
                    util::Status::Cancelled("cancelled while queued"));
        continue;
      }
      if (std::chrono::steady_clock::now() >= state->deadline) {
        CompleteNow(state, FinishReason::kDeadline,
                    util::Status::DeadlineExceeded("deadline expired in queue"));
        continue;
      }
      scheduler_.Admit(std::move(state));
    }
    // Continuous batching: top the batch up from the queue, then advance
    // every active sequence one token.
    AdmitFromQueue();
    scheduler_.Tick(&workers_, &scratch_, &tick_out_);
    Publish(tick_out_);
  }
  // Shutdown: retire in-flight sequences (partial output preserved) and
  // fail whatever is still queued.
  tick_out_.Clear();  // last tick's events were already published
  scheduler_.DrainActive(FinishReason::kCancelled,
                         util::Status::Cancelled("server shutdown"),
                         &tick_out_);
  Publish(tick_out_);
  tick_out_.Clear();
  std::shared_ptr<RequestState> state;
  while (queue_.TryPop(&state)) {
    CompleteNow(state, FinishReason::kCancelled,
                util::Status::Cancelled("server shutdown"));
  }
}

}  // namespace llm::serve
