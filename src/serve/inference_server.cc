#include "serve/inference_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/scoped_timer.h"
#include "util/fault.h"
#include "util/rng.h"

namespace llm::serve {
namespace {

// Deadline-feasibility shedding trusts the decode-rate EMA only after this
// many measured ticks. Before that the optimistic floor (fastest observed
// tick, or the est_ms_per_step_seed hint) stands in, so a cold server
// sheds only deadlines that even a best-case decode rate cannot meet —
// never on a garbage estimate.
constexpr int64_t kMinTicksForEstimate = 8;

// EMA smoothing for the per-step cost estimate.
constexpr double kEstAlpha = 0.2;

// Ends the request's open spans (queue and decode are both idempotent —
// whichever hop got there first wins) and stamps the terminal "finish"
// event. Only the server that minted the trace closes the root; a fleet
// router closing over several attempts does that itself.
void CloseTraceSpans(RequestState* state, FinishReason reason) {
  if (!state->trace) return;
  obs::Trace& trace = *state->trace;
  trace.EndSpan(state->queue_span.load(std::memory_order_acquire));
  trace.EndSpan(state->decode_span.load(std::memory_order_acquire),
                FinishReasonName(reason));
  trace.Event("finish", state->trace_parent, static_cast<int64_t>(reason),
              FinishReasonName(reason));
  if (state->owns_trace) trace.EndSpan(obs::Trace::kRootSpan);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* FinishReasonName(FinishReason reason) {
  switch (reason) {
    case FinishReason::kNone: return "none";
    case FinishReason::kStop: return "stop";
    case FinishReason::kLength: return "length";
    case FinishReason::kWindow: return "window";
    case FinishReason::kCancelled: return "cancelled";
    case FinishReason::kDeadline: return "deadline";
    case FinishReason::kFault: return "fault";
    case FinishReason::kPreempted: return "preempted";
  }
  return "unknown";
}

const char* ServerHealthName(ServerHealth health) {
  switch (health) {
    case ServerHealth::kHealthy: return "healthy";
    case ServerHealth::kDegraded: return "degraded";
    case ServerHealth::kDraining: return "draining";
  }
  return "unknown";
}

InferenceServer::InferenceServer(const nn::GPTModel* model,
                                 const ServerOptions& options)
    : model_(model),
      options_(options),
      queue_(options.queue_capacity),
      pool_(model->config(), options.max_batch_size),
      scheduler_(model, &pool_),
      workers_(options.num_workers),
      scratch_(static_cast<size_t>(workers_.lanes())),
      tick_hist_(obs::MetricsRegistry::Global().GetHistogram("serve.tick_ms")) {
  LLM_CHECK(model != nullptr);
  LLM_CHECK_GT(options.max_batch_size, 0);
  est_floor_ms_ = std::max(options.est_ms_per_step_seed, 0.0);
  if (est_floor_ms_ > 0.0) {
    // Publish the hint so Stats() (and a further reload chaining off it)
    // sees the estimate in effect before the first measured tick.
    est_ms_per_step_pub_.store(est_floor_ms_, std::memory_order_relaxed);
  }
  const auto now = std::chrono::steady_clock::now();
  quota_.reserve(kNumTenantClasses);
  for (int cls = 0; cls < kNumTenantClasses; ++cls) {
    const TenantClassPolicy& policy = options_.tenants.classes[cls];
    quota_.emplace_back(policy.quota_tokens_per_sec, policy.quota_burst_tokens,
                        now);
  }
  obs::WireFaultEventsToFlightRecorder();
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || finished_) return;
  started_ = true;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    started_at_ = std::chrono::steady_clock::now();
  }
  scheduler_thread_ = std::thread([this] { SchedulerMain(); });
  if (options_.tick_budget.count() > 0) {
    watchdog_thread_ = std::thread([this] { WatchdogMain(); });
  }
}

void InferenceServer::Shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (finished_) return;
  finished_ = true;
  admission_closed_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  queue_.Close();
  {
    std::lock_guard<std::mutex> wd_lock(watchdog_mu_);
  }
  watchdog_cv_.notify_all();
  if (started_) {
    scheduler_thread_.join();
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
  }
  // Sweep the queue after the scheduler is gone. This covers the
  // never-started server AND the Submit-vs-Shutdown race: a push that
  // landed after the scheduler's own final drain would otherwise leave its
  // waiter hung forever. Wait()-after-Shutdown must always return.
  std::shared_ptr<RequestState> state;
  while (queue_.TryPop(&state)) {
    CompleteNow(state, FinishReason::kCancelled,
                util::Status::Cancelled("server shutdown"));
  }
}

util::Status InferenceServer::Drain(std::chrono::milliseconds timeout) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (finished_) {
      return util::Status::FailedPrecondition("server already shut down");
    }
    draining_.store(true, std::memory_order_release);
    admission_closed_.store(true, std::memory_order_release);
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kDrainBegin);
  queue_.Close();  // scheduler exits once the backlog is served
  bool drained;
  {
    std::unique_lock<std::mutex> lock(stats_mu_);
    drained = drain_cv_.wait_for(lock, timeout, [this] {
      return submitted_ ==
             completed_ + cancelled_ + expired_ + failed_ + preempted_;
    });
  }
  Shutdown();
  if (!drained) {
    return util::Status::DeadlineExceeded(
        "drain timed out; remaining requests cancelled");
  }
  return util::Status::OK();
}

ServerHealth InferenceServer::Health() const {
  if (admission_closed_.load(std::memory_order_acquire)) {
    return ServerHealth::kDraining;
  }
  return degraded_.load(std::memory_order_acquire) ? ServerHealth::kDegraded
                                                   : ServerHealth::kHealthy;
}

util::StatusOr<RequestId> InferenceServer::Submit(GenerateRequest request) {
  if (admission_closed_.load(std::memory_order_acquire)) {
    return util::Status::FailedPrecondition(
        "server is draining or shut down");
  }
  const auto& config = model_->config();
  if (request.prompt.empty()) {
    return util::Status::InvalidArgument("prompt must be non-empty");
  }
  if (static_cast<int64_t>(request.prompt.size()) > config.max_seq_len) {
    return util::Status::InvalidArgument(
        "prompt length " + std::to_string(request.prompt.size()) +
        " exceeds max_seq_len " + std::to_string(config.max_seq_len));
  }
  for (int64_t t : request.prompt) {
    if (t < 0 || t >= config.vocab_size) {
      return util::Status::InvalidArgument("prompt token " +
                                           std::to_string(t) +
                                           " outside the vocabulary");
    }
  }
  if (request.max_new_tokens < 0) {
    return util::Status::InvalidArgument("max_new_tokens must be >= 0");
  }

  auto state = std::make_shared<RequestState>();
  state->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  state->submit_time = std::chrono::steady_clock::now();
  state->deadline = request.timeout.count() > 0
                        ? state->submit_time + request.timeout
                        : std::chrono::steady_clock::time_point::max();
  state->request = std::move(request);
  if (state->request.trace_sink) {
    // Fleet attempt: record into the router's request-wide trace, under
    // the attempt span it opened for us.
    state->trace = state->request.trace_sink;
    state->owns_trace = false;
    state->trace_parent = state->request.trace_parent;
  } else if (state->request.trace) {
    state->trace = std::make_shared<obs::Trace>(state->id);
    state->owns_trace = true;
  }
  if (state->trace) {
    state->queue_span.store(
        state->trace->BeginSpan("queue", state->trace_parent,
                                static_cast<int64_t>(state->id)),
        std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    registry_.emplace(state->id, state);
  }
  const TenantClass tenant = state->request.tenant;
  const int cls = static_cast<int>(tenant);

  // Per-tenant quota, charged for the worst-case token footprint (prompt
  // plus requested output). A rejected request never enters the queue, so
  // the bucket is the class's rate limit on admitted work, not on traffic.
  if (options_.tenants.classes[cls].quota_tokens_per_sec > 0.0) {
    const double charge = static_cast<double>(state->request.prompt.size()) +
                          static_cast<double>(state->request.max_new_tokens);
    bool within_quota;
    {
      std::lock_guard<std::mutex> lock(quota_mu_);
      within_quota = quota_[static_cast<size_t>(cls)].TryConsume(
          charge, std::chrono::steady_clock::now());
    }
    if (!within_quota) {
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kQuotaExhausted, cls,
          static_cast<int64_t>(state->id), static_cast<int64_t>(charge));
      {
        std::lock_guard<std::mutex> lock(registry_mu_);
        registry_.erase(state->id);
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++rejected_;
      ++class_counts_[cls].quota_rejected;
      return util::Status::ResourceExhausted(
          std::string("quota exhausted for tenant class ") +
          TenantClassName(tenant));
    }
  }

  if (state->request.max_new_tokens == 0) {
    // Nothing to generate; complete without touching the queue.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++submitted_;
      ++class_counts_[cls].submitted;
    }
    CompleteNow(state, FinishReason::kLength, util::Status::OK());
    return state->id;
  }
  util::Status pushed = queue_.Push(state);
  // Queue full: shed the newest queued request of a lower-priority
  // sheddable class to make room (priority admission under overload). The
  // victim finishes kPreempted — it was accepted, so it still reaches a
  // terminal state and conservation holds; the client may resubmit.
  while (!pushed.ok() &&
         pushed.code() == util::StatusCode::kResourceExhausted) {
    std::shared_ptr<RequestState> victim =
        queue_.EvictLowerPriority(tenant, options_.tenants);
    if (!victim) break;  // nobody lower-priority to displace: reject
    const int victim_cls = static_cast<int>(victim->request.tenant);
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kShed,
                                         victim_cls,
                                         static_cast<int64_t>(victim->id),
                                         cls);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++class_counts_[victim_cls].shed;
    }
    CompleteNow(victim, FinishReason::kPreempted,
                util::Status::ResourceExhausted(
                    "shed: displaced from the queue by a higher-priority "
                    "tenant; resubmit to retry"));
    pushed = queue_.Push(state);
  }
  if (!pushed.ok()) {
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      registry_.erase(state->id);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rejected_;
    ++class_counts_[cls].rejected;
    return pushed;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++submitted_;
  ++class_counts_[cls].submitted;
  return state->id;
}

util::StatusOr<RequestId> InferenceServer::SubmitWithRetry(
    const GenerateRequest& request, const RetryOptions& retry) {
  util::Rng jitter(retry.jitter_seed);
  util::StatusOr<RequestId> result =
      util::Status::InvalidArgument("max_attempts must be >= 1");
  const int attempts = std::max(retry.max_attempts, 1);
  // The request's deadline bounds the whole retry loop, not each attempt:
  // a backoff sleep that would land past it is pointless (the request
  // would be rejected as expired at admission anyway), so the loop gives
  // up *before* the deadline rather than sleeping through it.
  const auto loop_deadline =
      request.timeout.count() > 0
          ? std::chrono::steady_clock::now() + request.timeout
          : std::chrono::steady_clock::time_point::max();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    result = Submit(request);  // copies: each attempt resubmits intact
    if (result.ok() ||
        result.status().code() != util::StatusCode::kResourceExhausted) {
      return result;
    }
    if (attempt + 1 == attempts) break;
    // Capped exponential backoff with jitter in [0.5, 1.0)x: retries from
    // clients seeded differently decorrelate instead of re-colliding.
    const double base_ms = std::min<double>(
        static_cast<double>(retry.max_backoff.count()),
        static_cast<double>(retry.initial_backoff.count()) *
            std::pow(2.0, attempt));
    const double jittered_ms =
        std::max(base_ms * (0.5 + 0.5 * jitter.Uniform()), 0.0);
    const auto sleep_until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(jittered_ms));
    if (sleep_until >= loop_deadline) break;  // would outlive the deadline
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(jittered_ms));
  }
  return result;
}

bool InferenceServer::Cancel(RequestId id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    state = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return false;
  }
  state->cancel_requested.store(true, std::memory_order_release);
  return true;
}

util::StatusOr<RequestResult> InferenceServer::Wait(RequestId id) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) {
      return util::Status::NotFound("unknown request id " +
                                    std::to_string(id));
    }
    state = it->second;
  }
  RequestResult result;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done; });
    result.status = state->status;
    result.reason = state->reason;
    result.tokens = state->tokens;
    result.queue_ms = state->queue_ms;
    result.total_ms = state->total_ms;
    result.first_token_ms = state->first_token_ms;
    result.trace = state->trace;
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  registry_.erase(id);
  return result;
}

InferenceServer::PollOutcome InferenceServer::Poll(RequestId id,
                                                  RequestResult* out) {
  std::shared_ptr<RequestState> state;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return PollOutcome::kUnknown;
    state = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->done) return PollOutcome::kPending;
    out->status = state->status;
    out->reason = state->reason;
    out->tokens = state->tokens;
    out->queue_ms = state->queue_ms;
    out->total_ms = state->total_ms;
    out->first_token_ms = state->first_token_ms;
    out->trace = state->trace;
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  registry_.erase(id);
  return PollOutcome::kReady;
}

int64_t InferenceServer::ApproxLoad() const {
  return static_cast<int64_t>(queue_.size()) + scheduler_.active_count();
}

void InferenceServer::DebugPoisonDecode(bool on) {
  scheduler_.SetDecodePoison(on);
}

RequestResult InferenceServer::GenerateBlocking(GenerateRequest request) {
  util::StatusOr<RequestId> id = Submit(std::move(request));
  if (!id.ok()) {
    RequestResult result;
    result.status = id.status();
    return result;
  }
  return std::move(Wait(id.value())).value();
}

ServerStats InferenceServer::Stats() const {
  ServerStats stats;
  stats.queue_depth = queue_.size();
  stats.active_slots = scheduler_.active_count();
  stats.total_slots = pool_.num_slots();
  stats.free_slots = pool_.free_count();
  stats.stalled_ticks = stalled_ticks_.load(std::memory_order_relaxed);
  stats.leaks_repaired = leaks_repaired_.load(std::memory_order_relaxed);
  stats.est_ms_per_step = est_ms_per_step_pub_.load(std::memory_order_relaxed);
  stats.health = Health();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.submitted = submitted_;
    stats.rejected = rejected_;
    stats.completed = completed_;
    stats.cancelled = cancelled_;
    stats.expired = expired_;
    stats.failed = failed_;
    stats.preempted = preempted_;
    for (int cls = 0; cls < kNumTenantClasses; ++cls) {
      stats.classes[cls] = class_counts_[cls];
    }
    stats.total_tokens = total_tokens_;
    if (started_at_.time_since_epoch().count() != 0) {
      const double secs = MsSince(started_at_) / 1000.0;
      if (secs > 0.0) {
        stats.tokens_per_sec = static_cast<double>(total_tokens_) / secs;
      }
    }
  }
  const obs::HistogramSnapshot latency = latency_hist_.Snapshot();
  stats.p50_latency_ms = latency.Percentile(0.50);
  stats.p95_latency_ms = latency.Percentile(0.95);
  stats.p99_latency_ms = latency.Percentile(0.99);
  for (int cls = 0; cls < kNumTenantClasses; ++cls) {
    const obs::HistogramSnapshot ttft = ttft_hist_[cls].Snapshot();
    stats.classes[cls].p50_ttft_ms = ttft.Percentile(0.50);
    stats.classes[cls].p99_ttft_ms = ttft.Percentile(0.99);
    const obs::HistogramSnapshot tpot = tpot_hist_[cls].Snapshot();
    stats.classes[cls].p50_tpot_ms = tpot.Percentile(0.50);
    stats.classes[cls].p99_tpot_ms = tpot.Percentile(0.99);
  }
  return stats;
}

void ExportServerStats(const ServerStats& stats, const std::string& prefix,
                       obs::MetricsRegistry* registry) {
  const auto set = [&](const char* name, double value) {
    registry->GetGauge(prefix + "." + name)->Set(value);
  };
  set("queue_depth", static_cast<double>(stats.queue_depth));
  set("active_slots", static_cast<double>(stats.active_slots));
  set("total_slots", static_cast<double>(stats.total_slots));
  set("free_slots", static_cast<double>(stats.free_slots));
  set("submitted", static_cast<double>(stats.submitted));
  set("rejected", static_cast<double>(stats.rejected));
  set("completed", static_cast<double>(stats.completed));
  set("cancelled", static_cast<double>(stats.cancelled));
  set("expired", static_cast<double>(stats.expired));
  set("failed", static_cast<double>(stats.failed));
  set("stalled_ticks", static_cast<double>(stats.stalled_ticks));
  set("leaks_repaired", static_cast<double>(stats.leaks_repaired));
  set("total_tokens", static_cast<double>(stats.total_tokens));
  set("tokens_per_sec", stats.tokens_per_sec);
  set("est_ms_per_step", stats.est_ms_per_step);
  set("preempted", static_cast<double>(stats.preempted));
  set("p50_latency_ms", stats.p50_latency_ms);
  set("p95_latency_ms", stats.p95_latency_ms);
  set("p99_latency_ms", stats.p99_latency_ms);
  set("health", static_cast<double>(stats.health));
  for (int cls = 0; cls < kNumTenantClasses; ++cls) {
    const TenantClassStats& tc = stats.classes[cls];
    const std::string cls_prefix =
        prefix + "." + TenantClassName(static_cast<TenantClass>(cls)) + ".";
    const auto set_cls = [&](const char* name, double value) {
      registry->GetGauge(cls_prefix + name)->Set(value);
    };
    set_cls("submitted", static_cast<double>(tc.submitted));
    set_cls("rejected", static_cast<double>(tc.rejected));
    set_cls("quota_rejected", static_cast<double>(tc.quota_rejected));
    set_cls("shed", static_cast<double>(tc.shed));
    set_cls("preempted", static_cast<double>(tc.preempted));
    set_cls("completed", static_cast<double>(tc.completed));
    set_cls("cancelled", static_cast<double>(tc.cancelled));
    set_cls("expired", static_cast<double>(tc.expired));
    set_cls("failed", static_cast<double>(tc.failed));
    set_cls("tokens", static_cast<double>(tc.tokens));
    set_cls("p50_ttft_ms", tc.p50_ttft_ms);
    set_cls("p99_ttft_ms", tc.p99_ttft_ms);
    set_cls("p50_tpot_ms", tc.p50_tpot_ms);
    set_cls("p99_tpot_ms", tc.p99_tpot_ms);
  }
}

void InferenceServer::RecordFinish(const RequestState& state,
                                   FinishReason reason, double total_ms) {
  // Caller holds state.mu, so first_token_ms / tokens are stable here.
  const int cls = static_cast<int>(state.request.tenant);
  if (state.first_token_ms > 0.0) {
    ttft_hist_[cls].Record(state.first_token_ms);
  }
  const size_t n_tokens = state.tokens.size();
  if (n_tokens >= 2 && total_ms > state.first_token_ms) {
    tpot_hist_[cls].Record((total_ms - state.first_token_ms) /
                           static_cast<double>(n_tokens - 1));
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  TenantClassStats& counts = class_counts_[cls];
  switch (reason) {
    case FinishReason::kStop:
    case FinishReason::kLength:
    case FinishReason::kWindow:
      ++completed_;
      ++counts.completed;
      latency_hist_.Record(total_ms);
      break;
    case FinishReason::kCancelled:
      ++cancelled_;
      ++counts.cancelled;
      break;
    case FinishReason::kDeadline:
      ++expired_;
      ++counts.expired;
      break;
    case FinishReason::kFault:
      ++failed_;
      ++counts.failed;
      break;
    case FinishReason::kPreempted:
      ++preempted_;
      ++counts.preempted;
      break;
    case FinishReason::kNone:
      break;
  }
  // A Drain may be waiting for the last terminal event.
  drain_cv_.notify_all();
}

void InferenceServer::CompleteNow(const std::shared_ptr<RequestState>& state,
                                  FinishReason reason, util::Status status) {
  const double total_ms = MsSince(state->submit_time);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->done) return;
    // Stats must be updated before `done` is observable: a waiter may read
    // Stats() the instant Wait() returns.
    RecordFinish(*state, reason, total_ms);
    state->done = true;
    state->reason = reason;
    state->status = std::move(status);
    state->total_ms = total_ms;
  }
  CloseTraceSpans(state.get(), reason);
  state->cv.notify_all();
}

bool InferenceServer::PrepareAdmission(
    const std::shared_ptr<RequestState>& state) {
  if (state->cancel_requested.load(std::memory_order_acquire)) {
    CompleteNow(state, FinishReason::kCancelled,
                util::Status::Cancelled("cancelled while queued"));
    return false;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= state->deadline) {
    CompleteNow(state, FinishReason::kDeadline,
                util::Status::DeadlineExceeded("deadline expired in queue"));
    return false;
  }
  // Deadline-aware shedding: if even the most optimistic completion
  // estimate (every remaining step at the measured per-step rate, full
  // batch parallelism) overshoots the deadline, reject now instead of
  // wasting a KV slot on a request that is guaranteed to expire. While the
  // EMA is still warming up, the optimistic floor — the fastest tick seen,
  // seeded from any est_ms_per_step_seed hint — stands in, so shedding is
  // live from the first measured tick (or immediately with a hint) and a
  // cold server with neither never sheds a feasible deadline.
  const double est_step_ms =
      ticks_observed_ >= kMinTicksForEstimate ? est_ms_per_step_
                                              : est_floor_ms_;
  if (state->deadline != std::chrono::steady_clock::time_point::max() &&
      est_step_ms > 0.0) {
    const auto& request = state->request;
    const int64_t steps_needed =
        std::min(static_cast<int64_t>(request.prompt.size()) +
                     request.max_new_tokens,
                 model_->config().max_seq_len);
    const double est_ms = static_cast<double>(steps_needed) * est_step_ms;
    const double budget_ms =
        std::chrono::duration<double, std::milli>(state->deadline - now)
            .count();
    if (est_ms > budget_ms) {
      CompleteNow(state, FinishReason::kDeadline,
                  util::Status::DeadlineExceeded(
                      "deadline infeasible: ~" +
                      std::to_string(static_cast<int64_t>(est_ms)) +
                      "ms of decode needed, " +
                      std::to_string(static_cast<int64_t>(budget_ms)) +
                      "ms left"));
      return false;
    }
  }
  return true;
}

void InferenceServer::AdmitState(std::shared_ptr<RequestState> state) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.emplace(state->id, state);
  }
  scheduler_.Admit(std::move(state));
}

int64_t InferenceServer::AdmitFromQueue() {
  int64_t admitted = 0;
  std::shared_ptr<RequestState> state;
  while (true) {
    if (scheduler_.HasFreeSlot()) {
      // Weighted-fair admission: the free slot goes to the backlogged
      // class furthest under its fair share of lanes.
      int64_t active[kNumTenantClasses];
      scheduler_.ActiveSnapshot(active);
      if (!queue_.TryPopFair(active, options_.tenants, &state)) break;
      if (!PrepareAdmission(state)) continue;
      AdmitState(std::move(state));
      ++admitted;
      continue;
    }
    // Batch full: the highest-priority queued class may preempt a
    // lower-priority preemptible lane (subject to the fairness gate in
    // PickVictim). The victim retires kPreempted with its partial output;
    // its freed slot admits the waiting request this same iteration.
    const int top = queue_.PeekTopClass();
    if (top < 0) break;
    const TenantClass incoming = static_cast<TenantClass>(top);
    if (!scheduler_.CanPreemptFor(incoming, options_.tenants)) break;
    if (!queue_.TryPopClass(incoming, &state)) break;
    // Gate the incoming request BEFORE displacing a victim for it: a
    // cancelled or infeasible request must not cost anyone their lane.
    if (!PrepareAdmission(state)) continue;
    TickOutput preempt_out;
    const bool preempted =
        scheduler_.PreemptFor(incoming, options_.tenants, &preempt_out);
    LLM_CHECK(preempted);  // single scheduler thread: the victim can't move
    Publish(preempt_out);
    AdmitState(std::move(state));
    ++admitted;
  }
  return admitted;
}

void InferenceServer::Publish(const TickOutput& out) {
  uint64_t delivered = 0;
  uint64_t delivered_per_class[kNumTenantClasses] = {};
  for (const TickOutput::Emitted& emitted : out.tokens) {
    // A request the watchdog (or an earlier callback failure) already
    // finished gets no further streaming callbacks.
    {
      std::lock_guard<std::mutex> lock(emitted.state->mu);
      if (emitted.state->done) continue;
    }
    ++delivered;
    ++delivered_per_class[static_cast<int>(emitted.state->request.tenant)];
    const auto& callback = emitted.state->request.on_token;
    if (!callback) continue;
    if (emitted.state->trace) {
      emitted.state->trace->Event(
          "stream", emitted.state->decode_span.load(std::memory_order_acquire),
          emitted.token);
    }
    bool threw = false;
    try {
      if (util::MaybeInjectFault(util::FaultSite::kOnTokenThrow)) {
        throw std::runtime_error("injected on_token failure");
      }
      callback(emitted.state->id, emitted.token);
    } catch (...) {
      threw = true;
    }
    if (threw) {
      // A misbehaving client callback is isolated exactly like a poisoned
      // lane: fail this request, free its slot at the next tick, keep
      // serving everyone else.
      degraded_.store(true, std::memory_order_release);
      emitted.state->cancel_requested.store(true, std::memory_order_release);
      CompleteNow(emitted.state, FinishReason::kFault,
                  util::Status::Internal(
                      "on_token callback threw; request isolated"));
    }
  }
  if (delivered > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_tokens_ += delivered;
    for (int cls = 0; cls < kNumTenantClasses; ++cls) {
      class_counts_[cls].tokens += delivered_per_class[cls];
    }
  }
  for (const TickOutput::Finished& finished : out.finished) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(finished.state->id);
    }
    if (finished.reason == FinishReason::kFault) {
      degraded_.store(true, std::memory_order_release);
    }
    const double total_ms = MsSince(finished.state->submit_time);
    {
      std::lock_guard<std::mutex> lock(finished.state->mu);
      if (finished.state->done) continue;
      RecordFinish(*finished.state, finished.reason, total_ms);
      finished.state->done = true;
      finished.state->reason = finished.reason;
      finished.state->status = finished.status;
      finished.state->total_ms = total_ms;
    }
    CloseTraceSpans(finished.state.get(), finished.reason);
    finished.state->cv.notify_all();
  }
}

void InferenceServer::SchedulerMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (scheduler_.active_count() == 0) {
      // Idle: block until work arrives or the queue is closed and empty.
      std::shared_ptr<RequestState> state;
      if (!queue_.WaitPop(&state)) break;
      if (!PrepareAdmission(state)) continue;
      AdmitState(std::move(state));
    }
    // Continuous batching: top the batch up from the queue, then advance
    // every active sequence one token.
    AdmitFromQueue();
    const auto tick_start = std::chrono::steady_clock::now();
    tick_start_ns_.store(SteadyNowNs(), std::memory_order_release);
    tick_seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: tick running
    {
      obs::ScopedTimer tick_timer(tick_hist_);
      scheduler_.Tick(&workers_, &scratch_, &tick_out_);
    }
    tick_seq_.fetch_add(1, std::memory_order_acq_rel);  // even: tick done
    if (tick_out_.steps > 0) {
      const double step_ms =
          MsSince(tick_start) / static_cast<double>(tick_out_.steps);
      est_ms_per_step_ = est_ms_per_step_ == 0.0
                             ? step_ms
                             : (1.0 - kEstAlpha) * est_ms_per_step_ +
                                   kEstAlpha * step_ms;
      // The floor tracks the fastest tick ever seen (or the reload hint):
      // the optimistic stand-in feasibility shedding uses until the EMA
      // has warmed up.
      est_floor_ms_ = est_floor_ms_ == 0.0 ? step_ms
                                           : std::min(est_floor_ms_, step_ms);
      ++ticks_observed_;
      est_ms_per_step_pub_.store(est_ms_per_step_, std::memory_order_relaxed);
    }
    Publish(tick_out_);
    const int64_t repaired = scheduler_.ReclaimLeakedSlots();
    if (repaired > 0) {
      leaks_repaired_.fetch_add(static_cast<uint64_t>(repaired),
                                std::memory_order_relaxed);
      degraded_.store(true, std::memory_order_release);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventType::kLeakRepaired,
          static_cast<int32_t>(repaired));
    }
  }
  // Shutdown: retire in-flight sequences (partial output preserved) and
  // fail whatever is still queued.
  tick_out_.Clear();  // last tick's events were already published
  scheduler_.DrainActive(FinishReason::kCancelled,
                         util::Status::Cancelled("server shutdown"),
                         &tick_out_);
  Publish(tick_out_);
  tick_out_.Clear();
  scheduler_.ReclaimLeakedSlots();
  std::shared_ptr<RequestState> state;
  while (queue_.TryPop(&state)) {
    CompleteNow(state, FinishReason::kCancelled,
                util::Status::Cancelled("server shutdown"));
  }
}

void InferenceServer::WatchdogMain() {
  const auto budget = options_.tick_budget;
  const auto interval =
      std::max<std::chrono::milliseconds>(budget / 4,
                                          std::chrono::milliseconds(1));
  uint64_t handled_seq = 0;
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    watchdog_cv_.wait_for(lock, interval, [this] {
      return stop_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire)) break;
    const uint64_t seq = tick_seq_.load(std::memory_order_acquire);
    if ((seq & 1) == 0 || seq == handled_seq) continue;  // idle / handled
    const double elapsed_ms =
        static_cast<double>(SteadyNowNs() -
                            tick_start_ns_.load(std::memory_order_acquire)) /
        1e6;
    if (elapsed_ms < static_cast<double>(budget.count())) continue;
    // Stalled tick: fail fast. Every in-flight request completes with a
    // diagnostic Internal status so no Wait() hangs behind the wedged
    // worker; their slots retire at whatever tick the scheduler manages
    // next (the cancel flag tells it to stop decoding them).
    handled_seq = seq;
    degraded_.store(true, std::memory_order_release);
    stalled_ticks_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::shared_ptr<RequestState>> victims;
    {
      std::lock_guard<std::mutex> inflight_lock(inflight_mu_);
      victims.reserve(inflight_.size());
      for (const auto& [id, st] : inflight_) victims.push_back(st);
    }
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kStallDetected,
        static_cast<int32_t>(victims.size()),
        static_cast<int64_t>(elapsed_ms));
    for (const auto& victim : victims) {
      victim->cancel_requested.store(true, std::memory_order_release);
      CompleteNow(victim, FinishReason::kFault,
                  util::Status::Internal(
                      "scheduler tick stalled: " +
                      std::to_string(static_cast<int64_t>(elapsed_ms)) +
                      "ms elapsed against a " +
                      std::to_string(budget.count()) + "ms budget"));
    }
  }
}

}  // namespace llm::serve
