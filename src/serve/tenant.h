// Per-tenant serving policy: quotas, fair-share weights, and shed/preempt
// eligibility — the knobs that decide WHO degrades when demand exceeds
// capacity.
//
// The policy model (DESIGN.md §14):
//
//   Priority    The TenantClass index (request.h). Lower index wins every
//               strict-priority decision: queue-full eviction sheds the
//               highest-index sheddable class first, and decode preemption
//               only ever flows downhill (a class may displace strictly
//               higher-index, preemptible lanes).
//   Quota       A per-class token bucket charged at admission for the
//               request's worst-case token footprint (prompt + requested
//               output). Refill is computed from caller-supplied time
//               points — "virtual time" — so tests drive the bucket
//               deterministically and the server just passes the steady
//               clock. rate <= 0 means unlimited.
//   Weight      Weighted-fair lane share in the continuous-batching
//               scheduler: when a KV slot frees up, the queue pops from
//               the backlogged class with the smallest active/weight
//               ratio, so bulk classes keep a proportional share of the
//               batch instead of starving (work-conserving: idle classes
//               donate their share).
//   Sheddable   May be evicted from the admission queue when a
//               lower-index class arrives and the queue is full.
//   Preemptible May have an in-flight decode retired (FinishReason::
//               kPreempted, KV slot back to the pool, partial tokens
//               returned) when a lower-index class is queued and no slot
//               is free. Preemption respects the weights: the preemptor
//               must still be under its fair share relative to the
//               victim, which keeps admission/preemption from thrashing
//               a lane back and forth.
//
// The default policy gives chat 4 : batch 2 : background 1 weights, marks
// batch and background sheddable + preemptible, and leaves every quota
// unlimited — so a server that never tags requests (everything kChat)
// behaves exactly as before multi-tenancy existed.
#ifndef TFMR_SERVE_TENANT_H_
#define TFMR_SERVE_TENANT_H_

#include <chrono>

#include "serve/request.h"

namespace llm::serve {

struct TenantClassPolicy {
  /// Token-bucket refill rate, in (prompt + requested output) tokens per
  /// second; <= 0 means unlimited (the bucket is never consulted).
  double quota_tokens_per_sec = 0.0;
  /// Bucket capacity: the largest burst the class can admit at once.
  double quota_burst_tokens = 0.0;
  /// Weighted-fair share of KV lanes; must be >= 1.
  int weight = 1;
  /// May be evicted from the queue for a higher-priority admission.
  bool sheddable = false;
  /// May have an in-flight decode preempted for a higher-priority tenant.
  bool preemptible = false;
};

struct TenantPolicy {
  TenantClassPolicy classes[kNumTenantClasses];

  const TenantClassPolicy& of(TenantClass tenant) const {
    return classes[static_cast<int>(tenant)];
  }

  /// chat {w4, protected} / batch {w2, sheddable+preemptible} /
  /// background {w1, sheddable+preemptible}; all quotas unlimited.
  static TenantPolicy Default();
};

/// Deterministic token bucket. All refill arithmetic runs on time points
/// the caller supplies, so a test can replay any admission sequence
/// exactly; the server passes std::chrono::steady_clock::now(). Not
/// thread-safe — the owner serializes access (InferenceServer guards its
/// buckets with a mutex).
class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 builds an unlimited bucket (TryConsume always
  /// succeeds, available() reports +inf-ish burst).
  TokenBucket(double rate_per_sec, double burst,
              std::chrono::steady_clock::time_point start);

  /// Refills for the elapsed virtual time, then consumes `tokens` if the
  /// bucket holds at least that many. `now` must be monotone across calls
  /// (earlier time points are clamped to the last seen).
  bool TryConsume(double tokens, std::chrono::steady_clock::time_point now);

  /// Tokens available after refilling to `now` (no consumption).
  double Available(std::chrono::steady_clock::time_point now);

  bool unlimited() const { return rate_per_sec_ <= 0.0; }

 private:
  void RefillTo(std::chrono::steady_clock::time_point now);

  const double rate_per_sec_;
  const double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
};

}  // namespace llm::serve

#endif  // TFMR_SERVE_TENANT_H_
