#include "sample/search.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sample/sampler.h"

namespace llm::sample {

namespace {
struct Beam {
  std::vector<int64_t> generated;
  double log_prob = 0.0;
  bool finished = false;
};

double ScoreOf(const Beam& beam, float length_penalty) {
  if (beam.generated.empty() || length_penalty <= 0.0f) {
    return beam.log_prob;
  }
  return beam.log_prob /
         std::pow(static_cast<double>(beam.generated.size()),
                  static_cast<double>(length_penalty));
}
}  // namespace

std::vector<BeamResult> BeamSearch(const nn::GPTModel& model,
                                   const std::vector<int64_t>& prefix,
                                   const BeamSearchOptions& options) {
  LLM_CHECK(!prefix.empty());
  LLM_CHECK_GT(options.beam_width, 0);
  const int64_t vocab = model.config().vocab_size;
  const int64_t max_len = model.config().max_seq_len;

  std::vector<Beam> beams = {Beam{}};
  for (int64_t step = 0; step < options.max_new_tokens; ++step) {
    struct Candidate {
      size_t parent;
      int64_t token;  // -1 = carry a finished beam forward
      double log_prob;
    };
    std::vector<Candidate> candidates;
    bool any_live = false;
    for (size_t bi = 0; bi < beams.size(); ++bi) {
      const Beam& beam = beams[bi];
      if (beam.finished) {
        candidates.push_back({bi, -1, beam.log_prob});
        continue;
      }
      std::vector<int64_t> sequence = prefix;
      sequence.insert(sequence.end(), beam.generated.begin(),
                      beam.generated.end());
      const auto T = static_cast<int64_t>(sequence.size());
      if (T >= max_len) {  // out of window: freeze this beam
        candidates.push_back({bi, -1, beam.log_prob});
        continue;
      }
      any_live = true;
      core::Variable logits = model.ForwardLogits(sequence, 1, T);
      const float* row = logits.value().data() + (T - 1) * vocab;
      // Log-softmax of the last row.
      float maxv = row[0];
      for (int64_t v = 1; v < vocab; ++v) maxv = std::max(maxv, row[v]);
      double sum = 0.0;
      for (int64_t v = 0; v < vocab; ++v) sum += std::exp(row[v] - maxv);
      const double log_z = std::log(sum) + maxv;
      for (int64_t v = 0; v < vocab; ++v) {
        candidates.push_back({bi, v, beam.log_prob + row[v] - log_z});
      }
    }
    if (!any_live) break;

    std::partial_sort(
        candidates.begin(),
        candidates.begin() +
            std::min<size_t>(candidates.size(),
                             static_cast<size_t>(options.beam_width)),
        candidates.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.log_prob > b.log_prob;
        });
    std::vector<Beam> next;
    for (size_t i = 0;
         i < candidates.size() &&
         next.size() < static_cast<size_t>(options.beam_width);
         ++i) {
      const Candidate& c = candidates[i];
      Beam beam = beams[c.parent];
      if (c.token >= 0) {
        beam.generated.push_back(c.token);
        beam.log_prob = c.log_prob;
        if (c.token == options.stop_token) beam.finished = true;
      } else {
        beam.finished = true;
      }
      next.push_back(std::move(beam));
    }
    beams = std::move(next);
  }

  std::vector<BeamResult> results;
  results.reserve(beams.size());
  for (const auto& beam : beams) {
    results.push_back({beam.generated, beam.log_prob,
                       ScoreOf(beam, options.length_penalty)});
  }
  std::sort(results.begin(), results.end(),
            [](const BeamResult& a, const BeamResult& b) {
              return a.score > b.score;
            });
  return results;
}

int64_t SelfConsistentAnswer(const nn::GPTModel& model,
                             const std::vector<int64_t>& prefix,
                             const AnswerExtractor& extract,
                             const SelfConsistencyOptions& options,
                             util::Rng* rng) {
  LLM_CHECK(rng != nullptr);
  std::map<int64_t, int> votes;
  std::map<int64_t, int> first_seen;
  int order = 0;
  for (int s = 0; s < options.num_samples; ++s) {
    GenerateOptions gopts;
    gopts.max_new_tokens = options.max_new_tokens;
    gopts.sampler.temperature = options.temperature;
    gopts.stop_token = options.stop_token;
    const std::vector<int64_t> out = Generate(model, prefix, gopts, rng);
    const int64_t answer = extract(out);
    if (answer < 0) continue;
    if (!first_seen.count(answer)) first_seen[answer] = order++;
    ++votes[answer];
  }
  int64_t best = -1;
  int best_votes = 0;
  for (const auto& [answer, count] : votes) {
    if (count > best_votes ||
        (count == best_votes && best >= 0 &&
         first_seen[answer] < first_seen[best])) {
      best = answer;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace llm::sample
