// Search-augmented decoding (paper §8: "LLMs have no component dedicated
// to search ... this observation is motivating a fair amount of current
// work on ways to incorporate search", citing tree-of-thoughts [142]).
// Two standard mechanisms over a fixed model:
//
//  * Beam search — breadth-k search over continuations by total
//    log-probability (the minimal tree search over model outputs).
//  * Self-consistency — sample several chains of thought at temperature
//    and majority-vote their final answers (the ensemble counterpart).
#ifndef TFMR_SAMPLE_SEARCH_H_
#define TFMR_SAMPLE_SEARCH_H_

#include <functional>
#include <vector>

#include "nn/transformer.h"
#include "util/rng.h"

namespace llm::sample {

struct BeamSearchOptions {
  int beam_width = 4;
  int64_t max_new_tokens = 16;
  /// Beams emitting this token are finished; -1 disables.
  int64_t stop_token = -1;
  /// Scores are log P / (length ^ length_penalty); 0 = raw log prob.
  float length_penalty = 0.0f;
};

struct BeamResult {
  /// Generated tokens (excluding the prefix, including the stop token if
  /// one was emitted).
  std::vector<int64_t> tokens;
  double log_prob = 0.0;
  double score = 0.0;
};

/// Returns up to beam_width finished (or budget-exhausted) continuations,
/// best score first. Prefix plus generation must fit the model window.
std::vector<BeamResult> BeamSearch(const nn::GPTModel& model,
                                   const std::vector<int64_t>& prefix,
                                   const BeamSearchOptions& options);

struct SelfConsistencyOptions {
  int num_samples = 9;
  float temperature = 0.7f;
  int64_t max_new_tokens = 16;
  int64_t stop_token = -1;
};

/// Extracts a discrete answer from one sampled continuation; return -1
/// for "no answer".
using AnswerExtractor =
    std::function<int64_t(const std::vector<int64_t>&)>;

/// Samples num_samples continuations and returns the majority answer
/// (ties broken toward the earlier-seen answer); -1 if no sample yielded
/// an answer.
int64_t SelfConsistentAnswer(const nn::GPTModel& model,
                             const std::vector<int64_t>& prefix,
                             const AnswerExtractor& extract,
                             const SelfConsistencyOptions& options,
                             util::Rng* rng);

}  // namespace llm::sample

#endif  // TFMR_SAMPLE_SEARCH_H_
