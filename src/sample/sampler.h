// Decoding strategies (paper Eq. 8: the Boltzmann/softmax inverse map with
// temperature T): greedy (the beta -> infinity argmax limit), temperature
// sampling, top-k, and nucleus (top-p) truncation, plus autoregressive
// generation from a GPTModel.
#ifndef TFMR_SAMPLE_SAMPLER_H_
#define TFMR_SAMPLE_SAMPLER_H_

#include <vector>

#include "nn/gpt_inference.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace llm::sample {

struct SamplerOptions {
  /// Temperature T of Eq. 8; 0 means greedy argmax.
  float temperature = 1.0f;
  /// Keep only the k most likely tokens before sampling; 0 disables.
  int top_k = 0;
  /// Keep the smallest prefix of tokens with cumulative probability
  /// >= top_p; 0 (or >= 1) disables.
  float top_p = 0.0f;
};

/// Probability distribution from one logits row under the options
/// (softmax at temperature, then top-k / top-p truncation, renormalized).
/// With temperature == 0 the result is a one-hot argmax distribution.
std::vector<float> DistributionFromLogits(const float* logits, int64_t vocab,
                                          const SamplerOptions& options);

/// Samples one token id from a logits row.
int64_t SampleFromLogits(const float* logits, int64_t vocab,
                         const SamplerOptions& options, util::Rng* rng);

struct GenerateOptions {
  int64_t max_new_tokens = 32;
  SamplerOptions sampler;
  /// Stop early when this token is produced; -1 disables.
  int64_t stop_token = -1;
};

/// Autoregressive generation: repeatedly runs the model on the (windowed)
/// prefix and samples the next token. Returns only the newly generated
/// tokens. The prefix must be non-empty.
std::vector<int64_t> Generate(const nn::GPTModel& model,
                              const std::vector<int64_t>& prefix,
                              const GenerateOptions& options, util::Rng* rng);

/// KV-cached generation with the full SamplerOptions (temperature, top-k,
/// top-p) — the O(L)-per-token path the serving runtime mirrors. Agrees
/// with Generate under every decoding strategy (parity-tested) as long as
/// prefix size + max_new_tokens fits the model window; unlike Generate the
/// cached path does not slide the window, it stops at max_seq_len.
std::vector<int64_t> GenerateCached(const nn::GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    const GenerateOptions& options,
                                    util::Rng* rng);

/// Same as GenerateCached but reuses a caller-owned session (which it
/// Reset()s first) so repeated requests share one KV allocation — the
/// single-stream analogue of the serve::KvCachePool slot lease.
std::vector<int64_t> GenerateWithSession(nn::GptInferenceSession* session,
                                         const std::vector<int64_t>& prefix,
                                         const GenerateOptions& options,
                                         util::Rng* rng);

}  // namespace llm::sample

#endif  // TFMR_SAMPLE_SAMPLER_H_
