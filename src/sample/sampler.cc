#include "sample/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace llm::sample {

std::vector<float> DistributionFromLogits(const float* logits, int64_t vocab,
                                          const SamplerOptions& options) {
  LLM_CHECK_GT(vocab, 0);
  std::vector<float> probs(static_cast<size_t>(vocab), 0.0f);
  if (options.temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t i = 1; i < vocab; ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    probs[static_cast<size_t>(best)] = 1.0f;
    return probs;
  }
  const float inv_t = 1.0f / options.temperature;
  float maxv = logits[0];
  for (int64_t i = 1; i < vocab; ++i) maxv = std::max(maxv, logits[i]);
  double sum = 0.0;
  for (int64_t i = 0; i < vocab; ++i) {
    probs[static_cast<size_t>(i)] = std::exp((logits[i] - maxv) * inv_t);
    sum += probs[static_cast<size_t>(i)];
  }
  for (auto& p : probs) p = static_cast<float>(p / sum);

  const bool use_top_k = options.top_k > 0 && options.top_k < vocab;
  const bool use_top_p = options.top_p > 0.0f && options.top_p < 1.0f;
  if (!use_top_k && !use_top_p) return probs;

  // Sort token ids by probability, descending.
  std::vector<int64_t> order(static_cast<size_t>(vocab));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return probs[static_cast<size_t>(a)] > probs[static_cast<size_t>(b)];
  });

  int64_t keep = vocab;
  if (use_top_k) keep = std::min<int64_t>(keep, options.top_k);
  if (use_top_p) {
    double cum = 0.0;
    int64_t k = 0;
    while (k < keep) {
      cum += probs[static_cast<size_t>(order[static_cast<size_t>(k)])];
      ++k;
      if (cum >= options.top_p) break;
    }
    keep = k;
  }
  std::vector<float> truncated(static_cast<size_t>(vocab), 0.0f);
  double kept_mass = 0.0;
  for (int64_t k = 0; k < keep; ++k) {
    const int64_t id = order[static_cast<size_t>(k)];
    truncated[static_cast<size_t>(id)] = probs[static_cast<size_t>(id)];
    kept_mass += probs[static_cast<size_t>(id)];
  }
  LLM_CHECK_GT(kept_mass, 0.0);
  for (auto& p : truncated) p = static_cast<float>(p / kept_mass);
  return truncated;
}

int64_t SampleFromLogits(const float* logits, int64_t vocab,
                         const SamplerOptions& options, util::Rng* rng) {
  const std::vector<float> probs =
      DistributionFromLogits(logits, vocab, options);
  if (options.temperature <= 0.0f) {
    for (int64_t i = 0; i < vocab; ++i) {
      if (probs[static_cast<size_t>(i)] == 1.0f) return i;
    }
  }
  LLM_CHECK(rng != nullptr);
  return static_cast<int64_t>(rng->Categorical(probs));
}

std::vector<int64_t> Generate(const nn::GPTModel& model,
                              const std::vector<int64_t>& prefix,
                              const GenerateOptions& options,
                              util::Rng* rng) {
  LLM_CHECK(!prefix.empty());
  const int64_t max_len = model.config().max_seq_len;
  const int64_t vocab = model.config().vocab_size;
  std::vector<int64_t> sequence = prefix;
  std::vector<int64_t> generated;
  for (int64_t step = 0; step < options.max_new_tokens; ++step) {
    // Window: the last max_len tokens.
    const int64_t T =
        std::min<int64_t>(max_len, static_cast<int64_t>(sequence.size()));
    std::vector<int64_t> window(sequence.end() - T, sequence.end());
    core::Variable logits = model.ForwardLogits(window, 1, T);
    const float* last_row = logits.value().data() + (T - 1) * vocab;
    const int64_t next =
        SampleFromLogits(last_row, vocab, options.sampler, rng);
    sequence.push_back(next);
    generated.push_back(next);
    if (next == options.stop_token) break;
  }
  return generated;
}

std::vector<int64_t> GenerateCached(const nn::GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    const GenerateOptions& options,
                                    util::Rng* rng) {
  nn::GptInferenceSession session(&model);
  return GenerateWithSession(&session, prefix, options, rng);
}

std::vector<int64_t> GenerateWithSession(nn::GptInferenceSession* session,
                                         const std::vector<int64_t>& prefix,
                                         const GenerateOptions& options,
                                         util::Rng* rng) {
  LLM_CHECK(session != nullptr);
  LLM_CHECK(!prefix.empty());
  session->Reset();
  const nn::GPTModel& model = *session->model();
  const int64_t max_len = model.config().max_seq_len;
  const int64_t vocab = model.config().vocab_size;
  const std::vector<float>* logits = nullptr;
  for (int64_t t : prefix) logits = &session->Append(t);
  std::vector<int64_t> out;
  for (int64_t i = 0; i < options.max_new_tokens; ++i) {
    if (session->position() >= max_len) break;
    const int64_t next =
        SampleFromLogits(logits->data(), vocab, options.sampler, rng);
    out.push_back(next);
    if (next == options.stop_token) break;
    if (session->position() < max_len) logits = &session->Append(next);
  }
  return out;
}

}  // namespace llm::sample
