#include "nn/transformer.h"

namespace llm::nn {

util::Status GPTConfig::Validate() const {
  if (vocab_size <= 0) {
    return util::Status::InvalidArgument("vocab_size must be positive");
  }
  if (max_seq_len <= 0) {
    return util::Status::InvalidArgument("max_seq_len must be positive");
  }
  if (d_model <= 0 || n_layer <= 0 || n_head <= 0) {
    return util::Status::InvalidArgument(
        "d_model, n_layer, n_head must be positive");
  }
  if (d_model % n_head != 0) {
    return util::Status::InvalidArgument("d_model must be divisible by n_head");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return util::Status::InvalidArgument("dropout must be in [0, 1)");
  }
  if (attention_window < 0) {
    return util::Status::InvalidArgument("attention_window must be >= 0");
  }
  return util::Status::OK();
}

TransformerBlock::TransformerBlock(const GPTConfig& config, util::Rng* rng)
    : pre_ln_(config.pre_layernorm),
      attention_only_(config.attention_only),
      dropout_(config.dropout),
      ln1_(config.d_model),
      ln2_(config.d_model),
      attn_(config.d_model, config.n_head, rng, config.attention_window) {
  if (!attention_only_) {
    mlp_ = std::make_unique<Mlp>(config.d_model, config.hidden_dim(),
                                 config.d_model, rng, config.activation);
  }
}

core::Variable TransformerBlock::Forward(const core::Variable& x,
                                         bool training,
                                         util::Rng* rng) const {
  core::Variable h = x;
  if (pre_ln_) {
    core::Variable a = attn_.Forward(ln1_.Forward(h));
    a = core::Dropout(a, dropout_, rng, training);
    h = core::Add(h, a);
    if (!attention_only_) {
      core::Variable m = mlp_->Forward(ln2_.Forward(h));
      m = core::Dropout(m, dropout_, rng, training);
      h = core::Add(h, m);
    }
  } else {
    core::Variable a = attn_.Forward(h);
    a = core::Dropout(a, dropout_, rng, training);
    h = ln1_.Forward(core::Add(h, a));
    if (!attention_only_) {
      core::Variable m = mlp_->Forward(h);
      m = core::Dropout(m, dropout_, rng, training);
      h = ln2_.Forward(core::Add(h, m));
    }
  }
  return h;
}

NamedParams TransformerBlock::NamedParameters() const {
  NamedParams out;
  AppendNamed("ln1", ln1_.NamedParameters(), &out);
  AppendNamed("attn", attn_.NamedParameters(), &out);
  if (!attention_only_) {
    AppendNamed("ln2", ln2_.NamedParameters(), &out);
    AppendNamed("mlp", mlp_->NamedParameters(), &out);
  }
  return out;
}

GPTModel::GPTModel(const GPTConfig& config, util::Rng* rng)
    : config_(config),
      tok_emb_(config.vocab_size, config.d_model, rng),
      ln_final_(config.d_model) {
  LLM_CHECK(config.Validate().ok()) << config.Validate().ToString();
  if (config.learned_positional) {
    pos_emb_ = core::Variable(
        core::Tensor::RandomNormal({config.max_seq_len, config.d_model}, rng,
                                   0.0f, 0.02f),
        /*requires_grad=*/true);
  } else {
    pos_emb_ = core::Variable(
        SinusoidalPositionalEncoding(config.max_seq_len, config.d_model),
        /*requires_grad=*/false);
  }
  blocks_.reserve(static_cast<size_t>(config.n_layer));
  for (int i = 0; i < config.n_layer; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(config, rng));
  }
  if (!config.tie_embeddings) {
    head_ = std::make_unique<Linear>(config.d_model, config.vocab_size, rng,
                                     /*bias=*/false);
  }
}

core::Variable GPTModel::ForwardLogits(const std::vector<int64_t>& tokens,
                                       int64_t B, int64_t T,
                                       const ForwardOptions& opts) const {
  LLM_CHECK_EQ(static_cast<int64_t>(tokens.size()), B * T);
  LLM_CHECK_LE(T, config_.max_seq_len);
  const int64_t C = config_.d_model;

  // Token embedding [B*T, C] -> [B, T, C].
  core::Variable h = core::Reshape(tok_emb_.Forward(tokens), {B, T, C});

  // Positional addition: flatten to [B, T*C] and broadcast-add the first
  // T rows of the position table (contiguous as a [T*C] vector).
  core::Variable pos_flat =
      core::Reshape(pos_emb_, {1, config_.max_seq_len * C});
  core::Variable pos_t = core::Reshape(
      core::SliceLastDim(pos_flat, 0, T * C), {T * C});
  h = core::Reshape(
      core::AddRowBroadcast(core::Reshape(h, {B, T * C}), pos_t), {B, T, C});
  h = core::Dropout(h, config_.dropout, opts.rng, opts.training);

  ActivationCapture* cap = opts.capture;
  if (cap) {
    cap->residual.clear();
    cap->attention.clear();
    cap->residual.push_back(h);
  }
  for (const auto& block : blocks_) {
    if (cap && cap->capture_attention) {
      block->attention()->set_capture_probs(true);
    }
    h = block->Forward(h, opts.training, opts.rng);
    if (cap) {
      cap->residual.push_back(h);
      if (cap->capture_attention) {
        cap->attention.push_back(block->attention()->last_probs());
        block->attention()->set_capture_probs(false);
      }
    }
  }
  h = ln_final_.Forward(h);
  core::Variable flat = core::Reshape(h, {B * T, C});
  if (config_.tie_embeddings) {
    return core::MatMul(flat, core::Transpose2D(tok_emb_.weight()));
  }
  return head_->Forward(flat);
}

core::Variable GPTModel::ForwardFromLayer(const core::Variable& h,
                                          int start_layer) const {
  LLM_CHECK_GE(start_layer, 0);
  LLM_CHECK_LE(start_layer, config_.n_layer);
  LLM_CHECK_EQ(h.value().ndim(), 3);
  const int64_t B = h.value().dim(0);
  const int64_t T = h.value().dim(1);
  const int64_t C = h.value().dim(2);
  LLM_CHECK_EQ(C, config_.d_model);
  core::Variable x = h;
  for (size_t i = static_cast<size_t>(start_layer); i < blocks_.size();
       ++i) {
    x = blocks_[i]->Forward(x, /*training=*/false, nullptr);
  }
  x = ln_final_.Forward(x);
  core::Variable flat = core::Reshape(x, {B * T, C});
  if (config_.tie_embeddings) {
    return core::MatMul(flat, core::Transpose2D(tok_emb_.weight()));
  }
  return head_->Forward(flat);
}

core::Variable GPTModel::LmLoss(const std::vector<int64_t>& tokens,
                                const std::vector<int64_t>& targets,
                                int64_t B, int64_t T,
                                const ForwardOptions& opts,
                                int64_t ignore_index) const {
  LLM_CHECK_EQ(tokens.size(), targets.size());
  core::Variable logits = ForwardLogits(tokens, B, T, opts);
  return core::CrossEntropyLogits(logits, targets, ignore_index);
}

NamedParams GPTModel::NamedParameters() const {
  NamedParams out;
  AppendNamed("tok_emb", tok_emb_.NamedParameters(), &out);
  if (config_.learned_positional) out.emplace_back("pos_emb", pos_emb_);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    AppendNamed("blocks/" + std::to_string(i), blocks_[i]->NamedParameters(),
                &out);
  }
  AppendNamed("ln_final", ln_final_.NamedParameters(), &out);
  if (head_) AppendNamed("head", head_->NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
