#include "nn/param_count.h"

namespace llm::nn {

int64_t AnalyticGptParamCount(const GPTConfig& config) {
  const int64_t V = config.vocab_size;
  const int64_t C = config.d_model;
  const int64_t Ch = config.hidden_dim();
  const int64_t L = config.n_layer;

  int64_t n = V * C;                                    // token embedding
  if (config.learned_positional) n += config.max_seq_len * C;
  // Per block: ln1 (2C) + qkv (C*3C + 3C) + proj (C*C + C)
  //            [+ ln2 (2C) + mlp (C*Ch + Ch + Ch*C + C)]
  int64_t per_block = 2 * C + (C * 3 * C + 3 * C) + (C * C + C);
  if (!config.attention_only) {
    per_block += 2 * C + (C * Ch + Ch) + (Ch * C + C);
  }
  n += L * per_block;
  n += 2 * C;                                           // final layer norm
  if (!config.tie_embeddings) n += C * V;               // unembedding
  return n;
}

double TwelveDPSquaredRule(int n_layer, int64_t d_model) {
  return 12.0 * static_cast<double>(n_layer) * static_cast<double>(d_model) *
         static_cast<double>(d_model);
}

std::vector<PaperModelSpec> Table1Specs() {
  // Architecture hyperparameters are the published values for each model;
  // reported_params / dataset_tokens are the paper's Table 1 entries.
  return {
      {"GPT", 2018, 12, 768, 110e6, 1e9},
      {"BERT", 2018, 24, 1024, 340e6, 3e9},
      {"GPT-2", 2019, 48, 1600, 1.5e9, 10e9},
      {"GPT-3", 2020, 96, 12288, 175e9, 500e9},
      {"PaLM", 2022, 118, 18432, 540e9, 780e9},
      {"GPT-4", 2023, 0, 0, 1.4e12, 0},  // architecture not public
  };
}

}  // namespace llm::nn
