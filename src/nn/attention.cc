#include "nn/attention.h"

namespace llm::nn {

CausalSelfAttention::CausalSelfAttention(int64_t d_model, int num_heads,
                                         util::Rng* rng, int window)
    : num_heads_(num_heads),
      window_(window),
      qkv_(d_model, 3 * d_model, rng),
      proj_(d_model, d_model, rng) {
  LLM_CHECK_GT(num_heads, 0);
  LLM_CHECK_EQ(d_model % num_heads, 0);
}

core::Variable CausalSelfAttention::Forward(const core::Variable& x) const {
  LLM_CHECK_EQ(x.value().ndim(), 3);
  core::Variable qkv = qkv_.Forward(x);  // [B, T, 3C]
  core::AttentionOptions opts;
  opts.num_heads = num_heads_;
  opts.window = window_;
  opts.save_probs = capture_ ? &last_probs_ : nullptr;
  core::Variable att = core::MultiHeadCausalAttention(qkv, opts);
  return proj_.Forward(att);
}

NamedParams CausalSelfAttention::NamedParameters() const {
  NamedParams out;
  AppendNamed("qkv", qkv_.NamedParameters(), &out);
  AppendNamed("proj", proj_.NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
