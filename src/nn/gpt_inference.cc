#include "nn/gpt_inference.h"

#include <cmath>

namespace llm::nn {

namespace {

/// Minimal temperature sampler (greedy at T = 0), local to avoid a
/// dependency cycle with the sample library.
int64_t SampleRow(const float* logits, int64_t vocab, float temperature,
                  util::Rng* rng) {
  if (temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t i = 1; i < vocab; ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    return best;
  }
  float maxv = logits[0];
  for (int64_t i = 1; i < vocab; ++i) maxv = std::max(maxv, logits[i]);
  std::vector<float> probs(static_cast<size_t>(vocab));
  const float inv_t = 1.0f / temperature;
  for (int64_t i = 0; i < vocab; ++i) {
    probs[static_cast<size_t>(i)] = std::exp((logits[i] - maxv) * inv_t);
  }
  LLM_CHECK(rng != nullptr);
  return static_cast<int64_t>(rng->Categorical(probs));
}

float ActivationFn(Activation act, float v) {
  switch (act) {
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kGelu: {
      constexpr float kScale = 0.7978845608028654f;  // sqrt(2/pi)
      const float cube = 0.044715f * v * v * v;
      return 0.5f * v * (1.0f + std::tanh(kScale * (v + cube)));
    }
    case Activation::kTanh:
      return std::tanh(v);
  }
  LLM_CHECK(false);
  return v;
}

}  // namespace

GptInferenceSession::GptInferenceSession(const GPTModel* model)
    : model_(model) {
  LLM_CHECK(model != nullptr);
  cache_.resize(static_cast<size_t>(model->config().n_layer));
  const int64_t C = model->config().d_model;
  const auto reserve = static_cast<size_t>(model->config().max_seq_len * C);
  for (auto& layer : cache_) {
    layer.keys.reserve(reserve);
    layer.values.reserve(reserve);
  }
  logits_.resize(static_cast<size_t>(model->config().vocab_size));
}

void GptInferenceSession::Reset() {
  position_ = 0;
  for (auto& layer : cache_) {
    layer.keys.clear();
    layer.values.clear();
  }
}

void GptInferenceSession::ApplyLayerNorm(const LayerNorm& ln,
                                         const std::vector<float>& x,
                                         std::vector<float>* y) const {
  const auto c = static_cast<int64_t>(x.size());
  y->resize(x.size());
  double mean = 0;
  for (float v : x) mean += v;
  mean /= static_cast<double>(c);
  double var = 0;
  for (float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(c);
  const float rstd =
      1.0f / std::sqrt(static_cast<float>(var) + ln.eps());
  const core::Tensor& gamma = ln.gamma().value();
  const core::Tensor& beta = ln.beta().value();
  for (int64_t i = 0; i < c; ++i) {
    (*y)[static_cast<size_t>(i)] =
        gamma[i] * (x[static_cast<size_t>(i)] -
                    static_cast<float>(mean)) *
            rstd +
        beta[i];
  }
}

void GptInferenceSession::ApplyLinear(const Linear& linear,
                                      const std::vector<float>& x,
                                      std::vector<float>* y) const {
  const int64_t in = linear.in_features();
  const int64_t out = linear.out_features();
  LLM_CHECK_EQ(static_cast<int64_t>(x.size()), in);
  y->assign(static_cast<size_t>(out), 0.0f);
  const float* w = linear.weight().value().data();  // [in, out]
  for (int64_t i = 0; i < in; ++i) {
    const float xv = x[static_cast<size_t>(i)];
    if (xv == 0.0f) continue;
    const float* row = w + i * out;
    for (int64_t o = 0; o < out; ++o) {
      (*y)[static_cast<size_t>(o)] += xv * row[o];
    }
  }
  if (linear.has_bias()) {
    const core::Tensor& b = linear.bias().value();
    for (int64_t o = 0; o < out; ++o) {
      (*y)[static_cast<size_t>(o)] += b[o];
    }
  }
}

const std::vector<float>& GptInferenceSession::Append(int64_t token) {
  const GPTConfig& cfg = model_->config();
  LLM_CHECK_LT(position_, cfg.max_seq_len)
      << "session exceeded the model window; Reset() and re-feed";
  const int64_t C = cfg.d_model;
  const int64_t H = cfg.n_head;
  const int64_t hd = C / H;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  // Embedding + position.
  std::vector<float> x(static_cast<size_t>(C));
  const core::Tensor& emb = model_->token_embedding().weight().value();
  const core::Tensor& pos = model_->position_embedding().value();
  LLM_CHECK_GE(token, 0);
  LLM_CHECK_LT(token, cfg.vocab_size);
  for (int64_t c = 0; c < C; ++c) {
    x[static_cast<size_t>(c)] =
        emb[token * C + c] + pos[position_ * C + c];
  }

  std::vector<float> normed, qkv, att_out, proj, h2, hidden, mlp_out;
  for (int layer = 0; layer < cfg.n_layer; ++layer) {
    const TransformerBlock* block = model_->block(layer);
    LayerCache& cache = cache_[static_cast<size_t>(layer)];

    // ---- Attention sublayer ----
    const std::vector<float>& attn_input = x;
    if (block->pre_layernorm()) {
      ApplyLayerNorm(block->ln1(), x, &normed);
    } else {
      normed = attn_input;  // post-LN applies LN after the residual add
    }
    ApplyLinear(block->attention()->qkv(), normed, &qkv);  // [3C]
    // Append this position's K/V to the cache.
    cache.keys.insert(cache.keys.end(), qkv.begin() + C,
                      qkv.begin() + 2 * C);
    cache.values.insert(cache.values.end(), qkv.begin() + 2 * C,
                        qkv.end());
    const int64_t t = position_;  // current index; cache holds t+1 rows

    att_out.assign(static_cast<size_t>(C), 0.0f);
    const int window = block->attention()->window();
    const int64_t lo =
        window > 0 ? std::max<int64_t>(0, t - window + 1) : int64_t{0};
    std::vector<float> scores(static_cast<size_t>(t + 1));
    for (int64_t h = 0; h < H; ++h) {
      const float* q = qkv.data() + h * hd;
      float maxv = -1e30f;
      for (int64_t j = lo; j <= t; ++j) {
        const float* k = cache.keys.data() + j * C + h * hd;
        float s = 0.0f;
        for (int64_t c = 0; c < hd; ++c) s += q[c] * k[c];
        s *= inv_sqrt;
        scores[static_cast<size_t>(j)] = s;
        maxv = std::max(maxv, s);
      }
      float sum = 0.0f;
      for (int64_t j = lo; j <= t; ++j) {
        scores[static_cast<size_t>(j)] =
            std::exp(scores[static_cast<size_t>(j)] - maxv);
        sum += scores[static_cast<size_t>(j)];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = lo; j <= t; ++j) {
        const float p = scores[static_cast<size_t>(j)] * inv;
        const float* v = cache.values.data() + j * C + h * hd;
        float* o = att_out.data() + h * hd;
        for (int64_t c = 0; c < hd; ++c) o[c] += p * v[c];
      }
    }
    ApplyLinear(block->attention()->proj(), att_out, &proj);
    for (int64_t c = 0; c < C; ++c) {
      x[static_cast<size_t>(c)] += proj[static_cast<size_t>(c)];
    }
    if (!block->pre_layernorm()) {
      ApplyLayerNorm(block->ln1(), x, &x);
    }

    // ---- FFN sublayer ----
    if (block->mlp() != nullptr) {
      if (block->pre_layernorm()) {
        ApplyLayerNorm(block->ln2(), x, &h2);
      } else {
        h2 = x;
      }
      const Mlp* mlp = block->mlp();
      ApplyLinear(mlp->fc_in(), h2, &hidden);
      for (auto& v : hidden) v = ActivationFn(mlp->activation(), v);
      ApplyLinear(mlp->fc_out(), hidden, &mlp_out);
      for (int64_t c = 0; c < C; ++c) {
        x[static_cast<size_t>(c)] += mlp_out[static_cast<size_t>(c)];
      }
      if (!block->pre_layernorm()) {
        ApplyLayerNorm(block->ln2(), x, &x);
      }
    }
  }

  ApplyLayerNorm(model_->final_layernorm(), x, &normed);
  if (cfg.tie_embeddings) {
    // logits = normed . E^T (E is [V, C]).
    const core::Tensor& e = model_->token_embedding().weight().value();
    for (int64_t v = 0; v < cfg.vocab_size; ++v) {
      float s = 0.0f;
      const float* row = e.data() + v * C;
      for (int64_t c = 0; c < C; ++c) {
        s += normed[static_cast<size_t>(c)] * row[c];
      }
      logits_[static_cast<size_t>(v)] = s;
    }
  } else {
    ApplyLinear(*model_->head(), normed, &logits_);
  }
  ++position_;
  return logits_;
}

std::vector<int64_t> GenerateCached(const GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    int64_t max_new_tokens,
                                    float temperature, util::Rng* rng,
                                    int64_t stop_token) {
  LLM_CHECK(!prefix.empty());
  GptInferenceSession session(&model);
  const std::vector<float>* logits = nullptr;
  for (int64_t t : prefix) logits = &session.Append(t);
  std::vector<int64_t> out;
  for (int64_t i = 0; i < max_new_tokens; ++i) {
    if (session.position() >= model.config().max_seq_len) break;
    const int64_t next = SampleRow(
        logits->data(), model.config().vocab_size, temperature, rng);
    out.push_back(next);
    if (next == stop_token) break;
    if (session.position() < model.config().max_seq_len) {
      logits = &session.Append(next);
    }
  }
  return out;
}

}  // namespace llm::nn
