#include "nn/gpt_inference.h"

#include <cmath>

#include "nn/decode_rows.h"

namespace llm::nn {

namespace {

/// Minimal temperature sampler (greedy at T = 0), local to avoid a
/// dependency cycle with the sample library.
int64_t SampleRow(const float* logits, int64_t vocab, float temperature,
                  util::Rng* rng) {
  if (temperature <= 0.0f) {
    int64_t best = 0;
    for (int64_t i = 1; i < vocab; ++i) {
      if (logits[i] > logits[best]) best = i;
    }
    return best;
  }
  float maxv = logits[0];
  for (int64_t i = 1; i < vocab; ++i) maxv = std::max(maxv, logits[i]);
  std::vector<float> probs(static_cast<size_t>(vocab));
  const float inv_t = 1.0f / temperature;
  for (int64_t i = 0; i < vocab; ++i) {
    probs[static_cast<size_t>(i)] = std::exp((logits[i] - maxv) * inv_t);
  }
  LLM_CHECK(rng != nullptr);
  return static_cast<int64_t>(rng->Categorical(probs));
}

}  // namespace

void GptDecodeStep(const GPTModel& model, int64_t token, int64_t position,
                   KvLayerView* layers, DecodeScratch* scratch,
                   float* logits) {
  const GPTConfig& cfg = model.config();
  LLM_CHECK_GE(position, 0);
  LLM_CHECK_LT(position, cfg.max_seq_len);
  const int64_t C = cfg.d_model;
  const int64_t H = cfg.n_head;
  const int64_t hd = C / H;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  // Embedding + position.
  scratch->x.resize(static_cast<size_t>(C));
  float* x = scratch->x.data();
  const core::Tensor& emb = model.token_embedding().weight().value();
  const core::Tensor& pos = model.position_embedding().value();
  LLM_CHECK_GE(token, 0);
  LLM_CHECK_LT(token, cfg.vocab_size);
  for (int64_t c = 0; c < C; ++c) {
    x[c] = emb[token * C + c] + pos[position * C + c];
  }

  scratch->normed.resize(static_cast<size_t>(C));
  scratch->qkv.resize(static_cast<size_t>(3 * C));
  scratch->att_out.resize(static_cast<size_t>(C));
  scratch->proj.resize(static_cast<size_t>(C));
  scratch->scores.resize(static_cast<size_t>(position + 1));
  for (int layer = 0; layer < cfg.n_layer; ++layer) {
    const TransformerBlock* block = model.block(layer);
    KvLayerView& kv = layers[layer];

    // ---- Attention sublayer ----
    float* normed = scratch->normed.data();
    if (block->pre_layernorm()) {
      detail::ApplyLayerNormRow(block->ln1(), x, C, normed);
    } else {
      for (int64_t c = 0; c < C; ++c) normed[c] = x[c];
    }
    float* qkv = scratch->qkv.data();
    detail::ApplyLinearRow(block->attention()->qkv(), normed, qkv);  // [3C]
    // Write this position's K/V row into the cache slabs.
    const int64_t t = position;  // cache now holds rows [0, t]
    for (int64_t c = 0; c < C; ++c) {
      kv.keys[t * C + c] = qkv[C + c];
      kv.values[t * C + c] = qkv[2 * C + c];
    }

    float* att_out = scratch->att_out.data();
    for (int64_t c = 0; c < C; ++c) att_out[c] = 0.0f;
    const int window = block->attention()->window();
    const int64_t lo =
        window > 0 ? std::max<int64_t>(0, t - window + 1) : int64_t{0};
    for (int64_t h = 0; h < H; ++h) {
      detail::AttendHeadRow(qkv + h * hd, kv.keys, kv.values, t, lo, C, h,
                            hd, inv_sqrt, scratch->scores.data(),
                            att_out + h * hd);
    }
    float* proj = scratch->proj.data();
    detail::ApplyLinearRow(block->attention()->proj(), att_out, proj);
    for (int64_t c = 0; c < C; ++c) x[c] += proj[c];
    if (!block->pre_layernorm()) {
      detail::ApplyLayerNormRow(block->ln1(), x, C, x);
    }

    // ---- FFN sublayer ----
    if (block->mlp() != nullptr) {
      scratch->h2.resize(static_cast<size_t>(C));
      float* h2 = scratch->h2.data();
      if (block->pre_layernorm()) {
        detail::ApplyLayerNormRow(block->ln2(), x, C, h2);
      } else {
        for (int64_t c = 0; c < C; ++c) h2[c] = x[c];
      }
      const Mlp* mlp = block->mlp();
      scratch->hidden.resize(
          static_cast<size_t>(mlp->fc_in().out_features()));
      scratch->mlp_out.resize(static_cast<size_t>(C));
      float* hidden = scratch->hidden.data();
      detail::ApplyLinearRow(mlp->fc_in(), h2, hidden);
      const int64_t hid = mlp->fc_in().out_features();
      for (int64_t i = 0; i < hid; ++i) {
        hidden[i] = detail::ActivationFn(mlp->activation(), hidden[i]);
      }
      float* mlp_out = scratch->mlp_out.data();
      detail::ApplyLinearRow(mlp->fc_out(), hidden, mlp_out);
      for (int64_t c = 0; c < C; ++c) x[c] += mlp_out[c];
      if (!block->pre_layernorm()) {
        detail::ApplyLayerNormRow(block->ln2(), x, C, x);
      }
    }
  }

  float* normed = scratch->normed.data();
  detail::ApplyLayerNormRow(model.final_layernorm(), x, C, normed);
  if (cfg.tie_embeddings) {
    // logits = normed . E^T (E is [V, C]).
    const core::Tensor& e = model.token_embedding().weight().value();
    for (int64_t v = 0; v < cfg.vocab_size; ++v) {
      float s = 0.0f;
      const float* row = e.data() + v * C;
      for (int64_t c = 0; c < C; ++c) s += normed[c] * row[c];
      logits[v] = s;
    }
  } else {
    detail::ApplyLinearRow(*model.head(), normed, logits);
  }
}

GptInferenceSession::GptInferenceSession(const GPTModel* model)
    : model_(model) {
  LLM_CHECK(model != nullptr);
  const int64_t rows = model->config().max_seq_len;
  const int64_t C = model->config().d_model;
  const auto n_layer = static_cast<size_t>(model->config().n_layer);
  // One contiguous slab: per layer, a keys block then a values block, each
  // [max_seq_len, C]. Sized once; Append never grows it.
  const size_t per = static_cast<size_t>(rows * C);
  kv_slab_.resize(n_layer * 2 * per);
  views_.resize(n_layer);
  for (size_t l = 0; l < n_layer; ++l) {
    views_[l].keys = kv_slab_.data() + (2 * l) * per;
    views_[l].values = kv_slab_.data() + (2 * l + 1) * per;
  }
  logits_.resize(static_cast<size_t>(model->config().vocab_size));
}

void GptInferenceSession::Reset() { position_ = 0; }

const std::vector<float>& GptInferenceSession::Append(int64_t token) {
  LLM_CHECK_LT(position_, model_->config().max_seq_len)
      << "session exceeded the model window; Reset() and re-feed";
  GptDecodeStep(*model_, token, position_, views_.data(), &scratch_,
                logits_.data());
  ++position_;
  return logits_;
}

std::vector<int64_t> GenerateCached(const GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    int64_t max_new_tokens,
                                    float temperature, util::Rng* rng,
                                    int64_t stop_token) {
  LLM_CHECK(!prefix.empty());
  GptInferenceSession session(&model);
  const std::vector<float>* logits = nullptr;
  for (int64_t t : prefix) logits = &session.Append(t);
  std::vector<int64_t> out;
  for (int64_t i = 0; i < max_new_tokens; ++i) {
    if (session.position() >= model.config().max_seq_len) break;
    const int64_t next = SampleRow(
        logits->data(), model.config().vocab_size, temperature, rng);
    out.push_back(next);
    if (next == stop_token) break;
    if (session.position() < model.config().max_seq_len) {
      logits = &session.Append(next);
    }
  }
  return out;
}

}  // namespace llm::nn
