#include "nn/ffn_lm.h"

namespace llm::nn {

FfnLm::FfnLm(const FfnLmConfig& config, util::Rng* rng)
    : config_(config),
      tok_emb_(config.vocab_size, config.d_embed, rng),
      mlp_(config.context * config.d_embed, config.d_hidden,
           config.vocab_size, rng, config.activation) {
  LLM_CHECK_GT(config.vocab_size, 0);
  LLM_CHECK_GT(config.context, 0);
}

core::Variable FfnLm::ForwardLogits(const std::vector<int64_t>& contexts,
                                    int64_t N) const {
  LLM_CHECK_EQ(static_cast<int64_t>(contexts.size()), N * config_.context);
  // [N*k, d_embed] -> [N, k*d_embed]: the direct-sum of k embeddings.
  core::Variable emb = tok_emb_.Forward(contexts);
  core::Variable concat =
      core::Reshape(emb, {N, config_.context * config_.d_embed});
  return mlp_.Forward(concat);
}

core::Variable FfnLm::Loss(const std::vector<int64_t>& contexts,
                           const std::vector<int64_t>& targets,
                           int64_t N) const {
  LLM_CHECK_EQ(static_cast<int64_t>(targets.size()), N);
  return core::CrossEntropyLogits(ForwardLogits(contexts, N), targets);
}

NamedParams FfnLm::NamedParameters() const {
  NamedParams out;
  AppendNamed("tok_emb", tok_emb_.NamedParameters(), &out);
  AppendNamed("mlp", mlp_.NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
