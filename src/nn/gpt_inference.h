// Gradient-free incremental decoding with a key/value cache.
//
// The paper's §6 cost analysis: attention over a window of length L costs
// O(L^2) per forward pass, so naive generation of L tokens by full
// recomputation costs O(L^3). Caching each layer's keys and values makes
// the marginal token cost O(L) in attention — the standard production
// inference path — without touching the training code.
//
// The session reproduces GPTModel::ForwardLogits exactly (verified in
// tests/gpt_inference_test.cc across architecture variants). The core step
// (GptDecodeStep) is factored out over caller-owned KV storage so the
// serving runtime (src/serve) can run many sequences against pooled cache
// slots — see also nn/batched_decode.h for the fused multi-sequence step.
#ifndef TFMR_NN_GPT_INFERENCE_H_
#define TFMR_NN_GPT_INFERENCE_H_

#include <vector>

#include "nn/transformer.h"

namespace llm::nn {

/// One layer's key/value cache storage for one sequence: row t of each slab
/// holds position t's vectors, [capacity_rows, d_model] flattened. The
/// decode step writes row `position` and reads rows [0, position]; callers
/// guarantee capacity_rows > position.
struct KvLayerView {
  float* keys = nullptr;
  float* values = nullptr;
};

/// Reusable temporaries for GptDecodeStep; holding one per caller (or per
/// worker thread) keeps the hot path allocation-free after the first token.
struct DecodeScratch {
  std::vector<float> x, normed, qkv, att_out, proj, h2, hidden, mlp_out,
      scores;
};

/// Feeds `token` at `position` through the model against the per-layer KV
/// views (filling each layer's row `position`), writing next-token logits
/// (length vocab_size) to `logits`. Re-entrant: concurrent calls are safe
/// provided each call uses distinct views/scratch/logits. Positions must be
/// fed in order, 0 <= position < max_seq_len.
void GptDecodeStep(const GPTModel& model, int64_t token, int64_t position,
                   KvLayerView* layers, DecodeScratch* scratch, float* logits);

/// Stateful single-sequence decoder. Feed tokens one at a time; after
/// each Append the last-token logits are available. Not thread-safe.
///
/// All KV slabs are allocated once at construction (sized for the model
/// window); Reset() only rewinds the position, so reusing one session
/// across many requests never touches the allocator.
class GptInferenceSession {
 public:
  /// `model` must outlive the session. Dropout is ignored (inference).
  explicit GptInferenceSession(const GPTModel* model);

  /// Feeds one token; returns the next-token logits (length vocab_size).
  /// Aborts if the sequence would exceed the model's max_seq_len —
  /// callers handle windowing (see GenerateCached).
  const std::vector<float>& Append(int64_t token);

  /// Rewinds to an empty sequence. Retains all cache capacity.
  void Reset();

  /// Number of tokens consumed since the last Reset.
  int64_t position() const { return position_; }

  const std::vector<float>& logits() const { return logits_; }

  const GPTModel* model() const { return model_; }

 private:
  const GPTModel* model_;
  int64_t position_ = 0;
  std::vector<float> kv_slab_;       // [n_layer][2][max_seq_len * d_model]
  std::vector<KvLayerView> views_;   // per-layer pointers into kv_slab_
  DecodeScratch scratch_;
  std::vector<float> logits_;
};

/// Autoregressive generation using the cache (the fast path mirroring
/// sample::Generate, temperature-only). The prefix plus generated tokens
/// must fit in the model window (no sliding-window support on the cached
/// path — restart a session to window). For full SamplerOptions support
/// (top-k / top-p) use sample::GenerateCached.
std::vector<int64_t> GenerateCached(const GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    int64_t max_new_tokens,
                                    float temperature, util::Rng* rng,
                                    int64_t stop_token = -1);

}  // namespace llm::nn

#endif  // TFMR_NN_GPT_INFERENCE_H_
