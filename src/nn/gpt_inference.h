// Gradient-free incremental decoding with a key/value cache.
//
// The paper's §6 cost analysis: attention over a window of length L costs
// O(L^2) per forward pass, so naive generation of L tokens by full
// recomputation costs O(L^3). Caching each layer's keys and values makes
// the marginal token cost O(L) in attention — the standard production
// inference path — without touching the training code.
//
// The session reproduces GPTModel::ForwardLogits exactly (verified in
// tests/gpt_inference_test.cc across architecture variants).
#ifndef TFMR_NN_GPT_INFERENCE_H_
#define TFMR_NN_GPT_INFERENCE_H_

#include <vector>

#include "nn/transformer.h"

namespace llm::nn {

/// Stateful single-sequence decoder. Feed tokens one at a time; after
/// each Append the last-token logits are available. Not thread-safe.
class GptInferenceSession {
 public:
  /// `model` must outlive the session. Dropout is ignored (inference).
  explicit GptInferenceSession(const GPTModel* model);

  /// Feeds one token; returns the next-token logits (length vocab_size).
  /// Aborts if the sequence would exceed the model's max_seq_len —
  /// callers handle windowing (see GenerateCached).
  const std::vector<float>& Append(int64_t token);

  /// Clears the cache; the session starts a fresh sequence.
  void Reset();

  /// Number of tokens consumed since the last Reset.
  int64_t position() const { return position_; }

  const std::vector<float>& logits() const { return logits_; }

 private:
  struct LayerCache {
    // Row t holds the key/value vectors of position t, [t, C] flattened.
    std::vector<float> keys;
    std::vector<float> values;
  };

  /// y = LN(x) with the given parameters (length C).
  void ApplyLayerNorm(const LayerNorm& ln, const std::vector<float>& x,
                      std::vector<float>* y) const;
  /// y = x W + b for a single row.
  void ApplyLinear(const Linear& linear, const std::vector<float>& x,
                   std::vector<float>* y) const;

  const GPTModel* model_;
  int64_t position_ = 0;
  std::vector<LayerCache> cache_;
  std::vector<float> logits_;
};

/// Autoregressive generation using the cache (the fast path mirroring
/// sample::Generate). The prefix plus generated tokens must fit in the
/// model window (no sliding-window support on the cached path — restart a
/// session to window).
std::vector<int64_t> GenerateCached(const GPTModel& model,
                                    const std::vector<int64_t>& prefix,
                                    int64_t max_new_tokens,
                                    float temperature, util::Rng* rng,
                                    int64_t stop_token = -1);

}  // namespace llm::nn

#endif  // TFMR_NN_GPT_INFERENCE_H_
