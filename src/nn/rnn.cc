#include "nn/rnn.h"

namespace llm::nn {

RnnCell::RnnCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : input_map_(input_dim, hidden_dim, rng, /*bias=*/true),
      hidden_map_(hidden_dim, hidden_dim, rng, /*bias=*/false) {}

core::Variable RnnCell::Forward(const core::Variable& x,
                                const core::Variable& h) const {
  return core::TanhOp(
      core::Add(input_map_.Forward(x), hidden_map_.Forward(h)));
}

NamedParams RnnCell::NamedParameters() const {
  NamedParams out;
  AppendNamed("input", input_map_.NamedParameters(), &out);
  AppendNamed("hidden", hidden_map_.NamedParameters(), &out);
  return out;
}

LstmCell::LstmCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng)
    : hidden_dim_(hidden_dim),
      input_gates_(input_dim, 4 * hidden_dim, rng, /*bias=*/true),
      hidden_gates_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false) {}

LstmCell::State LstmCell::Forward(const core::Variable& x,
                                  const State& state) const {
  core::Variable gates =
      core::Add(input_gates_.Forward(x), hidden_gates_.Forward(state.h));
  const int64_t H = hidden_dim_;
  core::Variable i = core::SigmoidOp(core::SliceLastDim(gates, 0, H));
  core::Variable f = core::SigmoidOp(core::SliceLastDim(gates, H, H));
  core::Variable g = core::TanhOp(core::SliceLastDim(gates, 2 * H, H));
  core::Variable o = core::SigmoidOp(core::SliceLastDim(gates, 3 * H, H));
  core::Variable c = core::Add(core::Mul(f, state.c), core::Mul(i, g));
  core::Variable h = core::Mul(o, core::TanhOp(c));
  return {h, c};
}

NamedParams LstmCell::NamedParameters() const {
  NamedParams out;
  AppendNamed("input_gates", input_gates_.NamedParameters(), &out);
  AppendNamed("hidden_gates", hidden_gates_.NamedParameters(), &out);
  return out;
}

RnnLm::RnnLm(const RnnLmConfig& config, util::Rng* rng)
    : config_(config),
      tok_emb_(config.vocab_size, config.d_model, rng),
      head_(config.d_model, config.vocab_size, rng, /*bias=*/false) {
  LLM_CHECK_GT(config.vocab_size, 0);
  LLM_CHECK_GT(config.d_model, 0);
  if (config.cell == RecurrentCellType::kTanhRnn) {
    rnn_cell_ = std::make_unique<RnnCell>(config.d_model, config.d_model, rng);
  } else {
    lstm_cell_ =
        std::make_unique<LstmCell>(config.d_model, config.d_model, rng);
  }
}

core::Variable RnnLm::ForwardLogits(const std::vector<int64_t>& tokens,
                                    int64_t B, int64_t T) const {
  LLM_CHECK_EQ(static_cast<int64_t>(tokens.size()), B * T);
  const int64_t C = config_.d_model;
  core::Variable emb = tok_emb_.Forward(tokens);  // [B*T, C]

  core::Variable h(core::Tensor({B, C}), /*requires_grad=*/false);
  core::Variable c(core::Tensor({B, C}), /*requires_grad=*/false);
  std::vector<core::Variable> outputs;
  outputs.reserve(static_cast<size_t>(T));
  for (int64_t t = 0; t < T; ++t) {
    std::vector<int64_t> rows(static_cast<size_t>(B));
    for (int64_t b = 0; b < B; ++b) rows[static_cast<size_t>(b)] = b * T + t;
    core::Variable x_t = core::GatherRows(emb, rows);  // [B, C]
    if (rnn_cell_) {
      h = rnn_cell_->Forward(x_t, h);
    } else {
      auto next = lstm_cell_->Forward(x_t, {h, c});
      h = next.h;
      c = next.c;
    }
    outputs.push_back(h);
  }
  core::Variable stacked = core::StackTime(outputs);  // [B, T, C]
  return head_.Forward(core::Reshape(stacked, {B * T, C}));
}

core::Variable RnnLm::LmLoss(const std::vector<int64_t>& tokens,
                             const std::vector<int64_t>& targets, int64_t B,
                             int64_t T, int64_t ignore_index) const {
  core::Variable logits = ForwardLogits(tokens, B, T);
  return core::CrossEntropyLogits(logits, targets, ignore_index);
}

NamedParams RnnLm::NamedParameters() const {
  NamedParams out;
  AppendNamed("tok_emb", tok_emb_.NamedParameters(), &out);
  if (rnn_cell_) AppendNamed("cell", rnn_cell_->NamedParameters(), &out);
  if (lstm_cell_) AppendNamed("cell", lstm_cell_->NamedParameters(), &out);
  AppendNamed("head", head_.NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
