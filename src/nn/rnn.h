// Recurrent language models (paper §5, Eq. 12) — the pre-transformer
// baselines: a vanilla tanh RNN and an LSTM, each wrapped as a language
// model (embedding -> unrolled recurrence -> vocabulary logits).
#ifndef TFMR_NN_RNN_H_
#define TFMR_NN_RNN_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace llm::nn {

/// h' = tanh(W_x x + W_h h + b): the state-update map F of Eq. 12.
class RnnCell : public Module {
 public:
  RnnCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  /// x: [B, input_dim], h: [B, hidden_dim] -> new h.
  core::Variable Forward(const core::Variable& x,
                         const core::Variable& h) const;

  NamedParams NamedParameters() const override;

 private:
  Linear input_map_;   // with bias
  Linear hidden_map_;  // no bias (absorbed in input_map_)
};

/// Standard LSTM cell (Hochreiter & Schmidhuber, cited as [57]).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_dim, int64_t hidden_dim, util::Rng* rng);

  struct State {
    core::Variable h;
    core::Variable c;
  };

  /// x: [B, input_dim]; returns updated (h, c).
  State Forward(const core::Variable& x, const State& state) const;

  NamedParams NamedParameters() const override;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear input_gates_;   // [input_dim -> 4*hidden], with bias
  Linear hidden_gates_;  // [hidden -> 4*hidden], no bias
};

enum class RecurrentCellType { kTanhRnn, kLstm };

struct RnnLmConfig {
  int64_t vocab_size = 0;
  int64_t d_model = 64;
  RecurrentCellType cell = RecurrentCellType::kTanhRnn;
};

/// Language model: embedding -> unrolled recurrence -> logits. Serial in T
/// (the paper's point about the transformer's parallelism advantage, §6).
class RnnLm : public Module {
 public:
  RnnLm(const RnnLmConfig& config, util::Rng* rng);

  /// tokens: [B, T] flattened row-major; returns logits [B*T, vocab].
  core::Variable ForwardLogits(const std::vector<int64_t>& tokens, int64_t B,
                               int64_t T) const;

  /// Cross-entropy of targets (same layout) under the model.
  core::Variable LmLoss(const std::vector<int64_t>& tokens,
                        const std::vector<int64_t>& targets, int64_t B,
                        int64_t T, int64_t ignore_index = -1) const;

  NamedParams NamedParameters() const override;

  const RnnLmConfig& config() const { return config_; }

 private:
  RnnLmConfig config_;
  Embedding tok_emb_;
  std::unique_ptr<RnnCell> rnn_cell_;
  std::unique_ptr<LstmCell> lstm_cell_;
  Linear head_;
};

}  // namespace llm::nn

#endif  // TFMR_NN_RNN_H_
