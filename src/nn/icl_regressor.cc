#include "nn/icl_regressor.h"

namespace llm::nn {

namespace {
GPTConfig BlockConfig(const IclRegressorConfig& c) {
  GPTConfig g;
  g.vocab_size = 1;  // unused by TransformerBlock
  g.max_seq_len = 2 * c.max_pairs;
  g.d_model = c.d_model;
  g.n_layer = c.n_layer;
  g.n_head = c.n_head;
  return g;
}
}  // namespace

InContextRegressor::InContextRegressor(const IclRegressorConfig& config,
                                       util::Rng* rng)
    : config_(config),
      read_in_(config.dim + 1, config.d_model, rng),
      ln_final_(config.d_model),
      read_out_(config.d_model, 1, rng) {
  LLM_CHECK_GE(config.dim, 1);
  LLM_CHECK_GE(config.max_pairs, 2);
  pos_emb_ = core::Variable(
      core::Tensor::RandomNormal({2 * config.max_pairs, config.d_model}, rng,
                                 0.0f, 0.02f),
      /*requires_grad=*/true);
  const GPTConfig bc = BlockConfig(config);
  for (int i = 0; i < config.n_layer; ++i) {
    blocks_.push_back(std::make_unique<TransformerBlock>(bc, rng));
  }
}

core::Variable InContextRegressor::Predict(const std::vector<float>& xs,
                                           const std::vector<float>& ys,
                                           int64_t B,
                                           int64_t n_pairs) const {
  const int64_t d = config_.dim;
  LLM_CHECK_EQ(static_cast<int64_t>(xs.size()), B * n_pairs * d);
  LLM_CHECK_EQ(static_cast<int64_t>(ys.size()), B * n_pairs);
  LLM_CHECK_LE(n_pairs, config_.max_pairs);
  const int64_t T = 2 * n_pairs;
  const int64_t din = d + 1;
  const int64_t C = config_.d_model;

  // Interleave: token 2i   = [x_i, 0]
  //             token 2i+1 = [0...0, y_i]
  core::Tensor input({B, T, din});
  float* p = input.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t i = 0; i < n_pairs; ++i) {
      float* xt = p + ((b * T + 2 * i) * din);
      for (int64_t j = 0; j < d; ++j) {
        xt[j] = xs[static_cast<size_t>((b * n_pairs + i) * d + j)];
      }
      float* yt = p + ((b * T + 2 * i + 1) * din);
      yt[d] = ys[static_cast<size_t>(b * n_pairs + i)];
    }
  }

  core::Variable h =
      read_in_.Forward(core::Variable(std::move(input), false));
  // Positional add: [B, T*C] + first T rows of the table.
  core::Variable pos_flat =
      core::Reshape(pos_emb_, {1, 2 * config_.max_pairs * C});
  core::Variable pos_t =
      core::Reshape(core::SliceLastDim(pos_flat, 0, T * C), {T * C});
  h = core::Reshape(
      core::AddRowBroadcast(core::Reshape(h, {B, T * C}), pos_t), {B, T, C});
  for (const auto& block : blocks_) {
    h = block->Forward(h, /*training=*/false, nullptr);
  }
  h = ln_final_.Forward(h);
  core::Variable out = read_out_.Forward(core::Reshape(h, {B * T, C}));
  // Keep the x positions (even indices): prediction of y_i at x_i.
  std::vector<int64_t> rows;
  rows.reserve(static_cast<size_t>(B * n_pairs));
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t i = 0; i < n_pairs; ++i) rows.push_back(b * T + 2 * i);
  }
  return core::Reshape(core::GatherRows(out, rows), {B, n_pairs});
}

core::Variable InContextRegressor::Loss(const std::vector<float>& xs,
                                        const std::vector<float>& ys,
                                        int64_t B, int64_t n_pairs) const {
  core::Variable pred = Predict(xs, ys, B, n_pairs);
  core::Tensor target({B, n_pairs});
  for (int64_t i = 0; i < B * n_pairs; ++i) {
    target[i] = ys[static_cast<size_t>(i)];
  }
  return core::MseLoss(pred, target);
}

NamedParams InContextRegressor::NamedParameters() const {
  NamedParams out;
  AppendNamed("read_in", read_in_.NamedParameters(), &out);
  out.emplace_back("pos_emb", pos_emb_);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    AppendNamed("blocks/" + std::to_string(i), blocks_[i]->NamedParameters(),
                &out);
  }
  AppendNamed("ln_final", ln_final_.NamedParameters(), &out);
  AppendNamed("read_out", read_out_.NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
