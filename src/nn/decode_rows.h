// Per-row building blocks shared by the single-sequence decode step
// (gpt_inference.cc) and the fused batched step (batched_decode.cc).
//
// Bit-exactness contract: the serving path promises per-sequence outputs
// identical to GptInferenceSession regardless of batch composition. Both
// translation units therefore funnel every row-level computation through
// these inline helpers, whose accumulation order over the reduced index is
// fixed (ascending) — and the build never enables -ffast-math, so the
// compiler may not reassociate the sums.
#ifndef TFMR_NN_DECODE_ROWS_H_
#define TFMR_NN_DECODE_ROWS_H_

#include <cmath>

#include "nn/layers.h"

namespace llm::nn::detail {

/// y = LN(x) for one row of length C. Safe in-place (y == x).
inline void ApplyLayerNormRow(const LayerNorm& ln, const float* x, int64_t c,
                              float* y) {
  double mean = 0;
  for (int64_t i = 0; i < c; ++i) mean += x[i];
  mean /= static_cast<double>(c);
  double var = 0;
  for (int64_t i = 0; i < c; ++i) {
    const double d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(c);
  const float rstd = 1.0f / std::sqrt(static_cast<float>(var) + ln.eps());
  const core::Tensor& gamma = ln.gamma().value();
  const core::Tensor& beta = ln.beta().value();
  for (int64_t i = 0; i < c; ++i) {
    y[i] = gamma[i] * (x[i] - static_cast<float>(mean)) * rstd + beta[i];
  }
}

/// y = x W + b for a single row (y must not alias x). Accumulates over the
/// input index in ascending order; zero inputs are skipped (a no-op on the
/// value: adding ±0 to a finite accumulator that is never -0 cannot change
/// it, so the batched kernels may keep those terms and still match).
inline void ApplyLinearRow(const Linear& linear, const float* x, float* y) {
  const int64_t in = linear.in_features();
  const int64_t out = linear.out_features();
  for (int64_t o = 0; o < out; ++o) y[o] = 0.0f;
  const float* w = linear.weight().value().data();  // [in, out]
  for (int64_t i = 0; i < in; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    const float* row = w + i * out;
    for (int64_t o = 0; o < out; ++o) y[o] += xv * row[o];
  }
  if (linear.has_bias()) {
    const core::Tensor& b = linear.bias().value();
    for (int64_t o = 0; o < out; ++o) y[o] += b[o];
  }
}

inline float ActivationFn(Activation act, float v) {
  switch (act) {
    case Activation::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Activation::kGelu: {
      constexpr float kScale = 0.7978845608028654f;  // sqrt(2/pi)
      const float cube = 0.044715f * v * v * v;
      return 0.5f * v * (1.0f + std::tanh(kScale * (v + cube)));
    }
    case Activation::kTanh:
      return std::tanh(v);
  }
  LLM_CHECK(false);
  return v;
}

/// Single-head causal attention over one sequence's cache: softmax(q·K/√d)·V
/// for head h at position t, reading rows [lo, t] of the [*, C] cache slabs.
/// Writes the head's output slice o[0, hd). `scores` is caller scratch of
/// at least t+1 floats.
inline void AttendHeadRow(const float* q, const float* keys,
                          const float* values, int64_t t, int64_t lo,
                          int64_t c_total, int64_t h, int64_t hd,
                          float inv_sqrt, float* scores, float* o) {
  const int64_t off = h * hd;
  float maxv = -1e30f;
  for (int64_t j = lo; j <= t; ++j) {
    const float* k = keys + j * c_total + off;
    float s = 0.0f;
    for (int64_t c = 0; c < hd; ++c) s += q[c] * k[c];
    s *= inv_sqrt;
    scores[j] = s;
    maxv = std::max(maxv, s);
  }
  float sum = 0.0f;
  for (int64_t j = lo; j <= t; ++j) {
    scores[j] = std::exp(scores[j] - maxv);
    sum += scores[j];
  }
  const float inv = 1.0f / sum;
  for (int64_t j = lo; j <= t; ++j) {
    const float p = scores[j] * inv;
    const float* v = values + j * c_total + off;
    for (int64_t c = 0; c < hd; ++c) o[c] += p * v[c];
  }
}

}  // namespace llm::nn::detail

#endif  // TFMR_NN_DECODE_ROWS_H_
