// GPT-style decoder-only transformer language model (paper §6).
//
// The model is the composition the paper describes: token embedding (Eq. 7)
// plus positional encoding (Eq. 15 or learned), alternating attention
// (Eq. 13-14) and FFN (Eq. 11) layers with residual connections and layer
// norm, and a linear map back to vocabulary logits whose softmax (Eq. 8)
// gives the next-word distribution.
#ifndef TFMR_NN_TRANSFORMER_H_
#define TFMR_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/positional.h"
#include "util/status.h"

namespace llm::nn {

struct GPTConfig {
  int64_t vocab_size = 0;
  int64_t max_seq_len = 0;
  int64_t d_model = 64;
  int n_layer = 2;
  int n_head = 2;
  /// FFN hidden width; 0 means 4 * d_model (the paper's p_h = 4p).
  int64_t d_hidden = 0;
  float dropout = 0.0f;
  /// Pre-LN (residual stream normalized before each sublayer) vs post-LN
  /// (the original Vaswani arrangement). Pre-LN trains more stably at depth.
  bool pre_layernorm = true;
  /// Learned position embeddings vs the fixed sinusoidal Eq. 15.
  bool learned_positional = true;
  /// Drop the FFN sublayers entirely (attention-only transformer, used by
  /// the induction-heads experiment of §7).
  bool attention_only = false;
  /// Tie the unembedding to the token embedding (logits = h E^T).
  bool tie_embeddings = false;
  /// 0 = full causal attention; w > 0 = windowed "sparse" attention (§6).
  int attention_window = 0;
  Activation activation = Activation::kGelu;

  int64_t hidden_dim() const { return d_hidden > 0 ? d_hidden : 4 * d_model; }

  /// Validates dimensions; returns InvalidArgument on a bad config.
  util::Status Validate() const;
};

/// One attention (+FFN) layer with residual connections.
class TransformerBlock : public Module {
 public:
  TransformerBlock(const GPTConfig& config, util::Rng* rng);

  /// x: [B, T, C] -> [B, T, C].
  core::Variable Forward(const core::Variable& x, bool training,
                         util::Rng* rng) const;

  NamedParams NamedParameters() const override;

  CausalSelfAttention* attention() { return &attn_; }
  const CausalSelfAttention* attention() const { return &attn_; }
  const LayerNorm& ln1() const { return ln1_; }
  const LayerNorm& ln2() const { return ln2_; }
  /// Null when the block is attention-only.
  const Mlp* mlp() const { return mlp_.get(); }
  bool pre_layernorm() const { return pre_ln_; }

 private:
  bool pre_ln_;
  bool attention_only_;
  float dropout_;
  LayerNorm ln1_;
  LayerNorm ln2_;
  CausalSelfAttention attn_;
  std::unique_ptr<Mlp> mlp_;  // null when attention_only
};

/// Optional per-forward capture of internal activations (§7 probing).
struct ActivationCapture {
  /// Residual stream after embedding (index 0) and after each block
  /// (indices 1..n_layer); each entry is [B, T, C].
  std::vector<core::Variable> residual;
  /// Attention probabilities per layer, [B, H, T, T]. Only filled if
  /// capture_attention is set.
  std::vector<core::Tensor> attention;
  bool capture_attention = false;
};

struct ForwardOptions {
  bool training = false;
  util::Rng* rng = nullptr;  // required if training with dropout > 0
  ActivationCapture* capture = nullptr;
};

class GPTModel : public Module {
 public:
  GPTModel(const GPTConfig& config, util::Rng* rng);

  /// tokens: row-major [B, T] flattened; returns logits [B*T, vocab].
  core::Variable ForwardLogits(const std::vector<int64_t>& tokens, int64_t B,
                               int64_t T,
                               const ForwardOptions& opts = {}) const;

  /// Resumes the forward pass from a (possibly edited) residual-stream
  /// activation: applies blocks[start_layer:], the final layer norm, and
  /// the unembedding. h: [B, T, C]. Used with ActivationCapture for the
  /// §7 intervention experiments (edit an internal representation, observe
  /// the change in predictions).
  core::Variable ForwardFromLayer(const core::Variable& h,
                                  int start_layer) const;

  /// Convenience: cross-entropy (Eq. 3) of `targets` ([B, T] flattened,
  /// ignore_index for padding) under the model.
  core::Variable LmLoss(const std::vector<int64_t>& tokens,
                        const std::vector<int64_t>& targets, int64_t B,
                        int64_t T, const ForwardOptions& opts = {},
                        int64_t ignore_index = -1) const;

  NamedParams NamedParameters() const override;

  const GPTConfig& config() const { return config_; }
  TransformerBlock* block(int i) { return blocks_[static_cast<size_t>(i)].get(); }
  const TransformerBlock* block(int i) const {
    return blocks_[static_cast<size_t>(i)].get();
  }
  const Embedding& token_embedding() const { return tok_emb_; }
  const core::Variable& position_embedding() const { return pos_emb_; }
  const LayerNorm& final_layernorm() const { return ln_final_; }
  /// Null when embeddings are tied.
  const Linear* head() const { return head_.get(); }

 private:
  GPTConfig config_;
  Embedding tok_emb_;
  core::Variable pos_emb_;  // [max_seq_len, d_model]; fixed if sinusoidal
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm ln_final_;
  std::unique_ptr<Linear> head_;  // null when tie_embeddings
};

}  // namespace llm::nn

#endif  // TFMR_NN_TRANSFORMER_H_
