// Module: base class for parameterized layers and models.
//
// A module owns long-lived parameter Variables (requires_grad=true) and
// exposes them by name for optimizers, checkpointing, and weight decay
// masking. Forward passes build fresh graph nodes each call; parameters are
// the only state that persists across steps.
#ifndef TFMR_NN_MODULE_H_
#define TFMR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/graph.h"
#include "core/ops.h"

namespace llm::nn {

/// (name, parameter) pairs; names are slash-separated paths like
/// "blocks/0/attn/qkv/weight".
using NamedParams = std::vector<std::pair<std::string, core::Variable>>;

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, with stable hierarchical names.
  virtual NamedParams NamedParameters() const = 0;

  /// Parameters without names (aliasing the same nodes).
  std::vector<core::Variable> Parameters() const;

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();
};

/// Prefixes every name in `params` with "<prefix>/" and appends to `out`.
void AppendNamed(const std::string& prefix, const NamedParams& params,
                 NamedParams* out);

}  // namespace llm::nn

#endif  // TFMR_NN_MODULE_H_
