#include "nn/module.h"

namespace llm::nn {

std::vector<core::Variable> Module::Parameters() const {
  std::vector<core::Variable> out;
  for (auto& [name, v] : NamedParameters()) out.push_back(v);
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void AppendNamed(const std::string& prefix, const NamedParams& params,
                 NamedParams* out) {
  LLM_CHECK(out != nullptr);
  for (const auto& [name, v] : params) {
    out->emplace_back(prefix + "/" + name, v);
  }
}

}  // namespace llm::nn
