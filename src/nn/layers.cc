#include "nn/layers.h"

#include <cmath>

namespace llm::nn {

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
               bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  LLM_CHECK_GT(in_features, 0);
  LLM_CHECK_GT(out_features, 0);
  const float stddev = 1.0f / std::sqrt(static_cast<float>(in_features));
  weight_ = core::Variable(
      core::Tensor::RandomNormal({in_features, out_features}, rng, 0.0f,
                                 stddev),
      /*requires_grad=*/true);
  if (has_bias_) {
    bias_ = core::Variable(core::Tensor({out_features}),
                           /*requires_grad=*/true);
  }
}

core::Variable Linear::Forward(const core::Variable& x) const {
  // Accept [..., in]: flatten to 2D, multiply, restore leading dims.
  const core::Shape& in_shape = x.shape();
  LLM_CHECK_EQ(in_shape.back(), in_features_);
  const int64_t rows = x.numel() / in_features_;
  core::Variable flat = x;
  if (x.value().ndim() != 2) {
    flat = core::Reshape(x, {rows, in_features_});
  }
  core::Variable y = core::MatMul(flat, weight_);
  if (has_bias_) y = core::AddRowBroadcast(y, bias_);
  if (in_shape.size() != 2) {
    core::Shape out_shape = in_shape;
    out_shape.back() = out_features_;
    y = core::Reshape(y, std::move(out_shape));
  }
  return y;
}

NamedParams Linear::NamedParameters() const {
  NamedParams out{{"weight", weight_}};
  if (has_bias_) out.emplace_back("bias", bias_);
  return out;
}

Embedding::Embedding(int64_t vocab_size, int64_t dim, util::Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  LLM_CHECK_GT(vocab_size, 0);
  LLM_CHECK_GT(dim, 0);
  weight_ = core::Variable(
      core::Tensor::RandomNormal({vocab_size, dim}, rng, 0.0f, 0.02f),
      /*requires_grad=*/true);
}

core::Variable Embedding::Forward(const std::vector<int64_t>& ids) const {
  return core::EmbeddingLookup(weight_, ids);
}

NamedParams Embedding::NamedParameters() const {
  return {{"weight", weight_}};
}

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma_ = core::Variable(core::Tensor::Ones({dim}), /*requires_grad=*/true);
  beta_ = core::Variable(core::Tensor({dim}), /*requires_grad=*/true);
}

core::Variable LayerNorm::Forward(const core::Variable& x) const {
  return core::LayerNorm(x, gamma_, beta_, eps_);
}

NamedParams LayerNorm::NamedParameters() const {
  return {{"gamma", gamma_}, {"beta", beta_}};
}

core::Variable ApplyActivation(const core::Variable& x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return core::Relu(x);
    case Activation::kGelu:
      return core::Gelu(x);
    case Activation::kTanh:
      return core::TanhOp(x);
  }
  LLM_CHECK(false) << "unknown activation";
  return x;
}

Mlp::Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, util::Rng* rng,
         Activation act)
    : fc_in_(in_dim, hidden_dim, rng),
      fc_out_(hidden_dim, out_dim, rng),
      act_(act) {}

core::Variable Mlp::Forward(const core::Variable& x) const {
  return fc_out_.Forward(ApplyActivation(fc_in_.Forward(x), act_));
}

NamedParams Mlp::NamedParameters() const {
  NamedParams out;
  AppendNamed("fc_in", fc_in_.NamedParameters(), &out);
  AppendNamed("fc_out", fc_out_.NamedParameters(), &out);
  return out;
}

}  // namespace llm::nn
