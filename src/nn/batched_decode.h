// Fused batched cached-attention decode step for the serving runtime.
//
// One call advances B concurrent sequences by one token each through a
// single pass over the model weights. On a machine with few cores this —
// not thread fan-out — is where continuous batching earns its throughput:
//
//  * every weight row (QKV / proj / MLP / unembedding) is streamed from
//    memory once per *batch* instead of once per *sequence*, and
//  * the tied-unembedding dot products, which in the single-sequence path
//    are serial floating-point dependency chains (strict IEEE forbids the
//    compiler from reassociating them), are interleaved across the batch
//    lane, turning a latency-bound loop into independent, vectorizable
//    accumulator lanes.
//
// Bit-exactness: for each sequence the accumulation order of every output
// scalar is identical to GptDecodeStep / GptInferenceSession::Append
// (ascending over the reduced index), so per-sequence results are
// bit-identical regardless of batch composition — the property the
// scheduler's determinism contract (and gpt_inference_test) relies on.
#ifndef TFMR_NN_BATCHED_DECODE_H_
#define TFMR_NN_BATCHED_DECODE_H_

#include <vector>

#include "nn/gpt_inference.h"

namespace llm::nn {

/// One sequence's contribution to a batched decode step.
struct SeqStepInput {
  /// Token to feed at `position`.
  int64_t token = 0;
  /// Rows already in this sequence's cache; row `position` will be written.
  int64_t position = 0;
  /// Per-layer KV views (n_layer entries), e.g. from serve::KvCachePool.
  KvLayerView* layers = nullptr;
  /// Out: next-token logits, length vocab_size.
  float* logits = nullptr;
};

/// Reusable temporaries; one per caller (or per worker thread). All buffers
/// reach their high-water size on the first call and are never shrunk.
struct BatchedScratch {
  std::vector<float> x;        // [B, C] residual stream rows
  std::vector<float> normed;   // [B, C]
  std::vector<float> qkv;      // [B, 3C]
  std::vector<float> att;      // [B, C]
  std::vector<float> proj;     // [B, C]
  std::vector<float> hidden;   // [B, d_hidden]
  std::vector<float> mlp;      // [B, C]
  std::vector<float> xt;       // [C, Bpad] transposed rows for the unembed
  std::vector<float> scores;   // attention scratch, max position + 1
};

/// Advances each of the `n` sequences by one token in a single fused pass.
/// Re-entrant: concurrent calls are safe provided each call uses disjoint
/// sequences and its own scratch.
void BatchedDecodeStep(const GPTModel& model, SeqStepInput* seqs, int64_t n,
                       BatchedScratch* scratch);

}  // namespace llm::nn

#endif  // TFMR_NN_BATCHED_DECODE_H_
