// The "direct-sum" fully-connected L-gram language model of §5 (Bengio et
// al., cited as [18]): embed each of the last k tokens, concatenate the k
// embedding vectors into one, and map through an FFN to next-token logits.
// No memory beyond the fixed window — the limitation that motivates the RNN
// and then the transformer.
#ifndef TFMR_NN_FFN_LM_H_
#define TFMR_NN_FFN_LM_H_

#include <vector>

#include "nn/layers.h"

namespace llm::nn {

struct FfnLmConfig {
  int64_t vocab_size = 0;
  /// Context window k (the L of the paper's "L-gram" prescription).
  int64_t context = 4;
  int64_t d_embed = 32;
  int64_t d_hidden = 128;
  Activation activation = Activation::kTanh;
};

class FfnLm : public Module {
 public:
  FfnLm(const FfnLmConfig& config, util::Rng* rng);

  /// contexts: row-major [N, k] flattened token ids; returns logits [N, V].
  core::Variable ForwardLogits(const std::vector<int64_t>& contexts,
                               int64_t N) const;

  /// Cross-entropy of next-token targets (size N).
  core::Variable Loss(const std::vector<int64_t>& contexts,
                      const std::vector<int64_t>& targets, int64_t N) const;

  NamedParams NamedParameters() const override;

  const FfnLmConfig& config() const { return config_; }

 private:
  FfnLmConfig config_;
  Embedding tok_emb_;
  Mlp mlp_;
};

}  // namespace llm::nn

#endif  // TFMR_NN_FFN_LM_H_
