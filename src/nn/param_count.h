// Parameter accounting for transformer LMs (paper §6: "The total number of
// parameters is roughly 12 D p^2") and the architecture specs behind the
// paper's Table 1.
#ifndef TFMR_NN_PARAM_COUNT_H_
#define TFMR_NN_PARAM_COUNT_H_

#include <string>
#include <vector>

#include "nn/transformer.h"

namespace llm::nn {

/// Exact parameter count of a GPTModel with this config, computed
/// analytically (matches GPTModel::NumParameters; verified in tests).
int64_t AnalyticGptParamCount(const GPTConfig& config);

/// The paper's rule of thumb: 12 * n_layer * d_model^2, counting only the
/// per-layer weight matrices (qkv 3p^2 + proj p^2 + FFN 8p^2 = 12p^2).
/// Note the paper counts D as *sublayers* in one place; we use transformer
/// blocks (attention+FFN pairs), the convention under which GPT-3 (96
/// blocks, p=12288) gives ~174B =~ its reported 175B.
double TwelveDPSquaredRule(int n_layer, int64_t d_model);

/// One row of the paper's Table 1, with the published architecture
/// hyperparameters needed to check the 12Dp^2 rule.
struct PaperModelSpec {
  std::string name;
  int year;
  int n_layer;        // transformer blocks; 0 if not public
  int64_t d_model;    // embedding dimension p; 0 if not public
  double reported_params;   // paper's Table 1 "Number of Parameters"
  double dataset_tokens;    // paper's Table 1 "Dataset size"; 0 if unknown
};

/// The six rows of Table 1 (GPT, BERT, GPT-2, GPT-3, PaLM, GPT-4).
std::vector<PaperModelSpec> Table1Specs();

}  // namespace llm::nn

#endif  // TFMR_NN_PARAM_COUNT_H_
