#include "nn/batched_decode.h"

#include <algorithm>
#include <cmath>

#include "nn/decode_rows.h"
#include "obs/scoped_timer.h"

namespace llm::nn {

namespace {

// Four-wide SSE-width float vector via the GCC/Clang vector extension.
// Element-wise + and * on these are ordinary IEEE single-precision ops, so
// lane b of a vector accumulator computes exactly the scalar sequence the
// bit-exactness contract requires; the extension only guarantees the
// compiler emits packed instructions instead of hoping auto-vectorization
// fires (measured ~2x on these kernels with gcc 12 at -O3).
typedef float V4 __attribute__((vector_size(16)));
typedef float V4U __attribute__((vector_size(16), aligned(4)));

inline V4 LoadU(const float* p) {
  return *reinterpret_cast<const V4U*>(p);
}
inline void StoreU(float* p, V4 v) { *reinterpret_cast<V4U*>(p) = v; }
inline V4 Splat(float x) { return V4{x, x, x, x}; }

// Register-tile shape for the batched linear: kBT sequence lanes times a
// kOT-wide output tile of accumulators (kBT * kOT / 4 + kOT / 4 = 10 live
// vector registers, within the 16 of SSE). The weight row segment is
// loaded once per input index and reused by every lane, which is the whole
// point.
constexpr int64_t kBT = 4;
constexpr int64_t kOT = 8;

/// Y[b] = X[b] W + bias for B contiguous rows (X stride = in_features,
/// Y stride = out_features). Per-(b, o) accumulation order is ascending
/// over i, exactly like detail::ApplyLinearRow; terms with X[b][i] == 0
/// are value-neutral (see decode_rows.h), so lanes need not skip them
/// individually — only an all-lanes-zero input column is skipped.
void BatchedLinear(const Linear& linear, const float* X, float* Y,
                   int64_t B) {
  const int64_t in = linear.in_features();
  const int64_t out = linear.out_features();
  const float* w = linear.weight().value().data();  // [in, out]
  for (int64_t b0 = 0; b0 + kBT <= B; b0 += kBT) {
    const float* x0 = X + (b0 + 0) * in;
    const float* x1 = X + (b0 + 1) * in;
    const float* x2 = X + (b0 + 2) * in;
    const float* x3 = X + (b0 + 3) * in;
    int64_t o0 = 0;
    for (; o0 + kOT <= out; o0 += kOT) {
      V4 a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
      const float* wp = w + o0;
      for (int64_t i = 0; i < in; ++i, wp += out) {
        if (x0[i] == 0.0f && x1[i] == 0.0f && x2[i] == 0.0f &&
            x3[i] == 0.0f) {
          continue;  // value-neutral; common after ReLU
        }
        const V4 w0 = LoadU(wp);
        const V4 w1 = LoadU(wp + 4);
        V4 xv = Splat(x0[i]);
        a00 += xv * w0;
        a01 += xv * w1;
        xv = Splat(x1[i]);
        a10 += xv * w0;
        a11 += xv * w1;
        xv = Splat(x2[i]);
        a20 += xv * w0;
        a21 += xv * w1;
        xv = Splat(x3[i]);
        a30 += xv * w0;
        a31 += xv * w1;
      }
      float* y = Y + (b0 + 0) * out + o0;
      StoreU(y, a00);
      StoreU(y + 4, a01);
      y = Y + (b0 + 1) * out + o0;
      StoreU(y, a10);
      StoreU(y + 4, a11);
      y = Y + (b0 + 2) * out + o0;
      StoreU(y, a20);
      StoreU(y + 4, a21);
      y = Y + (b0 + 3) * out + o0;
      StoreU(y, a30);
      StoreU(y + 4, a31);
    }
    for (; o0 < out; ++o0) {  // output-dim remainder, scalar
      float acc[kBT] = {};
      for (int64_t i = 0; i < in; ++i) {
        const float wv = w[i * out + o0];
        acc[0] += x0[i] * wv;
        acc[1] += x1[i] * wv;
        acc[2] += x2[i] * wv;
        acc[3] += x3[i] * wv;
      }
      for (int64_t b = 0; b < kBT; ++b) Y[(b0 + b) * out + o0] = acc[b];
    }
  }
  // Remainder lanes: plain per-row path (identical order by definition).
  for (int64_t b = B - B % kBT; b < B; ++b) {
    detail::ApplyLinearRow(linear, X + b * in, Y + b * out);
  }
  if (linear.has_bias()) {
    const core::Tensor& bias = linear.bias().value();
    for (int64_t b = 0; b < B - B % kBT; ++b) {
      float* y = Y + b * out;
      for (int64_t o = 0; o < out; ++o) y[o] += bias[o];
    }
  }
}

// Lane width of the transposed-activation unembedding kernel.
constexpr int64_t kLanes = 8;

/// logits[b][v] = normed[b] . E[v] for the tied unembedding. The single-
/// sequence path is a serial FP dependency chain per (b, v); here the B
/// chains run in interleaved lanes over a transposed copy of the rows, so
/// packed ops run across sequences while each chain keeps its ascending-c
/// order (and a*b == b*a bit-wise).
void BatchedTiedUnembed(const core::Tensor& e, const float* normed,
                        SeqStepInput* seqs, int64_t B, int64_t C, int64_t V,
                        std::vector<float>* xt_buf) {
  const int64_t groups = (B + kLanes - 1) / kLanes;
  const int64_t bpad = groups * kLanes;
  xt_buf->assign(static_cast<size_t>(C * bpad), 0.0f);
  float* xt = xt_buf->data();
  for (int64_t b = 0; b < B; ++b) {
    const float* row = normed + b * C;
    for (int64_t c = 0; c < C; ++c) xt[c * bpad + b] = row[c];
  }
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t lanes = std::min(kLanes, B - g * kLanes);
    const float* xg = xt + g * kLanes;
    for (int64_t v = 0; v < V; ++v) {
      const float* row = e.data() + v * C;
      V4 acc0{}, acc1{};
      for (int64_t c = 0; c < C; ++c) {
        const V4 rc = Splat(row[c]);
        const float* xc = xg + c * bpad;
        acc0 += LoadU(xc) * rc;
        acc1 += LoadU(xc + 4) * rc;
      }
      float acc[kLanes];
      StoreU(acc, acc0);
      StoreU(acc + 4, acc1);
      for (int64_t l = 0; l < lanes; ++l) {
        seqs[g * kLanes + l].logits[v] = acc[l];
      }
    }
  }
}

}  // namespace

void BatchedDecodeStep(const GPTModel& model, SeqStepInput* seqs, int64_t n,
                       BatchedScratch* scratch) {
  if (n <= 0) return;
  // Hot-path profiling: resolved once, recorded only while
  // obs::EnableProfiling(true) — otherwise one relaxed load and no clock.
  static obs::Histogram* const decode_hist =
      obs::MetricsRegistry::Global().GetHistogram("nn.decode_step_ms");
  obs::ScopedTimer decode_timer(decode_hist);
  const GPTConfig& cfg = model.config();
  const int64_t B = n;
  const int64_t C = cfg.d_model;
  const int64_t H = cfg.n_head;
  const int64_t hd = C / H;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  int64_t max_pos = 0;
  for (int64_t b = 0; b < B; ++b) {
    LLM_CHECK(seqs[b].layers != nullptr);
    LLM_CHECK(seqs[b].logits != nullptr);
    LLM_CHECK_GE(seqs[b].position, 0);
    LLM_CHECK_LT(seqs[b].position, cfg.max_seq_len);
    LLM_CHECK_GE(seqs[b].token, 0);
    LLM_CHECK_LT(seqs[b].token, cfg.vocab_size);
    max_pos = std::max(max_pos, seqs[b].position);
  }

  scratch->x.resize(static_cast<size_t>(B * C));
  scratch->normed.resize(static_cast<size_t>(B * C));
  scratch->qkv.resize(static_cast<size_t>(B * 3 * C));
  scratch->att.resize(static_cast<size_t>(B * C));
  scratch->proj.resize(static_cast<size_t>(B * C));
  scratch->scores.resize(static_cast<size_t>(max_pos + 1));
  float* x = scratch->x.data();
  float* normed = scratch->normed.data();
  float* qkv = scratch->qkv.data();
  float* att = scratch->att.data();
  float* proj = scratch->proj.data();

  // Embedding + position, one row per sequence.
  const core::Tensor& emb = model.token_embedding().weight().value();
  const core::Tensor& pos = model.position_embedding().value();
  for (int64_t b = 0; b < B; ++b) {
    float* xb = x + b * C;
    const int64_t tok = seqs[b].token;
    const int64_t p = seqs[b].position;
    for (int64_t c = 0; c < C; ++c) xb[c] = emb[tok * C + c] + pos[p * C + c];
  }

  for (int layer = 0; layer < cfg.n_layer; ++layer) {
    const TransformerBlock* block = model.block(layer);

    // ---- Attention sublayer ----
    const float* attn_in = x;
    if (block->pre_layernorm()) {
      for (int64_t b = 0; b < B; ++b) {
        detail::ApplyLayerNormRow(block->ln1(), x + b * C, C, normed + b * C);
      }
      attn_in = normed;
    }
    BatchedLinear(block->attention()->qkv(), attn_in, qkv, B);  // [B, 3C]

    const int window = block->attention()->window();
    for (int64_t b = 0; b < B; ++b) {
      KvLayerView& kv = seqs[b].layers[layer];
      const float* q = qkv + b * 3 * C;
      const int64_t t = seqs[b].position;
      for (int64_t c = 0; c < C; ++c) {
        kv.keys[t * C + c] = q[C + c];
        kv.values[t * C + c] = q[2 * C + c];
      }
      float* ab = att + b * C;
      for (int64_t c = 0; c < C; ++c) ab[c] = 0.0f;
      const int64_t lo =
          window > 0 ? std::max<int64_t>(0, t - window + 1) : int64_t{0};
      for (int64_t h = 0; h < H; ++h) {
        detail::AttendHeadRow(q + h * hd, kv.keys, kv.values, t, lo, C, h,
                              hd, inv_sqrt, scratch->scores.data(),
                              ab + h * hd);
      }
    }
    BatchedLinear(block->attention()->proj(), att, proj, B);
    for (int64_t i = 0; i < B * C; ++i) x[i] += proj[i];
    if (!block->pre_layernorm()) {
      for (int64_t b = 0; b < B; ++b) {
        detail::ApplyLayerNormRow(block->ln1(), x + b * C, C, x + b * C);
      }
    }

    // ---- FFN sublayer ----
    if (block->mlp() != nullptr) {
      const Mlp* mlp = block->mlp();
      const int64_t hid = mlp->fc_in().out_features();
      scratch->hidden.resize(static_cast<size_t>(B * hid));
      scratch->mlp.resize(static_cast<size_t>(B * C));
      float* hidden = scratch->hidden.data();
      float* mlp_out = scratch->mlp.data();
      const float* ffn_in = x;
      if (block->pre_layernorm()) {
        for (int64_t b = 0; b < B; ++b) {
          detail::ApplyLayerNormRow(block->ln2(), x + b * C, C,
                                    normed + b * C);
        }
        ffn_in = normed;
      }
      BatchedLinear(mlp->fc_in(), ffn_in, hidden, B);
      for (int64_t i = 0; i < B * hid; ++i) {
        hidden[i] = detail::ActivationFn(mlp->activation(), hidden[i]);
      }
      BatchedLinear(mlp->fc_out(), hidden, mlp_out, B);
      for (int64_t i = 0; i < B * C; ++i) x[i] += mlp_out[i];
      if (!block->pre_layernorm()) {
        for (int64_t b = 0; b < B; ++b) {
          detail::ApplyLayerNormRow(block->ln2(), x + b * C, C, x + b * C);
        }
      }
    }
  }

  for (int64_t b = 0; b < B; ++b) {
    detail::ApplyLayerNormRow(model.final_layernorm(), x + b * C, C,
                              normed + b * C);
  }
  if (cfg.tie_embeddings) {
    BatchedTiedUnembed(model.token_embedding().weight().value(), normed,
                       seqs, B, C, cfg.vocab_size, &scratch->xt);
  } else {
    // Untied head: a batched linear into a contiguous staging block, then
    // scatter to the per-sequence logits buffers.
    scratch->mlp.resize(static_cast<size_t>(B * cfg.vocab_size));
    float* staged = scratch->mlp.data();
    BatchedLinear(*model.head(), normed, staged, B);
    for (int64_t b = 0; b < B; ++b) {
      const float* src = staged + b * cfg.vocab_size;
      std::copy(src, src + cfg.vocab_size, seqs[b].logits);
    }
  }
}

}  // namespace llm::nn
