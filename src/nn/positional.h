// Positional encodings (§6, Eq. 15).
#ifndef TFMR_NN_POSITIONAL_H_
#define TFMR_NN_POSITIONAL_H_

#include "core/tensor.h"

namespace llm::nn {

/// The fixed sinusoidal position encoding of Vaswani et al. (paper Eq. 15):
///   e[pos, 2i]   = sin(pos / 10000^(2i/dim))
///   e[pos, 2i+1] = cos(pos / 10000^(2i/dim))
/// Returns a [max_len, dim] tensor. dim may be odd (last column sin-only).
core::Tensor SinusoidalPositionalEncoding(int64_t max_len, int64_t dim);

}  // namespace llm::nn

#endif  // TFMR_NN_POSITIONAL_H_
