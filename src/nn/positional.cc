#include "nn/positional.h"

#include <cmath>

namespace llm::nn {

core::Tensor SinusoidalPositionalEncoding(int64_t max_len, int64_t dim) {
  LLM_CHECK_GT(max_len, 0);
  LLM_CHECK_GT(dim, 0);
  core::Tensor pe({max_len, dim});
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < dim; i += 2) {
      const double freq =
          std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(dim));
      const double angle = static_cast<double>(pos) * freq;
      pe[pos * dim + i] = static_cast<float>(std::sin(angle));
      if (i + 1 < dim) {
        pe[pos * dim + i + 1] = static_cast<float>(std::cos(angle));
      }
    }
  }
  return pe;
}

}  // namespace llm::nn
