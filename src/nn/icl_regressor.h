// Continuous-input decoder-only transformer for in-context regression
// (paper §4, "learning how to learn"): episodes of (x, y) pairs are laid
// out as an alternating token sequence x1 y1 x2 y2 ... and the model
// predicts y_i at each x_i position from the causally-visible prefix. No
// vocabulary — a linear read-in replaces the embedding, a scalar read-out
// replaces the softmax.
#ifndef TFMR_NN_ICL_REGRESSOR_H_
#define TFMR_NN_ICL_REGRESSOR_H_

#include <memory>
#include <vector>

#include "nn/transformer.h"

namespace llm::nn {

struct IclRegressorConfig {
  int dim = 4;            // x dimensionality
  int64_t max_pairs = 24; // maximum (x, y) pairs per episode
  int64_t d_model = 64;
  int n_layer = 3;
  int n_head = 2;
};

class InContextRegressor : public Module {
 public:
  InContextRegressor(const IclRegressorConfig& config, util::Rng* rng);

  /// xs: [B, n_pairs, dim] flattened; ys: [B, n_pairs] flattened. Returns
  /// predictions [B, n_pairs]: the model's estimate of y_i made at the
  /// x_i position (so prediction i uses pairs 1..i-1 plus x_i only).
  core::Variable Predict(const std::vector<float>& xs,
                         const std::vector<float>& ys, int64_t B,
                         int64_t n_pairs) const;

  /// MSE between Predict(...) and ys, averaged over all positions (each
  /// position is a harder-to-easier regression problem; training on all of
  /// them is the Garg et al. curriculum).
  core::Variable Loss(const std::vector<float>& xs,
                      const std::vector<float>& ys, int64_t B,
                      int64_t n_pairs) const;

  NamedParams NamedParameters() const override;

  const IclRegressorConfig& config() const { return config_; }

 private:
  IclRegressorConfig config_;
  Linear read_in_;   // (dim+1) -> d_model
  core::Variable pos_emb_;  // [2*max_pairs, d_model]
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  LayerNorm ln_final_;
  Linear read_out_;  // d_model -> 1
};

}  // namespace llm::nn

#endif  // TFMR_NN_ICL_REGRESSOR_H_
