// Multi-head causal self-attention layer (paper §6, Eq. 13-14).
//
// The bilinear form B of Eq. 14 is factored as key/query matrices (the
// paper's footnote 32); W of Eq. 13 is the output projection. Supports the
// windowed ("sparse", §6) variant and optional capture of attention
// probabilities for interpretability (§7: induction heads).
#ifndef TFMR_NN_ATTENTION_H_
#define TFMR_NN_ATTENTION_H_

#include "nn/layers.h"

namespace llm::nn {

class CausalSelfAttention : public Module {
 public:
  /// window = 0 means full causal attention; window = w > 0 restricts each
  /// position to the previous w positions.
  CausalSelfAttention(int64_t d_model, int num_heads, util::Rng* rng,
                      int window = 0);

  /// x: [B, T, C] -> [B, T, C].
  core::Variable Forward(const core::Variable& x) const;

  NamedParams NamedParameters() const override;

  /// When enabled, each Forward stores the attention probabilities
  /// [B, H, T, T] retrievable via last_probs(). Const because capture is
  /// observational state, togglable mid-forward on a const model.
  void set_capture_probs(bool capture) const { capture_ = capture; }
  const core::Tensor& last_probs() const { return last_probs_; }

  int num_heads() const { return num_heads_; }
  int window() const { return window_; }
  const Linear& qkv() const { return qkv_; }
  const Linear& proj() const { return proj_; }

 private:
  int num_heads_;
  int window_;
  Linear qkv_;
  Linear proj_;
  mutable bool capture_ = false;
  mutable core::Tensor last_probs_;
};

}  // namespace llm::nn

#endif  // TFMR_NN_ATTENTION_H_
