// Basic layers: Linear, Embedding, LayerNorm, and the two-layer FFN of
// Eq. 11 (the transformer's per-position MLP).
#ifndef TFMR_NN_LAYERS_H_
#define TFMR_NN_LAYERS_H_

#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace llm::nn {

/// Affine map y = x W + b with x: [N, in], W: [in, out], b: [out].
/// Weights are initialized N(0, 1/in) per the paper's §6 ("var(W) ~ 1/p").
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng* rng,
         bool bias = true);

  core::Variable Forward(const core::Variable& x) const;

  NamedParams NamedParameters() const override;

  const core::Variable& weight() const { return weight_; }
  const core::Variable& bias() const { return bias_; }
  bool has_bias() const { return has_bias_; }
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  core::Variable weight_;
  core::Variable bias_;
};

/// Token embedding table (the map iota of Eq. 7, learned).
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, util::Rng* rng);

  /// ids -> [ids.size(), dim].
  core::Variable Forward(const std::vector<int64_t>& ids) const;

  NamedParams NamedParameters() const override;

  const core::Variable& weight() const { return weight_; }
  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  core::Variable weight_;
};

/// Layer normalization with learned affine (gamma=1, beta=0 at init).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  core::Variable Forward(const core::Variable& x) const;

  NamedParams NamedParameters() const override;

  const core::Variable& gamma() const { return gamma_; }
  const core::Variable& beta() const { return beta_; }
  float eps() const { return eps_; }

 private:
  core::Variable gamma_;
  core::Variable beta_;
  float eps_;
};

enum class Activation { kRelu, kGelu, kTanh };

core::Variable ApplyActivation(const core::Variable& x, Activation act);

/// Two-layer FFN (Eq. 11 with one hidden layer): Linear -> act -> Linear.
class Mlp : public Module {
 public:
  Mlp(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, util::Rng* rng,
      Activation act = Activation::kGelu);

  core::Variable Forward(const core::Variable& x) const;

  NamedParams NamedParameters() const override;

  const Linear& fc_in() const { return fc_in_; }
  const Linear& fc_out() const { return fc_out_; }
  Activation activation() const { return act_; }

 private:
  Linear fc_in_;
  Linear fc_out_;
  Activation act_;
};

}  // namespace llm::nn

#endif  // TFMR_NN_LAYERS_H_
