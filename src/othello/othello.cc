#include "othello/othello.h"

#include "util/check.h"

namespace llm::othello {

namespace {
constexpr int kDr[8] = {-1, -1, -1, 0, 0, 1, 1, 1};
constexpr int kDc[8] = {-1, 0, 1, -1, 1, -1, 0, 1};
}  // namespace

Board::Board() {
  cells_.fill(Cell::kEmpty);
  // Row 3: index 27 (D4) white, 28 (E4) black.
  // Row 4: index 35 (D5) black, 36 (E5) white.
  cells_[27] = Cell::kWhite;
  cells_[28] = Cell::kBlack;
  cells_[35] = Cell::kBlack;
  cells_[36] = Cell::kWhite;
}

Cell Board::at(int index) const {
  LLM_CHECK_GE(index, 0);
  LLM_CHECK_LT(index, kCells);
  return cells_[static_cast<size_t>(index)];
}

std::vector<int> Board::FlipsFor(int index, Player player) const {
  std::vector<int> flips;
  if (index < 0 || index >= kCells ||
      cells_[static_cast<size_t>(index)] != Cell::kEmpty) {
    return flips;
  }
  const Cell mine = CellOf(player);
  const Cell theirs = CellOf(Opponent(player));
  const int row = index / kSize, col = index % kSize;
  for (int d = 0; d < 8; ++d) {
    std::vector<int> line;
    int r = row + kDr[d], c = col + kDc[d];
    while (r >= 0 && r < kSize && c >= 0 && c < kSize &&
           cells_[static_cast<size_t>(r * kSize + c)] == theirs) {
      line.push_back(r * kSize + c);
      r += kDr[d];
      c += kDc[d];
    }
    if (!line.empty() && r >= 0 && r < kSize && c >= 0 && c < kSize &&
        cells_[static_cast<size_t>(r * kSize + c)] == mine) {
      flips.insert(flips.end(), line.begin(), line.end());
    }
  }
  return flips;
}

bool Board::IsLegal(int index) const {
  return !FlipsFor(index, to_move_).empty();
}

std::vector<int> Board::LegalMoves() const {
  std::vector<int> moves;
  for (int i = 0; i < kCells; ++i) {
    if (IsLegal(i)) moves.push_back(i);
  }
  return moves;
}

bool Board::HasLegalMove() const {
  for (int i = 0; i < kCells; ++i) {
    if (IsLegal(i)) return true;
  }
  return false;
}

util::Status Board::Apply(int index) {
  const std::vector<int> flips = FlipsFor(index, to_move_);
  if (flips.empty()) {
    return util::Status::InvalidArgument("illegal move " + CellName(index));
  }
  const Cell mine = CellOf(to_move_);
  cells_[static_cast<size_t>(index)] = mine;
  for (int f : flips) cells_[static_cast<size_t>(f)] = mine;
  to_move_ = Opponent(to_move_);
  if (!HasLegalMove()) to_move_ = Opponent(to_move_);  // pass
  return util::Status::OK();
}

bool Board::IsTerminal() const { return !HasLegalMove(); }

int Board::CountDiscs(Cell c) const {
  int n = 0;
  for (Cell cell : cells_) {
    if (cell == c) ++n;
  }
  return n;
}

std::array<int8_t, Board::kCells> Board::Snapshot() const {
  std::array<int8_t, kCells> out;
  for (int i = 0; i < kCells; ++i) {
    out[static_cast<size_t>(i)] =
        static_cast<int8_t>(cells_[static_cast<size_t>(i)]);
  }
  return out;
}

std::string Board::ToString() const {
  std::string out;
  for (int r = 0; r < kSize; ++r) {
    for (int c = 0; c < kSize; ++c) {
      const Cell cell = cells_[static_cast<size_t>(r * kSize + c)];
      out += cell == Cell::kEmpty ? '.' : (cell == Cell::kBlack ? 'B' : 'W');
    }
    out += '\n';
  }
  return out;
}

std::string Board::CellName(int index) {
  LLM_CHECK_GE(index, 0);
  LLM_CHECK_LT(index, kCells);
  const int row = index / kSize, col = index % kSize;
  std::string name;
  name += static_cast<char>('A' + col);
  name += static_cast<char>('1' + row);
  return name;
}

Game RandomGame(util::Rng* rng) {
  LLM_CHECK(rng != nullptr);
  Game game;
  Board board;
  while (!board.IsTerminal()) {
    const std::vector<int> moves = board.LegalMoves();
    const Player mover = board.to_move();
    const int move =
        moves[static_cast<size_t>(rng->UniformInt(moves.size()))];
    LLM_CHECK(board.Apply(move).ok());
    game.moves.push_back(move);
    game.boards.push_back(board.Snapshot());
    game.players.push_back(mover);
  }
  return game;
}

std::vector<Game> RandomGames(int64_t n, util::Rng* rng) {
  std::vector<Game> games;
  games.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) games.push_back(RandomGame(rng));
  return games;
}

}  // namespace llm::othello
