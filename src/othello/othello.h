// Othello (Reversi) rules engine — the substrate for the Othello-GPT world
// model experiment (paper §7, Li et al. [78]): full legal-move generation,
// disc flipping, pass handling, and random legal-game generation with
// per-move board snapshots for probing.
#ifndef TFMR_OTHELLO_OTHELLO_H_
#define TFMR_OTHELLO_OTHELLO_H_

#include <array>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace llm::othello {

enum class Cell : int8_t { kEmpty = 0, kBlack = 1, kWhite = 2 };

enum class Player : int8_t { kBlack = 1, kWhite = 2 };

inline Cell CellOf(Player p) {
  return p == Player::kBlack ? Cell::kBlack : Cell::kWhite;
}
inline Player Opponent(Player p) {
  return p == Player::kBlack ? Player::kWhite : Player::kBlack;
}

class Board {
 public:
  static constexpr int kSize = 8;
  static constexpr int kCells = kSize * kSize;

  /// Standard initial position (D4/E5 white, D5/E4 black... here encoded
  /// as indices 27, 36 white and 28, 35 black), black to move.
  Board();

  Cell at(int index) const;
  Cell at(int row, int col) const { return at(row * kSize + col); }
  Player to_move() const { return to_move_; }

  /// Legal destination cells (0..63) for the player to move.
  std::vector<int> LegalMoves() const;
  bool IsLegal(int index) const;
  bool HasLegalMove() const;

  /// Plays a move for the player to move; flips discs; passes the turn to
  /// the opponent (or back, if the opponent has no legal reply — the
  /// pass rule). InvalidArgument if the move is illegal.
  util::Status Apply(int index);

  /// Both players blocked (or board full).
  bool IsTerminal() const;

  int CountDiscs(Cell c) const;

  /// 64 cells as {0 empty, 1 black, 2 white}.
  std::array<int8_t, kCells> Snapshot() const;

  /// ASCII rendering for debugging ('.', 'B', 'W', 8x8 rows).
  std::string ToString() const;

  /// Cell index -> algebraic name ("E3"); column letter then 1-based row.
  static std::string CellName(int index);

 private:
  /// Discs flipped by playing `index` for `player`; empty if illegal.
  std::vector<int> FlipsFor(int index, Player player) const;

  std::array<Cell, kCells> cells_;
  Player to_move_ = Player::kBlack;
};

/// One complete random legal game (both players play uniformly random
/// legal moves until the game is terminal). boards[i] is the snapshot
/// *after* moves[i]; to_move[i] is the player who made moves[i].
struct Game {
  std::vector<int> moves;
  std::vector<std::array<int8_t, Board::kCells>> boards;
  std::vector<Player> players;
};

Game RandomGame(util::Rng* rng);

/// Generates `n` games.
std::vector<Game> RandomGames(int64_t n, util::Rng* rng);

}  // namespace llm::othello

#endif  // TFMR_OTHELLO_OTHELLO_H_
