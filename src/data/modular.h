// Modular-arithmetic dataset for the grokking experiment (paper §4, Power
// et al. [110], Nanda et al. [103]): sequences "a op b =" with the answer
// c = (a op b) mod p as the target at the '=' position. The full example
// table is split once into train/test; generalization to the held-out
// cells is the phenomenon under study.
#ifndef TFMR_DATA_MODULAR_H_
#define TFMR_DATA_MODULAR_H_

#include <vector>

#include "util/rng.h"

namespace llm::data {

enum class ModularOp { kAdd, kSub, kMul };

struct ModularDatasetOptions {
  int64_t modulus = 97;
  ModularOp op = ModularOp::kAdd;
  /// Fraction of the p*p example table used for training.
  double train_fraction = 0.5;
  uint64_t seed = 1;
};

struct ModularExample {
  int64_t a = 0, b = 0, c = 0;
};

class ModularDataset {
 public:
  /// Token layout: 0..p-1 are residues, p is the operator, p+1 is '='.
  explicit ModularDataset(const ModularDatasetOptions& options);

  int64_t vocab_size() const { return options_.modulus + 2; }
  int64_t op_token() const { return options_.modulus; }
  int64_t eq_token() const { return options_.modulus + 1; }
  /// Every sequence is [a, op, b, =] (length 4); only the '=' position has
  /// a target (the answer c); other targets are ignore_index.
  static constexpr int64_t kSeqLen = 4;

  const std::vector<ModularExample>& train() const { return train_; }
  const std::vector<ModularExample>& test() const { return test_; }

  /// Samples B training examples into [B, 4] inputs and targets (with -1
  /// at non-answer positions).
  void SampleTrainBatch(util::Rng* rng, int64_t batch_size,
                        std::vector<int64_t>* inputs,
                        std::vector<int64_t>* targets) const;

  /// Deterministically encodes a span of examples from `split`.
  void EncodeExamples(const std::vector<ModularExample>& examples,
                      std::vector<int64_t>* inputs,
                      std::vector<int64_t>* targets) const;

  const ModularDatasetOptions& options() const { return options_; }

 private:
  int64_t Answer(int64_t a, int64_t b) const;

  ModularDatasetOptions options_;
  std::vector<ModularExample> train_;
  std::vector<ModularExample> test_;
};

}  // namespace llm::data

#endif  // TFMR_DATA_MODULAR_H_
