// Streaming parity — the classic complexity-theoretic separation task the
// paper's §8 discusses ("the complexity class of circuits which can be
// realized by constant depth transformers ... TC^0"; the RNN-as-finite-
// state-machine point of §5). The model reads a bit string and must
// output the running parity after every bit. A recurrent model carries
// parity in one bit of state and generalizes to any length; a fixed-depth
// transformer must approximate an L-way parity with constant depth and
// characteristically fails to length-generalize.
#ifndef TFMR_DATA_PARITY_H_
#define TFMR_DATA_PARITY_H_

#include <vector>

#include "util/rng.h"

namespace llm::data {

/// Samples B uniform bit strings of length T. inputs in {0, 1};
/// targets[i] = parity of inputs[0..i] (also in {0, 1}; vocab is 2).
void SampleParityBatch(util::Rng* rng, int64_t batch_size, int64_t seq_len,
                       std::vector<int64_t>* inputs,
                       std::vector<int64_t>* targets);

}  // namespace llm::data

#endif  // TFMR_DATA_PARITY_H_
