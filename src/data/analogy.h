// Synthetic analogy corpus (paper §5, Eq. 9-10). Entity words are points
// on a feature grid (gender x rank x age); each sentence pairs an entity
// with context words indicating its feature values, so co-occurrence
// ratios satisfy Eq. 10 by construction and the offset method
// (king - man + woman ~ queen) should recover held-out grid corners.
#ifndef TFMR_DATA_ANALOGY_H_
#define TFMR_DATA_ANALOGY_H_

#include <string>
#include <vector>

#include "text/vocab.h"
#include "util/rng.h"

namespace llm::data {

struct AnalogyQuad {
  // a : b :: c : d  (e.g. man : king :: woman : queen).
  int64_t a, b, c, d;
};

class AnalogyCorpus {
 public:
  /// Builds the vocabulary (entity + context + filler words) and the gold
  /// analogy quadruples.
  AnalogyCorpus();

  /// Generates `num_sentences` sentences; each is [entity, ctx words for
  /// each of its features, filler...] shuffled. Returns a token stream.
  std::vector<int64_t> Generate(int64_t num_sentences, util::Rng* rng) const;

  const text::Vocab& vocab() const { return vocab_; }
  int64_t vocab_size() const { return vocab_.size(); }
  const std::vector<AnalogyQuad>& quads() const { return quads_; }

  /// Human-readable form of a quad for reports.
  std::string QuadToString(const AnalogyQuad& q) const;

 private:
  struct Entity {
    int64_t word;
    int gender;  // 0 / 1
    int rank;    // 0 commoner / 1 royal / 2 heir
    int age;     // 0 adult / 1 young
  };

  text::Vocab vocab_;
  std::vector<Entity> entities_;
  std::vector<std::vector<int64_t>> gender_ctx_;  // per value, context words
  std::vector<std::vector<int64_t>> rank_ctx_;
  std::vector<std::vector<int64_t>> age_ctx_;
  std::vector<int64_t> filler_;
  std::vector<AnalogyQuad> quads_;
};

}  // namespace llm::data

#endif  // TFMR_DATA_ANALOGY_H_
