// Multi-step arithmetic word problems with optional chain-of-thought
// supervision — the toy-scale analogue of the paper's Figure 1 (Minerva)
// and its §3 discussion of chain-of-thought prompting. The task: compute
// the sum of k digits modulo M. Without CoT the model must emit the answer
// in a single prediction after '='; with CoT the training sequences spell
// out the running partial sums (the "intermediate reasoning steps spelled
// out"), turning one hard prediction into k-1 easy ones.
#ifndef TFMR_DATA_WORD_PROBLEMS_H_
#define TFMR_DATA_WORD_PROBLEMS_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace llm::data {

struct WordProblemOptions {
  int64_t modulus = 11;
  /// Number of summed terms k (>= 2); difficulty grows with k.
  int terms = 4;
  bool chain_of_thought = false;
};

class WordProblemDataset {
 public:
  explicit WordProblemDataset(const WordProblemOptions& options);

  /// Token layout: 0..M-1 digits, M '+', M+1 '=', M+2 ';' (CoT step
  /// separator), M+3 end-of-problem.
  int64_t vocab_size() const { return options_.modulus + 4; }
  int64_t plus_token() const { return options_.modulus; }
  int64_t eq_token() const { return options_.modulus + 1; }
  int64_t sep_token() const { return options_.modulus + 2; }
  int64_t end_token() const { return options_.modulus + 3; }

  /// Fixed sequence length for the configured options:
  /// no CoT:  a1 + a2 ... + ak = ANS END                 (2k + 2)
  /// CoT:     a1 + ... + ak = p2 ; p3 ; ... ; pk END     (4k - 2)
  int64_t seq_len() const;

  struct Problem {
    std::vector<int64_t> terms;
    int64_t answer = 0;             // final sum mod M
    std::vector<int64_t> partials;  // p2..pk (running sums), pk == answer
  };

  Problem SampleProblem(util::Rng* rng) const;

  /// Full training sequence (including answer / chain) for LM training.
  std::vector<int64_t> Encode(const Problem& p) const;

  /// The prompt prefix up to and including '=' — what the model sees at
  /// evaluation time before generating.
  std::vector<int64_t> EncodePrompt(const Problem& p) const;

  /// Batch of B training sequences; targets are shifted inputs with the
  /// prompt part masked to -1 (loss only on the answer / chain).
  void SampleBatch(util::Rng* rng, int64_t batch_size,
                   std::vector<int64_t>* inputs,
                   std::vector<int64_t>* targets) const;

  /// Renders a problem like "3 + 5 + 2 = 10" for logs.
  std::string ToString(const Problem& p) const;

  const WordProblemOptions& options() const { return options_; }

 private:
  WordProblemOptions options_;
};

}  // namespace llm::data

#endif  // TFMR_DATA_WORD_PROBLEMS_H_
