#include "data/fewshot.h"

#include <numeric>
#include <set>

#include "util/check.h"

namespace llm::data {

FewShotTasks::FewShotTasks(int num_tasks, int64_t num_items, uint64_t seed)
    : num_items_(num_items) {
  LLM_CHECK_GE(num_tasks, 1);
  LLM_CHECK_GE(num_items, 2);
  util::Rng rng(seed);
  std::set<std::vector<int64_t>> seen;
  int64_t guard = 0;
  while (static_cast<int>(tasks_.size()) < num_tasks) {
    LLM_CHECK_LT(guard++, 10000 * num_tasks)
        << "cannot draw enough distinct permutations";
    std::vector<int64_t> perm(static_cast<size_t>(num_items));
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(&perm);
    if (seen.insert(perm).second) tasks_.push_back(std::move(perm));
  }
}

int64_t FewShotTasks::Apply(int task, int64_t item) const {
  LLM_CHECK_GE(task, 0);
  LLM_CHECK_LT(task, num_tasks());
  LLM_CHECK_GE(item, 0);
  LLM_CHECK_LT(item, num_items_);
  return tasks_[static_cast<size_t>(task)][static_cast<size_t>(item)];
}

void FewShotTasks::SampleBatch(util::Rng* rng, int64_t batch_size,
                               int shots, std::vector<int64_t>* inputs,
                               std::vector<int64_t>* targets,
                               std::vector<int>* tasks_out) const {
  LLM_CHECK(rng && inputs && targets);
  LLM_CHECK_GE(shots, 1);
  const int64_t T = 2 * shots;
  inputs->resize(static_cast<size_t>(batch_size * T));
  targets->resize(static_cast<size_t>(batch_size * T));
  if (tasks_out) tasks_out->resize(static_cast<size_t>(batch_size));
  for (int64_t b = 0; b < batch_size; ++b) {
    const int task = static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_tasks())));
    if (tasks_out) (*tasks_out)[static_cast<size_t>(b)] = task;
    for (int s = 0; s < shots; ++s) {
      const auto x = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(num_items_)));
      const int64_t y = Apply(task, x);
      (*inputs)[static_cast<size_t>(b * T + 2 * s)] = x;
      (*inputs)[static_cast<size_t>(b * T + 2 * s + 1)] = y;
      // Next-token targets: at the x position the model must emit y.
      (*targets)[static_cast<size_t>(b * T + 2 * s)] = y;
      (*targets)[static_cast<size_t>(b * T + 2 * s + 1)] = -1;
    }
  }
}

}  // namespace llm::data
