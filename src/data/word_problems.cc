#include "data/word_problems.h"

#include "util/check.h"

namespace llm::data {

WordProblemDataset::WordProblemDataset(const WordProblemOptions& options)
    : options_(options) {
  LLM_CHECK_GE(options.modulus, 2);
  LLM_CHECK_GE(options.terms, 2);
}

int64_t WordProblemDataset::seq_len() const {
  const int64_t k = options_.terms;
  return options_.chain_of_thought ? 4 * k - 2 : 2 * k + 2;
}

WordProblemDataset::Problem WordProblemDataset::SampleProblem(
    util::Rng* rng) const {
  LLM_CHECK(rng != nullptr);
  Problem p;
  p.terms.resize(static_cast<size_t>(options_.terms));
  for (auto& t : p.terms) {
    t = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(options_.modulus)));
  }
  int64_t run = p.terms[0];
  for (size_t i = 1; i < p.terms.size(); ++i) {
    run = (run + p.terms[i]) % options_.modulus;
    p.partials.push_back(run);
  }
  p.answer = run;
  return p;
}

std::vector<int64_t> WordProblemDataset::EncodePrompt(
    const Problem& p) const {
  std::vector<int64_t> out;
  for (size_t i = 0; i < p.terms.size(); ++i) {
    if (i) out.push_back(plus_token());
    out.push_back(p.terms[i]);
  }
  out.push_back(eq_token());
  return out;
}

std::vector<int64_t> WordProblemDataset::Encode(const Problem& p) const {
  std::vector<int64_t> out = EncodePrompt(p);
  if (options_.chain_of_thought) {
    for (size_t i = 0; i < p.partials.size(); ++i) {
      if (i) out.push_back(sep_token());
      out.push_back(p.partials[i]);
    }
  } else {
    out.push_back(p.answer);
  }
  out.push_back(end_token());
  LLM_CHECK_EQ(static_cast<int64_t>(out.size()), seq_len());
  return out;
}

void WordProblemDataset::SampleBatch(util::Rng* rng, int64_t batch_size,
                                     std::vector<int64_t>* inputs,
                                     std::vector<int64_t>* targets) const {
  LLM_CHECK(rng && inputs && targets);
  const int64_t T = seq_len();
  const int64_t prompt_len =
      static_cast<int64_t>(2 * options_.terms);  // terms, pluses, '='
  inputs->resize(static_cast<size_t>(batch_size * T));
  targets->resize(static_cast<size_t>(batch_size * T));
  for (int64_t b = 0; b < batch_size; ++b) {
    const std::vector<int64_t> seq = Encode(SampleProblem(rng));
    for (int64_t i = 0; i < T; ++i) {
      (*inputs)[static_cast<size_t>(b * T + i)] =
          seq[static_cast<size_t>(i)];
      // Next-token targets, masked so loss starts at the '=' transition
      // (position prompt_len - 1 predicts the first answer/chain token).
      int64_t tgt = -1;
      if (i + 1 < T && i >= prompt_len - 1) {
        tgt = seq[static_cast<size_t>(i + 1)];
      }
      (*targets)[static_cast<size_t>(b * T + i)] = tgt;
    }
  }
}

std::string WordProblemDataset::ToString(const Problem& p) const {
  std::string s;
  for (size_t i = 0; i < p.terms.size(); ++i) {
    if (i) s += " + ";
    s += std::to_string(p.terms[i]);
  }
  s += " = " + std::to_string(p.answer) + " (mod " +
       std::to_string(options_.modulus) + ")";
  return s;
}

}  // namespace llm::data
