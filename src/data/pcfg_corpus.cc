#include "data/pcfg_corpus.h"

namespace llm::data {

grammar::Grammar ToyEnglishGrammar() {
  // English-like PCFG with subject-verb *number agreement* that must be
  // carried across intervening material ("the dogs near the river run"):
  // small models fail the long-range dependency, so model capacity
  // matters — which is what the Fig. 2 model-size panel needs.
  grammar::Grammar g;
  auto add = [&](const std::string& lhs,
                 const std::vector<std::string>& rhs, double w) {
    LLM_CHECK(g.AddRule(lhs, rhs, w).ok());
  };
  add("S", {"NPS", "VPS"}, 0.5);  // singular subject + singular verb
  add("S", {"NPP", "VPP"}, 0.5);  // plural subject + plural verb
  // Noun phrases, number-marked.
  add("NPS", {"DETS", "NBARS"}, 0.8);
  add("NPS", {"NAME"}, 0.2);
  add("NPP", {"DETP", "NBARP"}, 1.0);
  add("NBARS", {"NOUNS"}, 0.55);
  add("NBARS", {"ADJ", "NBARS"}, 0.25);
  add("NBARS", {"NOUNS", "PP"}, 0.20);
  add("NBARP", {"NOUNP"}, 0.55);
  add("NBARP", {"ADJ", "NBARP"}, 0.25);
  add("NBARP", {"NOUNP", "PP"}, 0.20);
  // Objects can have either number.
  add("NP", {"NPS"}, 0.5);
  add("NP", {"NPP"}, 0.5);
  // Verb phrases, number-marked to agree with the subject.
  add("VPS", {"VTS", "NP"}, 0.45);
  add("VPS", {"VIS"}, 0.25);
  add("VPS", {"VTS", "NP", "PP"}, 0.15);
  add("VPS", {"VIS", "PP"}, 0.15);
  add("VPP", {"VTP", "NP"}, 0.45);
  add("VPP", {"VIP"}, 0.25);
  add("VPP", {"VTP", "NP", "PP"}, 0.15);
  add("VPP", {"VIP", "PP"}, 0.15);
  add("PP", {"PREP", "NP"}, 1.0);
  // Lexicon. Singular/plural noun and verb forms are distinct terminals.
  add("DETS", {"the"}, 0.5);
  add("DETS", {"a"}, 0.35);
  add("DETS", {"every"}, 0.15);
  add("DETP", {"the"}, 0.5);
  add("DETP", {"some"}, 0.3);
  add("DETP", {"many"}, 0.2);
  const char* noun_pairs[][2] = {
      {"dog", "dogs"},       {"cat", "cats"},     {"bird", "birds"},
      {"fish", "fishes"},    {"park", "parks"},   {"house", "houses"},
      {"tree", "trees"},     {"river", "rivers"}, {"child", "children"},
      {"teacher", "teachers"}, {"city", "cities"}, {"horse", "horses"},
      {"garden", "gardens"}, {"road", "roads"},   {"friend", "friends"},
      {"story", "stories"}};
  for (const auto& p : noun_pairs) {
    add("NOUNS", {p[0]}, 1.0);
    add("NOUNP", {p[1]}, 1.0);
  }
  const char* vt_pairs[][2] = {{"chases", "chase"}, {"sees", "see"},
                               {"likes", "like"},   {"finds", "find"},
                               {"follows", "follow"}, {"helps", "help"}};
  for (const auto& p : vt_pairs) {
    add("VTS", {p[0]}, 1.0);
    add("VTP", {p[1]}, 1.0);
  }
  const char* vi_pairs[][2] = {{"sleeps", "sleep"}, {"runs", "run"},
                               {"sings", "sing"},   {"waits", "wait"}};
  for (const auto& p : vi_pairs) {
    add("VIS", {p[0]}, 1.0);
    add("VIP", {p[1]}, 1.0);
  }
  for (const char* a : {"big", "small", "old", "happy", "green", "quiet",
                        "brave", "clever"}) {
    add("ADJ", {a}, 1.0);
  }
  for (const char* p : {"in", "near", "behind", "beside"}) {
    add("PREP", {p}, 1.0);
  }
  for (const char* m : {"alice", "bob", "carol", "dave"}) {
    add("NAME", {m}, 1.0);
  }
  LLM_CHECK(g.Finalize("S").ok());
  return g;
}

std::vector<PcfgSample> SamplePcfgCorpus(const grammar::Grammar& grammar,
                                         const PcfgCorpusOptions& options,
                                         util::Rng* rng) {
  LLM_CHECK(rng != nullptr);
  std::vector<PcfgSample> out;
  out.reserve(static_cast<size_t>(options.num_sentences));
  int64_t guard = 0;
  while (static_cast<int64_t>(out.size()) < options.num_sentences) {
    LLM_CHECK_LT(guard++, options.num_sentences * 1000)
        << "PCFG sampling rejection loop not terminating";
    auto tree_or = grammar.SampleTree(rng, options.max_depth);
    if (!tree_or.ok()) continue;  // too deep; resample
    auto tree = std::move(tree_or).value();
    std::vector<int> leaves = grammar::Grammar::TreeLeaves(*tree);
    const int len = static_cast<int>(leaves.size());
    if (len < options.min_length) continue;
    if (options.max_length > 0 && len > options.max_length) continue;
    PcfgSample sample;
    sample.terminals = std::move(leaves);
    sample.tree = std::move(tree);
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<int64_t> FlattenToStream(const std::vector<PcfgSample>& samples,
                                     int separator_id) {
  std::vector<int64_t> stream;
  for (const auto& s : samples) {
    for (int t : s.terminals) stream.push_back(t);
    stream.push_back(separator_id);
  }
  return stream;
}

}  // namespace llm::data
