#include "data/icl_regression.h"

#include <cmath>

#include "util/check.h"
#include "util/linalg.h"

namespace llm::data {

IclEpisode SampleIclEpisode(const IclRegressionOptions& options, int n_pairs,
                            util::Rng* rng) {
  LLM_CHECK(rng != nullptr);
  LLM_CHECK_GE(n_pairs, 2);
  LLM_CHECK_GE(options.dim, 1);
  IclEpisode ep;
  ep.dim = options.dim;
  ep.n_pairs = n_pairs;
  ep.w.resize(static_cast<size_t>(options.dim));
  for (auto& v : ep.w) v = static_cast<float>(rng->Normal());
  ep.xs.resize(static_cast<size_t>(n_pairs * options.dim));
  ep.ys.resize(static_cast<size_t>(n_pairs));
  for (int i = 0; i < n_pairs; ++i) {
    double y = 0.0;
    for (int j = 0; j < options.dim; ++j) {
      const float x = static_cast<float>(rng->Normal());
      ep.xs[static_cast<size_t>(i * options.dim + j)] = x;
      y += static_cast<double>(x) * ep.w[static_cast<size_t>(j)];
    }
    if (options.noise_std > 0.0) {
      y += rng->Normal(0.0, options.noise_std);
    }
    ep.ys[static_cast<size_t>(i)] = static_cast<float>(y);
  }
  return ep;
}

namespace {
/// Ridge solve on the context pairs; lambda = 0 falls back to a tiny
/// regularizer for numerical safety when underdetermined.
double SolveAndPredict(const IclEpisode& ep, double lambda) {
  const int d = ep.dim;
  const int n = ep.n_pairs - 1;  // context pairs only
  std::vector<std::vector<double>> xtx(
      static_cast<size_t>(d), std::vector<double>(static_cast<size_t>(d)));
  std::vector<double> xty(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int a = 0; a < d; ++a) {
      const double xa = ep.xs[static_cast<size_t>(i * d + a)];
      xty[static_cast<size_t>(a)] +=
          xa * ep.ys[static_cast<size_t>(i)];
      for (int b = 0; b < d; ++b) {
        xtx[static_cast<size_t>(a)][static_cast<size_t>(b)] +=
            xa * ep.xs[static_cast<size_t>(i * d + b)];
      }
    }
  }
  const double reg = lambda > 0.0 ? lambda : 1e-8;
  for (int a = 0; a < d; ++a) {
    xtx[static_cast<size_t>(a)][static_cast<size_t>(a)] += reg;
  }
  std::vector<double> w;
  LLM_CHECK(util::SolveLinearSystem(xtx, xty, &w));
  double pred = 0.0;
  const int q = ep.n_pairs - 1;
  for (int a = 0; a < d; ++a) {
    pred += w[static_cast<size_t>(a)] *
            ep.xs[static_cast<size_t>(q * d + a)];
  }
  return pred;
}
}  // namespace

double LeastSquaresPredict(const IclEpisode& episode) {
  return SolveAndPredict(episode, 0.0);
}

double RidgePredict(const IclEpisode& episode, double lambda) {
  LLM_CHECK_GT(lambda, 0.0);
  return SolveAndPredict(episode, lambda);
}

}  // namespace llm::data
