// PCFG-generated corpora: the synthetic "toy world" language (paper §4)
// used for the scaling-law experiments (Fig. 2 / Eq. 4), the perplexity
// ladder, and the structural probe (§7) — each sample keeps its gold parse
// tree.
#ifndef TFMR_DATA_PCFG_CORPUS_H_
#define TFMR_DATA_PCFG_CORPUS_H_

#include <memory>
#include <vector>

#include "grammar/cfg.h"

namespace llm::data {

/// A small English-like PCFG: sentences like "the big dog chases a cat in
/// the park". ~10 nonterminals, ~30 terminals, recursive PP/adjective
/// attachment for nontrivial entropy and tree depth.
grammar::Grammar ToyEnglishGrammar();

struct PcfgSample {
  std::vector<int> terminals;  // terminal ids of the grammar
  std::unique_ptr<grammar::Grammar::TreeNode> tree;
};

struct PcfgCorpusOptions {
  int64_t num_sentences = 1000;
  int max_depth = 40;
  /// Regenerate sentences longer than this (keeps training windows sane);
  /// 0 disables.
  int max_length = 24;
  int min_length = 2;
};

/// Samples sentences with their gold trees.
std::vector<PcfgSample> SamplePcfgCorpus(const grammar::Grammar& grammar,
                                         const PcfgCorpusOptions& options,
                                         util::Rng* rng);

/// Flattens samples into one LM token stream with a separator token after
/// each sentence. Token ids are the grammar terminal ids; the separator id
/// is grammar.num_terminals() (so vocab_size = num_terminals() + 1).
std::vector<int64_t> FlattenToStream(const std::vector<PcfgSample>& samples,
                                     int separator_id);

}  // namespace llm::data

#endif  // TFMR_DATA_PCFG_CORPUS_H_
