#include "data/induction.h"

#include "util/check.h"

namespace llm::data {

void SampleInductionBatch(const InductionOptions& options, util::Rng* rng,
                          int64_t batch_size, std::vector<int64_t>* inputs,
                          std::vector<int64_t>* targets,
                          std::vector<int64_t>* splits) {
  LLM_CHECK(rng && inputs && targets);
  const int64_t T = options.seq_len;
  LLM_CHECK_GE(T, 4);
  LLM_CHECK_GE(options.vocab_size, 2);
  const int64_t lo =
      options.min_prefix > 0 ? options.min_prefix : std::max<int64_t>(2, T / 4);
  const int64_t hi =
      options.max_prefix > 0 ? options.max_prefix : T / 2;
  LLM_CHECK_LE(lo, hi);
  LLM_CHECK_LT(hi, T);

  inputs->resize(static_cast<size_t>(batch_size * T));
  targets->resize(static_cast<size_t>(batch_size * T));
  if (splits) splits->resize(static_cast<size_t>(batch_size));
  for (int64_t b = 0; b < batch_size; ++b) {
    const int64_t s =
        lo + static_cast<int64_t>(rng->UniformInt(
                 static_cast<uint64_t>(hi - lo + 1)));
    if (splits) (*splits)[static_cast<size_t>(b)] = s;
    for (int64_t i = 0; i < T; ++i) {
      (*inputs)[static_cast<size_t>(b * T + i)] =
          i < s ? static_cast<int64_t>(rng->UniformInt(
                      static_cast<uint64_t>(options.vocab_size)))
                : (*inputs)[static_cast<size_t>(b * T + i - s)];
    }
    for (int64_t i = 0; i < T; ++i) {
      // Positions from s-1 on predict already-seen (repeated) tokens.
      (*targets)[static_cast<size_t>(b * T + i)] =
          (i >= s - 1 && i + 1 < T)
              ? (*inputs)[static_cast<size_t>(b * T + i + 1)]
              : -1;
    }
  }
}

std::vector<double> InductionScores(const std::vector<int64_t>& splits,
                                    int64_t B, int64_t T, const float* probs,
                                    int64_t H, int tolerance) {
  LLM_CHECK_EQ(static_cast<int64_t>(splits.size()), B);
  std::vector<double> score(static_cast<size_t>(H), 0.0);
  int64_t counted = 0;
  for (int64_t b = 0; b < B; ++b) {
    const int64_t s = splits[static_cast<size_t>(b)];
    for (int64_t i = s; i < T; ++i) {
      // Credit attention mass on *every* induction target: with a cyclic
      // repeat, the token after any previous occurrence of the current
      // token is a valid AB...A -> B source (j = i - k*s + 1 for k >= 1).
      for (int64_t h = 0; h < H; ++h) {
        double mass = 0.0;
        for (int64_t j = i - s + 1; j >= 1; j -= s) {
          for (int64_t d = -tolerance; d <= tolerance; ++d) {
            const int64_t jj = j + d;
            if (jj >= 0 && jj <= i) {
              mass += probs[((b * H + h) * T + i) * T + jj];
            }
          }
        }
        score[static_cast<size_t>(h)] += mass;
      }
      ++counted;
    }
  }
  LLM_CHECK_GT(counted, 0);
  for (auto& v : score) v /= static_cast<double>(counted);
  return score;
}

}  // namespace llm::data
