// Few-shot task mixtures for in-context learning as task identification
// (paper §3: "after a few question-answer examples the LLM will answer
// the next question"; §7: "the simplest hypothesis is that the model has
// learned the individual tasks, and the examples are selecting a
// particular task from this repertoire", Xie et al. [140], Wies et al.
// [136]).
//
// Each latent task is a random bijection over item tokens. A training
// sequence is x1 y1 x2 y2 ... with y = pi_task(x) and the task drawn per
// sequence. With one task the first answer is already predictable; with
// many tasks the model must infer the task from the in-context examples,
// so accuracy climbs with the shot index.
#ifndef TFMR_DATA_FEWSHOT_H_
#define TFMR_DATA_FEWSHOT_H_

#include <vector>

#include "util/rng.h"

namespace llm::data {

class FewShotTasks {
 public:
  /// Builds `num_tasks` random bijections over `num_items` item tokens.
  /// All tasks are pairwise distinct (checked; aborts if the space is too
  /// small to draw distinct permutations).
  FewShotTasks(int num_tasks, int64_t num_items, uint64_t seed);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int64_t num_items() const { return num_items_; }
  /// Token-id space: items only (inputs and outputs share it).
  int64_t vocab_size() const { return num_items_; }

  int64_t Apply(int task, int64_t item) const;

  /// Samples B sequences of `shots` (x, y) pairs, each with a uniformly
  /// drawn latent task. inputs/targets are the usual LM pair: targets are
  /// the next token with -1 everywhere except at x positions (where the
  /// model must produce the following y). Sequence length is 2 * shots.
  /// `tasks_out`, if non-null, receives the latent task per sequence.
  void SampleBatch(util::Rng* rng, int64_t batch_size, int shots,
                   std::vector<int64_t>* inputs,
                   std::vector<int64_t>* targets,
                   std::vector<int>* tasks_out = nullptr) const;

 private:
  int64_t num_items_;
  std::vector<std::vector<int64_t>> tasks_;  // [task][item] -> item
};

}  // namespace llm::data

#endif  // TFMR_DATA_FEWSHOT_H_
