// Repeated-sequence ("induction") data for the induction-heads experiment
// (paper §7, Olsson et al. [107]): each sequence is a random prefix of
// *random length s* followed by cyclic repetitions of it. Because s varies
// per sequence, a fixed positional-offset head cannot predict the
// repeats — the task demands the content-based AB...A -> B mechanism,
// which requires composing two attention layers.
#ifndef TFMR_DATA_INDUCTION_H_
#define TFMR_DATA_INDUCTION_H_

#include <vector>

#include "util/rng.h"

namespace llm::data {

struct InductionOptions {
  int64_t vocab_size = 32;
  int64_t seq_len = 32;
  /// Prefix length s is drawn uniformly from [min_prefix, max_prefix];
  /// defaults (when <= 0) are seq_len/4 and seq_len/2.
  int64_t min_prefix = 0;
  int64_t max_prefix = 0;
};

/// Samples B sequences [B, T]: a random prefix of length s_b repeated
/// cyclically to fill T. `targets` are shifted next tokens with positions
/// before the first repeat masked to -1. `splits` receives s_b per
/// sequence (needed for scoring attention patterns).
void SampleInductionBatch(const InductionOptions& options, util::Rng* rng,
                          int64_t batch_size, std::vector<int64_t>* inputs,
                          std::vector<int64_t>* targets,
                          std::vector<int64_t>* splits = nullptr);

/// The "induction score" of each head: average attention mass placed on
/// the induction target position j* = i - s + 1 (the token after the
/// previous occurrence of the current token), over repeat-region
/// positions i >= s. probs: [B, H, T, T].
/// `tolerance` widens the credited window to j* +/- tolerance positions
/// (useful early in training, when the head's pattern is forming but not
/// yet razor-sharp).
std::vector<double> InductionScores(const std::vector<int64_t>& splits,
                                    int64_t B, int64_t T,
                                    const float* probs, int64_t H,
                                    int tolerance = 0);

}  // namespace llm::data

#endif  // TFMR_DATA_INDUCTION_H_
