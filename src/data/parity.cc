#include "data/parity.h"

#include "util/check.h"

namespace llm::data {

void SampleParityBatch(util::Rng* rng, int64_t batch_size, int64_t seq_len,
                       std::vector<int64_t>* inputs,
                       std::vector<int64_t>* targets) {
  LLM_CHECK(rng && inputs && targets);
  LLM_CHECK_GT(seq_len, 0);
  inputs->resize(static_cast<size_t>(batch_size * seq_len));
  targets->resize(static_cast<size_t>(batch_size * seq_len));
  for (int64_t b = 0; b < batch_size; ++b) {
    int64_t parity = 0;
    for (int64_t i = 0; i < seq_len; ++i) {
      const int64_t bit = rng->Bernoulli(0.5) ? 1 : 0;
      parity ^= bit;
      (*inputs)[static_cast<size_t>(b * seq_len + i)] = bit;
      (*targets)[static_cast<size_t>(b * seq_len + i)] = parity;
    }
  }
}

}  // namespace llm::data
