// In-context linear-regression episodes (paper §4, Garg et al. [48]; also
// §7's computational-model comparison [2]). Each episode draws a hidden
// weight vector w and n (x, w.x) pairs; a sequence model trained across
// many episodes must learn-to-learn: infer w from the in-context pairs and
// predict y for the query x. Baselines: exact least squares and ridge.
#ifndef TFMR_DATA_ICL_REGRESSION_H_
#define TFMR_DATA_ICL_REGRESSION_H_

#include <vector>

#include "util/rng.h"

namespace llm::data {

struct IclRegressionOptions {
  int dim = 4;
  double noise_std = 0.0;
  /// Scale of x entries and w entries (both i.i.d. N(0, 1)).
};

struct IclEpisode {
  int dim = 0;
  int n_pairs = 0;                // includes the query pair (the last one)
  std::vector<float> xs;          // [n_pairs, dim] row-major
  std::vector<float> ys;          // [n_pairs]
  std::vector<float> w;           // ground-truth weights [dim]
};

/// Samples one episode with `n_pairs` total pairs.
IclEpisode SampleIclEpisode(const IclRegressionOptions& options, int n_pairs,
                            util::Rng* rng);

/// Least-squares prediction of the last pair's y from the first
/// n_pairs - 1 pairs (minimum-norm solution via ridge with tiny lambda
/// when underdetermined).
double LeastSquaresPredict(const IclEpisode& episode);

/// Ridge prediction with regularization strength lambda.
double RidgePredict(const IclEpisode& episode, double lambda);

}  // namespace llm::data

#endif  // TFMR_DATA_ICL_REGRESSION_H_
