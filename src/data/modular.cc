#include "data/modular.h"

#include "util/check.h"

namespace llm::data {

ModularDataset::ModularDataset(const ModularDatasetOptions& options)
    : options_(options) {
  LLM_CHECK_GE(options.modulus, 2);
  LLM_CHECK_GT(options.train_fraction, 0.0);
  LLM_CHECK_LT(options.train_fraction, 1.0);
  const int64_t p = options.modulus;
  std::vector<ModularExample> all;
  all.reserve(static_cast<size_t>(p * p));
  for (int64_t a = 0; a < p; ++a) {
    for (int64_t b = 0; b < p; ++b) {
      all.push_back({a, b, Answer(a, b)});
    }
  }
  util::Rng rng(options.seed);
  rng.Shuffle(&all);
  const auto train_n =
      static_cast<size_t>(static_cast<double>(all.size()) *
                          options.train_fraction);
  train_.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(train_n));
  test_.assign(all.begin() + static_cast<ptrdiff_t>(train_n), all.end());
  LLM_CHECK(!train_.empty());
  LLM_CHECK(!test_.empty());
}

int64_t ModularDataset::Answer(int64_t a, int64_t b) const {
  const int64_t p = options_.modulus;
  switch (options_.op) {
    case ModularOp::kAdd:
      return (a + b) % p;
    case ModularOp::kSub:
      return ((a - b) % p + p) % p;
    case ModularOp::kMul:
      return (a * b) % p;
  }
  LLM_CHECK(false);
  return 0;
}

void ModularDataset::EncodeExamples(
    const std::vector<ModularExample>& examples,
    std::vector<int64_t>* inputs, std::vector<int64_t>* targets) const {
  LLM_CHECK(inputs && targets);
  inputs->clear();
  targets->clear();
  inputs->reserve(examples.size() * kSeqLen);
  targets->reserve(examples.size() * kSeqLen);
  for (const auto& e : examples) {
    inputs->push_back(e.a);
    inputs->push_back(op_token());
    inputs->push_back(e.b);
    inputs->push_back(eq_token());
    targets->push_back(-1);
    targets->push_back(-1);
    targets->push_back(-1);
    targets->push_back(e.c);
  }
}

void ModularDataset::SampleTrainBatch(util::Rng* rng, int64_t batch_size,
                                      std::vector<int64_t>* inputs,
                                      std::vector<int64_t>* targets) const {
  LLM_CHECK(rng != nullptr);
  std::vector<ModularExample> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  for (int64_t i = 0; i < batch_size; ++i) {
    batch.push_back(train_[rng->UniformInt(train_.size())]);
  }
  EncodeExamples(batch, inputs, targets);
}

}  // namespace llm::data
