#include "data/analogy.h"

#include "util/check.h"

namespace llm::data {

AnalogyCorpus::AnalogyCorpus() {
  // Entity grid: gender x rank x age. Names chosen to mirror the paper's
  // king/queen example; the grid structure is what matters.
  struct Spec {
    const char* name;
    int gender, rank, age;
  };
  // rank: 0 commoner, 1 royal, 2 imperial, 3 service. Every gold quad
  // below flips exactly one feature with the others held fixed, so the
  // offset arithmetic of Eq. 9 is exact on this grid.
  const Spec specs[] = {
      {"man", 0, 0, 0},      {"woman", 1, 0, 0},
      {"king", 0, 1, 0},     {"queen", 1, 1, 0},
      {"prince", 0, 1, 1},   {"princess", 1, 1, 1},
      {"boy", 0, 0, 1},      {"girl", 1, 0, 1},
      {"emperor", 0, 2, 0},  {"empress", 1, 2, 0},
      {"waiter", 0, 3, 0},   {"waitress", 1, 3, 0},
  };
  for (const auto& s : specs) {
    entities_.push_back({vocab_.AddToken(s.name), s.gender, s.rank, s.age});
  }
  // Context indicator words: several per feature value so sentences vary.
  auto make_ctx = [&](std::vector<std::string> words) {
    std::vector<int64_t> ids;
    for (const auto& w : words) ids.push_back(vocab_.AddToken(w));
    return ids;
  };
  gender_ctx_ = {make_ctx({"he", "him", "his", "sir"}),
                 make_ctx({"she", "her", "hers", "madam"})};
  rank_ctx_ = {make_ctx({"works", "village", "market"}),
               make_ctx({"throne", "crown", "palace"}),
               make_ctx({"empire", "legion", "scepter"}),
               make_ctx({"tray", "tavern", "tips"})};
  age_ctx_ = {make_ctx({"tall", "serious", "old"}),
              make_ctx({"small", "plays", "school"})};
  filler_ = make_ctx({"the", "and", "then", "one", "day", "said", "went",
                      "home", "saw", "was"});

  // Gold analogies: flip exactly one feature across the pair.
  auto id = [&](const char* w) { return vocab_.IdOf(w); };
  quads_ = {
      {id("man"), id("king"), id("woman"), id("queen")},
      {id("man"), id("woman"), id("king"), id("queen")},
      {id("king"), id("queen"), id("prince"), id("princess")},
      {id("boy"), id("girl"), id("man"), id("woman")},
      {id("man"), id("king"), id("boy"), id("prince")},
      {id("woman"), id("queen"), id("girl"), id("princess")},
      {id("king"), id("queen"), id("emperor"), id("empress")},
      {id("man"), id("woman"), id("waiter"), id("waitress")},
      {id("boy"), id("prince"), id("girl"), id("princess")},
      {id("waiter"), id("waitress"), id("emperor"), id("empress")},
  };
  for (const auto& q : quads_) {
    LLM_CHECK_GE(q.a, 0);
    LLM_CHECK_GE(q.b, 0);
    LLM_CHECK_GE(q.c, 0);
    LLM_CHECK_GE(q.d, 0);
  }
}

std::vector<int64_t> AnalogyCorpus::Generate(int64_t num_sentences,
                                             util::Rng* rng) const {
  LLM_CHECK(rng != nullptr);
  std::vector<int64_t> stream;
  stream.reserve(static_cast<size_t>(num_sentences) * 8);
  for (int64_t s = 0; s < num_sentences; ++s) {
    const Entity& e = entities_[rng->UniformInt(entities_.size())];
    std::vector<int64_t> sentence;
    sentence.push_back(e.word);
    // One context word per feature value; duplicated draws strengthen the
    // co-occurrence signal.
    const auto& g = gender_ctx_[static_cast<size_t>(e.gender)];
    const auto& r = rank_ctx_[static_cast<size_t>(e.rank)];
    const auto& a = age_ctx_[static_cast<size_t>(e.age)];
    sentence.push_back(g[rng->UniformInt(g.size())]);
    sentence.push_back(r[rng->UniformInt(r.size())]);
    sentence.push_back(a[rng->UniformInt(a.size())]);
    // A couple of uninformative fillers.
    sentence.push_back(filler_[rng->UniformInt(filler_.size())]);
    sentence.push_back(filler_[rng->UniformInt(filler_.size())]);
    rng->Shuffle(&sentence);
    for (int64_t t : sentence) stream.push_back(t);
  }
  return stream;
}

std::string AnalogyCorpus::QuadToString(const AnalogyQuad& q) const {
  return vocab_.TokenOf(q.a) + " : " + vocab_.TokenOf(q.b) +
         " :: " + vocab_.TokenOf(q.c) + " : " + vocab_.TokenOf(q.d);
}

}  // namespace llm::data
