#include "interp/probe.h"

#include <cmath>

#include "eval/metrics.h"
#include "train/optimizer.h"

namespace llm::interp {

Probe::Probe(const ProbeConfig& config) : config_(config) {
  LLM_CHECK_GT(config.input_dim, 0);
  LLM_CHECK_GT(config.num_classes, 1);
  util::Rng rng(config.seed);
  if (config.hidden_dim > 0) {
    mlp_ = std::make_unique<nn::Mlp>(config.input_dim, config.hidden_dim,
                                     config.num_classes, &rng,
                                     nn::Activation::kRelu);
  } else {
    linear_ = std::make_unique<nn::Linear>(config.input_dim,
                                           config.num_classes, &rng);
  }
}

core::Variable Probe::ForwardLogits(const core::Variable& x) const {
  return linear_ ? linear_->Forward(x) : mlp_->Forward(x);
}

float Probe::Fit(const core::Tensor& x, const std::vector<int64_t>& y) {
  LLM_CHECK_EQ(x.ndim(), 2);
  const int64_t N = x.dim(0), D = x.dim(1);
  LLM_CHECK_EQ(D, config_.input_dim);
  LLM_CHECK_EQ(static_cast<int64_t>(y.size()), N);

  util::Rng rng(config_.seed + 1);
  train::AdamWOptions opt;
  opt.lr = config_.lr;
  train::AdamW adam(Parameters(), opt);
  float last_loss = 0.0f;
  for (int64_t step = 0; step < config_.steps; ++step) {
    const int64_t B = std::min<int64_t>(config_.batch_size, N);
    core::Tensor batch({B, D});
    std::vector<int64_t> labels(static_cast<size_t>(B));
    for (int64_t b = 0; b < B; ++b) {
      const int64_t r = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(N)));
      for (int64_t d = 0; d < D; ++d) {
        batch[b * D + d] = x[r * D + d];
      }
      labels[static_cast<size_t>(b)] = y[static_cast<size_t>(r)];
    }
    core::Variable input(std::move(batch), /*requires_grad=*/false);
    core::Variable loss =
        core::CrossEntropyLogits(ForwardLogits(input), labels);
    adam.ZeroGrad();
    core::Backward(loss);
    adam.Step();
    last_loss = loss.value()[0];
  }
  return last_loss;
}

double Probe::Accuracy(const core::Tensor& x,
                       const std::vector<int64_t>& y) const {
  core::Variable input(x, /*requires_grad=*/false);
  core::Variable logits = ForwardLogits(input);
  return eval::MaskedAccuracy(logits.value(), y);
}

std::vector<float> Probe::ClassDirection(int64_t cls) const {
  LLM_CHECK(linear_ != nullptr) << "ClassDirection requires a linear probe";
  LLM_CHECK_GE(cls, 0);
  LLM_CHECK_LT(cls, config_.num_classes);
  const core::Tensor& w = linear_->weight().value();  // [D, num_classes]
  std::vector<float> dir(static_cast<size_t>(config_.input_dim));
  for (int64_t d = 0; d < config_.input_dim; ++d) {
    dir[static_cast<size_t>(d)] = w[d * config_.num_classes + cls];
  }
  return dir;
}

nn::NamedParams Probe::NamedParameters() const {
  return linear_ ? linear_->NamedParameters() : mlp_->NamedParameters();
}

void ApplyInterventionEdit(std::vector<float>* activation,
                           const std::vector<float>& from_direction,
                           const std::vector<float>& to_direction,
                           float alpha) {
  LLM_CHECK(activation != nullptr);
  LLM_CHECK_EQ(activation->size(), from_direction.size());
  LLM_CHECK_EQ(activation->size(), to_direction.size());
  double norm_sq = 0.0;
  for (size_t i = 0; i < activation->size(); ++i) {
    const double d = to_direction[i] - from_direction[i];
    norm_sq += d * d;
  }
  const float scale =
      norm_sq > 0.0 ? alpha / static_cast<float>(std::sqrt(norm_sq)) : 0.0f;
  for (size_t i = 0; i < activation->size(); ++i) {
    (*activation)[i] += scale * (to_direction[i] - from_direction[i]);
  }
}

}  // namespace llm::interp
