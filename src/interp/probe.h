// Probing classifiers (paper §7): given captured internal activations and
// per-example targets, train a small model to predict the target from the
// activation. Linear probes expose linearly-decodable structure; MLP
// probes test for nonlinearly-encoded structure. Used by the Othello-GPT
// board-state experiment and available for any labeled activation set.
#ifndef TFMR_INTERP_PROBE_H_
#define TFMR_INTERP_PROBE_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "util/rng.h"

namespace llm::interp {

struct ProbeConfig {
  int64_t input_dim = 0;
  int64_t num_classes = 0;
  /// 0 = linear probe; > 0 adds one hidden layer of this width.
  int64_t hidden_dim = 0;
  int64_t steps = 400;
  int64_t batch_size = 64;
  float lr = 1e-2f;
  uint64_t seed = 7;
};

class Probe : public nn::Module {
 public:
  explicit Probe(const ProbeConfig& config);

  /// Trains on activations X [N, input_dim] with integer labels y [N]
  /// using AdamW + softmax cross-entropy. Returns final training loss.
  float Fit(const core::Tensor& x, const std::vector<int64_t>& y);

  /// Logits [N, num_classes] for a batch of activations.
  core::Variable ForwardLogits(const core::Variable& x) const;

  /// Argmax accuracy on a labeled set.
  double Accuracy(const core::Tensor& x, const std::vector<int64_t>& y) const;

  /// For a *linear* probe: the direction in activation space whose inner
  /// product scores class `cls` (row of the weight matrix). Used to build
  /// intervention edits. Aborts on MLP probes.
  std::vector<float> ClassDirection(int64_t cls) const;

  nn::NamedParams NamedParameters() const override;

  const ProbeConfig& config() const { return config_; }

 private:
  ProbeConfig config_;
  std::unique_ptr<nn::Linear> linear_;  // linear probe
  std::unique_ptr<nn::Mlp> mlp_;        // nonlinear probe
};

/// Residual-stream edit for interventions: move activation `h` (length
/// dim) so that the linear probe's score for `from_class` decreases and
/// `to_class` increases: h' = h + alpha * (w_to - w_from) normalized.
void ApplyInterventionEdit(std::vector<float>* activation,
                           const std::vector<float>& from_direction,
                           const std::vector<float>& to_direction,
                           float alpha);

}  // namespace llm::interp

#endif  // TFMR_INTERP_PROBE_H_
