// Structural probe (paper §7; Hewitt & Manning [56]): learns a rank-r
// projection B such that squared distances ||B^T (h_i - h_j)||^2 between
// word representations approximate parse-tree path lengths. Evaluated by
// Spearman correlation between predicted and gold distances (the "DSpr"
// metric), here against exact gold trees from the PCFG generator.
#ifndef TFMR_INTERP_STRUCTURAL_PROBE_H_
#define TFMR_INTERP_STRUCTURAL_PROBE_H_

#include <vector>

#include "core/graph.h"
#include "core/ops.h"
#include "util/rng.h"
#include "util/status.h"

namespace llm::interp {

/// One probing example: per-word activations and the gold tree distances.
struct ProbeSentence {
  core::Tensor embeddings;                 // [L, D]
  std::vector<std::vector<int>> gold_distance;  // [L][L]
};

struct StructuralProbeConfig {
  int64_t dim = 0;   // D
  int rank = 16;     // r
  int64_t steps = 300;
  float lr = 1e-2f;
  int64_t sentences_per_step = 8;
  uint64_t seed = 11;
};

class StructuralProbe {
 public:
  explicit StructuralProbe(const StructuralProbeConfig& config);

  /// L1 regression of predicted squared distances onto gold distances
  /// (the Hewitt-Manning objective). Returns final training loss.
  float Fit(const std::vector<ProbeSentence>& sentences);

  /// Predicted squared distance matrix for one sentence.
  std::vector<std::vector<double>> PredictDistances(
      const core::Tensor& embeddings) const;

  /// Mean per-sentence Spearman correlation between predicted and gold
  /// pairwise distances (upper triangle), the DSpr. evaluation.
  util::StatusOr<double> MeanSpearman(
      const std::vector<ProbeSentence>& sentences) const;

  const core::Variable& projection() const { return projection_; }

 private:
  core::Variable DistanceLoss(const ProbeSentence& sentence) const;

  StructuralProbeConfig config_;
  core::Variable projection_;  // [D, r]
};

}  // namespace llm::interp

#endif  // TFMR_INTERP_STRUCTURAL_PROBE_H_
