#include "interp/structural_probe.h"

#include <cmath>

#include "eval/metrics.h"
#include "train/optimizer.h"

namespace llm::interp {

StructuralProbe::StructuralProbe(const StructuralProbeConfig& config)
    : config_(config) {
  LLM_CHECK_GT(config.dim, 0);
  LLM_CHECK_GT(config.rank, 0);
  LLM_CHECK_LE(config.rank, config.dim);
  util::Rng rng(config.seed);
  const float stddev = 1.0f / std::sqrt(static_cast<float>(config.dim));
  projection_ = core::Variable(
      core::Tensor::RandomNormal({config.dim, config.rank}, &rng, 0.0f,
                                 stddev),
      /*requires_grad=*/true);
}

core::Variable StructuralProbe::DistanceLoss(
    const ProbeSentence& sentence) const {
  const int64_t L = sentence.embeddings.dim(0);
  LLM_CHECK_GE(L, 2);
  core::Variable emb(sentence.embeddings, /*requires_grad=*/false);
  core::Variable proj = core::MatMul(emb, projection_);  // [L, r]

  std::vector<int64_t> rows_i, rows_j;
  std::vector<float> gold;
  for (int64_t i = 0; i < L; ++i) {
    for (int64_t j = i + 1; j < L; ++j) {
      rows_i.push_back(i);
      rows_j.push_back(j);
      gold.push_back(static_cast<float>(
          sentence.gold_distance[static_cast<size_t>(i)]
                                [static_cast<size_t>(j)]));
    }
  }
  const auto P = static_cast<int64_t>(rows_i.size());
  core::Variable diff = core::Sub(core::GatherRows(proj, rows_i),
                                  core::GatherRows(proj, rows_j));  // [P, r]
  core::Variable sq = core::Mul(diff, diff);
  // Row-wise sum via multiplication with a ones column.
  core::Variable ones(core::Tensor::Ones({config_.rank, 1}), false);
  core::Variable pred = core::MatMul(sq, ones);  // [P, 1]
  core::Tensor target = core::Tensor::FromVector({P, 1}, std::move(gold));
  // H&M use L1; squared error behaves equivalently at this scale and is
  // what the op set provides.
  return core::MseLoss(pred, target);
}

float StructuralProbe::Fit(const std::vector<ProbeSentence>& sentences) {
  LLM_CHECK(!sentences.empty());
  util::Rng rng(config_.seed + 1);
  train::AdamWOptions opt;
  opt.lr = config_.lr;
  train::AdamW adam({projection_}, opt);
  float last = 0.0f;
  for (int64_t step = 0; step < config_.steps; ++step) {
    core::Variable total;
    for (int64_t k = 0; k < config_.sentences_per_step; ++k) {
      const auto& s = sentences[rng.UniformInt(sentences.size())];
      core::Variable loss = DistanceLoss(s);
      total = total.defined() ? core::Add(total, loss) : loss;
    }
    total = core::ScalarMul(
        total, 1.0f / static_cast<float>(config_.sentences_per_step));
    adam.ZeroGrad();
    core::Backward(total);
    adam.Step();
    last = total.value()[0];
  }
  return last;
}

std::vector<std::vector<double>> StructuralProbe::PredictDistances(
    const core::Tensor& embeddings) const {
  const int64_t L = embeddings.dim(0);
  const int64_t D = embeddings.dim(1);
  LLM_CHECK_EQ(D, config_.dim);
  // proj = emb x B, computed without autograd.
  const core::Tensor& b = projection_.value();
  const int64_t r = config_.rank;
  std::vector<double> proj(static_cast<size_t>(L * r), 0.0);
  for (int64_t i = 0; i < L; ++i) {
    for (int64_t d = 0; d < D; ++d) {
      const double e = embeddings[i * D + d];
      if (e == 0.0) continue;
      for (int64_t k = 0; k < r; ++k) {
        proj[static_cast<size_t>(i * r + k)] +=
            e * static_cast<double>(b[d * r + k]);
      }
    }
  }
  std::vector<std::vector<double>> out(
      static_cast<size_t>(L), std::vector<double>(static_cast<size_t>(L)));
  for (int64_t i = 0; i < L; ++i) {
    for (int64_t j = i + 1; j < L; ++j) {
      double sq = 0.0;
      for (int64_t k = 0; k < r; ++k) {
        const double d = proj[static_cast<size_t>(i * r + k)] -
                         proj[static_cast<size_t>(j * r + k)];
        sq += d * d;
      }
      out[static_cast<size_t>(i)][static_cast<size_t>(j)] = sq;
      out[static_cast<size_t>(j)][static_cast<size_t>(i)] = sq;
    }
  }
  return out;
}

util::StatusOr<double> StructuralProbe::MeanSpearman(
    const std::vector<ProbeSentence>& sentences) const {
  double total = 0.0;
  int64_t counted = 0;
  for (const auto& s : sentences) {
    const int64_t L = s.embeddings.dim(0);
    if (L < 4) continue;  // too few pairs to rank meaningfully
    const auto pred = PredictDistances(s.embeddings);
    std::vector<double> p, g;
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t j = i + 1; j < L; ++j) {
        p.push_back(pred[static_cast<size_t>(i)][static_cast<size_t>(j)]);
        g.push_back(static_cast<double>(
            s.gold_distance[static_cast<size_t>(i)]
                           [static_cast<size_t>(j)]));
      }
    }
    auto rho = eval::SpearmanCorrelation(p, g);
    if (!rho.ok()) continue;  // e.g. all gold distances tied
    total += *rho;
    ++counted;
  }
  if (counted == 0) {
    return util::Status::InvalidArgument("no scorable sentences");
  }
  return total / static_cast<double>(counted);
}

}  // namespace llm::interp
