// Experiment E4 — the joint scaling ansatz of Eq. 4:
//   L(P, D) = [ (Pc/P)^(alphaP/alphaD) + Dc/D ]^alphaD  (+ floor here)
// Train a grid of (model size P, dataset size D) pairs on the PCFG
// corpus, fit the ansatz by Nelder-Mead, and report the fitted exponents
// and residuals plus the fit's predictions against the measurements.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "eval/power_law.h"
#include "nn/transformer.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kSeqLen = 24;

double TrainOne(int64_t vocab, int64_t d_model, int n_layer,
                const std::vector<int64_t>& train_tokens,
                const llm::text::TokenDataset& test_set, int64_t* params,
                uint64_t seed) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = vocab;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = d_model;
  cfg.n_layer = n_layer;
  cfg.n_head = 2;
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);
  *params = model.NumParameters();
  llm::text::TokenDataset train_set(train_tokens, kSeqLen);
  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = 400;
  topts.clip_norm = 1.0f;
  topts.eval_every = 50;
  llm::train::Trainer trainer(&opt, topts);
  // Kaplan et al. report the *optimally early-stopped* test loss ("an
  // optimally regularized model"); track the min over training so the
  // overfitting of large models on tiny datasets does not contaminate
  // the surface.
  double best = 1e30;
  trainer.Run(
      [&] {
        std::vector<int64_t> inputs, targets;
        train_set.SampleBatch(&rng, 8, &inputs, &targets);
        return model.LmLoss(inputs, targets, 8, kSeqLen);
      },
      [&](int64_t) {
        best = std::min(
            best, llm::eval::EvaluateGpt(model, test_set, 20).cross_entropy);
      });
  return best;
}

}  // namespace

int main() {
  llm::util::Rng rng(77);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 4000;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  std::vector<int64_t> stream =
      llm::data::FlattenToStream(corpus, g.num_terminals());
  const int64_t vocab = g.num_terminals() + 1;
  auto [train_tokens, test_tokens] = llm::text::SplitTokens(stream, 0.15);
  llm::text::TokenDataset test_set(test_tokens, kSeqLen);

  struct Size {
    int64_t d_model;
    int n_layer;
  };
  const Size sizes[] = {{8, 1}, {24, 2}, {64, 2}};
  const double fractions[] = {0.02, 0.1, 1.0};

  std::cout << "== Measured loss grid L(P, D) ==\n\n";
  Table grid({"params P", "data D", "test loss"});
  std::vector<llm::eval::ScalingPoint> points;
  uint64_t seed = 1;
  for (const auto& s : sizes) {
    for (double frac : fractions) {
      const auto n = static_cast<int64_t>(
          static_cast<double>(train_tokens.size()) * frac);
      std::vector<int64_t> subset(train_tokens.begin(),
                                  train_tokens.begin() + n);
      int64_t params = 0;
      const double loss = TrainOne(vocab, s.d_model, s.n_layer, subset,
                                   test_set, &params, seed++);
      grid.AddRow({FormatCount(static_cast<double>(params)),
                   FormatCount(static_cast<double>(n)),
                   FormatFloat(loss)});
      points.push_back({static_cast<double>(params),
                        static_cast<double>(n), loss});
    }
  }
  grid.Print(std::cout);

  auto fit = llm::eval::FitAnsatz(points);
  if (!fit.ok()) {
    std::printf("ansatz fit failed: %s\n",
                fit.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Eq. 4 fit ==\n\n"
              "  Pc      = %s\n  Dc      = %s\n  alpha_P = %.3f\n"
              "  alpha_D = %.3f\n  floor   = %.3f nats\n"
              "  rmse    = %.4f (log-loss space)\n\n",
              FormatCount(fit->pc).c_str(), FormatCount(fit->dc).c_str(),
              fit->alpha_p, fit->alpha_d, fit->floor, fit->rmse);

  std::cout << "== Fit vs measurement ==\n\n";
  Table cmp({"P", "D", "measured", "ansatz"});
  for (const auto& p : points) {
    cmp.AddRow({FormatCount(p.params), FormatCount(p.data),
                FormatFloat(p.loss),
                FormatFloat(llm::eval::AnsatzLoss(*fit, p.params, p.data))});
  }
  cmp.Print(std::cout);
  std::cout << "\nExpected shape (paper Eq. 4 / [67]): one smooth surface\n"
               "with a data-limited regime (small D dominates the loss\n"
               "regardless of P) and a capacity-limited regime, fitted by\n"
               "a single (Pc, Dc, alpha_P, alpha_D) quadruple. The paper's\n"
               "exponents are ~0.076-0.095 at web scale; toy-scale\n"
               "exponents are larger.\n";
  return 0;
}
