// Experiment X8 — the §6 cost claims, as google-benchmark micro-benches:
//   * "the total computation required by the transformer scales as L^2":
//     dense causal attention forward cost vs window length L.
//   * sparse/windowed attention (Child et al. [30]) restores ~linear
//     scaling in L at fixed window.
//   * the RNN processes a window serially in Theta(L) cell steps (its
//     per-token cost is flat, but it cannot be parallelized — the
//     paper's parallelism point is architectural; here we show the cost
//     shapes).
#include <benchmark/benchmark.h>

#include "core/ops.h"
#include "nn/rnn.h"
#include "util/rng.h"

namespace {

constexpr int64_t kChannels = 32;
constexpr int kHeads = 4;

void BM_DenseCausalAttention(benchmark::State& state) {
  const int64_t T = state.range(0);
  llm::util::Rng rng(1);
  llm::core::Variable qkv(
      llm::core::Tensor::RandomNormal({1, T, 3 * kChannels}, &rng, 0.0f,
                                      0.5f));
  llm::core::AttentionOptions opts;
  opts.num_heads = kHeads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        llm::core::MultiHeadCausalAttention(qkv, opts).value().data());
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_DenseCausalAttention)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oNSquared);

void BM_WindowedAttention(benchmark::State& state) {
  const int64_t T = state.range(0);
  llm::util::Rng rng(2);
  llm::core::Variable qkv(
      llm::core::Tensor::RandomNormal({1, T, 3 * kChannels}, &rng, 0.0f,
                                      0.5f));
  llm::core::AttentionOptions opts;
  opts.num_heads = kHeads;
  opts.window = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        llm::core::MultiHeadCausalAttention(qkv, opts).value().data());
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_WindowedAttention)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oN);

void BM_RnnUnroll(benchmark::State& state) {
  const int64_t T = state.range(0);
  llm::util::Rng rng(3);
  llm::nn::RnnCell cell(kChannels, kChannels, &rng);
  llm::core::Variable x(
      llm::core::Tensor::RandomNormal({1, kChannels}, &rng));
  for (auto _ : state) {
    llm::core::Variable h(llm::core::Tensor({1, kChannels}));
    for (int64_t t = 0; t < T; ++t) h = cell.Forward(x, h);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_RnnUnroll)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity(benchmark::oN);

void BM_AttentionBackward(benchmark::State& state) {
  const int64_t T = state.range(0);
  llm::util::Rng rng(4);
  for (auto _ : state) {
    llm::core::Variable qkv(
        llm::core::Tensor::RandomNormal({1, T, 3 * kChannels}, &rng, 0.0f,
                                        0.5f),
        /*requires_grad=*/true);
    llm::core::AttentionOptions opts;
    opts.num_heads = kHeads;
    llm::core::Variable loss = llm::core::SumAll(
        llm::core::MultiHeadCausalAttention(qkv, opts));
    llm::core::Backward(loss);
    benchmark::DoNotOptimize(qkv.grad().data());
  }
  state.SetComplexityN(T);
}
BENCHMARK(BM_AttentionBackward)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Complexity(benchmark::oNSquared);

}  // namespace
