// Experiment F2 — reproduces the *shape* of Figure 2 of the paper
// ("Scaling Laws for Neural Language Models", Kaplan et al. [67]): test
// loss falls as a power law in (a) model size with ample data and (b)
// dataset size with an ample model, appearing as straight lines on a
// log-log plot after subtracting the irreducible entropy of the data.
//
// Substrate: transformers of increasing size trained on a PCFG-generated
// corpus whose true per-token entropy we can compute exactly with the
// inside algorithm — so unlike the paper, the loss floor is known rather
// than fitted. Expect exponents far larger than the paper's ~0.076 (the
// toy language saturates quickly); the reproduction target is the
// straight-line log-log shape and monotone wins for scale.
//
// Also exercises ablation #1 of DESIGN.md: pre-LN vs post-LN trainability
// at the largest size.
// Emits machine-readable `BENCH_FIG2` JSON lines: wall-clock per model
// decade for panel (a), and data-parallel training speedup (DistTrainer
// worlds 1/2/4 at equal global batch).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "eval/power_law.h"
#include "grammar/cnf.h"
#include "nn/layers.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "text/dataset.h"
#include "train/dist/dist_trainer.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {

using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kSeqLen = 24;
constexpr int64_t kBatch = 8;

struct RunResult {
  int64_t params = 0;
  int64_t data_tokens = 0;
  double test_loss = 0.0;
  double train_seconds = 0.0;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

llm::nn::GPTConfig ConfigFor(int64_t vocab, int64_t d_model, int n_layer,
                             bool pre_ln = true) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = vocab;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = d_model;
  cfg.n_layer = n_layer;
  cfg.n_head = d_model >= 32 ? 4 : 2;
  cfg.pre_layernorm = pre_ln;
  return cfg;
}

RunResult TrainAndEval(const llm::nn::GPTConfig& cfg,
                       const std::vector<int64_t>& train_tokens,
                       const llm::text::TokenDataset& test_set,
                       int64_t max_steps, uint64_t seed) {
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);
  llm::text::TokenDataset train_set(train_tokens, kSeqLen);

  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::WarmupCosineLr sched(3e-3f, max_steps / 20, max_steps, 3e-4f);
  llm::train::TrainerOptions topts;
  topts.max_steps = max_steps;
  topts.clip_norm = 1.0f;
  topts.schedule = &sched;
  llm::train::Trainer trainer(&opt, topts);
  const auto t0 = std::chrono::steady_clock::now();
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    train_set.SampleBatch(&rng, kBatch, &inputs, &targets);
    return model.LmLoss(inputs, targets, kBatch, kSeqLen);
  });

  RunResult result;
  result.train_seconds = SecondsSince(t0);
  result.params = model.NumParameters();
  result.data_tokens = train_set.num_tokens();
  result.test_loss =
      llm::eval::EvaluateGpt(model, test_set, 24).cross_entropy;
  return result;
}

}  // namespace

int main() {
  llm::util::Rng rng(2024);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();

  // Ground-truth entropy of the generating process (per token), from the
  // inside algorithm on a held-out sample. This is the loss floor.
  auto cnf = llm::grammar::ToCnf(g);
  if (!cnf.ok()) {
    std::fprintf(stderr, "CNF conversion failed: %s\n",
                 cnf.status().ToString().c_str());
    return 1;
  }
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 400;
  auto entropy_sample = llm::data::SamplePcfgCorpus(g, copts, &rng);
  std::vector<std::vector<int>> sentences;
  int64_t sentence_tokens = 0;
  for (auto& s : entropy_sample) {
    sentence_tokens += static_cast<int64_t>(s.terminals.size());
    sentences.push_back(s.terminals);
  }
  auto true_ce = llm::grammar::CorpusCrossEntropy(*cnf, sentences);
  // The LM also predicts the end-of-sentence separator; its entropy
  // contribution makes the exact floor slightly different, so treat the
  // PCFG entropy as an approximate floor for reporting only.
  const double floor_per_token =
      true_ce.ok() ? *true_ce * (static_cast<double>(sentence_tokens) /
                                 static_cast<double>(sentence_tokens +
                                                     400))
                   : 0.0;
  std::printf("PCFG ground-truth entropy  : %.4f nats/token (approx floor "
              "incl. separators)\n\n",
              floor_per_token);

  // Shared corpora.
  copts.num_sentences = 4000;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  const int64_t vocab = g.num_terminals() + 1;
  std::vector<int64_t> stream = llm::data::FlattenToStream(corpus, sep);
  auto [train_tokens, test_tokens] = llm::text::SplitTokens(stream, 0.15);
  llm::text::TokenDataset test_set(test_tokens, kSeqLen);

  // -------------------------------------------------------------------
  // Panel (a): loss vs model size N, full dataset, fixed step budget.
  // -------------------------------------------------------------------
  std::cout << "== Fig. 2 panel: test loss vs parameters ==\n\n";
  struct SizeSpec {
    int64_t d_model;
    int n_layer;
  };
  const SizeSpec sizes[] = {{8, 1}, {16, 1}, {24, 2}, {48, 2}, {96, 3}};
  Table size_table({"params", "layers", "d_model", "test loss",
                    "loss - floor", "train sec"});
  std::vector<double> params_x, loss_y, seconds_y;
  for (const auto& s : sizes) {
    auto cfg = ConfigFor(vocab, s.d_model, s.n_layer);
    RunResult r = TrainAndEval(cfg, train_tokens, test_set, 500,
                               /*seed=*/7 + static_cast<uint64_t>(s.d_model));
    size_table.AddRow({FormatCount(static_cast<double>(r.params)),
                       std::to_string(s.n_layer),
                       std::to_string(s.d_model),
                       FormatFloat(r.test_loss),
                       FormatFloat(r.test_loss - floor_per_token),
                       FormatFloat(r.train_seconds)});
    params_x.push_back(static_cast<double>(r.params));
    loss_y.push_back(r.test_loss);
    seconds_y.push_back(r.train_seconds);
  }
  size_table.Print(std::cout);
  auto fitn = llm::eval::FitPowerLawWithFloor(params_x, loss_y,
                                              floor_per_token * 0.9);
  if (fitn.ok()) {
    std::printf("\npower law (loss - floor) ~ N^alpha: alpha_N = %.3f, "
                "R^2 = %.3f (paper: -0.076 at web scale)\n\n",
                fitn->b, fitn->r2);
  }

  // Wall-clock cost of scale: least-squares slope of train seconds vs
  // log10(params) — how much each parameter decade costs at this step
  // budget. One machine-readable line for trend tracking across commits.
  {
    const size_t n = params_x.size();
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = std::log10(params_x[i]);
      sx += x;
      sy += seconds_y[i];
      sxx += x * x;
      sxy += x * seconds_y[i];
    }
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    const double per_decade =
        denom != 0.0 ? (static_cast<double>(n) * sxy - sx * sy) / denom : 0.0;
    std::string runs_json;
    for (size_t i = 0; i < n; ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s{\"params\":%lld,\"seconds\":%.3f}",
                    i == 0 ? "" : ",",
                    static_cast<long long>(params_x[i]), seconds_y[i]);
      runs_json += buf;
    }
    std::printf("BENCH_FIG2 {\"bench\":\"fig2\",\"panel\":\"wallclock\","
                "\"max_steps\":500,\"runs\":[%s],"
                "\"seconds_per_decade\":%.3f}\n\n",
                runs_json.c_str(), per_decade);
  }

  // -------------------------------------------------------------------
  // Panel (b): loss vs dataset size D, fixed (largest practical) model.
  // -------------------------------------------------------------------
  std::cout << "== Fig. 2 panel: test loss vs dataset size ==\n\n";
  Table data_table({"train tokens", "test loss", "loss - floor"});
  std::vector<double> data_x, data_loss;
  for (double frac : {0.01, 0.03, 0.1, 0.3, 1.0}) {
    const auto n =
        static_cast<int64_t>(static_cast<double>(train_tokens.size()) *
                             frac);
    std::vector<int64_t> subset(train_tokens.begin(),
                                train_tokens.begin() + n);
    auto cfg = ConfigFor(vocab, 48, 2);
    RunResult r = TrainAndEval(cfg, subset, test_set, 500,
                               /*seed=*/roundl(1000 * frac));
    data_table.AddRow({FormatCount(static_cast<double>(n)),
                       FormatFloat(r.test_loss),
                       FormatFloat(r.test_loss - floor_per_token)});
    data_x.push_back(static_cast<double>(n));
    data_loss.push_back(r.test_loss);
  }
  data_table.Print(std::cout);
  auto fitd = llm::eval::FitPowerLawWithFloor(data_x, data_loss,
                                              floor_per_token * 0.9);
  if (fitd.ok()) {
    std::printf("\npower law (loss - floor) ~ D^alpha: alpha_D = %.3f, "
                "R^2 = %.3f (paper: -0.095 at web scale)\n\n",
                fitd->b, fitd->r2);
  }

  // -------------------------------------------------------------------
  // Ablation: pre-LN vs post-LN at the largest size (DESIGN.md #1).
  // -------------------------------------------------------------------
  std::cout << "== Ablation: pre-LN vs post-LN residual blocks ==\n\n";
  Table abl({"variant", "test loss"});
  for (bool pre : {true, false}) {
    auto cfg = ConfigFor(vocab, 96, 3, pre);
    RunResult r = TrainAndEval(cfg, train_tokens, test_set, 500, 99);
    abl.AddRow({pre ? "pre-LN" : "post-LN", FormatFloat(r.test_loss)});
  }
  abl.Print(std::cout);
  std::cout << "\n(Expected: pre-LN trains at least as well; post-LN is\n"
               "the original arrangement and is less stable at depth.)\n";

  // -------------------------------------------------------------------
  // Data-parallel speedup: DistTrainer at worlds 1/2/4, equal global
  // batch. Thread-backed workers on one machine, so the ceiling is the
  // core count; the interesting number is how much the collective layer
  // (all-reduce + param all-gather per step) eats of the ideal N×.
  // -------------------------------------------------------------------
  std::cout << "\n== Data-parallel speedup (DistTrainer, equal global "
               "batch) ==\n\n";
  static constexpr int kDpIn = 64, kDpHidden = 256, kDpOut = 64;
  static constexpr int kDpGlobalBatch = 192;  // divisible by every world
  static constexpr int64_t kDpSteps = 20;
  const auto dp_loss = [](llm::nn::Module& model,
                          const llm::train::dist::StepContext& ctx) {
    llm::util::Rng rng(0xF162ull +
                       0x9E3779B97F4A7C15ull *
                           (static_cast<uint64_t>(ctx.step) + 1));
    llm::core::Tensor full =
        llm::core::Tensor::RandomNormal({kDpGlobalBatch, kDpIn}, &rng);
    const int rows = kDpGlobalBatch / ctx.world_size;
    llm::core::Tensor shard({rows, kDpIn});
    for (int i = 0; i < rows * kDpIn; ++i) {
      shard[i] = full[ctx.rank * rows * kDpIn + i];
    }
    llm::core::Variable x(shard, false);
    llm::core::Variable y =
        static_cast<llm::nn::Mlp&>(model).Forward(x);
    return llm::core::SumAll(llm::core::Mul(y, y));
  };
  // Both transports at every world size: the socket column prices the
  // full wire stack (framing, CRCs, syscalls) against shared memory for
  // the same arithmetic, and "comm ms/step" — the mean time one rank
  // spends blocked in collectives per step, from the dist.comm.wait_ns
  // counter — shows where the lost speedup went.
  Table dp_table(
      {"world", "transport", "seconds", "speedup", "comm ms/step",
       "final loss"});
  std::string dp_json;
  double dp_base_seconds = 0.0;
  llm::obs::Counter* dp_wait =
      llm::obs::MetricsRegistry::Global().GetCounter("dist.comm.wait_ns");
  for (const char* transport : {"thread", "socket"}) {
    for (int world : {1, 2, 4}) {
      namespace fs = std::filesystem;
      const std::string dir =
          (fs::temp_directory_path() /
           ("tfmr_bench_fig2_dp_" + std::string(transport) + "_w" +
            std::to_string(world)))
              .string();
      fs::remove_all(dir);
      // Per-config counter reset so the per-rank counters each worker
      // ships ("dist.worker.<r>.comm_wait_ns", ".telemetry_bytes") read
      // as this run's totals rather than accumulating across configs.
      llm::obs::MetricsRegistry::Global().ResetAll();
      llm::train::dist::DistTrainerOptions dopts;
      dopts.world_size = world;
      dopts.max_steps = kDpSteps;
      dopts.adamw.lr = 1e-3f;
      dopts.checkpoint_dir = dir;
      dopts.checkpoint_every = 0;  // final checkpoint only
      dopts.telemetry_every = 4;   // per-rank figures from shipped units
      if (std::string(transport) == "socket") {
        dopts.transport = llm::train::dist::CommTransport::kSocket;
      }
      llm::train::dist::DistTrainer dist(
          dopts,
          []() -> std::unique_ptr<llm::nn::Module> {
            llm::util::Rng rng(31);
            return std::make_unique<llm::nn::Mlp>(kDpIn, kDpHidden, kDpOut,
                                                  &rng);
          },
          dp_loss);
      const uint64_t wait0 = dp_wait->value();
      const auto t0 = std::chrono::steady_clock::now();
      auto status = dist.Run();
      const double seconds = SecondsSince(t0);
      const double comm_ms_per_step =
          static_cast<double>(dp_wait->value() - wait0) / 1e6 /
          static_cast<double>(kDpSteps * world);
      fs::remove_all(dir);
      if (!status.ok()) {
        std::fprintf(stderr, "dist world %d (%s) failed: %s\n", world,
                     transport, status.ToString().c_str());
        return 1;
      }
      if (world == 1 && std::string(transport) == "thread") {
        dp_base_seconds = seconds;
      }
      const double speedup = dp_base_seconds / seconds;
      dp_table.AddRow({std::to_string(world), transport,
                       FormatFloat(seconds), FormatFloat(speedup),
                       FormatFloat(comm_ms_per_step),
                       FormatFloat(dist.history().back().loss)});
      // Per-rank figures come from the units each rank actually shipped
      // to the coordinator's aggregator — the telemetry plane measuring
      // itself — not from reading the shared registry directly.
      std::string ranks_json;
      for (int r = 0; r < world; ++r) {
        const std::string prefix = "dist.worker." + std::to_string(r) + ".";
        const double rank_comm_ms =
            static_cast<double>(dist.telemetry().RankCounter(
                r, prefix + "comm_wait_ns")) /
            1e6 / static_cast<double>(kDpSteps);
        const uint64_t rank_tel_bytes =
            dist.telemetry().RankCounter(r, prefix + "telemetry_bytes");
        char rbuf[128];
        std::snprintf(rbuf, sizeof(rbuf),
                      "%s{\"rank\":%d,\"comm_ms_per_step\":%.3f,"
                      "\"telemetry_bytes\":%llu}",
                      r == 0 ? "" : ",", r, rank_comm_ms,
                      static_cast<unsigned long long>(rank_tel_bytes));
        ranks_json += rbuf;
      }
      char buf[640];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"world\":%d,\"transport\":\"%s\",\"seconds\":%.3f,"
                    "\"speedup\":%.3f,\"comm_ms_per_step\":%.3f,"
                    "\"ranks\":[%s]}",
                    dp_json.empty() ? "" : ",", world, transport, seconds,
                    speedup, comm_ms_per_step, ranks_json.c_str());
      dp_json += buf;
    }
  }
  dp_table.Print(std::cout);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n(hardware_concurrency = %u; speedup saturates at the core "
              "count, and below it the gap is the collective layer's "
              "per-step cost.)\n",
              cores);
  std::printf("\nBENCH_FIG2 {\"bench\":\"fig2\",\"panel\":\"data_parallel\","
              "\"steps\":%lld,\"global_batch\":%d,\"cores\":%u,"
              "\"worlds\":[%s]}\n",
              static_cast<long long>(kDpSteps), kDpGlobalBatch, cores,
              dp_json.c_str());
  return 0;
}
