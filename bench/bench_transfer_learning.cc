// Experiment X13 — transfer learning and its scaling (paper §3's
// pretrain-then-fine-tune paradigm; §4's "scaling laws for transfer",
// Hernandez et al. [55]). Pretrain a GPT on declarative toy-English, then
// adapt it to a *question dialect* (same lexicon plus new function words,
// different construction) with varying amounts of fine-tuning data, vs
// training from scratch on the same data.
//
// Paper-shape targets: pretraining helps most when fine-tuning data is
// scarce; the gap ("effective data transferred") shrinks as target data
// grows.
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "nn/transformer.h"
#include "text/dataset.h"
#include "text/vocab.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kSeqLen = 16;

/// Question dialect: "does the dog see a cat", "do the dogs sleep" —
/// shares the noun/verb/adjective lexicon with ToyEnglishGrammar but adds
/// do/does/who and an inverted construction never seen in pretraining.
llm::grammar::Grammar QuestionGrammar() {
  llm::grammar::Grammar g;
  auto add = [&](const std::string& lhs,
                 const std::vector<std::string>& rhs, double w) {
    LLM_CHECK(g.AddRule(lhs, rhs, w).ok());
  };
  add("Q", {"does", "NPS", "VPQ"}, 0.4);
  add("Q", {"do", "NPP", "VPQ"}, 0.4);
  add("Q", {"who", "VPS"}, 0.2);
  add("NPS", {"DETS", "NOUNS"}, 1.0);
  add("NPP", {"DETP", "NOUNP"}, 1.0);
  add("VPQ", {"VTP", "NP"}, 0.6);  // base verb form after do/does
  add("VPQ", {"VIP"}, 0.4);
  add("VPS", {"VTS", "NP"}, 0.6);
  add("VPS", {"VIS"}, 0.4);
  add("NP", {"DETS", "NOUNS"}, 0.5);
  add("NP", {"DETP", "NOUNP"}, 0.5);
  add("DETS", {"the"}, 0.6);
  add("DETS", {"a"}, 0.4);
  add("DETP", {"the"}, 0.5);
  add("DETP", {"some"}, 0.5);
  const char* noun_pairs[][2] = {{"dog", "dogs"},   {"cat", "cats"},
                                 {"bird", "birds"}, {"tree", "trees"},
                                 {"child", "children"},
                                 {"teacher", "teachers"}};
  for (const auto& p : noun_pairs) {
    add("NOUNS", {p[0]}, 1.0);
    add("NOUNP", {p[1]}, 1.0);
  }
  const char* vt_pairs[][2] = {{"chases", "chase"},
                               {"sees", "see"},
                               {"likes", "like"}};
  for (const auto& p : vt_pairs) {
    add("VTS", {p[0]}, 1.0);
    add("VTP", {p[1]}, 1.0);
  }
  const char* vi_pairs[][2] = {{"sleeps", "sleep"}, {"runs", "run"}};
  for (const auto& p : vi_pairs) {
    add("VIS", {p[0]}, 1.0);
    add("VIP", {p[1]}, 1.0);
  }
  LLM_CHECK(g.Finalize("Q").ok());
  return g;
}

/// Renders a grammar corpus into a shared-vocab token stream.
std::vector<int64_t> CorpusStream(const llm::grammar::Grammar& g,
                                  int64_t sentences, llm::text::Vocab* vocab,
                                  int64_t sep_id, llm::util::Rng* rng) {
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = sentences;
  auto samples = llm::data::SamplePcfgCorpus(g, copts, rng);
  std::vector<int64_t> stream;
  for (const auto& s : samples) {
    for (int t : s.terminals) {
      stream.push_back(vocab->AddToken(g.TerminalName(t)));
    }
    stream.push_back(sep_id);
  }
  return stream;
}

double TrainOnStream(llm::nn::GPTModel* model,
                     const std::vector<int64_t>& tokens, int64_t steps,
                     const llm::text::TokenDataset& test_set,
                     llm::util::Rng* rng) {
  llm::text::TokenDataset train_set(tokens, kSeqLen);
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model->Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = steps;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(rng, 8, &in, &tg);
    return model->LmLoss(in, tg, 8, kSeqLen);
  });
  return llm::eval::EvaluateGpt(*model, test_set, 16).cross_entropy;
}
}  // namespace

int main() {
  llm::util::Rng rng(41);
  llm::grammar::Grammar english = llm::data::ToyEnglishGrammar();
  llm::grammar::Grammar questions = QuestionGrammar();

  // Shared vocabulary: separator gets id 0, then words as encountered.
  llm::text::Vocab vocab;
  const int64_t sep = vocab.AddToken("<s>");
  std::vector<int64_t> pretrain_stream =
      CorpusStream(english, 3000, &vocab, sep, &rng);
  std::vector<int64_t> finetune_pool =
      CorpusStream(questions, 2500, &vocab, sep, &rng);
  const int64_t vocab_size = vocab.size();
  auto [ft_pool, ft_test] = llm::text::SplitTokens(finetune_pool, 0.25);
  llm::text::TokenDataset test_set(ft_test, kSeqLen);
  std::printf("shared vocab %lld; pretrain %zu tokens (declaratives), "
              "fine-tune pool %zu tokens (questions)\n\n",
              static_cast<long long>(vocab_size), pretrain_stream.size(),
              ft_pool.size());

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = vocab_size;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = 2;
  cfg.n_head = 4;

  // Pretrain once.
  llm::util::Rng model_rng(5);
  llm::nn::GPTModel pretrained(cfg, &model_rng);
  std::puts("pretraining on declaratives...");
  const double zero_shot =
      TrainOnStream(&pretrained, pretrain_stream, 600, test_set, &rng);
  std::printf("zero-shot question loss after pretraining: %.4f "
              "nats/token\n\n",
              zero_shot);
  // Snapshot the pretrained weights so each fine-tune starts fresh.
  llm::nn::NamedParams snapshot = pretrained.NamedParameters();
  std::vector<llm::core::Tensor> weights;
  for (auto& [name, v] : snapshot) weights.push_back(v.value());

  std::cout << "== Fine-tune vs from-scratch on the question dialect ==\n\n";
  Table t({"fine-tune tokens", "pretrained+FT", "from scratch", "gap"});
  for (double frac : {0.02, 0.08, 0.3, 1.0}) {
    const auto n = static_cast<int64_t>(
        static_cast<double>(ft_pool.size()) * frac);
    std::vector<int64_t> subset(ft_pool.begin(), ft_pool.begin() + n);

    // Restore the pretrained snapshot.
    auto params = pretrained.NamedParameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].second.mutable_value() = weights[i];
    }
    llm::util::Rng ft_rng(100 + static_cast<uint64_t>(frac * 100));
    const double ft_loss =
        TrainOnStream(&pretrained, subset, 200, test_set, &ft_rng);

    llm::util::Rng scratch_rng(6);
    llm::nn::GPTModel scratch(cfg, &scratch_rng);
    llm::util::Rng s_rng(200 + static_cast<uint64_t>(frac * 100));
    const double scratch_loss =
        TrainOnStream(&scratch, subset, 200, test_set, &s_rng);

    t.AddRow({FormatCount(static_cast<double>(n)), FormatFloat(ft_loss),
              FormatFloat(scratch_loss),
              FormatFloat(scratch_loss - ft_loss)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §3-4 / [55]): the pretrained model\n"
               "wins at every budget (shared lexicon transfers), and the\n"
               "gap is largest when fine-tuning data is scarce — the\n"
               "'effective data transferred' shrinks as target data\n"
               "grows.\n";
  return 0;
}
