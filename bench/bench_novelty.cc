// Experiment X18 — generation novelty and the "rearranging sentences"
// question (paper §1: interpretations range "from the belief that they
// are 'simply' rearranging the sentences they were trained on" upward;
// §8's hallucination discussion). Measures, as a function of sampling
// temperature, what fraction of generated text is (a) novel at the
// trigram level (not a copy of training n-grams), and (b) still
// grammatical under the generating PCFG — separating creative
// generalization from degenerate invention.
#include <cstdio>
#include <iostream>
#include <array>
#include <set>

#include "data/pcfg_corpus.h"
#include "grammar/earley.h"
#include "nn/transformer.h"
#include "sample/sampler.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

using Trigram = std::array<int64_t, 3>;

std::set<Trigram> CollectTrigrams(const std::vector<int64_t>& stream) {
  std::set<Trigram> out;
  for (size_t i = 0; i + 2 < stream.size(); ++i) {
    out.insert({stream[i], stream[i + 1], stream[i + 2]});
  }
  return out;
}
}  // namespace

int main() {
  llm::util::Rng rng(37);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 2500;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  std::vector<int64_t> stream = llm::data::FlattenToStream(corpus, sep);
  const std::set<Trigram> train_trigrams = CollectTrigrams(stream);
  std::printf("training corpus: %zu tokens, %zu distinct trigrams\n\n",
              stream.size(), train_trigrams.size());

  const int64_t T = 24;
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = g.num_terminals() + 1;
  cfg.max_seq_len = T;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  llm::text::TokenDataset train_set(stream, T);
  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = 500;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(&rng, 8, &in, &tg);
    return model.LmLoss(in, tg, 8, T);
  });

  llm::grammar::EarleyParser parser(&g);
  std::cout << "== Novelty and grammaticality of samples vs temperature "
               "==\n\n";
  Table t({"temperature", "novel trigrams", "grammatical sentences",
           "sentences scored"});
  for (float temp : {0.5f, 0.8f, 1.0f, 1.3f, 2.0f}) {
    llm::util::Rng gen_rng(1000 + static_cast<uint64_t>(temp * 10));
    int64_t trigrams = 0, novel = 0;
    int sentences = 0, grammatical = 0;
    for (int trial = 0; trial < 60; ++trial) {
      llm::sample::GenerateOptions gopts;
      gopts.max_new_tokens = 18;
      gopts.sampler.temperature = temp;
      gopts.stop_token = sep;
      auto out = llm::sample::Generate(model, {sep}, gopts, &gen_rng);
      for (size_t i = 0; i + 2 < out.size(); ++i) {
        ++trigrams;
        if (!train_trigrams.count({out[i], out[i + 1], out[i + 2]})) {
          ++novel;
        }
      }
      std::vector<int> sentence;
      for (int64_t tok : out) {
        if (tok == sep) break;
        sentence.push_back(static_cast<int>(tok));
      }
      if (!sentence.empty() &&
          static_cast<int64_t>(sentence.size()) < gopts.max_new_tokens) {
        ++sentences;
        if (parser.Recognize(sentence)) ++grammatical;
      }
    }
    t.AddRow({FormatFloat(temp, 1),
              FormatFloat(trigrams ? static_cast<double>(novel) / trigrams
                                   : 0.0,
                          3),
              FormatFloat(sentences ? static_cast<double>(grammatical) /
                                          sentences
                                    : 0.0,
                          3),
              std::to_string(sentences)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §1/§8): the model is not 'simply\n"
               "rearranging' its training text — even at low temperature a\n"
               "fraction of trigrams is novel while sentences stay largely\n"
               "grammatical (systematic generalization). Raising the\n"
               "temperature buys more novelty at an accelerating cost in\n"
               "grammaticality — the creativity/hallucination trade-off.\n";
  return 0;
}
