// Experiment X28 — multi-tenant overload control (paper §6: production
// serving multiplexes tenant classes with very different latency
// tolerances onto one fleet; overload must degrade the tolerant classes
// first, never the interactive ones).
//
// Two stages:
//
//  1. Calibrate: closed-loop batch-class clients saturate a 4-slot server
//     to measure its actual capacity (requests/sec and tokens/sec) on this
//     machine. Every offered rate below is expressed against that number,
//     so the storm is ~2.2x capacity regardless of host speed.
//
//  2. Storm: a deterministic, seeded workload — bursty open-loop chat at
//     ~0.4x capacity, closed-loop batch clients that alone would fill the
//     server (~1x), and open-loop background eval at ~0.8x throttled by a
//     tight token-rate quota — all fired at the same 4-slot, queue-8
//     server for 2 seconds.
//
// Gates (exit 1 on violation):
//   - chat p99 TTFT  <= 300 ms and p99 TPOT <= 150 ms (pinned SLOs);
//   - every shed and every preemption lands on batch/background — chat
//     sees neither;
//   - per-class and global conservation: submitted == completed +
//     cancelled + expired + failed + preempted, i.e. zero requests lost.
//
// Emits one BENCH_TENANTS JSON line plus the metrics registry snapshot.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/inference_server.h"
#include "serve/workload.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Same GPT-2-small-proportioned toy as bench_serving: the wide tied
// unembedding dominates per-token cost, keeping per-step timing honest.
llm::nn::GPTConfig ServingConfig() {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = 32768;
  cfg.max_seq_len = 48;
  cfg.d_model = 256;
  cfg.n_layer = 2;
  cfg.n_head = 8;
  cfg.tie_embeddings = true;
  return cfg;
}

llm::serve::ServerOptions StormOptions() {
  llm::serve::ServerOptions options;
  options.max_batch_size = 4;
  options.num_workers = 1;
  options.queue_capacity = 8;
  return options;
}

struct ClassGate {
  const char* name;
  bool ok;
};

}  // namespace

int main() {
  using llm::serve::TenantClass;
  llm::util::Rng rng(3);
  const llm::nn::GPTConfig cfg = ServingConfig();
  llm::nn::GPTModel model(cfg, &rng);
  std::printf("tenant bench: %lld params, vocab %lld, d_model %lld\n\n",
              static_cast<long long>(model.NumParameters()),
              static_cast<long long>(cfg.vocab_size),
              static_cast<long long>(cfg.d_model));

  // Pre-generated batch-class request pools. Drawing them up front keeps
  // the workload a pure function of the seed even with racing closed-loop
  // clients (WorkloadGenerator is not thread-safe).
  constexpr size_t kPoolSize = 512;
  std::vector<llm::serve::GenerateRequest> calibration_pool;
  std::vector<llm::serve::GenerateRequest> storm_pool;
  {
    llm::serve::WorkloadGenerator cal_gen({llm::serve::MakeBatchSpec(0.0)},
                                          cfg, /*seed=*/17);
    llm::serve::WorkloadGenerator storm_gen({llm::serve::MakeBatchSpec(0.0)},
                                            cfg, /*seed=*/23);
    for (size_t i = 0; i < kPoolSize; ++i) {
      calibration_pool.push_back(cal_gen.Sample(0));
      storm_pool.push_back(storm_gen.Sample(0));
    }
  }

  // ---- Stage 1: calibrate capacity with closed-loop batch clients. ----
  double capacity_rps = 0.0;
  double capacity_tps = 0.0;
  {
    llm::serve::InferenceServer server(&model, StormOptions());
    server.Start();
    constexpr int kClients = 4;
    constexpr double kCalSeconds = 0.6;
    std::atomic<size_t> next_request{0};
    std::atomic<int64_t> done_requests{0};
    std::atomic<int64_t> done_tokens{0};
    const auto cal_start = Clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        while (SecondsSince(cal_start) < kCalSeconds) {
          const size_t i =
              next_request.fetch_add(1, std::memory_order_relaxed) % kPoolSize;
          llm::serve::RequestResult result =
              server.GenerateBlocking(calibration_pool[i]);
          if (result.status.ok()) {
            done_requests.fetch_add(1, std::memory_order_relaxed);
            done_tokens.fetch_add(static_cast<int64_t>(result.tokens.size()),
                                  std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    const double secs = SecondsSince(cal_start);
    server.Shutdown();
    capacity_rps = static_cast<double>(done_requests.load()) / secs;
    capacity_tps = static_cast<double>(done_tokens.load()) / secs;
    std::printf(
        "{\"bench\":\"tenants\",\"mode\":\"calibrate\",\"seconds\":%.3f,"
        "\"capacity_requests_per_sec\":%.2f,\"capacity_tokens_per_sec\":%.1f}"
        "\n",
        secs, capacity_rps, capacity_tps);
    if (capacity_rps <= 0.0) {
      std::fprintf(stderr, "calibration produced no completions\n");
      return 1;
    }
  }

  // ---- Stage 2: the storm. ----
  constexpr double kStormMs = 2000.0;
  constexpr double kChatTtftSloMs = 300.0;
  constexpr double kChatTpotSloMs = 150.0;

  // Background gets a token-rate quota far below its offered load: roughly
  // two average background requests per second worth of tokens.
  llm::serve::ServerOptions options = StormOptions();
  options.tenants.classes[static_cast<size_t>(TenantClass::kBackground)]
      .quota_tokens_per_sec = 60.0;
  options.tenants.classes[static_cast<size_t>(TenantClass::kBackground)]
      .quota_burst_tokens = 120.0;

  llm::serve::WorkloadGenerator open_loop_gen(
      {llm::serve::MakeChatSpec(0.4 * capacity_rps),
       llm::serve::MakeBackgroundSpec(0.8 * capacity_rps)},
      cfg, /*seed=*/7);
  const std::vector<llm::serve::Arrival> schedule =
      open_loop_gen.OpenLoopSchedule(kStormMs);

  llm::serve::InferenceServer server(&model, options);
  server.Start();
  const auto storm_start = Clock::now();

  // Open-loop submitter: pace the merged chat+background schedule by its
  // arrival times; rejected submits are the server's call, not a retry.
  std::vector<llm::serve::RequestId> open_loop_ids;
  std::thread submitter([&] {
    for (const llm::serve::Arrival& arrival : schedule) {
      std::this_thread::sleep_until(
          storm_start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                arrival.at_ms)));
      auto id = server.Submit(arrival.request);
      if (id.ok()) open_loop_ids.push_back(id.value());
    }
  });

  // Closed-loop batch clients: by construction they alone keep the server
  // at ~1x capacity, so chat + background push the total past 2x.
  constexpr int kBatchClients = 4;
  std::atomic<size_t> next_batch{0};
  std::vector<std::thread> batch_clients;
  for (int c = 0; c < kBatchClients; ++c) {
    batch_clients.emplace_back([&] {
      while (SecondsSince(storm_start) < kStormMs / 1000.0) {
        const size_t i =
            next_batch.fetch_add(1, std::memory_order_relaxed) % kPoolSize;
        (void)server.GenerateBlocking(storm_pool[i]);  // shed/preempt is fine
      }
    });
  }

  submitter.join();
  for (auto& t : batch_clients) t.join();
  for (llm::serve::RequestId id : open_loop_ids) {
    auto result = server.Wait(id);
    if (!result.ok()) {
      std::fprintf(stderr, "storm: Wait failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }
  const double storm_secs = SecondsSince(storm_start);
  const llm::serve::ServerStats stats = server.Stats();
  server.Shutdown();

  // ---- Gates. ----
  std::vector<ClassGate> gates;
  bool conserved = stats.submitted == stats.completed + stats.cancelled +
                                          stats.expired + stats.failed +
                                          stats.preempted;
  for (size_t c = 0; c < llm::serve::kNumTenantClasses; ++c) {
    const llm::serve::TenantClassStats& cs = stats.classes[c];
    conserved = conserved &&
                cs.submitted == cs.completed + cs.cancelled + cs.expired +
                                    cs.failed + cs.preempted;
  }
  const llm::serve::TenantClassStats& chat =
      stats.classes[static_cast<size_t>(TenantClass::kChat)];
  const llm::serve::TenantClassStats& batch =
      stats.classes[static_cast<size_t>(TenantClass::kBatch)];
  const llm::serve::TenantClassStats& background =
      stats.classes[static_cast<size_t>(TenantClass::kBackground)];
  gates.push_back({"conservation", conserved});
  gates.push_back({"chat_never_shed", chat.shed == 0 && chat.preempted == 0});
  gates.push_back({"chat_p99_ttft", chat.p99_ttft_ms <= kChatTtftSloMs});
  gates.push_back({"chat_p99_tpot",
                   chat.p99_tpot_ms <= kChatTpotSloMs});
  gates.push_back({"chat_served", chat.completed > 0});
  gates.push_back(
      {"background_quota_bites", background.quota_rejected > 0});

  const double offered_x =
      capacity_rps > 0.0
          ? (0.4 * capacity_rps + 0.8 * capacity_rps + capacity_rps) /
                capacity_rps
          : 0.0;
  std::printf(
      "BENCH_TENANTS {\"bench\":\"tenants\",\"mode\":\"storm\","
      "\"seconds\":%.3f,\"offered_x_capacity\":%.1f,"
      "\"slo_ttft_ms\":%.0f,\"slo_tpot_ms\":%.0f,"
      "\"chat\":{\"submitted\":%llu,\"completed\":%llu,\"shed\":%llu,"
      "\"preempted\":%llu,\"p50_ttft_ms\":%.1f,\"p99_ttft_ms\":%.1f,"
      "\"p50_tpot_ms\":%.1f,\"p99_tpot_ms\":%.1f},"
      "\"batch\":{\"submitted\":%llu,\"completed\":%llu,\"shed\":%llu,"
      "\"preempted\":%llu,\"p99_ttft_ms\":%.1f},"
      "\"background\":{\"submitted\":%llu,\"quota_rejected\":%llu,"
      "\"completed\":%llu,\"shed\":%llu,\"preempted\":%llu},"
      "\"conserved\":%s,\"health\":\"%s\"}\n",
      storm_secs, offered_x, kChatTtftSloMs, kChatTpotSloMs,
      static_cast<unsigned long long>(chat.submitted),
      static_cast<unsigned long long>(chat.completed),
      static_cast<unsigned long long>(chat.shed),
      static_cast<unsigned long long>(chat.preempted), chat.p50_ttft_ms,
      chat.p99_ttft_ms, chat.p50_tpot_ms, chat.p99_tpot_ms,
      static_cast<unsigned long long>(batch.submitted),
      static_cast<unsigned long long>(batch.completed),
      static_cast<unsigned long long>(batch.shed),
      static_cast<unsigned long long>(batch.preempted), batch.p99_ttft_ms,
      static_cast<unsigned long long>(background.submitted),
      static_cast<unsigned long long>(background.quota_rejected),
      static_cast<unsigned long long>(background.completed),
      static_cast<unsigned long long>(background.shed),
      static_cast<unsigned long long>(background.preempted),
      conserved ? "true" : "false", llm::serve::ServerHealthName(stats.health));

  llm::serve::ExportServerStats(stats, "serve",
                                &llm::obs::MetricsRegistry::Global());
  std::printf("METRICS %s\n",
              llm::obs::MetricsRegistry::Global().JsonSnapshot().c_str());

  bool all_ok = true;
  for (const ClassGate& gate : gates) {
    std::printf("gate %-24s %s\n", gate.name, gate.ok ? "PASS" : "FAIL");
    all_ok = all_ok && gate.ok;
  }
  return all_ok ? 0 : 1;
}
