// Experiment X19 — one system, many tasks (paper §1/§8: "the trick we
// need to understand is how a single system can learn from this diverse
// corpus to perform a wide range of tasks"; Minsky's diversity quote).
// Train ONE transformer on an interleaved mixture of three unrelated
// synthetic tasks living in disjoint regions of a shared vocabulary —
// modular addition, chain-of-thought word problems, and induction
// copying — and compare its per-task accuracy against same-architecture
// specialists trained on each task alone with the same per-task step
// budget.
//
// Paper-shape target: the generalist is competitive with the specialists
// on every task (no catastrophic interference at this capacity), the core
// empirical surprise behind LLMs.
#include <cstdio>
#include <functional>
#include <iostream>

#include "data/induction.h"
#include "data/modular.h"
#include "data/word_problems.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

// Shared token space:
//   digits 0..10 (shared by modular & word problems)
//   11 = modular 'op', 12 = modular '='
//   13 = wp '+', 14 = wp '=', 15 = wp ';', 16 = wp END
//   17..32 = induction items
//   33 = PAD
constexpr int64_t kModOp = 11, kModEq = 12;
constexpr int64_t kWpPlus = 13, kWpEq = 14, kWpSep = 15, kWpEnd = 16;
constexpr int64_t kItemBase = 17;
constexpr int64_t kPad = 33;
constexpr int64_t kVocab = 34;
constexpr int64_t kT = 18;
constexpr int64_t kModulus = 11;

struct Batch {
  std::vector<int64_t> inputs;
  std::vector<int64_t> targets;
};

void PadTo(std::vector<int64_t>* in, std::vector<int64_t>* tg) {
  while (static_cast<int64_t>(in->size()) % kT != 0) {
    in->push_back(kPad);
    tg->push_back(-1);
  }
}

/// Task A: a op b = c (answer scored at '=').
Batch ModularBatch(const llm::data::ModularDataset& ds, int64_t n,
                   bool from_test, llm::util::Rng* rng) {
  Batch batch;
  const auto& pool = from_test ? ds.test() : ds.train();
  for (int64_t i = 0; i < n; ++i) {
    const auto& e = pool[rng->UniformInt(pool.size())];
    std::vector<int64_t> seq = {e.a, kModOp, e.b, kModEq};
    for (int64_t tok : seq) {
      batch.inputs.push_back(tok);
      batch.targets.push_back(-1);
    }
    batch.targets.back() = e.c;  // answer predicted at '='
    PadTo(&batch.inputs, &batch.targets);
  }
  return batch;
}

/// Task B: chain-of-thought word problems (k = 3 terms).
Batch WordProblemBatch(const llm::data::WordProblemDataset& ds, int64_t n,
                       llm::util::Rng* rng) {
  Batch batch;
  for (int64_t i = 0; i < n; ++i) {
    const auto p = ds.SampleProblem(rng);
    std::vector<int64_t> seq;
    for (size_t j = 0; j < p.terms.size(); ++j) {
      if (j) seq.push_back(kWpPlus);
      seq.push_back(p.terms[j]);
    }
    seq.push_back(kWpEq);
    for (size_t j = 0; j < p.partials.size(); ++j) {
      if (j) seq.push_back(kWpSep);
      seq.push_back(p.partials[j]);
    }
    seq.push_back(kWpEnd);
    const size_t prompt_len = 2 * p.terms.size();  // terms+pluses+eq
    for (size_t j = 0; j < seq.size(); ++j) {
      batch.inputs.push_back(seq[j]);
      batch.targets.push_back(
          (j + 1 < seq.size() && j >= prompt_len - 1) ? seq[j + 1] : -1);
    }
    PadTo(&batch.inputs, &batch.targets);
  }
  return batch;
}

/// Task C: induction copying over item tokens.
Batch InductionBatch(int64_t n, llm::util::Rng* rng) {
  llm::data::InductionOptions opts;
  opts.vocab_size = 16;
  opts.seq_len = kT;
  Batch batch;
  std::vector<int64_t> in, tg;
  llm::data::SampleInductionBatch(opts, rng, n, &in, &tg);
  for (size_t i = 0; i < in.size(); ++i) {
    batch.inputs.push_back(in[i] + kItemBase);
    batch.targets.push_back(tg[i] < 0 ? -1 : tg[i] + kItemBase);
  }
  return batch;
}

double Accuracy(const llm::nn::GPTModel& model, const Batch& batch) {
  const auto rows = static_cast<int64_t>(batch.inputs.size()) / kT;
  llm::core::Variable logits =
      model.ForwardLogits(batch.inputs, rows, kT);
  return llm::eval::MaskedAccuracy(logits.value(), batch.targets);
}

llm::nn::GPTModel MakeModel(llm::util::Rng* rng) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.max_seq_len = kT;
  cfg.d_model = 64;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  return llm::nn::GPTModel(cfg, rng);
}

void TrainSteps(llm::nn::GPTModel* model,
                const std::function<Batch(llm::util::Rng*)>& make_batch,
                int64_t steps, llm::util::Rng* rng) {
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model->Parameters(), aopts);
  for (int64_t s = 0; s < steps; ++s) {
    Batch b = make_batch(rng);
    const auto rows = static_cast<int64_t>(b.inputs.size()) / kT;
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model->ForwardLogits(b.inputs, rows, kT), b.targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    llm::train::ClipGradNorm(opt.params(), 1.0f);
    opt.Step();
  }
}
}  // namespace

int main() {
  llm::util::Rng rng(61);
  llm::data::ModularDatasetOptions mopts;
  mopts.modulus = kModulus;
  mopts.train_fraction = 0.7;
  llm::data::ModularDataset modular(mopts);
  llm::data::WordProblemOptions wopts;
  wopts.modulus = kModulus;
  wopts.terms = 3;
  wopts.chain_of_thought = true;
  llm::data::WordProblemDataset word_problems(wopts);

  const int64_t kPerTaskSteps = 600;
  auto mod_batch = [&](llm::util::Rng* r) {
    return ModularBatch(modular, 12, false, r);
  };
  auto wp_batch = [&](llm::util::Rng* r) {
    return WordProblemBatch(word_problems, 12, r);
  };
  auto ind_batch = [&](llm::util::Rng* r) { return InductionBatch(12, r); };

  std::puts("training three specialists...");
  llm::nn::GPTModel spec_mod = MakeModel(&rng);
  TrainSteps(&spec_mod, mod_batch, kPerTaskSteps, &rng);
  llm::nn::GPTModel spec_wp = MakeModel(&rng);
  TrainSteps(&spec_wp, wp_batch, kPerTaskSteps, &rng);
  llm::nn::GPTModel spec_ind = MakeModel(&rng);
  TrainSteps(&spec_ind, ind_batch, kPerTaskSteps, &rng);

  std::puts("training one generalist on the interleaved mixture...");
  llm::nn::GPTModel generalist = MakeModel(&rng);
  int turn = 0;
  TrainSteps(
      &generalist,
      [&](llm::util::Rng* r) -> Batch {
        switch (turn++ % 3) {
          case 0:
            return mod_batch(r);
          case 1:
            return wp_batch(r);
          default:
            return ind_batch(r);
        }
      },
      3 * kPerTaskSteps, &rng);

  llm::util::Rng eval_rng(62);
  Batch mod_eval = ModularBatch(modular, 128, /*from_test=*/true,
                                &eval_rng);
  Batch wp_eval = WordProblemBatch(word_problems, 128, &eval_rng);
  Batch ind_eval = InductionBatch(64, &eval_rng);

  std::cout << "\n== Per-task accuracy: one generalist vs three "
               "specialists ==\n(equal per-task optimization budget)\n\n";
  Table t({"task", "generalist", "specialist", "chance"});
  t.AddRow({"modular add (held-out pairs)",
            FormatFloat(Accuracy(generalist, mod_eval), 3),
            FormatFloat(Accuracy(spec_mod, mod_eval), 3),
            FormatFloat(1.0 / kModulus, 3)});
  t.AddRow({"word problems (CoT steps)",
            FormatFloat(Accuracy(generalist, wp_eval), 3),
            FormatFloat(Accuracy(spec_wp, wp_eval), 3),
            FormatFloat(1.0 / kModulus, 3)});
  t.AddRow({"induction copying",
            FormatFloat(Accuracy(generalist, ind_eval), 3),
            FormatFloat(Accuracy(spec_ind, ind_eval), 3),
            FormatFloat(1.0 / 16.0, 3)});
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §1/§8): one model holds all three\n"
               "competences at (near-)specialist accuracy. Two effects to\n"
               "notice beyond that headline:\n"
               "  * cross-task transfer: the modular-add *specialist*\n"
               "    memorizes its 85 training pairs without generalizing\n"
               "    (the pre-grokking regime — cf. bench_grokking), while\n"
               "    the generalist answers held-out pairs because the CoT\n"
               "    word-problem task teaches the same mod-11 addition and\n"
               "    the circuit is shared — learning one task helps\n"
               "    another (§8's shared-representations question);\n"
               "  * mild interference on induction copying, the price of\n"
               "    shared capacity.\n";
  return 0;
}
