// Experiment X2 — word-embedding analogies (paper §5, Eq. 9-10): build
// co-occurrence counts on the synthetic feature-grid corpus, transform to
// PPMI, reduce with a spectral embedding, and solve king - man + woman ~
// queen by the offset method, sweeping the embedding dimension.
//
// Paper-shape target: accuracy rises with dimension then plateaus (the
// paper notes p >~ 100 is needed on real text; the toy grid saturates at
// much smaller p — the *shape* is rise-then-plateau). Also compares raw
// counts vs PPMI (the Eq. 10 ratio structure only emerges after the PMI
// normalization).
#include <iostream>

#include "data/analogy.h"
#include "embed/cooccurrence.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

double AnalogyAccuracy(const llm::embed::WordEmbeddings& emb,
                       const llm::data::AnalogyCorpus& corpus) {
  int correct = 0;
  for (const auto& q : corpus.quads()) {
    if (emb.Analogy(q.a, q.b, q.c) == q.d) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(corpus.quads().size());
}
}  // namespace

int main() {
  llm::data::AnalogyCorpus corpus;
  llm::util::Rng rng(5);
  std::vector<int64_t> stream = corpus.Generate(20000, &rng);
  std::cout << "corpus: " << stream.size() << " tokens, vocab "
            << corpus.vocab_size() << ", " << corpus.quads().size()
            << " gold analogies\n\n";

  llm::embed::CooccurrenceMatrix cooc(corpus.vocab_size(), /*window=*/5);
  cooc.Fit(stream);
  const llm::core::Tensor ppmi = cooc.Ppmi();

  std::cout << "== Analogy accuracy vs embedding dimension "
               "(PPMI + spectral embedding) ==\n\n";
  Table t({"dim p", "accuracy (PPMI)", "accuracy (raw counts)"});
  for (int dim : {2, 4, 8, 16, 32}) {
    llm::embed::WordEmbeddings ppmi_emb(
        llm::embed::SpectralEmbedding(ppmi, dim));
    llm::embed::WordEmbeddings raw_emb(
        llm::embed::SpectralEmbedding(cooc.counts(), dim));
    t.AddRow({std::to_string(dim),
              FormatFloat(AnalogyAccuracy(ppmi_emb, corpus), 2),
              FormatFloat(AnalogyAccuracy(raw_emb, corpus), 2)});
  }
  t.Print(std::cout);

  std::cout << "\n== Example analogies at p = 16 ==\n\n";
  llm::embed::WordEmbeddings emb(llm::embed::SpectralEmbedding(ppmi, 16));
  Table ex({"analogy", "predicted", "correct"});
  for (const auto& q : corpus.quads()) {
    const int64_t pred = emb.Analogy(q.a, q.b, q.c);
    ex.AddRow({corpus.QuadToString(q), corpus.vocab().TokenOf(pred),
               pred == q.d ? "yes" : "NO"});
  }
  ex.Print(std::cout);
  std::cout << "\nExpected shape (paper §5): accuracy rises with dimension\n"
               "and plateaus; PPMI beats raw counts because Eq. 9 relies\n"
               "on the co-occurrence *ratios* of Eq. 10.\n";
  return 0;
}
