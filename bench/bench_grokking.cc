// Experiment X4 — grokking on modular arithmetic (paper §4, Power et al.
// [110], Nanda et al. [103]): train a small transformer on a fixed split
// of the (a + b) mod p table with AdamW weight decay. The paper's claim:
// "First, the model memorizes training examples. Later, it generalizes to
// the testing examples" — train accuracy saturates long before test
// accuracy rises.
//
// Ablation #4 of DESIGN.md: with weight decay off, generalization is
// delayed or absent at the same budget.
//
// Grokking is the longest-horizon run in bench/, so it doubles as the
// showcase for the fault-tolerant runtime: pass --ckpt-dir=DIR to write
// crash-safe checkpoints every 500 steps, kill the process whenever, and
// re-run with --resume to continue bit-exactly from the last checkpoint.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "data/modular.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

struct CurvePoint {
  int64_t step;
  double train_acc;
  double test_acc;
  double train_loss;
};

double AccuracyOn(const llm::nn::GPTModel& model,
                  const llm::data::ModularDataset& ds,
                  const std::vector<llm::data::ModularExample>& examples) {
  std::vector<int64_t> inputs, targets;
  ds.EncodeExamples(examples, &inputs, &targets);
  const auto B = static_cast<int64_t>(examples.size());
  llm::core::Variable logits = model.ForwardLogits(
      inputs, B, llm::data::ModularDataset::kSeqLen);
  return llm::eval::MaskedAccuracy(logits.value(), targets);
}

std::vector<CurvePoint> RunGrokking(float weight_decay, int64_t max_steps,
                                    uint64_t seed,
                                    const std::string& ckpt_dir,
                                    bool resume) {
  llm::data::ModularDatasetOptions dopts;
  dopts.modulus = 23;
  dopts.train_fraction = 0.6;
  dopts.seed = 3;
  llm::data::ModularDataset ds(dopts);

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = llm::data::ModularDataset::kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = 1;
  cfg.n_head = 4;
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);

  llm::train::AdamWOptions aopts;
  aopts.lr = 1e-3f;
  aopts.beta2 = 0.98f;
  aopts.weight_decay = weight_decay;
  llm::train::AdamW opt(model.Parameters(), aopts);

  llm::train::TrainerOptions topts;
  topts.max_steps = max_steps;
  topts.clip_norm = 1.0f;
  topts.eval_every = 250;
  topts.model = &model;
  topts.data_rng = &rng;
  // A NaN spike in a 6k-step run should cost a rollback, not the run.
  topts.max_recoveries = 3;
  topts.lr_backoff = 0.5f;
  if (!ckpt_dir.empty()) {
    topts.checkpoint_dir = ckpt_dir;
    topts.checkpoint_every = 500;
    topts.keep_last_k = 3;
  }
  llm::train::Trainer trainer(&opt, topts);

  if (resume && !ckpt_dir.empty()) {
    auto latest = llm::train::LatestCheckpoint(ckpt_dir);
    if (latest.ok()) {
      llm::util::Status s = trainer.ResumeFrom(latest.value());
      if (!s.ok()) {
        std::fprintf(stderr, "resume from %s failed: %s\n",
                     latest.value().c_str(), s.ToString().c_str());
        std::exit(1);
      }
      std::printf("resumed from %s at step %lld\n", latest.value().c_str(),
                  static_cast<long long>(trainer.start_step()));
    } else {
      std::printf("no checkpoint under %s; starting fresh\n",
                  ckpt_dir.c_str());
    }
  }

  std::vector<CurvePoint> curve;
  const int64_t B = 128;
  llm::util::Status status = trainer.Run(
      [&] {
        std::vector<int64_t> inputs, targets;
        ds.SampleTrainBatch(&rng, B, &inputs, &targets);
        return llm::core::CrossEntropyLogits(
            model.ForwardLogits(inputs, B,
                                llm::data::ModularDataset::kSeqLen),
            targets);
      },
      [&](int64_t step) {
        curve.push_back(
            {step, AccuracyOn(model, ds, ds.train()),
             AccuracyOn(model, ds, ds.test()),
             static_cast<double>(trainer.history().back().loss)});
      });
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  for (const auto& inc : trainer.incidents()) {
    std::printf("[incident] step %lld %s -> %s\n",
                static_cast<long long>(inc.step), inc.kind.c_str(),
                inc.action.c_str());
  }
  return curve;
}

void PrintCurve(const std::vector<CurvePoint>& curve) {
  Table t({"step", "train acc", "test acc", "train loss"});
  for (const auto& p : curve) {
    t.AddRow({std::to_string(p.step), FormatFloat(p.train_acc, 3),
              FormatFloat(p.test_acc, 3), FormatFloat(p.train_loss, 3)});
  }
  t.Print(std::cout);

  // Locate the two phases: first step with train acc > 0.95 and first
  // step with test acc > 0.95.
  int64_t memorized = -1, generalized = -1;
  for (const auto& p : curve) {
    if (memorized < 0 && p.train_acc > 0.95) memorized = p.step;
    if (generalized < 0 && p.test_acc > 0.95) generalized = p.step;
  }
  std::printf("\ntrain acc > 95%% at step %lld; test acc > 95%% at %s\n",
              static_cast<long long>(memorized),
              generalized >= 0 ? std::to_string(generalized).c_str()
                               : "never (within budget)");
}
}  // namespace

int main(int argc, char** argv) {
  int64_t steps = 6000;
  std::string ckpt_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ckpt-dir=", 0) == 0) {
      ckpt_dir = arg.substr(11);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg.rfind("--steps=", 0) == 0) {
      steps = std::atoll(arg.c_str() + 8);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ckpt-dir=DIR] [--resume] [--steps=N]\n",
                   argv[0]);
      return 2;
    }
  }
  std::cout << "== Grokking: (a + b) mod 23, 60% of the table for "
               "training ==\n\n";
  std::cout << "--- with weight decay 1.0 (the grokking recipe) ---\n\n";
  auto with_wd =
      RunGrokking(/*weight_decay=*/1.0f, steps, 17,
                  ckpt_dir.empty() ? "" : ckpt_dir + "/wd1", resume);
  PrintCurve(with_wd);

  std::cout << "\n--- ablation: weight decay 0 ---\n\n";
  auto without_wd =
      RunGrokking(/*weight_decay=*/0.0f, steps, 17,
                  ckpt_dir.empty() ? "" : ckpt_dir + "/wd0", resume);
  PrintCurve(without_wd);

  std::cout << "\nExpected shape (paper §4): with weight decay, train\n"
               "accuracy saturates early while test accuracy lags and then\n"
               "climbs (two-phase 'grokking'); without weight decay the\n"
               "memorizing solution persists and test accuracy stays low\n"
               "much longer.\n";
  return 0;
}
