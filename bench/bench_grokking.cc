// Experiment X4 — grokking on modular arithmetic (paper §4, Power et al.
// [110], Nanda et al. [103]): train a small transformer on a fixed split
// of the (a + b) mod p table with AdamW weight decay. The paper's claim:
// "First, the model memorizes training examples. Later, it generalizes to
// the testing examples" — train accuracy saturates long before test
// accuracy rises.
//
// Ablation #4 of DESIGN.md: with weight decay off, generalization is
// delayed or absent at the same budget.
#include <cstdio>
#include <iostream>

#include "data/modular.h"
#include "eval/metrics.h"
#include "nn/transformer.h"
#include "train/optimizer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

struct CurvePoint {
  int64_t step;
  double train_acc;
  double test_acc;
  double train_loss;
};

double AccuracyOn(const llm::nn::GPTModel& model,
                  const llm::data::ModularDataset& ds,
                  const std::vector<llm::data::ModularExample>& examples) {
  std::vector<int64_t> inputs, targets;
  ds.EncodeExamples(examples, &inputs, &targets);
  const auto B = static_cast<int64_t>(examples.size());
  llm::core::Variable logits = model.ForwardLogits(
      inputs, B, llm::data::ModularDataset::kSeqLen);
  return llm::eval::MaskedAccuracy(logits.value(), targets);
}

std::vector<CurvePoint> RunGrokking(float weight_decay, int64_t max_steps,
                                    uint64_t seed) {
  llm::data::ModularDatasetOptions dopts;
  dopts.modulus = 23;
  dopts.train_fraction = 0.6;
  dopts.seed = 3;
  llm::data::ModularDataset ds(dopts);

  llm::nn::GPTConfig cfg;
  cfg.vocab_size = ds.vocab_size();
  cfg.max_seq_len = llm::data::ModularDataset::kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = 1;
  cfg.n_head = 4;
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);

  llm::train::AdamWOptions aopts;
  aopts.lr = 1e-3f;
  aopts.beta2 = 0.98f;
  aopts.weight_decay = weight_decay;
  llm::train::AdamW opt(model.Parameters(), aopts);

  std::vector<CurvePoint> curve;
  const int64_t B = 128;
  for (int64_t step = 0; step < max_steps; ++step) {
    std::vector<int64_t> inputs, targets;
    ds.SampleTrainBatch(&rng, B, &inputs, &targets);
    llm::core::Variable loss = llm::core::CrossEntropyLogits(
        model.ForwardLogits(inputs, B, llm::data::ModularDataset::kSeqLen),
        targets);
    opt.ZeroGrad();
    llm::core::Backward(loss);
    llm::train::ClipGradNorm(opt.params(), 1.0f);
    opt.Step();
    if (step % 250 == 0 || step + 1 == max_steps) {
      curve.push_back({step, AccuracyOn(model, ds, ds.train()),
                       AccuracyOn(model, ds, ds.test()),
                       static_cast<double>(loss.value()[0])});
    }
  }
  return curve;
}

void PrintCurve(const std::vector<CurvePoint>& curve) {
  Table t({"step", "train acc", "test acc", "train loss"});
  for (const auto& p : curve) {
    t.AddRow({std::to_string(p.step), FormatFloat(p.train_acc, 3),
              FormatFloat(p.test_acc, 3), FormatFloat(p.train_loss, 3)});
  }
  t.Print(std::cout);

  // Locate the two phases: first step with train acc > 0.95 and first
  // step with test acc > 0.95.
  int64_t memorized = -1, generalized = -1;
  for (const auto& p : curve) {
    if (memorized < 0 && p.train_acc > 0.95) memorized = p.step;
    if (generalized < 0 && p.test_acc > 0.95) generalized = p.step;
  }
  std::printf("\ntrain acc > 95%% at step %lld; test acc > 95%% at %s\n",
              static_cast<long long>(memorized),
              generalized >= 0 ? std::to_string(generalized).c_str()
                               : "never (within budget)");
}
}  // namespace

int main() {
  const int64_t kSteps = 6000;
  std::cout << "== Grokking: (a + b) mod 23, 60% of the table for "
               "training ==\n\n";
  std::cout << "--- with weight decay 1.0 (the grokking recipe) ---\n\n";
  auto with_wd = RunGrokking(/*weight_decay=*/1.0f, kSteps, 17);
  PrintCurve(with_wd);

  std::cout << "\n--- ablation: weight decay 0 ---\n\n";
  auto without_wd = RunGrokking(/*weight_decay=*/0.0f, kSteps, 17);
  PrintCurve(without_wd);

  std::cout << "\nExpected shape (paper §4): with weight decay, train\n"
               "accuracy saturates early while test accuracy lags and then\n"
               "climbs (two-phase 'grokking'); without weight decay the\n"
               "memorizing solution persists and test accuracy stays low\n"
               "much longer.\n";
  return 0;
}
