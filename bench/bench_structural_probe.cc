// Experiment X7 — structural probe for parse trees (paper §7, Hewitt &
// Manning [56], Manning et al. [88]): train a transformer LM on the PCFG
// corpus, capture per-word residual activations, and learn a rank-r
// projection whose squared distances approximate gold parse-tree path
// lengths. The gold trees come from the generator itself (cleaner than
// the paper's Penn Treebank annotations).
//
// Paper-shape targets: (1) probes on a *trained* model beat probes on an
// untrained model; (2) middle layers probe best; (3) modest rank suffices
// (the paper: rank ~50 for BERT at d ~ 1000; proportionally smaller
// here).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "interp/structural_probe.h"
#include "nn/positional.h"
#include "nn/transformer.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kDModel = 48;
constexpr int64_t kMaxLen = 16;

/// Runs sentences through the model one by one, capturing the residual
/// stream at `layer` for every word position.
std::vector<llm::interp::ProbeSentence> BuildProbeData(
    const llm::nn::GPTModel& model,
    const std::vector<llm::data::PcfgSample>& samples, size_t layer) {
  std::vector<llm::interp::ProbeSentence> out;
  for (const auto& s : samples) {
    const auto L = static_cast<int64_t>(s.terminals.size());
    if (L < 4 || L > kMaxLen) continue;
    std::vector<int64_t> tokens(s.terminals.begin(), s.terminals.end());
    llm::nn::ActivationCapture cap;
    llm::nn::ForwardOptions fopts;
    fopts.capture = &cap;
    model.ForwardLogits(tokens, 1, L, fopts);
    llm::interp::ProbeSentence ps;
    ps.embeddings = llm::core::Tensor({L, kDModel});
    const llm::core::Tensor& h = cap.residual[layer].value();
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t c = 0; c < kDModel; ++c) {
        ps.embeddings[i * kDModel + c] = h.At({0, i, c});
      }
    }
    ps.gold_distance = llm::grammar::Grammar::LeafPairDistances(*s.tree);
    out.push_back(std::move(ps));
  }
  return out;
}

/// Standardizes every embedding dimension to zero mean / unit variance
/// using statistics from the training sentences (activation scales differ
/// wildly across layers and between trained/untrained models; the probe
/// regression needs comparable inputs).
void Standardize(std::vector<llm::interp::ProbeSentence>* train_data,
                 std::vector<llm::interp::ProbeSentence>* test_data) {
  std::vector<double> mean(kDModel, 0.0), var(kDModel, 0.0);
  int64_t n = 0;
  for (const auto& s : *train_data) {
    const int64_t L = s.embeddings.dim(0);
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t c = 0; c < kDModel; ++c) {
        mean[static_cast<size_t>(c)] += s.embeddings[i * kDModel + c];
      }
    }
    n += L;
  }
  for (auto& m : mean) m /= static_cast<double>(n);
  for (const auto& s : *train_data) {
    const int64_t L = s.embeddings.dim(0);
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t c = 0; c < kDModel; ++c) {
        const double d =
            s.embeddings[i * kDModel + c] - mean[static_cast<size_t>(c)];
        var[static_cast<size_t>(c)] += d * d;
      }
    }
  }
  for (auto& v : var) v = std::sqrt(v / static_cast<double>(n) + 1e-8);
  auto apply = [&](std::vector<llm::interp::ProbeSentence>* data) {
    for (auto& s : *data) {
      const int64_t L = s.embeddings.dim(0);
      for (int64_t i = 0; i < L; ++i) {
        for (int64_t c = 0; c < kDModel; ++c) {
          s.embeddings[i * kDModel + c] = static_cast<float>(
              (s.embeddings[i * kDModel + c] -
               mean[static_cast<size_t>(c)]) /
              var[static_cast<size_t>(c)]);
        }
      }
    }
  };
  apply(train_data);
  apply(test_data);
}

/// Control: "embeddings" that contain only the sinusoidal position code,
/// no lexical content at all. Quantifies how much of the tree-distance
/// signal is pure position (tree distance correlates with |i - j|).
std::vector<llm::interp::ProbeSentence> BuildPositionOnly(
    const std::vector<llm::data::PcfgSample>& samples) {
  llm::core::Tensor table =
      llm::nn::SinusoidalPositionalEncoding(kMaxLen, kDModel);
  std::vector<llm::interp::ProbeSentence> out;
  for (const auto& s : samples) {
    const auto L = static_cast<int64_t>(s.terminals.size());
    if (L < 4 || L > kMaxLen) continue;
    llm::interp::ProbeSentence ps;
    ps.embeddings = llm::core::Tensor({L, kDModel});
    for (int64_t i = 0; i < L; ++i) {
      for (int64_t c = 0; c < kDModel; ++c) {
        ps.embeddings[i * kDModel + c] = table[i * kDModel + c];
      }
    }
    ps.gold_distance = llm::grammar::Grammar::LeafPairDistances(*s.tree);
    out.push_back(std::move(ps));
  }
  return out;
}

double ProbePositionOnly(const std::vector<llm::data::PcfgSample>& train_s,
                         const std::vector<llm::data::PcfgSample>& test_s,
                         int rank) {
  auto train_data = BuildPositionOnly(train_s);
  auto test_data = BuildPositionOnly(test_s);
  Standardize(&train_data, &test_data);
  llm::interp::StructuralProbeConfig pcfg;
  pcfg.dim = kDModel;
  pcfg.rank = rank;
  pcfg.steps = 400;
  llm::interp::StructuralProbe probe(pcfg);
  probe.Fit(train_data);
  auto rho = probe.MeanSpearman(test_data);
  return rho.ok() ? *rho : 0.0;
}

double ProbeLayer(const llm::nn::GPTModel& model,
                  const std::vector<llm::data::PcfgSample>& train_s,
                  const std::vector<llm::data::PcfgSample>& test_s,
                  size_t layer, int rank) {
  auto train_data = BuildProbeData(model, train_s, layer);
  auto test_data = BuildProbeData(model, test_s, layer);
  Standardize(&train_data, &test_data);
  llm::interp::StructuralProbeConfig pcfg;
  pcfg.dim = kDModel;
  pcfg.rank = rank;
  pcfg.steps = 400;
  llm::interp::StructuralProbe probe(pcfg);
  probe.Fit(train_data);
  auto rho = probe.MeanSpearman(test_data);
  return rho.ok() ? *rho : 0.0;
}
}  // namespace

int main() {
  llm::util::Rng rng(31);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 2500;
  copts.max_length = kMaxLen;
  auto corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  const int sep = g.num_terminals();
  std::vector<int64_t> stream = llm::data::FlattenToStream(corpus, sep);

  // Train the LM.
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = g.num_terminals() + 1;
  cfg.max_seq_len = 24;
  cfg.d_model = kDModel;
  cfg.n_layer = 3;
  cfg.n_head = 4;
  llm::nn::GPTModel model(cfg, &rng);
  llm::nn::GPTModel untrained(cfg, &rng);
  llm::text::TokenDataset train_set(stream, 24);
  llm::train::AdamWOptions aopts;
  aopts.lr = 3e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = 500;
  topts.clip_norm = 1.0f;
  topts.log_every = 250;
  llm::train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> inputs, targets;
    train_set.SampleBatch(&rng, 8, &inputs, &targets);
    return model.LmLoss(inputs, targets, 8, 24);
  });

  // Probe data: fresh sentences with gold trees.
  copts.num_sentences = 250;
  auto probe_train = llm::data::SamplePcfgCorpus(g, copts, &rng);
  copts.num_sentences = 120;
  auto probe_test = llm::data::SamplePcfgCorpus(g, copts, &rng);

  std::cout << "\n== Structural probe: Spearman(predicted, gold tree "
               "distance) on held-out sentences ==\n\n";
  const int kRank = 12;
  Table t({"layer", "trained model", "untrained model"});
  for (size_t layer = 0; layer <= static_cast<size_t>(cfg.n_layer);
       ++layer) {
    const std::string name =
        layer == 0 ? "embedding" : "block " + std::to_string(layer - 1);
    t.AddRow({name,
              FormatFloat(
                  ProbeLayer(model, probe_train, probe_test, layer, kRank),
                  3),
              FormatFloat(ProbeLayer(untrained, probe_train, probe_test,
                                     layer, kRank),
                          3)});
  }
  t.Print(std::cout);
  std::printf("\nposition-only control (no lexical content): %.3f\n",
              ProbePositionOnly(probe_train, probe_test, kRank));

  std::cout << "\n== Rank sweep at the best layer (trained model) ==\n\n";
  Table r({"probe rank", "Spearman"});
  for (int rank : {1, 2, 4, 8, 16, 32}) {
    r.AddRow({std::to_string(rank),
              FormatFloat(ProbeLayer(model, probe_train, probe_test, 2,
                                     rank),
                          3)});
  }
  r.Print(std::cout);
  std::cout << "\nPaper claim (§7 / [56]): parse-tree distances are\n"
               "decodable from LM representations by a modest-rank probe.\n"
               "Reproduced: yes at the embedding layer (>~ the position-\n"
               "only control, since the layer adds lexical content).\n"
               "Toy-scale deviation, reported honestly: deeper layers of\n"
               "this 350k-param causal LM probe *worse* than the input\n"
               "layer — tree distance here is dominated by its positional\n"
               "component, which deeper layers attenuate in favour of\n"
               "next-token features; BERT-scale models have the capacity\n"
               "to keep both (the paper's d ~ 1000, rank ~ 50 regime).\n";
  return 0;
}
