// Experiment X14 — data diversity at a fixed token budget (paper §4:
// "sets of data items are worth more if they are diverse than if they are
// similar", Sorscher et al. [126]; also §6's footnote on clean data "not
// having too much ... repetitions"). Same model, same number of training
// tokens: one corpus has all-distinct sentences, the other repeats a
// small pool. Held-out loss separates them.
#include <cstdio>
#include <iostream>

#include "data/pcfg_corpus.h"
#include "eval/lm_eval.h"
#include "nn/transformer.h"
#include "text/dataset.h"
#include "train/trainer.h"
#include "util/table.h"

namespace {
using llm::util::FormatCount;
using llm::util::FormatFloat;
using llm::util::Table;

constexpr int64_t kSeqLen = 16;
constexpr int64_t kBudget = 12000;  // training tokens for every arm

std::vector<int64_t> RepeatToBudget(const std::vector<int64_t>& pool,
                                    int64_t budget) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(budget));
  while (static_cast<int64_t>(out.size()) < budget) {
    for (int64_t t : pool) {
      if (static_cast<int64_t>(out.size()) >= budget) break;
      out.push_back(t);
    }
  }
  return out;
}

double TrainAndEval(const std::vector<int64_t>& tokens,
                    const llm::text::TokenDataset& test_set, int64_t vocab,
                    uint64_t seed) {
  llm::nn::GPTConfig cfg;
  cfg.vocab_size = vocab;
  cfg.max_seq_len = kSeqLen;
  cfg.d_model = 48;
  cfg.n_layer = 2;
  cfg.n_head = 4;
  llm::util::Rng rng(seed);
  llm::nn::GPTModel model(cfg, &rng);
  llm::text::TokenDataset train_set(tokens, kSeqLen);
  llm::train::AdamWOptions aopts;
  aopts.lr = 2e-3f;
  llm::train::AdamW opt(model.Parameters(), aopts);
  llm::train::TrainerOptions topts;
  topts.max_steps = 400;
  topts.clip_norm = 1.0f;
  llm::train::Trainer trainer(&opt, topts);
  trainer.Run([&] {
    std::vector<int64_t> in, tg;
    train_set.SampleBatch(&rng, 8, &in, &tg);
    return model.LmLoss(in, tg, 8, kSeqLen);
  });
  return llm::eval::EvaluateGpt(model, test_set, 20).cross_entropy;
}
}  // namespace

int main() {
  llm::util::Rng rng(29);
  llm::grammar::Grammar g = llm::data::ToyEnglishGrammar();
  const int sep = g.num_terminals();
  const int64_t vocab = g.num_terminals() + 1;

  // Held-out evaluation corpus (always fresh sentences).
  llm::data::PcfgCorpusOptions copts;
  copts.num_sentences = 600;
  auto test_corpus = llm::data::SamplePcfgCorpus(g, copts, &rng);
  llm::text::TokenDataset test_set(
      llm::data::FlattenToStream(test_corpus, sep), kSeqLen);

  std::cout << "== Same token budget (" << FormatCount(kBudget)
            << " tokens), different diversity ==\n\n";
  Table t({"distinct sentences", "epochs over pool", "test loss"});
  for (int64_t distinct : {25, 100, 400, 1600}) {
    copts.num_sentences = distinct;
    llm::util::Rng data_rng(1000 + static_cast<uint64_t>(distinct));
    auto pool_corpus = llm::data::SamplePcfgCorpus(g, copts, &data_rng);
    std::vector<int64_t> pool =
        llm::data::FlattenToStream(pool_corpus, sep);
    std::vector<int64_t> tokens = RepeatToBudget(pool, kBudget);
    const double epochs =
        static_cast<double>(kBudget) / static_cast<double>(pool.size());
    const double loss = TrainAndEval(tokens, test_set, vocab, 7);
    t.AddRow({std::to_string(distinct), FormatFloat(epochs, 1),
              FormatFloat(loss)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape (paper §4 / [126]): at a fixed token\n"
               "budget, more distinct sentences (fewer repeated epochs)\n"
               "give strictly better held-out loss — diverse data is\n"
               "worth more than repeated data.\n";
  return 0;
}
